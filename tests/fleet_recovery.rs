//! Integration: whole-fleet crash recovery. A durable-manifest fleet
//! killed at every point of its drain must be rebuildable with
//! [`Fleet::recover`], and the recovered drain must finish every
//! mission with the exact digest an uninterrupted run produces — the
//! ISSUE's "crash anywhere, recover everywhere" acceptance gate. The
//! manifest itself must shrug off arbitrary corruption: every byte
//! flip and every truncation yields a typed error or a fallback to the
//! previous good generation, never a panic.

use iobt::prelude::*;
use std::path::{Path, PathBuf};

/// Three-mission batch on the ISSUE's canonical seeds 3 / 17 / 42.
fn batch() -> Vec<Scenario> {
    vec![
        persistent_surveillance(40, 3),
        urban_evacuation(44, 17),
        disaster_relief(48, 42),
    ]
}

fn mission_config() -> RunConfig {
    RunConfig::builder()
        .duration(SimDuration::from_secs_f64(40.0))
        .window(SimDuration::from_secs_f64(10.0))
        .build()
        .expect("valid run config")
}

/// Solo ground truth per scenario (digest + metrics fingerprint).
fn baselines() -> Vec<(EndStateDigest, u64)> {
    batch()
        .iter()
        .map(|scenario| {
            let recorder = Recorder::null();
            let cfg = RunConfig::builder()
                .duration(SimDuration::from_secs_f64(40.0))
                .window(SimDuration::from_secs_f64(10.0))
                .recorder(recorder.clone())
                .build()
                .expect("valid run config");
            let report = run_mission(scenario, &cfg);
            (
                report.digest.clone(),
                recorder.metrics_digest().fingerprint(),
            )
        })
        .collect()
}

fn temp_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("iobt-fleet-recovery-{}-{tag}", std::process::id()))
}

/// Newest-first manifest generation files under `dir`.
fn manifest_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("manifest dir exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "fman"))
        .collect();
    files.sort();
    files.reverse();
    files
}

/// Runs the batch under a durable manifest, halting the worker pool
/// after `halt` slices (the in-process stand-in for `kill -9`), then
/// rebuilds the fleet from disk and drains it to completion. Returns
/// how many missions the interrupted drain had finished (workers
/// already mid-slice when the halt latch trips may still complete, so
/// the exact cut point wobbles near the end of the sweep).
fn kill_and_recover(halt: u64, baselines: &[(EndStateDigest, u64)]) -> usize {
    let root = temp_root(&format!("kill-{halt}"));
    let _ = std::fs::remove_dir_all(&root);
    let interrupted_completed;
    {
        let mut fleet = FleetBuilder::new()
            .workers(2)
            .evict_every_slice(true)
            .checkpoint_root(&root)
            .durable_manifest(true)
            .halt_after_slices(halt)
            .build()
            .expect("valid");
        for scenario in batch() {
            fleet.submit(scenario, mission_config()).expect("admissible");
        }
        interrupted_completed = fleet.drain().completed;
        // Fleet dropped here without finishing: the process "died".
    }
    let mut recovered = Fleet::recover(&root, batch()).expect("manifest rebuilds the fleet");
    let tickets = recovered.tickets();
    assert_eq!(tickets.len(), 3, "halt={halt}: every ticket is restored");
    let summary = recovered.drain();
    assert_eq!(summary.quarantined, 0, "halt={halt}");
    for (i, &t) in tickets.iter().enumerate() {
        assert_eq!(
            recovered.poll(t),
            Some(MissionStatus::Done),
            "halt={halt}: {t}"
        );
        assert_eq!(
            recovered.digest(t),
            Some(&baselines[i].0),
            "halt={halt}: {t}: recovered drain must be bit-identical to an uninterrupted run"
        );
        assert_eq!(
            recovered.metrics_fingerprint(t),
            Some(baselines[i].1),
            "halt={halt}: {t}"
        );
    }
    let _ = std::fs::remove_dir_all(root);
    interrupted_completed
}

#[test]
fn kill_at_every_slice_recovers_to_identical_digests() {
    let baselines = baselines();
    // 3 missions x 4 windows at quantum 1 = 12 slices uninterrupted;
    // retries on eviction churn can only add more. Killing after each
    // of slices 1..=11 sweeps the whole lifecycle: mid-queue, between
    // evict and resume, and (late in the sweep) with some or all
    // missions already Done — recovery must cope with every cut.
    let mut interrupted_mid_batch = 0;
    for halt in 1..=11 {
        if kill_and_recover(halt, &baselines) < 3 {
            interrupted_mid_batch += 1;
        }
    }
    assert!(
        interrupted_mid_batch >= 6,
        "the sweep must actually kill mid-batch most of the time \
         (only {interrupted_mid_batch}/11 halts landed mid-drain)"
    );
}

#[test]
fn recovering_an_empty_directory_is_a_typed_error() {
    let root = temp_root("empty");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("mkdir");
    match Fleet::recover(&root, batch()) {
        Err(RecoverError::NoManifest) => {}
        other => panic!("expected NoManifest, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(root);
}

/// Runs the batch to a durable halt and returns the manifest root.
fn halted_durable_root(tag: &str) -> PathBuf {
    let root = temp_root(tag);
    let _ = std::fs::remove_dir_all(&root);
    let mut fleet = FleetBuilder::new()
        .workers(1)
        .evict_every_slice(true)
        .checkpoint_root(&root)
        .durable_manifest(true)
        .halt_after_slices(5)
        .build()
        .expect("valid");
    for scenario in batch() {
        fleet.submit(scenario, mission_config()).expect("admissible");
    }
    fleet.drain();
    root
}

#[test]
fn recovery_validates_the_resupplied_scenarios() {
    let root = halted_durable_root("validate");
    // Wrong count.
    match Fleet::recover(&root, batch()[..2].to_vec()) {
        Err(RecoverError::ScenarioCount { expected: 3, got: 2 }) => {}
        other => panic!("expected ScenarioCount, got {other:?}"),
    }
    // Right count, wrong scenario in slot 1.
    let mut swapped = batch();
    swapped[1] = persistent_surveillance(99, 999);
    match Fleet::recover(&root, swapped) {
        Err(RecoverError::ScenarioMismatch { ticket: 1 }) => {}
        other => panic!("expected ScenarioMismatch, got {other:?}"),
    }
    // The manifest itself is fine: the honest scenario list recovers.
    Fleet::recover(&root, batch()).expect("honest scenarios recover");
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn every_manifest_byte_flip_is_a_typed_error_never_a_panic() {
    let root = halted_durable_root("fuzz-flip");
    let files = manifest_files(&root);
    assert!(!files.is_empty(), "a durable halt leaves a manifest behind");
    // Keep ONLY the newest generation so corruption cannot fall back:
    // every flip must surface as a typed RecoverError.
    for stale in &files[1..] {
        std::fs::remove_file(stale).expect("drop older generations");
    }
    let target = &files[0];
    let pristine = std::fs::read(target).expect("readable manifest");
    for i in 0..pristine.len() {
        let mut bytes = pristine.clone();
        bytes[i] ^= 0xA5;
        std::fs::write(target, &bytes).expect("plant corruption");
        match Fleet::recover(&root, batch()) {
            Err(RecoverError::Load(_)) => {}
            Ok(_) => panic!("byte {i}: single-byte corruption must never decode"),
            Err(other) => panic!("byte {i}: expected Load(CkptError), got {other:?}"),
        }
    }
    // Restore the pristine bytes: the manifest is whole again.
    std::fs::write(target, &pristine).expect("restore manifest");
    Fleet::recover(&root, batch()).expect("pristine manifest recovers");
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn every_manifest_truncation_is_a_typed_error_never_a_panic() {
    let root = halted_durable_root("fuzz-trunc");
    let files = manifest_files(&root);
    for stale in &files[1..] {
        std::fs::remove_file(stale).expect("drop older generations");
    }
    let target = &files[0];
    let pristine = std::fs::read(target).expect("readable manifest");
    for len in 0..pristine.len() {
        std::fs::write(target, &pristine[..len]).expect("plant truncation");
        match Fleet::recover(&root, batch()) {
            Err(RecoverError::Load(_)) => {}
            Ok(_) => panic!("len {len}: a truncated manifest must never decode"),
            Err(other) => panic!("len {len}: expected Load(CkptError), got {other:?}"),
        }
    }
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn corrupt_newest_generation_falls_back_to_the_previous_good_one() {
    let baselines = baselines();
    let root = halted_durable_root("fallback");
    let files = manifest_files(&root);
    assert!(
        files.len() >= 2,
        "rotation keeps two generations after enough transitions"
    );
    // Trash the newest generation wholesale; recovery must fall back to
    // the previous good one — an older but consistent view of the fleet
    // — and the recovered drain must still land on the solo digests
    // (replaying from an older checkpoint is invisible to the digest).
    std::fs::write(&files[0], b"IOBTFMAN garbage follows the magic").expect("corrupt newest");
    let mut recovered =
        Fleet::recover(&root, batch()).expect("previous generation carries the fleet");
    let tickets = recovered.tickets();
    assert_eq!(tickets.len(), 3);
    recovered.drain();
    for (i, &t) in tickets.iter().enumerate() {
        assert_eq!(recovered.poll(t), Some(MissionStatus::Done), "{t}");
        assert_eq!(recovered.digest(t), Some(&baselines[i].0), "{t}");
    }
    let _ = std::fs::remove_dir_all(root);
}
