//! Integration: the observability layer is itself deterministic — the
//! property that makes traces diffable across runs, machines, and CI.

use iobt::prelude::*;

fn f1_scenario() -> Scenario {
    let mut scenario = urban_evacuation(150, 7);
    scenario.disruptions = vec![Disruption::JammerOn {
        at: SimTime::from_secs_f64(30.0),
        index: 0,
    }];
    scenario
}

fn traced_run(sink: SharedBytes) -> (MissionReport, MetricsDigest) {
    let recorder = Recorder::jsonl(sink);
    let config = RunConfig::builder()
        .duration(SimDuration::from_secs_f64(60.0))
        .recorder(recorder.clone())
        .build().expect("valid run config");
    let report = run_mission(&f1_scenario(), &config);
    recorder.flush();
    (report, recorder.metrics_digest())
}

/// The golden-trace property: the f1 evacuation vignette, run twice with
/// the same seed and a JSONL sink, must produce *byte-identical* traces
/// and equal metrics digests. Sim-time timestamps and deterministic event
/// ordering are exactly what make this possible; a single wall-clock
/// timestamp or hash-ordered iteration anywhere in the hot path breaks it.
#[test]
fn f1_jsonl_traces_are_byte_identical_across_runs() {
    let bytes_a = SharedBytes::new();
    let bytes_b = SharedBytes::new();
    let (report_a, digest_a) = traced_run(bytes_a.clone());
    let (report_b, digest_b) = traced_run(bytes_b.clone());

    assert!(!bytes_a.is_empty(), "the run must produce trace output");
    assert_eq!(
        bytes_a.to_vec(),
        bytes_b.to_vec(),
        "same scenario + seed must serialize to byte-identical JSONL"
    );
    assert_eq!(digest_a, digest_b, "metrics digests must agree");
    assert_eq!(
        digest_a.fingerprint(),
        digest_b.fingerprint(),
        "digest fingerprints must agree"
    );
    assert_eq!(report_a.digest, report_b.digest);

    // The trace is valid single-line JSON with the stable leading keys.
    let text = bytes_a.to_string_lossy();
    let mut lines = 0usize;
    for line in text.lines() {
        assert!(line.starts_with("{\"seq\":"), "bad line: {line}");
        assert!(line.ends_with('}'), "bad line: {line}");
        assert!(line.contains("\"t_us\":") && line.contains("\"sub\":"));
        lines += 1;
    }
    assert!(lines > 100, "a 60 s mission should trace many events: {lines}");

    // Metrics agree with the report's own accounting.
    assert_eq!(
        digest_a.counter("netsim.msg_delivered"),
        Some(report_a.digest.delivered)
    );
    assert_eq!(
        digest_a.counter("core.windows").unwrap_or(0),
        report_a.windows.len() as u64
    );
}

/// A metrics-only (NullSink) recorder must observe the same counters as a
/// full JSONL recorder, and attaching either must not change the mission
/// outcome relative to a disabled recorder.
#[test]
fn sinks_do_not_change_the_mission_and_metrics_agree() {
    let scenario = f1_scenario();
    let quick = |recorder: Recorder| {
        let config = RunConfig::builder()
            .duration(SimDuration::from_secs_f64(40.0))
            .recorder(recorder)
            .build().expect("valid run config");
        run_mission(&scenario, &config)
    };

    let disabled = quick(Recorder::disabled());
    let null_recorder = Recorder::null();
    let with_null = quick(null_recorder.clone());
    let bytes = SharedBytes::new();
    let jsonl_recorder = Recorder::jsonl(bytes.clone());
    let with_jsonl = quick(jsonl_recorder.clone());

    assert_eq!(disabled.digest, with_null.digest);
    assert_eq!(disabled.digest, with_jsonl.digest);
    assert_eq!(disabled.windows, with_null.windows);

    let null_digest = null_recorder.metrics_digest();
    let jsonl_digest = jsonl_recorder.metrics_digest();
    assert!(!null_digest.is_empty());
    assert_eq!(null_digest, jsonl_digest, "sinks must not affect metrics");
    // Disabled recorders observe nothing at all.
    assert!(Recorder::disabled().metrics_digest().is_empty());
}

/// Sampling drops sink records but keeps metrics exact, and sequence
/// numbers still count every event (gaps reveal what sampling skipped).
#[test]
fn sampling_gates_the_sink_but_not_the_metrics() {
    let scenario = f1_scenario();
    let run = |sampling: SamplingConfig| {
        let (recorder, ring) = Recorder::memory(1 << 20);
        let recorder = recorder.with_sampling(sampling);
        let config = RunConfig::builder()
            .duration(SimDuration::from_secs_f64(40.0))
            .recorder(recorder.clone())
            .build().expect("valid run config");
        run_mission(&scenario, &config);
        (recorder.metrics_digest(), ring.records())
    };

    let (full_digest, full_records) = run(SamplingConfig::keep_all());
    let (sampled_digest, sampled_records) =
        run(SamplingConfig::keep_all().with(Subsystem::Netsim, 10));

    assert_eq!(full_digest, sampled_digest, "metrics never sampled");
    assert!(
        sampled_records.len() < full_records.len(),
        "sampling must drop netsim records: {} vs {}",
        sampled_records.len(),
        full_records.len()
    );
    // Core events survive untouched.
    let core_count = |rs: &[TraceRecord]| {
        rs.iter()
            .filter(|r| r.event.subsystem() == Subsystem::Core)
            .count()
    };
    assert_eq!(core_count(&full_records), core_count(&sampled_records));
}
