//! Integration: the simulator's optimized fast path is bit-identical to
//! the legacy reference path it replaced.
//!
//! The netsim hot path was rebuilt for 100k-node scale — a batched event
//! loop instead of one-at-a-time heap pops, incremental connectivity
//! maintenance instead of blanket graph invalidation, per-source route
//! trees instead of per-query Dijkstra, and refcounted zero-copy message
//! payloads. None of that is allowed to move a single bit of any result:
//! `RunConfig::reference_mode` keeps the pre-optimization code path alive
//! as an in-process oracle, and this matrix runs both paths over the f1
//! evacuation vignette and the full chaos campaign for every CI seed,
//! demanding identical end-state digests, window traces, metric
//! fingerprints, and byte-identical JSONL trace streams.

use iobt::prelude::*;

/// The CI seed matrix. Keep in sync with `.github/workflows/ci.yml`.
const SEEDS: [u64; 4] = [3, 17, 42, 1009];

const CHAOS_DURATION_S: f64 = 120.0;

fn chaos_scenario(seed: u64) -> Scenario {
    let mut scenario = persistent_surveillance(200, seed);
    let blue: Vec<NodeId> = scenario
        .catalog
        .with_affiliation(Affiliation::Blue)
        .iter()
        .map(|n| n.id())
        .collect();
    let cfg = CampaignConfig::light(
        SimDuration::from_secs_f64(CHAOS_DURATION_S),
        scenario.mission.area(),
    );
    scenario.fault_plan = generate_campaign(seed, &blue, &cfg);
    scenario
}

fn chaos_config(reference: bool, recorder: Recorder) -> RunConfig {
    RunConfig::builder()
        .duration(SimDuration::from_secs_f64(CHAOS_DURATION_S))
        .window(SimDuration::from_secs_f64(10.0))
        .early_repair(true)
        .degradation_ladder(true)
        .acked_tasking(true)
        .reference_mode(reference)
        .recorder(recorder)
        .build()
        .expect("valid run config")
}

/// Runs both paths over one scenario/config pair and asserts every
/// observable output matches bit for bit.
fn assert_paths_equivalent(label: &str, scenario: &Scenario, config: impl Fn(bool, Recorder) -> RunConfig) {
    let (rec_fast, ring_fast) = Recorder::memory(200_000);
    let (rec_ref, ring_ref) = Recorder::memory(200_000);
    let fast = run_mission(scenario, &config(false, rec_fast.clone()));
    let reference = run_mission(scenario, &config(true, rec_ref.clone()));

    assert_eq!(
        fast.digest, reference.digest,
        "{label}: end-state digests diverged between fast and reference paths"
    );
    assert_eq!(
        fast.windows, reference.windows,
        "{label}: window traces diverged"
    );
    assert_eq!(
        rec_fast.metrics_digest().fingerprint(),
        rec_ref.metrics_digest().fingerprint(),
        "{label}: metric fingerprints diverged"
    );
    // The trace streams must agree record for record — same events, same
    // sim-time stamps, same sequence numbers — and therefore byte for
    // byte once encoded as JSONL.
    assert_eq!(
        ring_fast.dropped(),
        ring_ref.dropped(),
        "{label}: ring overflow differed; raise the test capacity"
    );
    let records_fast = ring_fast.records();
    let records_ref = ring_ref.records();
    assert_eq!(
        records_fast, records_ref,
        "{label}: trace records diverged"
    );
    let jsonl_fast: String = records_fast.iter().map(|r| r.to_jsonl()).collect();
    let jsonl_ref: String = records_ref.iter().map(|r| r.to_jsonl()).collect();
    assert_eq!(
        jsonl_fast.as_bytes(),
        jsonl_ref.as_bytes(),
        "{label}: JSONL trace bytes diverged"
    );
    // Sanity: the runs exercised the network at all.
    assert!(fast.digest.sent > 0 && fast.digest.delivered > 0, "{label}");
    assert!(!records_fast.is_empty(), "{label}: nothing was traced");
}

#[test]
fn e1_f1_evacuation_fast_path_matches_reference() {
    for seed in SEEDS {
        let scenario = urban_evacuation(120, seed);
        assert_paths_equivalent(&format!("f1 seed {seed}"), &scenario, |reference, recorder| {
            RunConfig::builder()
                .duration(SimDuration::from_secs_f64(50.0))
                .reference_mode(reference)
                .recorder(recorder)
                .build()
                .expect("valid run config")
        });
    }
}

#[test]
fn e2_chaos_campaign_fast_path_matches_reference() {
    for seed in SEEDS {
        let scenario = chaos_scenario(seed);
        assert!(!scenario.fault_plan.is_empty());
        assert_paths_equivalent(&format!("chaos seed {seed}"), &scenario, chaos_config);
    }
}
