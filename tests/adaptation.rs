//! Integration: the adaptive reflexes measurably help under disruption
//! (netsim + discovery + synthesis + adapt working together).

use iobt::prelude::*;

fn jammed_evacuation(seed: u64) -> Scenario {
    let mut scenario = urban_evacuation(220, seed);
    scenario.disruptions = vec![Disruption::JammerOn {
        at: SimTime::from_secs_f64(50.0),
        index: 0,
    }];
    scenario
}

fn config(adaptive: bool) -> RunConfig {
    RunConfig::builder()
        .duration(SimDuration::from_secs_f64(150.0))
        .adaptive(adaptive)
        .build()
        .expect("valid run config")
}

#[test]
fn adaptive_runtime_recovers_utility_after_jamming() {
    // Averaged over seeds: adaptation must not lose to the static plan,
    // and should win clearly on at least one seed where the jammer bites.
    let mut adaptive_total = 0.0;
    let mut static_total = 0.0;
    let mut clear_win = false;
    for seed in [7u64, 13, 29] {
        let scenario = jammed_evacuation(seed);
        let a = run_mission(&scenario, &config(true));
        let s = run_mission(&scenario, &config(false));
        adaptive_total += a.utility_after(50.0);
        static_total += s.utility_after(50.0);
        if a.utility_after(50.0) > s.utility_after(50.0) + 0.1 {
            clear_win = true;
            assert!(a.repairs > 0, "a clear win must come from repairs");
        }
    }
    assert!(
        adaptive_total >= static_total - 0.05,
        "adaptive {adaptive_total} vs static {static_total}"
    );
    assert!(clear_win, "jamming should bite on at least one seed");
}

#[test]
fn static_runtime_never_repairs() {
    let scenario = jammed_evacuation(7);
    let report = run_mission(&scenario, &config(false));
    assert_eq!(report.repairs, 0);
}

#[test]
fn node_attrition_triggers_repair_in_surveillance() {
    let scenario = persistent_surveillance(200, 17);
    assert!(
        !scenario.disruptions.is_empty(),
        "surveillance schedules attrition"
    );
    let report = run_mission(
        &scenario,
        &RunConfig::builder()
            .duration(SimDuration::from_secs_f64(120.0))
            .repair_threshold(0.95)
            .build().expect("valid run config"),
    );
    // The killed nodes may or may not be in the selected composition, so
    // the repair count is scenario-dependent; what must hold: the run
    // completes, repairs are bounded by the window count, and utility
    // stays sane.
    assert!(report.repairs <= report.windows.len());
    assert!(report.mean_utility() > 0.4, "{}", report.mean_utility());
}
