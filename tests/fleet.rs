//! Integration: the fleet scheduler never changes what a mission
//! computes. The same 8-mission batch run under one worker, four
//! workers, a shuffled admission order, and forced evict-every-window
//! must produce, for every mission, the exact `EndStateDigest` and
//! metrics fingerprint that a solo [`run_mission`] produces — the
//! ISSUE's "determinism survives arbitrary interleaving and eviction"
//! acceptance gate.

use iobt::prelude::*;

/// Mixed 8-mission batch: all three scenario families, distinct seeds
/// and sizes, so missions genuinely differ in length and behaviour.
fn batch() -> Vec<Scenario> {
    vec![
        persistent_surveillance(50, 101),
        urban_evacuation(60, 102),
        disaster_relief(55, 103),
        persistent_surveillance(45, 104),
        urban_evacuation(40, 105),
        disaster_relief(65, 106),
        persistent_surveillance(70, 107),
        urban_evacuation(52, 108),
    ]
}

fn mission_config() -> RunConfig {
    RunConfig::builder()
        .duration(SimDuration::from_secs_f64(40.0))
        .window(SimDuration::from_secs_f64(10.0))
        .build()
        .expect("valid run config")
}

struct Baseline {
    digest: EndStateDigest,
    fingerprint: u64,
    windows: usize,
}

/// Solo ground truth, one `run_mission` per scenario. Uses
/// `Recorder::null()` — the same recorder the fleet attaches when
/// `mission_metrics` is on — so the metrics fingerprints are comparable.
fn baselines() -> Vec<Baseline> {
    batch()
        .iter()
        .map(|scenario| {
            let recorder = Recorder::null();
            let cfg = RunConfig::builder()
                .duration(SimDuration::from_secs_f64(40.0))
                .window(SimDuration::from_secs_f64(10.0))
                .recorder(recorder.clone())
                .build()
                .expect("valid run config");
            let report = run_mission(scenario, &cfg);
            Baseline {
                digest: report.digest.clone(),
                fingerprint: recorder.metrics_digest().fingerprint(),
                windows: report.windows.len(),
            }
        })
        .collect()
}

fn temp_root(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("iobt-fleet-matrix-{}-{tag}", std::process::id()))
}

/// Runs the batch through a fleet, admitting missions in `order`
/// (a permutation of batch indices), and asserts every mission's digest
/// and fingerprint against its solo baseline. Returns the summary.
fn run_and_check(
    mut fleet: Fleet,
    order: &[usize],
    baselines: &[Baseline],
    label: &str,
) -> FleetSummary {
    let scenarios = batch();
    let mut tickets: Vec<(usize, MissionTicket)> = Vec::new();
    for &i in order {
        let t = fleet
            .submit(scenarios[i].clone(), mission_config())
            .expect("admissible mission");
        assert_eq!(fleet.poll(t), Some(MissionStatus::Queued), "{label}");
        tickets.push((i, t));
    }
    let summary = fleet.drain();
    assert_eq!(summary.submitted, scenarios.len(), "{label}");
    assert_eq!(summary.completed, scenarios.len(), "{label}");
    assert_eq!(summary.quarantined, 0, "{label}");
    for &(i, t) in &tickets {
        assert_eq!(fleet.poll(t), Some(MissionStatus::Done), "{label}: {t}");
        assert!(fleet.error(t).is_none(), "{label}: {t}");
        let digest = fleet.digest(t).expect("done mission has a digest");
        assert_eq!(
            *digest, baselines[i].digest,
            "{label}: mission {i} ({t}) digest must match its solo run"
        );
        let fp = fleet
            .metrics_fingerprint(t)
            .expect("mission_metrics is on by default");
        assert_eq!(
            fp, baselines[i].fingerprint,
            "{label}: mission {i} ({t}) metrics fingerprint must match its solo run"
        );
        let report = fleet.report(t).expect("done mission has a report");
        assert_eq!(report.windows.len(), baselines[i].windows, "{label}: {t}");
    }
    summary
}

#[test]
fn schedule_matrix_preserves_every_mission_digest() {
    let baselines = baselines();
    let in_order: Vec<usize> = (0..8).collect();
    // Fixed permutation — admission order must not matter.
    let shuffled = [5usize, 2, 7, 0, 6, 3, 1, 4];

    let solo_root = temp_root("w1");
    let one_worker = FleetBuilder::new()
        .workers(1)
        .checkpoint_root(&solo_root)
        .build()
        .expect("valid");
    run_and_check(one_worker, &in_order, &baselines, "1 worker");

    let quad_root = temp_root("w4");
    let four_workers = FleetBuilder::new()
        .workers(4)
        .checkpoint_root(&quad_root)
        .build()
        .expect("valid");
    run_and_check(four_workers, &in_order, &baselines, "4 workers");

    let shuf_root = temp_root("shuf");
    let shuffled_fleet = FleetBuilder::new()
        .workers(4)
        .checkpoint_root(&shuf_root)
        .build()
        .expect("valid");
    run_and_check(shuffled_fleet, &shuffled, &baselines, "shuffled admission");

    for root in [solo_root, quad_root, shuf_root] {
        let _ = std::fs::remove_dir_all(root);
    }
}

#[test]
fn forced_eviction_every_window_still_matches_solo_runs() {
    let baselines = baselines();
    let root = temp_root("forced");
    let fleet = FleetBuilder::new()
        .workers(4)
        .evict_every_slice(true)
        .checkpoint_root(&root)
        .build()
        .expect("valid");
    let in_order: Vec<usize> = (0..8).collect();
    let summary = run_and_check(fleet, &in_order, &baselines, "forced eviction");
    // Every mission runs 4 windows at quantum 1: evicted after windows
    // 1–3, resumed from disk three times, finished on the fourth slice.
    assert_eq!(summary.evictions, 8 * 3, "one eviction per non-final window");
    assert_eq!(
        summary.resumes, summary.evictions,
        "every eviction is resumed exactly once"
    );
    assert_eq!(summary.slices, 8 * 4);
    assert_eq!(summary.windows, 8 * 4);
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn tight_residency_cap_forces_lru_churn_without_changing_results() {
    let baselines = baselines();
    let root = temp_root("lru");
    // Two workers, one resident mission each: admitting 8 missions
    // forces continual LRU eviction through the disk round-trip.
    let fleet = FleetBuilder::new()
        .workers(2)
        .max_resident(1)
        .checkpoint_root(&root)
        .build()
        .expect("valid");
    let in_order: Vec<usize> = (0..8).collect();
    let summary = run_and_check(fleet, &in_order, &baselines, "max_resident=1");
    assert!(
        summary.evictions > 0,
        "a tight residency cap must actually evict"
    );
    assert_eq!(
        summary.resumes, summary.evictions,
        "every evicted mission is resumed to completion"
    );
    let _ = std::fs::remove_dir_all(root);
}
