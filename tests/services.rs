//! Integration: the learning/diagnostic services hold their headline
//! properties when wired together the way the runtime uses them.

use iobt::prelude::*;

#[test]
fn em_beats_majority_under_adversarial_sources() {
    let mut em_wins = 0;
    for seed in 0..5u64 {
        let s = ScenarioBuilder::new(50, 150)
            .observe_prob(0.3)
            .adversarial_fraction(0.3)
            .build(seed);
        let est = discover(&s.reports, s.num_sources, s.num_claims, EmConfig::default());
        let em = s.score_claims(&est.claim_values());
        let mv = s.score_claims(&majority_vote(&s.reports, s.num_claims));
        if em >= mv {
            em_wins += 1;
        }
    }
    assert!(em_wins >= 4, "EM should beat majority on most seeds: {em_wins}/5");
}

#[test]
fn krum_survives_the_attack_that_kills_mean() {
    let d = logistic_dataset(1_200, 5, 5.0, 3);
    let (train, test) = d.examples.split_at(1_000);
    let ds = Dataset {
        examples: train.to_vec(),
        dim: 5,
        true_weights: d.true_weights.clone(),
    };
    let shards = partition(&ds, 10, 0.3, 4);
    let run = |agg| {
        train_federated(
            5,
            &shards,
            test,
            &FederatedConfig {
                aggregator: agg,
                attack: Some(ByzantineAttack::SignFlip { scale: 10.0 }),
                num_attackers: 3,
                rounds: 40,
                ..FederatedConfig::default()
            },
        )
        .final_accuracy()
    };
    let mean_acc = run(Aggregator::Mean);
    let krum_acc = run(Aggregator::Krum { f: 3 });
    assert!(mean_acc < 0.6, "mean should collapse: {mean_acc}");
    assert!(krum_acc > 0.8, "krum should survive: {krum_acc}");
}

#[test]
fn greedy_monitor_placement_dominates_random() {
    let mut better_or_equal = 0;
    for seed in 0..5u64 {
        let g = Topology::random_connected(25, 12, seed);
        let greedy = greedy_placement(&g, 5);
        let random = random_placement(&g, 5, seed + 50);
        let gf = MeasurementSystem::build(&g, &greedy).identifiable_fraction();
        let rf = MeasurementSystem::build(&g, &random).identifiable_fraction();
        if gf >= rf {
            better_or_equal += 1;
        }
    }
    assert_eq!(better_or_equal, 5);
}

#[test]
fn failure_localization_is_exact_with_full_monitoring() {
    let g = Topology::grid(5, 5);
    let monitors: Vec<usize> = (0..25).collect();
    for failed in [vec![0usize], vec![7, 19]] {
        let loc = localize_failures(&g, &monitors, &failed);
        assert_eq!(loc.inferred_failed, failed);
        assert_eq!(loc.unexplained_paths, 0);
    }
}

#[test]
fn max_min_allocation_contains_a_flood_end_to_end() {
    let trace = hotspot_trace(6, 50, 10.0, 40.0, Some(2), 15, 800.0);
    let capacity = 200.0;
    let prop = simulate(AllocationPolicy::Proportional, capacity, &trace);
    let maxmin = simulate(AllocationPolicy::MaxMin { headroom: 0.2 }, capacity, &trace);
    assert!(maxmin.saturation_fraction < prop.saturation_fraction);
    assert!(maxmin.quantile_ms(0.5) <= prop.quantile_ms(0.5));
}

#[test]
fn decentralized_learning_matches_federated_on_clean_data() {
    let d = logistic_dataset(1_200, 5, 5.0, 9);
    let (train, test) = d.examples.split_at(1_000);
    let ds = Dataset {
        examples: train.to_vec(),
        dim: 5,
        true_weights: d.true_weights.clone(),
    };
    let shards = partition(&ds, 10, 0.3, 10);
    let fed = train_federated(5, &shards, test, &FederatedConfig::default()).final_accuracy();
    let dec = decentralized_sgd(5, &shards, test, MixingTopology::Random { degree: 4 }, 50, 0.5, 11)
        .final_accuracy();
    assert!(
        (fed - dec).abs() < 0.1,
        "coordinated {fed} and coordinator-free {dec} should agree"
    );
}
