//! Integration: churn as a normal operating regime (§III) — stochastic
//! failure processes against the mission runtime and the repair reflex.

use iobt::prelude::*;

/// Applies a churn plan to a scenario as explicit disruptions (failures
/// only — battle damage).
fn scenario_with_churn(seed: u64, mtbf_s: f64) -> Scenario {
    let mut scenario = persistent_surveillance(250, seed);
    scenario.disruptions.clear();
    let blue: Vec<NodeId> = scenario
        .catalog
        .with_affiliation(Affiliation::Blue)
        .iter()
        .map(|n| n.id())
        .collect();
    let churn = ChurnProcess::permanent(mtbf_s, seed ^ 0xC0FFEE);
    let plan = churn.plan(&blue, SimTime::from_secs_f64(120.0));
    for (at, node) in plan.failures {
        scenario.disruptions.push(Disruption::NodeLoss { at, node });
    }
    scenario
}

fn config(adaptive: bool) -> RunConfig {
    RunConfig::builder()
        .duration(SimDuration::from_secs_f64(120.0))
        .adaptive(adaptive)
        .repair_threshold(0.9)
        .build()
        .expect("valid run config")
}

#[test]
fn runtime_survives_heavy_churn() {
    // MTBF 300 s over 120 s: ~1/3 of blue assets die mid-mission.
    let scenario = scenario_with_churn(3, 300.0);
    assert!(
        scenario.disruptions.len() > 10,
        "churn should bite: {} losses",
        scenario.disruptions.len()
    );
    let report = run_mission(&scenario, &config(true));
    assert!(
        report.mean_utility() > 0.4,
        "mission keeps functioning: {}",
        report.mean_utility()
    );
    assert!(!report.windows.is_empty());
}

#[test]
fn adaptation_does_not_lose_to_static_under_churn() {
    let mut adaptive_total = 0.0;
    let mut static_total = 0.0;
    for seed in [5u64, 11, 19] {
        let scenario = scenario_with_churn(seed, 250.0);
        adaptive_total += run_mission(&scenario, &config(true)).utility_after(40.0);
        static_total += run_mission(&scenario, &config(false)).utility_after(40.0);
    }
    assert!(
        adaptive_total >= static_total - 0.05,
        "adaptive {adaptive_total} vs static {static_total}"
    );
}

#[test]
fn faultplan_recovery_races_scripted_loss_deterministically() {
    // Edge case: a crash-with-recovery from the fault plan targets the
    // same node a scripted NodeLoss kills while the recovery is still
    // pending. The documented semantics apply — a scheduled node-up
    // revives any non-depleted node — and the overlap must neither
    // panic nor perturb determinism.
    let mut scenario = persistent_surveillance(150, 13);
    let victim = scenario
        .disruptions
        .iter()
        .find_map(|d| match d {
            Disruption::NodeLoss { node, .. } => Some(*node),
            _ => None,
        })
        .expect("surveillance scripts attrition");
    // Crash at 30 s, recovery due at 70 s; the scripted loss of the
    // same (already down) node lands in between, at 45 s.
    scenario.fault_plan = FaultPlan::new().crash_recover(
        SimTime::from_secs_f64(30.0),
        victim,
        SimDuration::from_secs_f64(40.0),
    );
    let a = run_mission(&scenario, &config(true));
    let b = run_mission(&scenario, &config(true));
    assert_eq!(a.digest, b.digest, "overlapping down/up events diverged");
    assert!(a.mean_utility() > 0.0);
}

#[test]
fn churn_and_jammer_overlap_with_fault_campaign() {
    // Edge case: stochastic churn losses, the scripted jammer
    // activation, and a structured fault campaign all in flight at
    // once. The channels must compose without double-freeing nodes or
    // breaking reproducibility.
    let mut scenario = urban_evacuation(180, 23);
    let blue: Vec<NodeId> = scenario
        .catalog
        .with_affiliation(Affiliation::Blue)
        .iter()
        .map(|n| n.id())
        .collect();
    let churn = ChurnProcess::permanent(500.0, 23 ^ 0xC0FFEE);
    for (at, node) in churn.plan(&blue, SimTime::from_secs_f64(120.0)).failures {
        scenario.disruptions.push(Disruption::NodeLoss { at, node });
    }
    scenario.fault_plan = FaultPlan::new()
        .partition(
            SimTime::from_secs_f64(40.0),
            PartitionSpec::new(
                blue[..blue.len() / 2].iter().copied(),
                blue[blue.len() / 2..].iter().copied(),
            ),
            SimDuration::from_secs_f64(20.0),
        )
        .crash_recover(
            SimTime::from_secs_f64(55.0),
            blue[0],
            SimDuration::from_secs_f64(30.0),
        );
    let cfg = RunConfig::builder()
        .duration(SimDuration::from_secs_f64(120.0))
        .early_repair(true)
        .degradation_ladder(true)
        .build().expect("valid run config");
    let a = run_mission(&scenario, &cfg);
    let b = run_mission(&scenario, &cfg);
    assert_eq!(a.digest, b.digest, "overlapping disruption channels diverged");
    assert!(!a.windows.is_empty());
}

#[test]
fn sole_modality_fleet_failure_degrades_gracefully() {
    // Edge case: every provider of one required modality dies. The
    // ladder may shed requirements but must never shed the mission's
    // last modality, and the run must finish without panicking.
    let mut scenario = disaster_relief(150, 31);
    let chem: Vec<NodeId> = scenario
        .catalog
        .with_sensor(SensorKind::Chemical)
        .iter()
        .map(|n| n.id())
        .collect();
    assert!(!chem.is_empty(), "relief drops chemical pods");
    let mut plan = FaultPlan::new();
    for node in chem {
        plan = plan.crash(SimTime::from_secs_f64(25.0), node);
    }
    scenario.fault_plan = plan;
    let cfg = RunConfig::builder()
        .duration(SimDuration::from_secs_f64(120.0))
        .early_repair(true)
        .degradation_ladder(true)
        .build().expect("valid run config");
    let report = run_mission(&scenario, &cfg);
    let res = report.digest.resilience;
    assert!(
        res.final_ladder_level <= MAX_LADDER_LEVEL as u64,
        "ladder stayed bounded"
    );
    assert_eq!(
        res.final_ladder_level,
        res.sheds - res.restores,
        "ladder bookkeeping is exact"
    );
    let again = run_mission(&scenario, &cfg);
    assert_eq!(report.digest, again.digest);
}

#[test]
fn lighter_churn_means_higher_utility() {
    let heavy = run_mission(&scenario_with_churn(7, 120.0), &config(true));
    let light = run_mission(&scenario_with_churn(7, 3_000.0), &config(true));
    assert!(
        light.mean_utility() >= heavy.mean_utility() - 0.02,
        "light {} vs heavy {}",
        light.mean_utility(),
        heavy.mean_utility()
    );
}
