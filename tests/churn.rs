//! Integration: churn as a normal operating regime (§III) — stochastic
//! failure processes against the mission runtime and the repair reflex.

use iobt::prelude::*;

/// Applies a churn plan to a scenario as explicit disruptions (failures
/// only — battle damage).
fn scenario_with_churn(seed: u64, mtbf_s: f64) -> Scenario {
    let mut scenario = persistent_surveillance(250, seed);
    scenario.disruptions.clear();
    let blue: Vec<NodeId> = scenario
        .catalog
        .with_affiliation(Affiliation::Blue)
        .iter()
        .map(|n| n.id())
        .collect();
    let churn = ChurnProcess::permanent(mtbf_s, seed ^ 0xC0FFEE);
    let plan = churn.plan(&blue, SimTime::from_secs_f64(120.0));
    for (at, node) in plan.failures {
        scenario.disruptions.push(Disruption::NodeLoss { at, node });
    }
    scenario
}

fn config(adaptive: bool) -> RunConfig {
    RunConfig::builder()
        .duration(SimDuration::from_secs_f64(120.0))
        .adaptive(adaptive)
        .repair_threshold(0.9)
        .build()
}

#[test]
fn runtime_survives_heavy_churn() {
    // MTBF 300 s over 120 s: ~1/3 of blue assets die mid-mission.
    let scenario = scenario_with_churn(3, 300.0);
    assert!(
        scenario.disruptions.len() > 10,
        "churn should bite: {} losses",
        scenario.disruptions.len()
    );
    let report = run_mission(&scenario, &config(true));
    assert!(
        report.mean_utility() > 0.4,
        "mission keeps functioning: {}",
        report.mean_utility()
    );
    assert!(!report.windows.is_empty());
}

#[test]
fn adaptation_does_not_lose_to_static_under_churn() {
    let mut adaptive_total = 0.0;
    let mut static_total = 0.0;
    for seed in [5u64, 11, 19] {
        let scenario = scenario_with_churn(seed, 250.0);
        adaptive_total += run_mission(&scenario, &config(true)).utility_after(40.0);
        static_total += run_mission(&scenario, &config(false)).utility_after(40.0);
    }
    assert!(
        adaptive_total >= static_total - 0.05,
        "adaptive {adaptive_total} vs static {static_total}"
    );
}

#[test]
fn lighter_churn_means_higher_utility() {
    let heavy = run_mission(&scenario_with_churn(7, 120.0), &config(true));
    let light = run_mission(&scenario_with_churn(7, 3_000.0), &config(true));
    assert!(
        light.mean_utility() >= heavy.mean_utility() - 0.02,
        "light {} vs heavy {}",
        light.mean_utility(),
        heavy.mean_utility()
    );
}
