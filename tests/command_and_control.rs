//! Integration: command-by-intent facilities working over real scenario
//! populations — multi-mission arbitration, intent games, human trust
//! calibration, and safety interlocks.

use iobt::prelude::*;

#[test]
fn critical_mission_outranks_normal_on_a_real_population() {
    let catalog = persistent_surveillance(300, 8).catalog;
    let specs: Vec<NodeSpec> = catalog.iter().cloned().collect();
    let shared_area = Rect::new(Point::new(0.0, 0.0), Point::new(2_000.0, 2_000.0));
    let critical = Mission::builder(MissionId::new(1), MissionKind::Evacuation)
        .area(shared_area)
        .priority(Priority::Critical)
        .coverage_fraction(0.7)
        .min_trust(0.3)
        .build();
    let normal = Mission::builder(MissionId::new(2), MissionKind::Surveillance)
        .area(shared_area)
        .coverage_fraction(0.7)
        .min_trust(0.3)
        .build();
    let plan = allocate_missions(&specs, &[normal.clone(), critical.clone()], 6, Solver::Greedy);
    assert_eq!(plan.allocations[0].mission.id(), critical.id());
    // The first-served mission never pays a contention cost.
    let first = &plan.allocations[0];
    assert!((first.standalone_coverage - first.composition.coverage).abs() < 1e-9);
    // No asset serves two missions.
    let mut all: Vec<NodeId> = plan
        .allocations
        .iter()
        .flat_map(|a| a.granted.clone())
        .collect();
    let before = all.len();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), before);
}

#[test]
fn intent_game_staffing_respects_weights_at_scale() {
    let game = IntentGame::new(vec![8.0, 4.0, 2.0, 1.0]);
    let eq = game.best_response(600, 3);
    assert!(eq.converged && game.is_nash(&eq.assignment));
    let loads = eq.task_loads(4);
    // Loads ordered like the weights.
    assert!(loads[0] > loads[1] && loads[1] > loads[2] && loads[2] > loads[3]);
}

#[test]
fn human_reports_recalibrate_trust_then_gate_recruitment_end_to_end() {
    // Gray humans file claims; truth discovery estimates their accuracy;
    // liars' trust drops below the recruitment floor.
    let s = ScenarioBuilder::new(25, 150)
        .observe_prob(0.6)
        .adversarial_fraction(0.3)
        .build(13);
    let est = discover(&s.reports, s.num_sources, s.num_claims, EmConfig::default());
    let ids: Vec<NodeId> = (0..25).map(|i| NodeId::new(500 + i as u64)).collect();
    let mut ledger = TrustLedger::new();
    for &id in &ids {
        ledger.enroll(id, Affiliation::Gray);
    }
    calibrate_human_trust(&mut ledger, &est, &s.reports, &ids);
    let floor = 0.4; // default RecruitPolicy::min_trust
    let mut liars_blocked = 0;
    let mut liars = 0;
    for (i, &id) in ids.iter().enumerate() {
        if s.adversarial[i] {
            liars += 1;
            if ledger.score(id).unwrap().value() < floor {
                liars_blocked += 1;
            }
        }
    }
    assert!(liars > 0);
    assert!(
        liars_blocked as f64 / liars as f64 > 0.8,
        "most liars fall below the recruitment floor: {liars_blocked}/{liars}"
    );
}

#[test]
fn safety_gate_blocks_unauthorized_demolition_in_a_scenario() {
    let scenario = disaster_relief(100, 4);
    let mut gate = ActuationController::new(0.3, 60.0);
    let robot = scenario.catalog.ids()[0];
    // Nobody authorized demolition: denied.
    assert_eq!(
        gate.request(robot, ActuatorKind::Demolition, 0, 0.0),
        ActuationDecision::DeniedNoAuthorization
    );
    // Command post authorizes, but an occupancy sensor trips first.
    gate.grant(HumanAuthorization {
        authorizer: scenario.command_post,
        actuator: ActuatorKind::Demolition,
        zone: 0,
        expires_at_s: 1_000.0,
    });
    gate.report_occupancy(0, 0.95, 5.0);
    assert_eq!(
        gate.request(robot, ActuatorKind::Demolition, 0, 6.0),
        ActuationDecision::WithheldOccupied
    );
    // Markers never needed authorization at all.
    assert_eq!(
        gate.request(robot, ActuatorKind::Marker, 1, 6.0),
        ActuationDecision::Approved
    );
}

#[test]
fn diagnostics_bridge_works_on_a_scenario_mesh() {
    let scenario = persistent_surveillance(120, 6);
    let mut sim = Simulator::builder(scenario.catalog.clone())
        .terrain(scenario.terrain.clone())
        .seed(scenario.seed)
        .build();
    let graph = sim.connectivity();
    // Model the blue force's mesh.
    let blue: Vec<NodeId> = scenario
        .catalog
        .with_affiliation(Affiliation::Blue)
        .iter()
        .map(|n| n.id())
        .collect();
    let Some(model) = NetworkModel::from_connectivity(&graph, &blue) else {
        panic!("blue mesh should have links");
    };
    assert!(model.topology.edge_count() > 0);
    // Diagnose with every blue node as a monitor and no failures: the
    // report must be clean.
    let report = diagnose_failures(&model, &blue, &[]).unwrap();
    assert!(report.suspected_nodes.is_empty());
    assert_eq!(report.link_precision, 1.0);
}
