//! Cross-crate integration: the full mission pipeline on every scenario
//! family.

use iobt::prelude::*;

fn quick() -> RunConfig {
    RunConfig::builder()
        .duration(SimDuration::from_secs_f64(60.0))
        .build()
        .expect("valid run config")
}

fn check_report_invariants(report: &MissionReport) {
    assert!(report.recruited > 0, "recruitment found nobody");
    assert!(
        (0.0..=1.0).contains(&report.infiltration_rate),
        "infiltration must be a fraction"
    );
    assert!(
        report.composition.coverage >= 0.0 && report.composition.coverage <= 1.0,
        "coverage must be a fraction"
    );
    assert!(
        report.assurance.success_probability >= 0.0
            && report.assurance.success_probability <= 1.0
    );
    assert!(!report.windows.is_empty(), "execution produced no windows");
    for w in &report.windows {
        assert!(w.reporting <= w.expected.max(1));
        assert!((0.0..=1.0).contains(&w.utility));
    }
    assert!((0.0..=1.0).contains(&report.delivery_ratio));
    assert!(report.mean_latency_ms >= 0.0);
}

#[test]
fn surveillance_pipeline() {
    let report = run_mission(&persistent_surveillance(150, 1), &quick());
    check_report_invariants(&report);
    assert!(
        report.mean_utility() > 0.5,
        "surveillance should mostly work: {}",
        report.mean_utility()
    );
}

#[test]
fn evacuation_pipeline() {
    let report = run_mission(&urban_evacuation(150, 2), &quick());
    check_report_invariants(&report);
}

#[test]
fn disaster_relief_pipeline() {
    let report = run_mission(&disaster_relief(150, 3), &quick());
    check_report_invariants(&report);
    // No red force in disaster relief: nothing to infiltrate.
    assert_eq!(report.infiltration_rate, 0.0);
}

#[test]
fn recruitment_screens_most_red_nodes() {
    let scenario = persistent_surveillance(400, 4);
    let report = run_mission(&scenario, &quick());
    let [_, red, _] = scenario.catalog.affiliation_counts();
    assert!(red > 0, "scenario should contain red nodes");
    assert!(
        report.rejected_red > 0,
        "discovery should flag some red nodes"
    );
    assert!(
        report.infiltration_rate < 0.1,
        "infiltration should be rare: {}",
        report.infiltration_rate
    );
}

#[test]
fn larger_populations_recruit_more_and_cover_better() {
    let small = run_mission(&persistent_surveillance(80, 5), &quick());
    let large = run_mission(&persistent_surveillance(500, 5), &quick());
    assert!(large.recruited > small.recruited);
    assert!(large.composition.coverage >= small.composition.coverage - 0.05);
}
