//! Integration: the edge bridge under chaos.
//!
//! The contract under test is the tentpole robustness claim: attaching
//! a bridge — over a transport that disconnects, stalls, tears frames,
//! duplicates deliveries, and refuses reconnects — must never panic,
//! must keep the exactly-once ledger
//! (`delivered + dropped + buffered == emitted`) balanced, and must
//! leave the mission's end-state digest and metrics fingerprint
//! *bit-identical* to a bridgeless run. The matrix walks seeds
//! {3, 17, 42} × all three overflow policies × fault profiles
//! including a disconnect armed at every single flush boundary.

use iobt::bridge::{
    memory_pair, parse_command, Bridge, BridgeConfig, BridgeReport, ConnState, FaultyTransport,
    MemoryEndpoint, OverflowPolicy, TransportFaultProfile,
};
use iobt::prelude::*;

const SEEDS: [u64; 3] = [3, 17, 42];

const POLICIES: [OverflowPolicy; 3] = [
    OverflowPolicy::DropOldest,
    OverflowPolicy::DropNewest,
    OverflowPolicy::Block { deadline: 4 },
];

fn scenario_for(seed: u64) -> Scenario {
    urban_evacuation(40, seed)
}

fn mission_config(recorder: Recorder) -> RunConfig {
    RunConfig::builder()
        .duration(SimDuration::from_secs_f64(12.0))
        .window(SimDuration::from_secs_f64(6.0))
        .recorder(recorder)
        .build()
        .expect("valid run config")
}

fn bridge_config(seed: u64, policy: OverflowPolicy) -> BridgeConfig {
    BridgeConfig {
        mission: seed,
        seed,
        ring_capacity: 32,
        overflow: policy,
        backoff_base: 1,
        backoff_cap: 8,
        max_attempts: 4,
        heartbeat_every: 4,
        batch_per_tick: 8,
        ..BridgeConfig::default()
    }
}

/// Steps the mission to completion without any bridge; the reference
/// digest and metrics fingerprint every bridged run must reproduce.
fn bridgeless_run(seed: u64) -> (EndStateDigest, u64) {
    let recorder = Recorder::null();
    let config = mission_config(recorder.clone());
    let scenario = scenario_for(seed);
    let mut runner = MissionRunner::new(&scenario, &config);
    while let StepOutcome::WindowClosed { .. } = runner.step_window() {}
    let report = runner.finish();
    (report.digest, recorder.metrics_digest().fingerprint())
}

/// Steps the same mission with a bridge attached over the given faulty
/// transport, pumping between windows like a host loop would.
fn bridged_run(
    seed: u64,
    policy: OverflowPolicy,
    profile: TransportFaultProfile,
) -> (EndStateDigest, u64, BridgeReport, MemoryEndpoint) {
    let (mem, peer) = memory_pair();
    let transport = FaultyTransport::new(mem, profile);
    let bridge = Bridge::new(bridge_config(seed, policy), Box::new(transport));
    let recorder = Recorder::with_sink(Box::new(bridge.sink()))
        .with_sampling(SamplingConfig::all(16));
    let config = mission_config(recorder.clone());
    let scenario = scenario_for(seed);
    let mut runner = MissionRunner::new(&scenario, &config);
    bridge.attach_board(runner.task_board());
    while let StepOutcome::WindowClosed { .. } = runner.step_window() {
        bridge.pump_n(4);
    }
    let report = runner.finish();
    // Final drain; under hostile profiles the bridge may time out or
    // give up — both are legitimate outcomes, the ledger still has to
    // balance.
    let _ = bridge.drain(200);
    (
        report.digest,
        recorder.metrics_digest().fingerprint(),
        bridge.report(),
        peer,
    )
}

/// Chaos matrix: every seed × every overflow policy × benign, chaotic,
/// and connect-refusing transports. The mission must be bit-identical
/// to the bridgeless reference in every cell, and the bridge ledger
/// must balance exactly.
#[test]
fn mission_digests_are_bit_identical_under_every_fault_profile() {
    for seed in SEEDS {
        let (ref_digest, ref_fp) = bridgeless_run(seed);
        let mut profiles = vec![
            ("benign", TransportFaultProfile::benign(seed)),
            ("chaos", TransportFaultProfile::chaos(seed)),
        ];
        // Refuse every connect: the bridge must walk the backoff
        // ladder, give up, and detach without touching the mission.
        let mut refuse = TransportFaultProfile::benign(seed);
        refuse.connect_fail_one_in = 1;
        profiles.push(("refuse_all", refuse));

        for policy in POLICIES {
            for (name, profile) in &profiles {
                let (digest, fp, report, _peer) = bridged_run(seed, policy, *profile);
                assert_eq!(
                    digest, ref_digest,
                    "seed {seed} policy {policy:?} profile {name}: digest drifted"
                );
                assert_eq!(
                    fp, ref_fp,
                    "seed {seed} policy {policy:?} profile {name}: fingerprint drifted"
                );
                assert!(
                    report.accounted(),
                    "seed {seed} policy {policy:?} profile {name}: ledger imbalance {report:?}"
                );
                if *name == "refuse_all" {
                    assert_eq!(report.state, ConnState::GaveUp);
                    assert_eq!(report.delivered, 0);
                    assert_eq!(report.dropped, report.emitted);
                }
            }
        }
    }
}

/// Walks a single-shot disconnect across *every* flush boundary of the
/// run, for every seed and overflow policy: no panic, exact
/// accounting, and mission bit-identity at each boundary.
#[test]
fn disconnect_at_every_flush_boundary_is_survivable() {
    for seed in SEEDS {
        let (ref_digest, ref_fp) = bridgeless_run(seed);
        for policy in POLICIES {
            // Benign pass to learn how many transport sends the run
            // performs (frames + heartbeats).
            let (_, _, benign_report, _peer) = bridged_run(
                seed,
                policy,
                TransportFaultProfile::benign(seed),
            );
            let total_sends = benign_report.delivered + benign_report.heartbeats;
            assert!(
                total_sends >= 4,
                "seed {seed}: run too small to exercise boundaries ({total_sends} sends)"
            );
            for boundary in 0..total_sends {
                let mut profile = TransportFaultProfile::benign(seed);
                profile.disconnect_at_send = Some(boundary);
                let (digest, fp, report, _peer) = bridged_run(seed, policy, profile);
                assert_eq!(
                    digest, ref_digest,
                    "seed {seed} policy {policy:?} boundary {boundary}: digest drifted"
                );
                assert_eq!(
                    fp, ref_fp,
                    "seed {seed} policy {policy:?} boundary {boundary}: fingerprint drifted"
                );
                assert!(
                    report.accounted(),
                    "seed {seed} policy {policy:?} boundary {boundary}: imbalance {report:?}"
                );
                // One reconnect must have healed the link: frames kept
                // flowing after the cut.
                assert!(
                    report.delivered > 0,
                    "seed {seed} boundary {boundary}: nothing delivered"
                );
            }
        }
    }
}

/// Consumers dedupe by (topic, seq): under a duplicating + torn-frame
/// transport, the deduped stream the consumer reconstructs is exactly
/// the delivered prefix of the emission order — duplicates collapse,
/// torn frames are discarded, order is preserved.
#[test]
fn consumer_dedup_recovers_exactly_once_delivery() {
    let seed = 17;
    let mut profile = TransportFaultProfile::benign(seed);
    profile.duplicate_one_in = 3;
    profile.partial_one_in = 7;
    let (_, _, report, peer) = bridged_run(seed, OverflowPolicy::DropOldest, profile);
    assert!(report.accounted());
    assert!(report.delivered > 0);

    let mut seen = std::collections::BTreeSet::new();
    let mut deduped = 0u64;
    let mut torn = 0u64;
    for frame in peer.take_frames() {
        let Ok(text) = String::from_utf8(frame) else {
            torn += 1;
            continue;
        };
        // A whole frame is one JSON line ending in `}`; torn prefixes
        // are not.
        if !text.trim_end().ends_with('}') || !text.starts_with("{\"topic\":\"") {
            torn += 1;
            continue;
        }
        if text.contains("/heartbeat\"") {
            continue;
        }
        let key = text.clone();
        if seen.insert(key) {
            deduped += 1;
        }
    }
    assert!(torn > 0, "the partial-write profile should tear frames");
    // Every delivered frame appears at least once; dedup collapses the
    // duplicated deliveries back to the exact delivered count.
    assert_eq!(
        deduped, report.delivered,
        "dedup by frame identity must reconstruct exactly-once delivery"
    );
}

/// Ingress fuzz: every single-bit flip and every truncation of a valid
/// command frame must produce a typed error or a harmless reparse —
/// never a panic — both at the parser and end-to-end through a live
/// bridge.
#[test]
fn ingress_survives_every_flip_and_truncation() {
    let valid = b"{\"src\":5,\"seq\":11,\"cmd\":\"assign\",\"node\":42}".to_vec();
    assert!(parse_command(&valid).is_ok());

    // Truncations: a strict prefix can never be a complete object.
    for cut in 0..valid.len() {
        assert!(
            parse_command(&valid[..cut]).is_err(),
            "truncation at {cut} should be rejected"
        );
    }

    // Bit flips: exercised for the no-panic property; a flip inside a
    // digit may still parse (to different numbers), which is fine.
    for i in 0..valid.len() {
        for bit in 0..8 {
            let mut corrupt = valid.clone();
            corrupt[i] ^= 1 << bit;
            let _ = parse_command(&corrupt);
        }
    }

    // End-to-end: feed the same corruptions through a live bridge; it
    // must stay up, count rejections, and apply the valid command once.
    let (mem, peer) = memory_pair();
    let bridge = Bridge::new(
        BridgeConfig {
            batch_per_tick: 4096,
            ..BridgeConfig::default()
        },
        Box::new(mem),
    );
    let board = iobt::core::new_task_board();
    bridge.attach_board(board);
    bridge.pump();
    assert_eq!(bridge.state(), ConnState::Connected);
    peer.push_command(&valid);
    for i in 0..valid.len() {
        let mut corrupt = valid.clone();
        corrupt[i] ^= 0x80; // force non-ASCII / structural damage
        peer.push_command(&corrupt);
        peer.push_command(&valid[..i]);
    }
    bridge.pump();
    let report = bridge.report();
    assert_eq!(report.cmds_applied, 1, "the valid command applies once");
    assert!(report.cmds_rejected > 0);
    assert_eq!(bridge.state(), ConnState::Connected);
}

/// External tasking rides the acked TaskBoard path: a command injected
/// mid-mission reaches the mission's tasking pipeline, and replaying it
/// is idempotent.
#[test]
fn external_commands_enter_the_mission_once() {
    let seed = 42;
    let (mem, peer) = memory_pair();
    let bridge = Bridge::new(
        bridge_config(seed, OverflowPolicy::DropOldest),
        Box::new(mem),
    );
    let recorder = Recorder::with_sink(Box::new(bridge.sink()));
    let config = mission_config(recorder.clone());
    let scenario = scenario_for(seed);
    let mut runner = MissionRunner::new(&scenario, &config);
    bridge.attach_board(runner.task_board());
    bridge.pump(); // connect
    let cmd = b"{\"src\":9,\"seq\":1,\"cmd\":\"assign\",\"node\":3}";
    peer.push_command(cmd);
    peer.push_command(cmd); // replay
    while let StepOutcome::WindowClosed { .. } = runner.step_window() {
        bridge.pump_n(4);
        peer.push_command(cmd); // replay again mid-mission
    }
    let _ = runner.finish();
    let report = bridge.report();
    assert_eq!(report.cmds_applied, 1, "one (src, seq) applies exactly once");
    assert!(report.cmds_dup >= 2, "replays are counted, not re-applied");
    assert!(report.accounted());
}
