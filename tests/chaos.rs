//! Integration: chaos engineering against the mission runtime.
//!
//! A seeded fault campaign (crashes, recoveries, a region blackout, a
//! partition, link degradation, a compromised relay) is injected into
//! the full pipeline with every reaction feature armed — heartbeat
//! failure detection with early repair, the graceful-degradation
//! ladder, and acked task dissemination. The matrix asserts the §IV
//! resilience story end to end:
//!
//! * same seed ⇒ bit-identical end-state digests and metric
//!   fingerprints (chaos is reproducible, not merely survivable),
//! * no panics anywhere under fault load,
//! * mean utility recovers to ≥ 70% of the fault-free baseline once
//!   the transient faults have cleared,
//! * every reported counter is internally consistent.
//!
//! Seeds here mirror the CI chaos-smoke matrix (.github/workflows).

use iobt::prelude::*;

/// The CI seed matrix. Keep in sync with `.github/workflows/ci.yml`.
const SEEDS: [u64; 4] = [3, 17, 42, 1009];

const DURATION_S: f64 = 120.0;

fn campaign_for(scenario: &Scenario, seed: u64) -> FaultPlan {
    let blue: Vec<NodeId> = scenario
        .catalog
        .with_affiliation(Affiliation::Blue)
        .iter()
        .map(|n| n.id())
        .collect();
    let cfg = CampaignConfig::light(
        SimDuration::from_secs_f64(DURATION_S),
        scenario.mission.area(),
    );
    generate_campaign(seed, &blue, &cfg)
}

fn chaos_scenario(seed: u64) -> Scenario {
    let mut scenario = persistent_surveillance(200, seed);
    scenario.fault_plan = campaign_for(&scenario, seed);
    scenario
}

fn chaos_config(recorder: Option<Recorder>) -> RunConfig {
    let mut builder = RunConfig::builder()
        .duration(SimDuration::from_secs_f64(DURATION_S))
        .window(SimDuration::from_secs_f64(10.0))
        .early_repair(true)
        .degradation_ladder(true)
        .acked_tasking(true);
    if let Some(recorder) = recorder {
        builder = builder.recorder(recorder);
    }
    builder.build().expect("valid run config")
}

#[test]
fn c1_same_seed_chaos_is_bit_identical() {
    for seed in SEEDS {
        let scenario = chaos_scenario(seed);
        let (rec_a, _ring_a) = Recorder::memory(200_000);
        let (rec_b, _ring_b) = Recorder::memory(200_000);
        let a = run_mission(&scenario, &chaos_config(Some(rec_a.clone())));
        let b = run_mission(&scenario, &chaos_config(Some(rec_b.clone())));
        assert_eq!(
            a.digest, b.digest,
            "seed {seed}: end-state digests must match exactly"
        );
        assert_eq!(a.windows, b.windows, "seed {seed}: window traces diverged");
        assert_eq!(
            rec_a.metrics_digest().fingerprint(),
            rec_b.metrics_digest().fingerprint(),
            "seed {seed}: metric fingerprints diverged"
        );
        // Sanity: the campaign actually ran (faults were scheduled, the
        // reaction layer did something, traffic flowed).
        assert!(!scenario.fault_plan.is_empty());
        assert!(a.digest.sent > 0 && a.digest.delivered > 0);
    }
}

#[test]
fn c2_utility_recovers_after_transients_clear() {
    for seed in SEEDS {
        let faulted = chaos_scenario(seed);
        let mut baseline = faulted.clone();
        baseline.fault_plan = FaultPlan::new();
        let config = chaos_config(None);
        let faulted_report = run_mission(&faulted, &config);
        let baseline_report = run_mission(&baseline, &config);
        // Transients (recovering crashes, lifted blackouts, partitions,
        // degradations, compromises) all clear by this point; measure
        // the tail from the first window boundary after it.
        let clear_s = faulted.fault_plan.transient_clear_time().as_secs_f64();
        let tail_from = (clear_s / 10.0).ceil() * 10.0;
        assert!(
            tail_from < DURATION_S,
            "seed {seed}: campaign leaves no tail to measure ({tail_from})"
        );
        let recovered = faulted_report.utility_after(tail_from);
        let reference = baseline_report.utility_after(tail_from);
        assert!(
            recovered >= 0.7 * reference,
            "seed {seed}: tail utility {recovered:.3} < 70% of fault-free {reference:.3}"
        );
    }
}

#[test]
fn c3_resilience_counters_are_consistent() {
    for seed in SEEDS {
        let scenario = chaos_scenario(seed);
        let report = run_mission(&scenario, &chaos_config(None));
        let digest = &report.digest;
        let res = digest.resilience;
        assert!(digest.delivered <= digest.sent, "seed {seed}");
        assert!(digest.tampered <= digest.sent, "seed {seed}");
        // Every early repair was provoked by at least one fresh suspect.
        assert!(res.early_repairs <= res.suspected, "seed {seed}");
        // The ladder's final level is exactly its net movement.
        assert_eq!(
            res.final_ladder_level,
            res.sheds - res.restores,
            "seed {seed}"
        );
        assert!(res.final_ladder_level <= MAX_LADDER_LEVEL as u64, "seed {seed}");
        let tasking = res.tasking;
        assert!(tasking.acked <= tasking.assigned, "seed {seed}");
        assert!(
            tasking.acked + tasking.abandoned <= tasking.assigned,
            "seed {seed}: acked {} + abandoned {} > assigned {}",
            tasking.acked,
            tasking.abandoned,
            tasking.assigned
        );
        assert!(tasking.assigned > 0, "seed {seed}: nobody was tasked");
        // Early repairs are a subset of all repairs.
        assert!(
            res.early_repairs <= digest.repairs as u64,
            "seed {seed}: early {} > total {}",
            res.early_repairs,
            digest.repairs
        );
    }
}

#[test]
fn c4_reaction_layer_does_not_lose_to_passive_under_chaos() {
    // With the same fault campaign, the armed runtime should do at
    // least as well as a plain adaptive run (small tolerance: shedding
    // trades utility ceiling for stability).
    let mut armed_total = 0.0;
    let mut passive_total = 0.0;
    for seed in SEEDS {
        let scenario = chaos_scenario(seed);
        armed_total += run_mission(&scenario, &chaos_config(None)).mean_utility();
        let passive = RunConfig::builder()
            .duration(SimDuration::from_secs_f64(DURATION_S))
            .window(SimDuration::from_secs_f64(10.0))
            .build().expect("valid run config");
        passive_total += run_mission(&scenario, &passive).mean_utility();
    }
    assert!(
        armed_total >= passive_total - 0.1 * SEEDS.len() as f64,
        "armed {armed_total:.3} vs passive {passive_total:.3}"
    );
}

#[test]
fn c5_campaigns_compose_with_churn_and_jammers() {
    // The structured fault plan must coexist with the legacy disruption
    // channels (jammer activation + scripted node loss) without
    // breaking determinism.
    let mut scenario = urban_evacuation(150, 21);
    scenario.fault_plan = campaign_for(&scenario, 21);
    let config = chaos_config(None);
    let a = run_mission(&scenario, &config);
    let b = run_mission(&scenario, &config);
    assert_eq!(a.digest, b.digest);
    assert!(a.mean_utility() > 0.0, "mission must still function");
}
