//! Integration: crash-safe checkpointing with deterministic resume.
//!
//! The property under test is the strongest one the runtime promises: a
//! run killed after *any* window and resumed from its checkpoint must be
//! indistinguishable — end-state digest, metrics fingerprint, and the
//! post-resume JSONL trace — from the same-seed run that was never
//! interrupted. Plus the storage half: corrupted checkpoint files of any
//! kind are rejected with an error, never a panic, and never silently
//! accepted.

use iobt::ckpt::{decode_checkpoint, encode_checkpoint};
use iobt::prelude::*;

const SEEDS: [u64; 3] = [3, 17, 42];

fn quick_config(recorder: Recorder) -> RunConfig {
    RunConfig::builder()
        .duration(SimDuration::from_secs_f64(60.0))
        .window(SimDuration::from_secs_f64(10.0))
        .recorder(recorder)
        .build()
        .expect("valid run config")
}

fn armed_chaos_config(recorder: Recorder) -> RunConfig {
    RunConfig::builder()
        .duration(SimDuration::from_secs_f64(120.0))
        .window(SimDuration::from_secs_f64(10.0))
        .early_repair(true)
        .degradation_ladder(true)
        .acked_tasking(true)
        .recorder(recorder)
        .build()
        .expect("valid run config")
}

fn chaos_scenario(seed: u64) -> Scenario {
    let mut scenario = persistent_surveillance(200, seed);
    let blue: Vec<NodeId> = scenario
        .catalog
        .with_affiliation(Affiliation::Blue)
        .iter()
        .map(|n| n.id())
        .collect();
    let campaign = CampaignConfig::light(
        SimDuration::from_secs_f64(120.0),
        scenario.mission.area(),
    );
    scenario.fault_plan = generate_campaign(seed, &blue, &campaign);
    scenario
}

/// Seeds × kill-points: a checkpoint taken after every window (including
/// window 0, before any stepping, and the final window) resumes to the
/// exact digest and metrics fingerprint of the uninterrupted run.
#[test]
fn crash_resume_matrix_is_bit_identical() {
    for seed in SEEDS {
        let scenario = persistent_surveillance(80, seed);

        // The uninterrupted reference run.
        let (rec, _ring) = Recorder::memory(200_000);
        let baseline = run_mission(&scenario, &quick_config(rec.clone()));
        let baseline_fp = rec.metrics_digest().fingerprint();

        // One stepped run, checkpointing at every window boundary.
        let (rec_killed, _ring_killed) = Recorder::memory(200_000);
        let killed_cfg = quick_config(rec_killed);
        let mut runner = MissionRunner::new(&scenario, &killed_cfg);
        let mut payloads = vec![runner.save().expect("checkpoint at window 0")];
        while let StepOutcome::WindowClosed { .. } = runner.step_window() {
            payloads.push(runner.save().expect("checkpoint at window boundary"));
        }
        assert_eq!(payloads.len(), baseline.windows.len() + 1);

        // "Crash" at every kill-point and resume from its checkpoint.
        for (kill_at, payload) in payloads.iter().enumerate() {
            let (rec_resumed, _ring_resumed) = Recorder::memory(200_000);
            let resumed_cfg = quick_config(rec_resumed.clone());
            let mut resumed = MissionRunner::resume(&scenario, &resumed_cfg, payload)
                .unwrap_or_else(|e| panic!("seed {seed} kill {kill_at}: resume failed: {e}"));
            assert_eq!(resumed.window_index(), kill_at);
            while let StepOutcome::WindowClosed { .. } = resumed.step_window() {}
            let report = resumed.finish();
            assert_eq!(
                report.digest, baseline.digest,
                "seed {seed}, killed after window {kill_at}: digest diverged"
            );
            assert_eq!(
                report.windows, baseline.windows,
                "seed {seed}, killed after window {kill_at}: utility trace diverged"
            );
            assert_eq!(
                rec_resumed.metrics_digest().fingerprint(),
                baseline_fp,
                "seed {seed}, killed after window {kill_at}: metrics fingerprint diverged"
            );
        }
    }
}

/// The same guarantee with the full reaction layer armed and a fault
/// campaign in flight: the checkpoint captures in-flight fault events,
/// detector suspicions, ladder level, and retransmit state.
#[test]
fn chaos_run_killed_mid_campaign_resumes_bit_identically() {
    let seed = 17;
    let scenario = chaos_scenario(seed);

    let (rec, _ring) = Recorder::memory(400_000);
    let baseline = run_mission(&scenario, &armed_chaos_config(rec.clone()));
    let baseline_fp = rec.metrics_digest().fingerprint();
    let res = baseline.digest.resilience;
    assert!(
        res.suspected > 0 || res.sheds > 0 || res.tasking.retries > 0,
        "campaign must actually exercise the reaction layer"
    );

    // Kill mid-campaign, while transient faults are still in the queue.
    let (rec_killed, _rk) = Recorder::memory(400_000);
    let mut runner = MissionRunner::new(&scenario, &armed_chaos_config(rec_killed));
    for _ in 0..5 {
        runner.step_window().window_stat().expect("campaign run has 12 windows");
    }
    let payload = runner.save().expect("checkpointable mid-campaign");
    drop(runner);

    let (rec_resumed, _rr) = Recorder::memory(400_000);
    let mut resumed =
        MissionRunner::resume(&scenario, &armed_chaos_config(rec_resumed.clone()), &payload)
            .expect("resume mid-campaign");
    while let StepOutcome::WindowClosed { .. } = resumed.step_window() {}
    let report = resumed.finish();
    assert_eq!(report.digest, baseline.digest);
    assert_eq!(report.windows, baseline.windows);
    assert_eq!(rec_resumed.metrics_digest().fingerprint(), baseline_fp);
}

/// The post-resume JSONL trace is byte-identical to the tail of the
/// uninterrupted run's trace: a resumed process appends exactly the
/// records the uninterrupted process would have written from that point.
#[test]
fn post_resume_jsonl_trace_is_the_exact_tail_of_the_uninterrupted_one() {
    let seed = 17;
    let scenario = persistent_surveillance(80, seed);

    let full = SharedBytes::new();
    let baseline = run_mission(
        &scenario,
        &quick_config(Recorder::jsonl(full.clone())),
    );
    let full_bytes = full.to_vec();
    assert!(!full_bytes.is_empty());

    let killed_sink = SharedBytes::new();
    let mut runner = MissionRunner::new(&scenario, &quick_config(Recorder::jsonl(killed_sink)));
    runner.step_window().window_stat().expect("window 0");
    runner.step_window().window_stat().expect("window 1");
    let payload = runner.save().expect("checkpointable");
    drop(runner); // the crash: its sink dies with it

    let tail_sink = SharedBytes::new();
    let resumed_cfg = quick_config(Recorder::jsonl(tail_sink.clone()));
    let mut resumed =
        MissionRunner::resume(&scenario, &resumed_cfg, &payload).expect("resume");
    while let StepOutcome::WindowClosed { .. } = resumed.step_window() {}
    let report = resumed.finish();
    assert_eq!(report.digest, baseline.digest);

    let tail_bytes = tail_sink.to_vec();
    assert!(!tail_bytes.is_empty(), "post-resume windows must trace");
    assert!(
        full_bytes.ends_with(&tail_bytes),
        "resumed JSONL must be the byte tail of the uninterrupted JSONL \
         (full {} bytes, tail {} bytes)",
        full_bytes.len(),
        tail_bytes.len()
    );
}

/// Corruption fuzz over a *real* mission checkpoint envelope: flipping
/// any single byte, truncating at any length, and appending trailing
/// garbage must each produce `Err` — never a panic, never a silent
/// acceptance.
#[test]
fn corrupted_checkpoint_envelopes_are_always_rejected() {
    let seed = 3;
    let scenario = persistent_surveillance(60, seed);
    let config = quick_config(Recorder::disabled());
    let mut runner = MissionRunner::new(&scenario, &config);
    runner.step_window().window_stat().expect("window 0");
    let payload = runner.save().expect("checkpointable");
    let file = encode_checkpoint(seed, 1, &payload);
    assert!(decode_checkpoint(&file).is_ok(), "pristine file must verify");

    // Flip every byte in turn.
    let mut mutated = file.clone();
    for i in 0..mutated.len() {
        mutated[i] ^= 0xA5;
        assert!(
            decode_checkpoint(&mutated).is_err(),
            "flip at byte {i} must be detected"
        );
        mutated[i] ^= 0xA5;
    }
    assert_eq!(mutated, file, "fuzz loop must restore the original");

    // Truncate at every length.
    for len in 0..file.len() {
        assert!(
            decode_checkpoint(&file[..len]).is_err(),
            "truncation to {len} bytes must be detected"
        );
    }

    // Trailing garbage.
    let mut padded = file.clone();
    padded.extend_from_slice(b"\x00\xff");
    assert!(decode_checkpoint(&padded).is_err());
}

/// The store-level contract end to end: a torn newest file is reported
/// and skipped, the previous good checkpoint loads, and the resumed run
/// still matches the uninterrupted digest.
#[test]
fn store_falls_back_past_a_torn_checkpoint_and_still_resumes_exactly() {
    let seed = 42;
    let scenario = persistent_surveillance(80, seed);
    let config = quick_config(Recorder::disabled());
    let baseline = run_mission(&scenario, &config);

    let dir = std::env::temp_dir().join(format!(
        "iobt-ckpt-integration-{}-{seed}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::open(&dir).expect("open store");

    let mut runner = MissionRunner::new(&scenario, &config);
    for w in 1..=3u64 {
        runner.step_window().window_stat().expect("window");
        let payload = runner.save().expect("checkpointable");
        store.save(seed, w, &payload).expect("write checkpoint");
    }
    drop(runner);

    // Tear the newest checkpoint mid-file, as a crash during a
    // non-atomic write would.
    let newest = store.path_for(3);
    let bytes = std::fs::read(&newest).expect("read newest");
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).expect("tear newest");

    let latest = store.load_latest_good(seed).expect("scan");
    assert_eq!(latest.skipped.len(), 1, "torn file must be reported");
    let (window, payload) = latest.loaded.expect("previous good checkpoint");
    assert_eq!(window, 2);

    let mut resumed =
        MissionRunner::resume(&scenario, &config, &payload).expect("resume from fallback");
    while let StepOutcome::WindowClosed { .. } = resumed.step_window() {}
    assert_eq!(resumed.finish().digest, baseline.digest);

    let _ = std::fs::remove_dir_all(&dir);
}
