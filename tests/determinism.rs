//! Integration: every public entry point is reproducible given the same
//! seeds — the property all experiment harnesses rely on.

use iobt::prelude::*;
use iobt::types::catalog::PopulationBuilder;

#[test]
fn populations_are_reproducible() {
    let b = PopulationBuilder::new(Rect::square(1_000.0)).count(300);
    assert_eq!(b.build(5), b.build(5));
}

#[test]
fn scenarios_are_reproducible() {
    for (a, b) in [
        (urban_evacuation(100, 3), urban_evacuation(100, 3)),
        (
            persistent_surveillance(100, 3),
            persistent_surveillance(100, 3),
        ),
        (disaster_relief(100, 3), disaster_relief(100, 3)),
    ] {
        assert_eq!(a.catalog, b.catalog);
        assert_eq!(a.mission, b.mission);
        assert_eq!(a.disruptions, b.disruptions);
    }
}

#[test]
fn missions_are_reproducible() {
    let scenario = urban_evacuation(120, 21);
    let cfg = RunConfig::builder()
        .duration(SimDuration::from_secs_f64(50.0))
        .build().expect("valid run config");
    let a = run_mission(&scenario, &cfg);
    let b = run_mission(&scenario, &cfg);
    assert_eq!(a.windows, b.windows);
    assert_eq!(a.repairs, b.repairs);
    assert_eq!(a.composition.selected, b.composition.selected);
    assert_eq!(
        a.assurance.success_probability,
        b.assurance.success_probability
    );
}

/// The f1 evacuation vignette run twice with the same seed must agree on
/// its *entire* end state — every event counter, every node's remaining
/// energy (bit-identical `f64`s), the utility trace, and the final
/// selection — not just the summary statistics the weaker test above
/// compares. This is the property that makes experiment results
/// replayable, and it is exactly what hash-ordered iteration or
/// wall-clock-driven budgets would silently break.
#[test]
fn f1_end_state_digest_is_identical_across_runs() {
    let scenario = urban_evacuation(120, 21);
    let cfg = RunConfig::builder()
        .duration(SimDuration::from_secs_f64(50.0))
        .build().expect("valid run config");
    let a = run_mission(&scenario, &cfg);
    let b = run_mission(&scenario, &cfg);

    // Digest is a plain PartialEq over every field; a single diverging
    // event count or energy bit fails the run.
    assert_eq!(a.digest, b.digest, "end-state digests must match exactly");

    // Sanity: the digest actually captured a non-trivial run.
    assert!(a.digest.sent > 0, "messages flowed");
    assert!(a.digest.delivered > 0, "messages arrived");
    assert_eq!(
        a.digest.node_energy_j.len(),
        scenario.catalog.len(),
        "every node's energy is fingerprinted"
    );
    assert!(
        a.digest.node_energy_j.windows(2).all(|w| w[0].0 < w[1].0),
        "energy entries are sorted by node id"
    );
    assert!(a.digest.mean_utility > 0.0);
    assert!(!a.digest.final_selection.is_empty());
    assert!(a.digest.energy_spent_j > 0.0);
}

#[test]
fn truth_discovery_is_reproducible() {
    let s = ScenarioBuilder::new(30, 80).build(4);
    let run = || {
        discover(&s.reports, s.num_sources, s.num_claims, EmConfig::default()).claim_posterior
    };
    assert_eq!(run(), run());
}

#[test]
fn federated_training_is_reproducible() {
    let d = logistic_dataset(600, 4, 5.0, 6);
    let (train, test) = d.examples.split_at(500);
    let ds = Dataset {
        examples: train.to_vec(),
        dim: 4,
        true_weights: d.true_weights.clone(),
    };
    let shards = partition(&ds, 6, 0.5, 7);
    let cfg = FederatedConfig {
        attack: Some(ByzantineAttack::GaussianNoise { std: 3.0 }),
        num_attackers: 2,
        aggregator: Aggregator::Median,
        rounds: 15,
        ..FederatedConfig::default()
    };
    let a = train_federated(4, &shards, test, &cfg);
    let b = train_federated(4, &shards, test, &cfg);
    assert_eq!(a.accuracy_per_round, b.accuracy_per_round);
}

#[test]
fn indexed_problem_construction_matches_scan_reference() {
    use iobt::synthesis::CompositionProblem;
    use iobt::types::prelude::*;

    for seed in 0..8u64 {
        let area = Rect::square(2_000.0);
        let catalog = PopulationBuilder::new(area).count(400).build(seed);
        let specs: Vec<NodeSpec> = catalog.iter().cloned().collect();
        let mission = Mission::builder(MissionId::new(1), MissionKind::Surveillance)
            .area(area)
            .require_modality(SensorKind::Visual)
            .require_modality(SensorKind::Acoustic)
            .coverage_fraction(0.9)
            .resilience(2)
            .min_trust(0.3)
            .build();
        for grid in [1usize, 7, 12] {
            assert_eq!(
                CompositionProblem::from_mission(&mission, &specs, grid),
                CompositionProblem::from_mission_scan(&mission, &specs, grid),
                "indexed and scan construction must agree (seed {seed}, grid {grid})"
            );
        }
    }
}

#[test]
fn portfolio_solver_is_reproducible() {
    use iobt::synthesis::{CompositionProblem, Solver};
    use iobt::types::prelude::*;

    let area = Rect::square(1_500.0);
    let catalog = PopulationBuilder::new(area).count(250).build(17);
    let specs: Vec<NodeSpec> = catalog.iter().cloned().collect();
    let mission = Mission::builder(MissionId::new(2), MissionKind::Surveillance)
        .area(area)
        .require_modality(SensorKind::Visual)
        .coverage_fraction(0.85)
        .min_trust(0.3)
        .build();
    let problem = CompositionProblem::from_mission(&mission, &specs, 10);
    let solver = Solver::Portfolio {
        iterations: 1_000,
        seed: 42,
    };
    let a = solver.solve(&problem);
    let b = solver.solve(&problem);
    // Same selection, cost, and coverage regardless of which portfolio
    // thread finished first.
    assert_eq!(a.selected, b.selected);
    assert_eq!(a.cost, b.cost);
    assert_eq!(a.coverage, b.coverage);
    assert_eq!(a.satisfied, b.satisfied);
}

#[test]
fn different_seeds_actually_differ() {
    let a = PopulationBuilder::new(Rect::square(1_000.0)).count(100).build(1);
    let b = PopulationBuilder::new(Rect::square(1_000.0)).count(100).build(2);
    assert_ne!(a, b, "seeding must matter");
}
