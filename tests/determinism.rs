//! Integration: every public entry point is reproducible given the same
//! seeds — the property all experiment harnesses rely on.

use iobt::core::prelude::*;
use iobt::learning::prelude::*;
use iobt::netsim::SimDuration;
use iobt::truth::prelude::*;
use iobt::types::catalog::PopulationBuilder;
use iobt::types::Rect;

#[test]
fn populations_are_reproducible() {
    let b = PopulationBuilder::new(Rect::square(1_000.0)).count(300);
    assert_eq!(b.build(5), b.build(5));
}

#[test]
fn scenarios_are_reproducible() {
    for (a, b) in [
        (urban_evacuation(100, 3), urban_evacuation(100, 3)),
        (
            persistent_surveillance(100, 3),
            persistent_surveillance(100, 3),
        ),
        (disaster_relief(100, 3), disaster_relief(100, 3)),
    ] {
        assert_eq!(a.catalog, b.catalog);
        assert_eq!(a.mission, b.mission);
        assert_eq!(a.disruptions, b.disruptions);
    }
}

#[test]
fn missions_are_reproducible() {
    let scenario = urban_evacuation(120, 21);
    let cfg = RunConfig {
        duration: SimDuration::from_secs_f64(50.0),
        ..RunConfig::default()
    };
    let a = run_mission(&scenario, &cfg);
    let b = run_mission(&scenario, &cfg);
    assert_eq!(a.windows, b.windows);
    assert_eq!(a.repairs, b.repairs);
    assert_eq!(a.composition.selected, b.composition.selected);
    assert_eq!(
        a.assurance.success_probability,
        b.assurance.success_probability
    );
}

#[test]
fn truth_discovery_is_reproducible() {
    let s = ScenarioBuilder::new(30, 80).build(4);
    let run = || {
        discover(&s.reports, s.num_sources, s.num_claims, EmConfig::default()).claim_posterior
    };
    assert_eq!(run(), run());
}

#[test]
fn federated_training_is_reproducible() {
    let d = logistic_dataset(600, 4, 5.0, 6);
    let (train, test) = d.examples.split_at(500);
    let ds = Dataset {
        examples: train.to_vec(),
        dim: 4,
        true_weights: d.true_weights.clone(),
    };
    let shards = partition(&ds, 6, 0.5, 7);
    let cfg = FederatedConfig {
        attack: Some(ByzantineAttack::GaussianNoise { std: 3.0 }),
        num_attackers: 2,
        aggregator: Aggregator::Median,
        rounds: 15,
        ..FederatedConfig::default()
    };
    let a = train_federated(4, &shards, test, &cfg);
    let b = train_federated(4, &shards, test, &cfg);
    assert_eq!(a.accuracy_per_round, b.accuracy_per_round);
}

#[test]
fn different_seeds_actually_differ() {
    let a = PopulationBuilder::new(Rect::square(1_000.0)).count(100).build(1);
    let b = PopulationBuilder::new(Rect::square(1_000.0)).count(100).build(2);
    assert_ne!(a, b, "seeding must matter");
}
