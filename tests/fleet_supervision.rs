//! Integration: fleet supervision. A panicking mission is quarantined
//! while every other mission finishes with its solo digest; injected
//! checkpoint-IO faults are retried to bit-identical completion;
//! exhausted retry budgets, blown slice deadlines, and a full admission
//! queue all surface as typed errors instead of hangs or crashes — the
//! ISSUE's "one bad mission never takes the fleet down" acceptance
//! gate.

use iobt::prelude::*;

/// Four-mission batch spanning all scenario families, small enough to
/// keep the chaos matrix fast but long enough (4 windows each) to
/// evict, retry, and quarantine mid-flight.
fn batch() -> Vec<Scenario> {
    vec![
        persistent_surveillance(40, 201),
        urban_evacuation(44, 202),
        disaster_relief(48, 203),
        persistent_surveillance(52, 204),
    ]
}

fn mission_config() -> RunConfig {
    RunConfig::builder()
        .duration(SimDuration::from_secs_f64(40.0))
        .window(SimDuration::from_secs_f64(10.0))
        .build()
        .expect("valid run config")
}

/// Solo ground truth: digest + metrics fingerprint per scenario, using
/// the same `Recorder::null()` the fleet attaches.
fn baselines() -> Vec<(EndStateDigest, u64)> {
    batch()
        .iter()
        .map(|scenario| {
            let recorder = Recorder::null();
            let cfg = RunConfig::builder()
                .duration(SimDuration::from_secs_f64(40.0))
                .window(SimDuration::from_secs_f64(10.0))
                .recorder(recorder.clone())
                .build()
                .expect("valid run config");
            let report = run_mission(scenario, &cfg);
            (
                report.digest.clone(),
                recorder.metrics_digest().fingerprint(),
            )
        })
        .collect()
}

fn temp_root(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("iobt-fleet-supervision-{}-{tag}", std::process::id()))
}

#[test]
fn injected_panic_quarantines_one_mission_and_spares_the_rest() {
    let baselines = baselines();
    let root = temp_root("panic");
    // Panic inside mission m-000002's slice at window 1: the worker
    // must catch the unwind, quarantine only that mission, and keep
    // slicing the other three to their solo digests.
    let mut fleet = FleetBuilder::new()
        .workers(2)
        .checkpoint_root(&root)
        .inject_panic(2, 1)
        .build()
        .expect("valid");
    let tickets: Vec<MissionTicket> = batch()
        .into_iter()
        .map(|s| fleet.submit(s, mission_config()).expect("admissible"))
        .collect();
    let summary = fleet.drain();
    assert_eq!(summary.submitted, 4);
    assert_eq!(summary.completed, 3);
    assert_eq!(summary.quarantined, 1);
    for (i, &t) in tickets.iter().enumerate() {
        if t.raw() == 2 {
            assert_eq!(fleet.poll(t), Some(MissionStatus::Quarantined));
            let err = fleet.error(t).expect("quarantined mission has an error");
            assert_eq!(err.kind, MissionErrorKind::Panic);
            assert!(!err.retryable, "a panic is never retryable");
            assert_eq!(err.attempts, 1);
            assert!(
                err.detail.contains("injected panic"),
                "panic payload is preserved in the detail: {}",
                err.detail
            );
            assert!(fleet.digest(t).is_none());
        } else {
            assert_eq!(fleet.poll(t), Some(MissionStatus::Done), "{t}");
            assert!(fleet.error(t).is_none(), "{t}");
            assert_eq!(
                fleet.digest(t),
                Some(&baselines[i].0),
                "{t}: surviving missions must match their solo digests"
            );
            assert_eq!(fleet.metrics_fingerprint(t), Some(baselines[i].1), "{t}");
        }
    }
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn checkpoint_io_faults_are_retried_to_digest_identical_completion() {
    let baselines = baselines();
    let root = temp_root("faults");
    // Evict after every slice so every mission round-trips the store
    // constantly, and fail roughly one in three of those operations
    // across all four fault domains. With a generous retry budget the
    // batch must still complete, and completion must be bit-identical:
    // faults may only cost slices, never change results.
    let store = FailingStore::new(DiskStore::new(&root), FaultProfile::uniform(7, 3));
    let mut fleet = FleetBuilder::new()
        .workers(2)
        .evict_every_slice(true)
        .checkpoint_root(&root)
        .store(store)
        .retry_limit(64)
        .retry_backoff(1, 2)
        .build()
        .expect("valid");
    let tickets: Vec<MissionTicket> = batch()
        .into_iter()
        .map(|s| fleet.submit(s, mission_config()).expect("admissible"))
        .collect();
    let summary = fleet.drain();
    assert_eq!(summary.completed, 4, "all missions survive injected faults");
    assert_eq!(summary.quarantined, 0);
    assert!(
        summary.retries > 0,
        "a 1-in-3 fault rate over forced eviction must actually trigger retries"
    );
    for (i, &t) in tickets.iter().enumerate() {
        assert_eq!(fleet.poll(t), Some(MissionStatus::Done), "{t}");
        assert_eq!(
            fleet.digest(t),
            Some(&baselines[i].0),
            "{t}: faults may cost slices but never change the digest"
        );
        assert_eq!(fleet.metrics_fingerprint(t), Some(baselines[i].1), "{t}");
    }
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn fault_retries_are_deterministic_across_runs() {
    // Same seed, same fault profile, same batch: two independent runs
    // must agree on every digest AND on the retry count — the fault
    // schedule is a pure function of (seed, domain, ticket, op).
    let run = || {
        let root = temp_root("repro");
        let _ = std::fs::remove_dir_all(&root);
        let store = FailingStore::new(DiskStore::new(&root), FaultProfile::uniform(11, 4));
        let mut fleet = FleetBuilder::new()
            .workers(1)
            .evict_every_slice(true)
            .checkpoint_root(&root)
            .store(store)
            .retry_limit(64)
            .build()
            .expect("valid");
        let tickets: Vec<MissionTicket> = batch()
            .into_iter()
            .map(|s| fleet.submit(s, mission_config()).expect("admissible"))
            .collect();
        let summary = fleet.drain();
        let digests: Vec<Option<EndStateDigest>> = tickets
            .iter()
            .map(|&t| fleet.digest(t).cloned())
            .collect();
        let _ = std::fs::remove_dir_all(root);
        (summary.retries, digests)
    };
    let (retries_a, digests_a) = run();
    let (retries_b, digests_b) = run();
    assert_eq!(retries_a, retries_b, "fault schedule is deterministic");
    assert_eq!(digests_a, digests_b);
}

#[test]
fn exhausted_retry_budget_quarantines_with_a_typed_error() {
    let root = temp_root("exhaust");
    // Every save fails: two attempts each, then quarantine. The typed
    // error must say what failed (checkpoint save), that the fault was
    // retryable, and how many attempts were burned.
    let store = FailingStore::new(
        DiskStore::new(&root),
        FaultProfile {
            seed: 1,
            write_error_one_in: 1,
            torn_write_one_in: 0,
            enospc_one_in: 0,
            read_error_one_in: 0,
        },
    );
    let mut fleet = FleetBuilder::new()
        .workers(2)
        .evict_every_slice(true)
        .checkpoint_root(&root)
        .store(store)
        .retry_limit(2)
        .build()
        .expect("valid");
    let tickets: Vec<MissionTicket> = batch()
        .into_iter()
        .map(|s| fleet.submit(s, mission_config()).expect("admissible"))
        .collect();
    let summary = fleet.drain();
    assert_eq!(summary.completed, 0);
    assert_eq!(summary.quarantined, 4, "no checkpoint ever lands, so every mission quarantines");
    for &t in &tickets {
        assert_eq!(fleet.poll(t), Some(MissionStatus::Quarantined), "{t}");
        let err = fleet.error(t).expect("typed error");
        assert_eq!(err.kind, MissionErrorKind::CheckpointSave, "{t}");
        assert!(err.retryable, "{t}: write errors are classified transient");
        assert_eq!(err.attempts, 2, "{t}: the configured budget was consumed");
    }
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn blown_slice_budget_quarantines_with_deadline_exceeded() {
    let root = temp_root("deadline");
    // Each mission needs 4 slices at quantum 1; a budget of 2 dooms all
    // of them — deterministically, at the same window every run.
    let mut fleet = FleetBuilder::new()
        .workers(2)
        .checkpoint_root(&root)
        .slice_budget(Some(2))
        .build()
        .expect("valid");
    let tickets: Vec<MissionTicket> = batch()
        .into_iter()
        .map(|s| fleet.submit(s, mission_config()).expect("admissible"))
        .collect();
    let summary = fleet.drain();
    assert_eq!(summary.quarantined, 4);
    for &t in &tickets {
        let err = fleet.error(t).expect("typed error");
        assert_eq!(err.kind, MissionErrorKind::DeadlineExceeded, "{t}");
        assert!(!err.retryable, "{t}: rerunning an over-budget mission cannot help");
        assert!(
            err.detail.contains("after 2 slices"),
            "{t}: detail names the budget: {}",
            err.detail
        );
    }
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn admission_bound_sheds_new_work_with_queue_full() {
    let root = temp_root("shed");
    let mut fleet = FleetBuilder::new()
        .workers(1)
        .checkpoint_root(&root)
        .max_queued(2)
        .build()
        .expect("valid");
    let scenarios = batch();
    fleet
        .submit(scenarios[0].clone(), mission_config())
        .expect("under the bound");
    fleet
        .submit(scenarios[1].clone(), mission_config())
        .expect("at the bound");
    let shed = fleet.submit(scenarios[2].clone(), mission_config());
    assert_eq!(shed, Err(SubmitError::QueueFull { queued: 2 }));
    // Draining the admitted pair re-opens admission.
    let summary = fleet.drain();
    assert_eq!(summary.completed, 2);
    fleet
        .submit(scenarios[2].clone(), mission_config())
        .expect("admission re-opens once the queue drains");
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn backoff_parking_stays_live_without_busy_waiting() {
    let baselines = baselines();
    let root = temp_root("liveness");
    // One worker, one mission, every-slice eviction, saves that fail
    // half the time, and a flat 8-slice backoff: whenever the only
    // mission is deferred there is NO ready work, so the scheduler must
    // fast-forward its slice clock and notify the parked worker rather
    // than spin or stall on the liveness backstop. The run must finish
    // promptly in wall-clock terms (seconds, not the minutes a stuck
    // 100ms-backstop loop would take) and still match the solo digest.
    let t0 = std::time::Instant::now(); // bounds test runtime only; no simulated result depends on it
    let store = FailingStore::new(
        DiskStore::new(&root),
        FaultProfile {
            seed: 5,
            write_error_one_in: 2,
            torn_write_one_in: 0,
            enospc_one_in: 0,
            read_error_one_in: 0,
        },
    );
    let mut fleet = FleetBuilder::new()
        .workers(1)
        .evict_every_slice(true)
        .checkpoint_root(&root)
        .store(store)
        .retry_limit(64)
        .retry_backoff(8, 8)
        .build()
        .expect("valid");
    let scenario = batch().remove(0);
    let t = fleet.submit(scenario, mission_config()).expect("admissible");
    let summary = fleet.drain();
    assert_eq!(summary.completed, 1);
    assert!(summary.retries > 0, "the fault profile must actually defer the mission");
    assert_eq!(fleet.digest(t), Some(&baselines[0].0));
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(30),
        "deferred-only queues must fast-forward, not stall: took {:?}",
        t0.elapsed()
    );
    let _ = std::fs::remove_dir_all(root);
}
