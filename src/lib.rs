//! Umbrella crate re-exporting the IoBT platform.
//!
//! See [`iobt_core`] for the runtime facade and the `crates/` directory for
//! the individual subsystems.
pub use iobt_adapt as adapt;
pub use iobt_core as core;
pub use iobt_discovery as discovery;
pub use iobt_learning as learning;
pub use iobt_netsim as netsim;
pub use iobt_synthesis as synthesis;
pub use iobt_tomography as tomography;
pub use iobt_truth as truth;
pub use iobt_types as types;
