//! Umbrella crate for the IoBT platform: one facade over discovery,
//! assured synthesis, adaptive execution, resilient learning, and the
//! battlefield network simulator, with deterministic observability
//! throughout.
//!
//! Most programs only need the [`prelude`]:
//!
//! ```no_run
//! use iobt::prelude::*;
//!
//! let scenario = persistent_surveillance(200, 42);
//! let (recorder, ring) = Recorder::memory(4096);
//! let config = RunConfig::builder()
//!     .recorder(recorder.clone())
//!     .build()
//!     .expect("valid run config");
//! let report = run_mission(&scenario, &config);
//! println!(
//!     "recruited {}, mean utility {:.2}, {} trace events",
//!     report.recruited,
//!     report.mean_utility(),
//!     ring.records().len()
//! );
//! ```
//!
//! The individual subsystems remain addressable by module for anything the
//! prelude does not cover: [`mod@core`] (mission runtime), [`fleet`]
//! (multi-tenant mission scheduling), [`bridge`] (edge streaming),
//! [`netsim`] (simulator), [`synthesis`], [`adapt`], [`discovery`],
//! [`truth`] (social sensing), [`learning`], [`tomography`], [`obs`]
//! (observability), and [`types`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use iobt_adapt as adapt;
pub use iobt_core as core;
pub use iobt_discovery as discovery;
pub use iobt_faults as faults;
pub use iobt_learning as learning;
pub use iobt_netsim as netsim;
pub use iobt_obs as obs;
pub use iobt_synthesis as synthesis;
pub use iobt_tomography as tomography;
pub use iobt_truth as truth;
pub use iobt_types as types;

pub use iobt_core::ckpt;
pub use iobt_core::{
    run_mission, EndStateDigest, MissionReport, MissionRunner, PortableRunConfig,
    ResilienceReport, RunConfig, RunConfigBuilder, RunConfigError, StepOutcome, WallClockReport,
    WindowStat,
};
pub use iobt_bridge as bridge;
pub use iobt_bridge::{
    Bridge, BridgeConfig, BridgeError, BridgeReport, ConnState, FaultyTransport, OverflowPolicy,
    TcpTransport, Transport, TransportError, TransportFaultProfile,
};
pub use iobt_fleet as fleet;
pub use iobt_fleet::{
    DiskStore, FailingStore, FaultProfile, Fleet, FleetBuilder, FleetConfigError, FleetSummary,
    MissionError, MissionErrorKind, MissionStatus, MissionTicket, RecoverError, Store, SubmitError,
};
pub use iobt_obs::Recorder;

/// Curated re-exports covering the whole pipeline.
///
/// Name collisions across subsystems are resolved in favour of the mission
/// pipeline: `Scenario` is the mission scenario
/// ([`iobt_core::scenario::Scenario`]); the social-sensing scenario from
/// [`iobt_truth`] stays at `iobt::truth::Scenario`.
pub mod prelude {
    // Mission runtime + scenarios (iobt-core).
    pub use iobt_core::{
        allocate_missions, calibrate_human_trust, diagnose_failures, disaster_relief,
        persistent_surveillance, run_mission, urban_evacuation, CalibrationSummary,
        DegradationLadder, DiagnosisReport, Disruption, EndStateDigest, FailureDetector,
        LadderStep, MissionAllocation, MissionReport, MissionRunner, NetworkModel,
        PortableRunConfig, ResilienceReport, RunConfig, RunConfigBuilder, RunConfigError,
        Scenario, StepOutcome, TaskingPlan, TaskingStats, WallClockReport, WindowStat,
        COMMAND_POST_ID, MAX_LADDER_LEVEL,
    };
    // Multi-tenant mission scheduling (iobt-fleet).
    pub use iobt_fleet::{
        DiskStore, FailingStore, FaultProfile, Fleet, FleetBuilder, FleetConfigError,
        FleetSummary, MissionError, MissionErrorKind, MissionStatus, MissionTicket, RecoverError,
        Store, SubmitError,
    };
    // Edge streaming bridge (iobt-bridge).
    pub use iobt_bridge::{
        memory_pair, Bridge, BridgeConfig, BridgeError, BridgeReport, ConnState, FaultyTransport,
        OverflowPolicy, TcpTransport, Transport, TransportError, TransportFaultProfile,
    };
    // Crash-safe checkpointing (iobt-ckpt).
    pub use iobt_core::ckpt::{
        write_checkpoint_atomic, CheckpointStore, CkptError, LatestGood,
    };
    // Deterministic fault injection (iobt-faults).
    pub use iobt_faults::{generate_campaign, CampaignConfig, FaultEvent, FaultKind, FaultPlan};
    // Observability (iobt-obs).
    pub use iobt_obs::{
        DropCause, Histogram, HistogramSnapshot, JsonlSink, MetricsDigest, NullSink, Recorder,
        RingHandle, RingSink, SamplingConfig, SharedBytes, Subsystem, TraceEvent, TraceRecord,
        TraceSink,
    };
    // Shared vocabulary types (iobt-types).
    pub use iobt_types::{
        ActuatorKind, Affiliation, CapabilityProfile, CommanderIntent, ComputeClass, EnergyBudget,
        Mission, MissionId, MissionKind, NodeCatalog, NodeId, NodeSpec, Point, Priority, Radio,
        RadioKind, Rect, Sensor, SensorKind, TaskId, TrustLedger, TrustScore,
    };
    // Network simulator (iobt-netsim).
    pub use iobt_netsim::{
        Behavior, Channel, ChurnProcess, Clutter, CompromiseSpec, ConnectivityGraph, Context,
        Jammer, LinkDegradation, Message, MobilityModel, NetStats, PartitionSpec, SimDuration,
        SimTime, Simulator, SimulatorBuilder, SleepSchedule, Summary, Terrain,
    };
    // Assured synthesis (iobt-synthesis).
    pub use iobt_synthesis::{
        assess, failure_probability, repair, repair_with, repair_with_timed, AssuranceReport,
        Candidate, CompositionProblem, CompositionResult, MemberOutcome, RepairResult, SolveStats,
        Solver, SolverBudget,
    };
    // Adaptive reflexes (iobt-adapt).
    pub use iobt_adapt::{
        hotspot_trace, simulate, simulate_observed, ActuationController, ActuationDecision,
        AllocationPolicy, AllocationRun, AuditEntry, Equilibrium, HumanAuthorization, IntentGame,
        InvariantMonitor, ModalitySwitcher, PiController, QueuePlant, StabilizationReport,
        Stabilizer, SwitchPolicy,
    };
    pub use iobt_adapt::estimation::{track, AlphaBetaFilter, FusionRule, TrackingRun};
    // Discovery + recruitment (iobt-discovery).
    pub use iobt_discovery::{
        recruit, AffiliationClassifier, DiscoveryTracker, EmissionModel, NaiveBayes,
        RecruitPolicy, RecruitmentPool, TrackerConfig,
    };
    // Social sensing / truth discovery (iobt-truth). `Scenario` stays out
    // of the prelude to avoid clashing with the mission scenario.
    pub use iobt_truth::{
        discover, majority_vote, rank_attention, weighted_vote, AttentionScore, EmConfig, Report,
        ScenarioBuilder, StreamingDiscoverer, TruthEstimate,
    };
    // Resilient learning (iobt-learning).
    pub use iobt_learning::{
        cost_aware_sgd, decentralized_sgd, logistic_dataset, partition, poison_labels,
        train_blind, train_contextual, train_federated, ActivationPolicy, Aggregator,
        ByzantineAttack, Dataset, FederatedConfig, FederatedRun, LogisticModel, MixingTopology,
        TaskStream,
    };
    // Network tomography (iobt-tomography).
    pub use iobt_tomography::{
        degree_placement, greedy_placement, localize_failures, random_placement, sample_metrics,
        InferenceResult, Localization, MeasurementSystem, Topology,
    };
}
