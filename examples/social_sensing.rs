//! Humans as sensors (paper §III-A / §V-A): recovering ground truth from
//! conflicting, partly adversarial eyewitness claims, then directing
//! scarce commander attention to the claims that deserve it.
//!
//! ```sh
//! cargo run --release --example social_sensing
//! ```

use iobt::prelude::*;

fn main() {
    // 80 civilian sources report on 150 binary claims ("street X blocked",
    // "shots heard near Y"); a quarter of the sources actively lie.
    let scenario = ScenarioBuilder::new(80, 150)
        .observe_prob(0.25)
        .adversarial_fraction(0.25)
        .honest_reliability(0.6, 0.95)
        .build(2026);
    println!(
        "{} sources ({} adversarial), {} claims, {} reports\n",
        scenario.num_sources,
        scenario.adversarial.iter().filter(|&&a| a).count(),
        scenario.num_claims,
        scenario.reports.len()
    );

    // Baselines vs the EM fact-finder.
    let majority = majority_vote(&scenario.reports, scenario.num_claims);
    let (weighted, _) = weighted_vote(&scenario.reports, scenario.num_sources, scenario.num_claims, 10);
    let estimate = discover(
        &scenario.reports,
        scenario.num_sources,
        scenario.num_claims,
        EmConfig::default(),
    );
    println!("claim accuracy:");
    println!("  majority vote : {:.3}", scenario.score_claims(&majority));
    println!("  weighted vote : {:.3}", scenario.score_claims(&weighted));
    println!(
        "  EM fact-finder: {:.3} ({} iterations, converged: {})",
        scenario.score_claims(&estimate.claim_values()),
        estimate.iterations,
        estimate.converged
    );

    // Bad-source identification.
    let suspected = estimate.suspected_sources(0.5);
    let truly_bad: Vec<usize> = scenario
        .adversarial
        .iter()
        .enumerate()
        .filter(|(_, &a)| a)
        .map(|(i, _)| i)
        .collect();
    let caught = truly_bad.iter().filter(|s| suspected.contains(s)).count();
    println!(
        "\nadversarial sources flagged: {caught}/{} (flagged {} total)",
        truly_bad.len(),
        suspected.len()
    );

    // Attention direction: confident anomalies first.
    let ranked = rank_attention(&estimate, &scenario.reports, 0.5);
    println!("\ntop 5 claims for commander attention:");
    for a in ranked.iter().take(5) {
        println!(
            "  claim {:>3}: P(true)={:.2} surprise={:.2} disagreement={:.2} score={:.2}",
            a.claim, a.posterior, a.surprise, a.disagreement, a.score
        );
    }
}
