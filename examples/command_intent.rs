//! Command by intent, end to end (paper §I, §IV-A, §VI): a commander
//! issues weighted objectives; autonomous agents self-organize through a
//! potential game; two concurrent missions compete for one asset pool; and
//! actuation stays behind the human-authority and occupancy interlocks.
//!
//! ```sh
//! cargo run --release --example command_intent
//! ```

use iobt::prelude::*;

fn main() {
    // 1. Intent decomposition: three objectives with weights 6/3/1; forty
    //    autonomous agents pick tasks selfishly and converge to a Nash
    //    staffing with no explicit coordination.
    println!("-- intent decomposition (potential game) --");
    let game = IntentGame::new(vec![6.0, 3.0, 1.0]);
    let eq = game.best_response(40, 1);
    println!(
        "40 agents converged in {} sweeps ({} moves); staffing per objective: {:?} (weights 6/3/1)",
        eq.sweeps,
        eq.moves,
        eq.task_loads(3)
    );
    assert!(game.is_nash(&eq.assignment));

    // 2. Two missions, one pool: the critical evacuation outranks routine
    //    surveillance for contested sensors.
    println!("\n-- multi-mission asset arbitration --");
    let pool = persistent_surveillance(300, 5).catalog;
    let specs: Vec<NodeSpec> = pool.iter().cloned().collect();
    let evacuation = Mission::builder(MissionId::new(1), MissionKind::Evacuation)
        .area(Rect::new(Point::new(0.0, 0.0), Point::new(1_500.0, 1_500.0)))
        .priority(Priority::Critical)
        .coverage_fraction(0.8)
        .min_trust(0.3)
        .build();
    let surveillance = Mission::builder(MissionId::new(2), MissionKind::Surveillance)
        .area(Rect::new(Point::new(500.0, 500.0), Point::new(2_500.0, 2_500.0)))
        .coverage_fraction(0.8)
        .min_trust(0.3)
        .build();
    let plan = allocate_missions(&specs, &[surveillance, evacuation], 6, Solver::Greedy);
    for a in &plan.allocations {
        println!(
            "  {} [{}]: {} assets, coverage {:.0}% (standalone would be {:.0}%)",
            a.mission.kind(),
            a.mission.priority(),
            a.granted.len(),
            a.composition.coverage * 100.0,
            a.standalone_coverage * 100.0
        );
    }
    println!(
        "  spare assets: {}, total contention cost: {:.3}",
        plan.spare,
        plan.contention_cost()
    );

    // 3. Safety: a demolition request near a damaged building — §VI's
    //    example — stays behind the human-authority and occupancy gates.
    println!("\n-- actuation interlocks (§VI) --");
    let (recorder, trace) = Recorder::memory(64);
    let mut safety = ActuationController::new(0.3, 60.0).with_recorder(recorder);
    let robot = NodeId::new(42);
    let show = |d: ActuationDecision| match d {
        ActuationDecision::Approved => "APPROVED",
        ActuationDecision::WithheldOccupied => "WITHHELD (zone occupied)",
        ActuationDecision::DeniedNoAuthorization => "DENIED (no human authorization)",
        ActuationDecision::DeniedDegraded => "DENIED (degraded: human required)",
    };
    let d = safety.request(robot, ActuatorKind::Demolition, 1, 10.0);
    println!("  t=10s  demolition, no authorization : {}", show(d));
    safety.grant(HumanAuthorization {
        authorizer: NodeId::new(1),
        actuator: ActuatorKind::Demolition,
        zone: 1,
        expires_at_s: 600.0,
    });
    safety.report_occupancy(1, 0.9, 20.0); // occupancy sensor trips
    let d = safety.request(robot, ActuatorKind::Demolition, 1, 25.0);
    println!("  t=25s  authorized but zone occupied : {}", show(d));
    let d = safety.request(robot, ActuatorKind::Demolition, 1, 300.0);
    println!("  t=300s occupancy decayed            : {}", show(d));
    println!(
        "  audit log holds {} entries, trace holds {} actuation events",
        safety.audit_log().len(),
        trace.records().len()
    );
}
