//! Quickstart: run one full IoBT mission — discovery, recruitment, assured
//! synthesis, and adaptive execution over the battlefield simulator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use iobt::prelude::*;

fn main() {
    // A persistent-surveillance operation over a 3 km sector with 250
    // mixed blue/red/gray nodes and a command post.
    let scenario = persistent_surveillance(250, 42);
    println!("intent   : {}", scenario.intent);
    println!("mission  : {}", scenario.mission);
    println!(
        "population: {} nodes ({:?} blue/red/gray)",
        scenario.catalog.len(),
        scenario.catalog.affiliation_counts()
    );

    let config = RunConfig::builder()
        .duration(SimDuration::from_secs_f64(120.0))
        .build().expect("valid run config");
    let report = run_mission(&scenario, &config);

    println!("\n--- mission report ---");
    println!("recruited          : {}", report.recruited);
    println!("rejected as red    : {}", report.rejected_red);
    println!(
        "red infiltration   : {:.1}% of admitted assets",
        report.infiltration_rate * 100.0
    );
    println!(
        "composition        : {} nodes, {:.0}% coverage, cost {:.1}",
        report.composition.selected.len(),
        report.composition.coverage * 100.0,
        report.composition.cost
    );
    println!(
        "assurance          : P(success under failures) = {:.3}",
        report.assurance.success_probability
    );
    println!("repairs performed  : {}", report.repairs);
    println!(
        "network            : {:.1}% delivered, mean latency {:.1} ms",
        report.delivery_ratio * 100.0,
        report.mean_latency_ms
    );
    println!("\nutility per 10 s window:");
    for w in &report.windows {
        let bar = "#".repeat((w.utility * 40.0) as usize);
        println!(
            "  t={:>5.0}s  {:>5.2}  {bar}",
            w.start_s, w.utility
        );
    }
}
