//! Chaos drill: a seeded fault campaign against the armed runtime.
//!
//! Generates a deterministic campaign (crashes, a recovering crash, a
//! region blackout, a partition, link degradation, a compromised relay)
//! from a single seed, runs the mission with the full reaction layer on
//! — heartbeat failure detection + early repair, the graceful-
//! degradation ladder, acked task dissemination — and prints the
//! utility trace, the reaction counters, and the digest fingerprint.
//!
//! ```sh
//! cargo run --release --example chaos
//! # Different campaign:
//! cargo run --release --example chaos -- --seed 1009
//! # Machine-readable one-liner (CI compares two runs for equality):
//! cargo run --release --example chaos -- --seed 17 --fingerprint
//! ```

use iobt::prelude::*;

const DURATION_S: f64 = 120.0;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let fingerprint_only = args.iter().any(|a| a == "--fingerprint");

    let mut scenario = persistent_surveillance(200, seed);
    let blue: Vec<NodeId> = scenario
        .catalog
        .with_affiliation(Affiliation::Blue)
        .iter()
        .map(|n| n.id())
        .collect();
    let campaign_cfg = CampaignConfig::light(
        SimDuration::from_secs_f64(DURATION_S),
        scenario.mission.area(),
    );
    scenario.fault_plan = generate_campaign(seed, &blue, &campaign_cfg);

    let (recorder, ring) = Recorder::memory(200_000);
    let config = RunConfig::builder()
        .duration(SimDuration::from_secs_f64(DURATION_S))
        .window(SimDuration::from_secs_f64(10.0))
        .early_repair(true)
        .degradation_ladder(true)
        .acked_tasking(true)
        .recorder(recorder.clone())
        .build();
    let report = run_mission(&scenario, &config);
    let metrics = recorder.metrics_digest();

    if fingerprint_only {
        // One stable line: everything a same-seed rerun must reproduce.
        println!(
            "seed={} digest={:?} metrics={}",
            seed,
            report.digest,
            metrics.fingerprint()
        );
        return;
    }

    println!(
        "chaos drill, seed {seed}: {} faults over {DURATION_S} s \
         (transients clear by t={:.0} s)\n",
        scenario.fault_plan.len(),
        scenario.fault_plan.transient_clear_time().as_secs_f64()
    );
    for ev in scenario.fault_plan.events() {
        println!("  t={:>5.1}s  {}", ev.at.as_secs_f64(), ev.kind.name());
    }
    println!("\n{:<8} utility", "window");
    for w in &report.windows {
        println!(
            "t={:>4.0}s  {:>5.2} {}",
            w.start_s,
            w.utility,
            "#".repeat((w.utility * 30.0) as usize)
        );
    }
    let res = report.digest.resilience;
    println!(
        "\nmean utility   : {:.2} (tail after faults clear: {:.2})",
        report.mean_utility(),
        report.utility_after(scenario.fault_plan.transient_clear_time().as_secs_f64())
    );
    println!(
        "detector       : {} suspected, {} early repairs ({} repairs total)",
        res.suspected, res.early_repairs, report.repairs
    );
    println!(
        "ladder         : {} sheds, {} restores, final level {}",
        res.sheds, res.restores, res.final_ladder_level
    );
    println!(
        "tasking        : {} assigned, {} acked, {} retries, {} abandoned",
        res.tasking.assigned, res.tasking.acked, res.tasking.retries, res.tasking.abandoned
    );
    println!(
        "integrity      : {} tampered messages, {} rejected at sinks",
        report.digest.tampered, res.tasking.tampered_rejected
    );
    println!(
        "trace          : {} events captured, metrics fingerprint {}",
        ring.records().len(),
        metrics.fingerprint()
    );
    println!(
        "\nRe-run with the same seed: the digest and fingerprint reproduce \
         bit-for-bit.\nThat is the point — chaos here is an experiment, not \
         an accident."
    );
}
