//! Chaos drill: a seeded fault campaign against the armed runtime.
//!
//! Generates a deterministic campaign (crashes, a recovering crash, a
//! region blackout, a partition, link degradation, a compromised relay)
//! from a single seed, runs the mission with the full reaction layer on
//! — heartbeat failure detection + early repair, the graceful-
//! degradation ladder, acked task dissemination — and prints the
//! utility trace, the reaction counters, and the digest fingerprint.
//!
//! ```sh
//! cargo run --release --example chaos
//! # Different campaign:
//! cargo run --release --example chaos -- --seed 1009
//! # Machine-readable one-liner (CI compares two runs for equality):
//! cargo run --release --example chaos -- --seed 17 --fingerprint
//! # Crash-safe run: checkpoint every window, die after window 5 (exit
//! # code 17), then rerun the same command line to resume from the last
//! # good checkpoint — the final fingerprint matches an uninterrupted run.
//! cargo run --release --example chaos -- --checkpoint-dir /tmp/ckpt --kill-at-window 5
//! cargo run --release --example chaos -- --checkpoint-dir /tmp/ckpt --fingerprint
//! ```

use iobt::prelude::*;

const DURATION_S: f64 = 120.0;

/// Exit code for the deliberate `--kill-at-window` crash, so scripts can
/// tell "died on purpose" from a real failure.
const KILL_EXIT_CODE: i32 = 17;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let seed: u64 = flag_value("--seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let fingerprint_only = args.iter().any(|a| a == "--fingerprint");
    let checkpoint_dir = flag_value("--checkpoint-dir");
    let kill_at_window: Option<usize> = flag_value("--kill-at-window").and_then(|s| s.parse().ok());

    let mut scenario = persistent_surveillance(200, seed);
    let blue: Vec<NodeId> = scenario
        .catalog
        .with_affiliation(Affiliation::Blue)
        .iter()
        .map(|n| n.id())
        .collect();
    let campaign_cfg = CampaignConfig::light(
        SimDuration::from_secs_f64(DURATION_S),
        scenario.mission.area(),
    );
    scenario.fault_plan = generate_campaign(seed, &blue, &campaign_cfg);

    let (recorder, ring) = Recorder::memory(200_000);
    let config = RunConfig::builder()
        .duration(SimDuration::from_secs_f64(DURATION_S))
        .window(SimDuration::from_secs_f64(10.0))
        .early_repair(true)
        .degradation_ladder(true)
        .acked_tasking(true)
        .recorder(recorder.clone())
        .build()
        .expect("valid run config");

    let store = checkpoint_dir
        .map(|dir| CheckpointStore::open(dir).expect("checkpoint directory must be creatable"));
    let mut runner = match &store {
        Some(store) => {
            let latest = store
                .load_latest_good(seed)
                .expect("checkpoint directory must be listable");
            for (path, err) in &latest.skipped {
                eprintln!("skipping corrupt checkpoint {}: {err}", path.display());
            }
            match latest.loaded {
                Some((window, payload)) => {
                    eprintln!("resuming from checkpoint at window {window}");
                    MissionRunner::resume(&scenario, &config, &payload)
                        .expect("verified checkpoint must resume")
                }
                None => MissionRunner::new(&scenario, &config),
            }
        }
        None => MissionRunner::new(&scenario, &config),
    };
    while let StepOutcome::WindowClosed { .. } = runner.step_window() {
        if let Some(store) = &store {
            let completed = runner.window_index();
            let payload = runner.save().expect("mission behaviours are checkpointable");
            store
                .save(seed, completed as u64, &payload)
                .expect("checkpoint write must succeed");
            if kill_at_window == Some(completed) {
                eprintln!("killed after window {completed} (simulated crash, exit {KILL_EXIT_CODE})");
                std::process::exit(KILL_EXIT_CODE);
            }
        }
    }
    let report = runner.finish();
    let metrics = recorder.metrics_digest();

    if fingerprint_only {
        // One stable line: everything a same-seed rerun must reproduce.
        println!(
            "seed={} digest={:?} metrics={}",
            seed,
            report.digest,
            metrics.fingerprint()
        );
        return;
    }

    println!(
        "chaos drill, seed {seed}: {} faults over {DURATION_S} s \
         (transients clear by t={:.0} s)\n",
        scenario.fault_plan.len(),
        scenario.fault_plan.transient_clear_time().as_secs_f64()
    );
    for ev in scenario.fault_plan.events() {
        println!("  t={:>5.1}s  {}", ev.at.as_secs_f64(), ev.kind.name());
    }
    println!("\n{:<8} utility", "window");
    for w in &report.windows {
        println!(
            "t={:>4.0}s  {:>5.2} {}",
            w.start_s,
            w.utility,
            "#".repeat((w.utility * 30.0) as usize)
        );
    }
    let res = report.digest.resilience;
    println!(
        "\nmean utility   : {:.2} (tail after faults clear: {:.2})",
        report.mean_utility(),
        report.utility_after(scenario.fault_plan.transient_clear_time().as_secs_f64())
    );
    println!(
        "detector       : {} suspected, {} early repairs ({} repairs total)",
        res.suspected, res.early_repairs, report.repairs
    );
    println!(
        "ladder         : {} sheds, {} restores, final level {}",
        res.sheds, res.restores, res.final_ladder_level
    );
    println!(
        "tasking        : {} assigned, {} acked, {} retries, {} abandoned",
        res.tasking.assigned, res.tasking.acked, res.tasking.retries, res.tasking.abandoned
    );
    println!(
        "integrity      : {} tampered messages, {} rejected at sinks",
        report.digest.tampered, res.tasking.tampered_rejected
    );
    println!(
        "trace          : {} events captured, metrics fingerprint {}",
        ring.records().len(),
        metrics.fingerprint()
    );
    println!(
        "\nRe-run with the same seed: the digest and fingerprint reproduce \
         bit-for-bit.\nThat is the point — chaos here is an experiment, not \
         an accident."
    );
}
