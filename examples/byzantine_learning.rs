//! Resilient distributed learning (paper §V-B): training across IoBT
//! nodes when some of them are compromised, comparing aggregation rules,
//! and fully decentralized gossip learning with no coordinator at all.
//!
//! ```sh
//! cargo run --release --example byzantine_learning
//! ```

use iobt::prelude::*;

fn main() {
    let d = logistic_dataset(2_000, 8, 5.0, 1);
    let (train, test) = d.examples.split_at(1_600);
    let ds = Dataset {
        examples: train.to_vec(),
        dim: 8,
        true_weights: d.true_weights.clone(),
    };
    let shards = partition(&ds, 12, 0.5, 2);

    println!("federated training: 12 workers, 3 compromised (sign-flip x10)\n");
    for agg in [
        Aggregator::Mean,
        Aggregator::Median,
        Aggregator::TrimmedMean { trim: 3 },
        Aggregator::Krum { f: 3 },
    ] {
        let run = train_federated(
            8,
            &shards,
            test,
            &FederatedConfig {
                aggregator: agg,
                attack: Some(ByzantineAttack::SignFlip { scale: 10.0 }),
                num_attackers: 3,
                rounds: 50,
                ..FederatedConfig::default()
            },
        );
        println!(
            "  {:<16} final accuracy {:.3}",
            agg.to_string(),
            run.final_accuracy()
        );
    }

    println!("\ndecentralized gossip SGD (no coordinator), ring vs random topology:");
    for (name, topology) in [
        ("ring", MixingTopology::Ring),
        ("random(deg 4)", MixingTopology::Random { degree: 4 }),
        ("complete", MixingTopology::Complete),
    ] {
        let run = decentralized_sgd(8, &shards, test, topology, 50, 0.5, 3);
        println!(
            "  {:<14} accuracy {:.3}, consensus error {:.4}, {} exchanges",
            name,
            run.final_accuracy(),
            run.consensus_per_round.last().unwrap(),
            run.messages
        );
    }

    println!("\ncontinual learning across 4 conflicting tasks:");
    let stream = TaskStream::generate(4, 800, 8, 4);
    let blind = train_blind(&stream, 0.3, 15);
    let contextual = train_contextual(&stream, 0.3, 15);
    println!(
        "  blind single model : mean final accuracy {:.3}, forgetting {:.3}",
        blind.mean_final_accuracy(),
        blind.mean_forgetting()
    );
    println!(
        "  context-keyed bank : mean final accuracy {:.3}, forgetting {:.3}",
        contextual.mean_final_accuracy(),
        contextual.mean_forgetting()
    );
}
