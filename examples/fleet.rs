//! Fleet service: submit a mixed batch of missions to the multi-tenant
//! scheduler, drain it across a worker pool with forced checkpoint
//! eviction, and read back per-mission results by ticket.
//!
//! ```sh
//! cargo run --release --example fleet
//! ```

use iobt::prelude::*;

fn main() {
    // A scheduler trace recorder captures admit/slice/evict/resume/
    // complete events; per-mission metrics stay on (the default) so each
    // mission's metrics fingerprint is available afterwards.
    let (trace, ring) = Recorder::memory(4096);
    let mut fleet = FleetBuilder::new()
        .workers(4)
        .evict_every_slice(true) // force every slice through disk
        .recorder(trace.clone())
        .build()
        .expect("valid fleet config");

    // Twelve independent missions across all three scenario families.
    let config = RunConfig::builder()
        .duration(SimDuration::from_secs_f64(60.0))
        .window(SimDuration::from_secs_f64(10.0))
        .build()
        .expect("valid run config");
    let mut tickets = Vec::new();
    for seed in 0..4u64 {
        for scenario in [
            persistent_surveillance(60, 100 + seed),
            urban_evacuation(50, 200 + seed),
            disaster_relief(55, 300 + seed),
        ] {
            let name = scenario.mission.to_string();
            let ticket = fleet
                .submit(scenario, config.clone())
                .expect("admissible mission");
            println!("submitted {ticket}  {name}");
            tickets.push(ticket);
        }
    }

    let summary = fleet.drain();
    println!("\n--- fleet summary ---");
    println!("completed  : {}/{}", summary.completed, summary.submitted);
    println!("slices     : {}", summary.slices);
    println!(
        "evictions  : {} (resumed {} times from disk)",
        summary.evictions, summary.resumes
    );
    println!(
        "slice p50  : {:.2} ms   p99: {:.2} ms   wall: {:.2} s",
        summary.p50_slice_ms, summary.p99_slice_ms, summary.wall_s
    );

    println!("\n--- per-mission results ---");
    for &t in &tickets {
        let status = fleet.poll(t).expect("fleet issued this ticket");
        let report = fleet.report(t).expect("completed mission has a report");
        let fp = fleet
            .metrics_fingerprint(t)
            .expect("mission metrics are on by default");
        println!(
            "{t}  {status:?}  utility {:.2}  repairs {:>2}  metrics fp {fp:016x}",
            report.mean_utility(),
            report.repairs
        );
    }

    let events = ring.records();
    println!("\nscheduler trace: {} events (first admissions below)", events.len());
    for r in events.iter().take(3) {
        println!("  {}", r.event.kind());
    }
}
