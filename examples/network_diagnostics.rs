//! System diagnostics without direct observation (paper §V-A): network
//! tomography over a contested mesh — placing monitors, inferring link
//! delays from end-to-end sums, and localizing failed links from path
//! reachability alone.
//!
//! ```sh
//! cargo run --release --example network_diagnostics
//! ```

use iobt::prelude::*;

fn main() {
    // A 35-node tactical mesh: random connected graph with redundancy.
    let net = Topology::random_connected(35, 20, 9);
    println!(
        "mesh: {} nodes, {} links\n",
        net.node_count(),
        net.edge_count()
    );

    // How many monitors buy how much visibility?
    println!("identifiable-link fraction by monitor budget (greedy placement):");
    for k in [3usize, 5, 8, 12] {
        let monitors = greedy_placement(&net, k);
        let system = MeasurementSystem::build(&net, &monitors);
        println!(
            "  {k:>2} monitors -> {:>5.1}% of links identifiable ({} paths, rank {})",
            system.identifiable_fraction() * 100.0,
            system.paths().len(),
            system.rank()
        );
    }

    // Infer link delays with 8 monitors.
    let monitors = greedy_placement(&net, 8);
    let system = MeasurementSystem::build(&net, &monitors);
    let truth = sample_metrics(&net, 2.0, 25.0, 5);
    let clean = system.infer(&truth, 0.0, 0);
    let noisy = system.infer(&truth, 0.5, 1);
    println!(
        "\ndelay inference with 8 monitors: RMSE on identifiable links = {:.4} ms clean, {:.4} ms with 0.5 ms measurement noise",
        clean.identifiable_rmse(),
        noisy.identifiable_rmse()
    );

    // Localize two simultaneous link failures.
    let failed = vec![3usize, 17];
    let all_nodes: Vec<usize> = (0..net.node_count()).collect();
    let loc = localize_failures(&net, &all_nodes, &failed);
    println!(
        "\nfailure localization (links {failed:?} cut):\n  inferred {:?}\n  precision {:.2}, recall {:.2}, exonerated {} healthy links",
        loc.inferred_failed,
        loc.precision(&failed),
        loc.recall(&failed),
        loc.exonerated.len()
    );
}
