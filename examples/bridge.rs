//! Edge bridge demo: a mission streaming its trace onto the topic
//! hierarchy while a TCP consumer prints what arrives, live.
//!
//! The default mode opens a real loopback TCP pair: a consumer thread
//! accepts the bridge's length-framed connection and prints each
//! frame's topic as it lands, then a per-topic rollup. `--faulty SEED`
//! swaps the socket for an in-memory transport wrapped in the
//! deterministic chaos profile (disconnects, stalls, torn frames,
//! duplicate deliveries) — the mode CI uses to check that two
//! same-seed runs behave identically even under fault injection.
//!
//! ```sh
//! cargo run --release --example bridge
//! # Chaos mode, machine-readable one-liner (CI diffs two runs):
//! cargo run --release --example bridge -- --faulty 17 --fingerprint
//! ```

use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::TcpListener;

use iobt::bridge::{
    memory_pair, read_framed, Bridge, BridgeConfig, FaultyTransport, TcpTransport,
    TransportFaultProfile,
};
use iobt::prelude::*;

const DURATION_S: f64 = 40.0;

/// Pulls the `"topic"` value out of a frame without a JSON parser —
/// frames put the topic first, so this is a fixed-prefix scan.
fn topic_of(frame: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(frame).ok()?;
    let rest = text.strip_prefix("{\"topic\":\"")?;
    Some(rest[..rest.find('"')?].to_owned())
}

fn run_mission_with_bridge(bridge: &Bridge, seed: u64) -> (MissionReport, u64) {
    let recorder = Recorder::with_sink(Box::new(bridge.sink()))
        .with_sampling(SamplingConfig::all(4));
    let config = RunConfig::builder()
        .duration(SimDuration::from_secs_f64(DURATION_S))
        .recorder(recorder.clone())
        .build()
        .expect("valid run config");
    let scenario = urban_evacuation(120, seed);
    let mut runner = MissionRunner::new(&scenario, &config);
    bridge.attach_board(runner.task_board());
    while let StepOutcome::WindowClosed { .. } = runner.step_window() {
        bridge.pump_n(8);
    }
    let report = runner.finish();
    let _ = bridge.drain(400);
    (report, recorder.metrics_digest().fingerprint())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let faulty_seed: Option<u64> = args
        .iter()
        .position(|a| a == "--faulty")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok());
    let fingerprint_only = args.iter().any(|a| a == "--fingerprint");
    let seed = faulty_seed.unwrap_or(42);

    let bridge_config = BridgeConfig {
        mission: seed,
        seed,
        ring_capacity: 256,
        backoff_base: 1,
        backoff_cap: 16,
        max_attempts: 6,
        heartbeat_every: 8,
        batch_per_tick: 64,
        ..BridgeConfig::default()
    };

    if let Some(chaos_seed) = faulty_seed {
        // Chaos mode: in-memory transport + deterministic fault
        // injection; everything is a pure function of the seed.
        let (mem, peer) = memory_pair();
        let transport = FaultyTransport::new(mem, TransportFaultProfile::chaos(chaos_seed));
        let bridge = Bridge::new(bridge_config, Box::new(transport));
        let (report, mission_fp) = run_mission_with_bridge(&bridge, seed);
        let b = report_line(&bridge);
        let mut topics: BTreeMap<String, u64> = BTreeMap::new();
        for frame in peer.take_frames() {
            if let Some(t) = topic_of(&frame) {
                *topics.entry(t).or_insert(0) += 1;
            }
        }
        if fingerprint_only {
            // FNV-1a over the digest's canonical encoding: one stable
            // word CI can diff across runs.
            let mut enc = iobt::core::ckpt::Enc::new();
            iobt::core::encode_end_state_digest(&mut enc, &report.digest);
            let digest_fp = enc
                .into_bytes()
                .iter()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01B3)
                });
            println!("fingerprint seed={chaos_seed} mission={mission_fp} digest={digest_fp} {b}");
            return;
        }
        println!("chaos mode (seed {chaos_seed}): {b}");
        println!("mission fingerprint: {mission_fp}");
        println!("topics observed by the consumer ({}):", topics.len());
        for (t, n) in &topics {
            println!("  {t:<44} {n}");
        }
        return;
    }

    // Live mode: a loopback TCP consumer prints topics as they arrive.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let consumer = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept bridge connection");
        let mut topics: BTreeMap<String, u64> = BTreeMap::new();
        let mut frames = 0u64;
        while let Ok(Some(frame)) = read_framed(&mut stream) {
            frames += 1;
            if let Some(t) = topic_of(&frame) {
                if frames <= 12 {
                    println!("  <- {t}");
                } else if frames == 13 {
                    println!("  <- … (printing rollup at the end)");
                }
                *topics.entry(t).or_insert(0) += 1;
            }
        }
        (frames, topics)
    });

    println!("bridge -> tcp://{addr}");
    let bridge = Bridge::new(bridge_config, Box::new(TcpTransport::new(addr.to_string())));
    let (report, mission_fp) = run_mission_with_bridge(&bridge, seed);
    println!("{}", report_line(&bridge));
    drop(bridge); // closes the TCP stream so the consumer sees EOF

    let (frames, topics) = consumer.join().expect("consumer thread");
    println!(
        "\nmission: {} windows, mean utility {:.2}, fingerprint {mission_fp}",
        report.windows.len(),
        report.mean_utility()
    );
    println!("consumer received {frames} frames across {} topics:", topics.len());
    let mut out = std::io::stdout().lock();
    for (t, n) in &topics {
        let _ = writeln!(out, "  {t:<44} {n}");
    }
}

fn report_line(bridge: &Bridge) -> String {
    let r = bridge.report();
    format!(
        "bridge: state={} emitted={} delivered={} dropped={} buffered={} \
         heartbeats={} connects={} retries={} accounted={}",
        r.state,
        r.emitted,
        r.delivered,
        r.dropped,
        r.buffered,
        r.heartbeats,
        r.connects,
        r.retries,
        r.accounted()
    )
}
