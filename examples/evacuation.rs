//! Non-combatant evacuation under jamming (the paper's §I vignette):
//! compares the adaptive runtime against a static plan when an RF jammer
//! switches on mid-mission near the evacuation corridor.
//!
//! ```sh
//! cargo run --release --example evacuation
//! ```

use iobt::core::prelude::*;
use iobt::netsim::{SimDuration, SimTime};

fn run(adaptive: bool) -> MissionReport {
    let mut scenario = urban_evacuation(220, 7);
    scenario.disruptions = vec![Disruption::JammerOn {
        at: SimTime::from_secs_f64(60.0),
        index: 0,
    }];
    let config = RunConfig {
        duration: SimDuration::from_secs_f64(180.0),
        adaptive,
        ..RunConfig::default()
    };
    run_mission(&scenario, &config)
}

fn main() {
    println!("urban evacuation, 220 nodes, jammer fires at t=60 s\n");
    let adaptive = run(true);
    let static_plan = run(false);

    println!("{:<8} {:^22} {:^22}", "window", "adaptive", "static plan");
    for (a, s) in adaptive.windows.iter().zip(&static_plan.windows) {
        let bar = |u: f64| "#".repeat((u * 18.0) as usize);
        println!(
            "t={:>4.0}s  {:>5.2} {:<18} {:>5.2} {:<18}",
            a.start_s,
            a.utility,
            bar(a.utility),
            s.utility,
            bar(s.utility),
        );
    }
    println!(
        "\nmean utility     : adaptive {:.2} vs static {:.2}",
        adaptive.mean_utility(),
        static_plan.mean_utility()
    );
    println!(
        "post-jam utility : adaptive {:.2} vs static {:.2}",
        adaptive.utility_after(60.0),
        static_plan.utility_after(60.0)
    );
    println!(
        "repairs          : adaptive {} vs static {}",
        adaptive.repairs, static_plan.repairs
    );
    println!(
        "\nThe adaptive runtime notices selected sensors going silent under \
         the jammer\nand re-covers their cells from spare assets outside the \
         jamming footprint."
    );
}
