//! Non-combatant evacuation under jamming (the paper's §I vignette):
//! compares the adaptive runtime against a static plan when an RF jammer
//! switches on mid-mission near the evacuation corridor.
//!
//! ```sh
//! cargo run --release --example evacuation
//! # Write the adaptive run's full JSONL trace for offline analysis:
//! cargo run --release --example evacuation -- --trace evacuation.jsonl
//! ```

use std::fs::File;
use std::io::BufWriter;

use iobt::prelude::*;

fn run(adaptive: bool, recorder: Recorder) -> MissionReport {
    let mut scenario = urban_evacuation(220, 7);
    scenario.disruptions = vec![Disruption::JammerOn {
        at: SimTime::from_secs_f64(60.0),
        index: 0,
    }];
    let config = RunConfig::builder()
        .duration(SimDuration::from_secs_f64(180.0))
        .adaptive(adaptive)
        .recorder(recorder)
        .build().expect("valid run config");
    run_mission(&scenario, &config)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1));
    let recorder = match trace_path {
        Some(path) => match File::create(path) {
            Ok(file) => Recorder::jsonl(BufWriter::new(file)),
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                std::process::exit(2);
            }
        },
        None => Recorder::disabled(),
    };

    println!("urban evacuation, 220 nodes, jammer fires at t=60 s\n");
    let adaptive = run(true, recorder.clone());
    let static_plan = run(false, Recorder::disabled());

    println!("{:<8} {:^22} {:^22}", "window", "adaptive", "static plan");
    for (a, s) in adaptive.windows.iter().zip(&static_plan.windows) {
        let bar = |u: f64| "#".repeat((u * 18.0) as usize);
        println!(
            "t={:>4.0}s  {:>5.2} {:<18} {:>5.2} {:<18}",
            a.start_s,
            a.utility,
            bar(a.utility),
            s.utility,
            bar(s.utility),
        );
    }
    println!(
        "\nmean utility     : adaptive {:.2} vs static {:.2}",
        adaptive.mean_utility(),
        static_plan.mean_utility()
    );
    println!(
        "post-jam utility : adaptive {:.2} vs static {:.2}",
        adaptive.utility_after(60.0),
        static_plan.utility_after(60.0)
    );
    println!(
        "repairs          : adaptive {} vs static {}",
        adaptive.repairs, static_plan.repairs
    );
    if let Some(path) = trace_path {
        recorder.flush();
        let digest = recorder.metrics_digest();
        println!(
            "\ntrace            : {} sends / {} deliveries traced -> {path} \
             (inspect with `iobt-trace --summary {path}`)",
            digest.counter("netsim.msg_sent").unwrap_or(0),
            digest.counter("netsim.msg_delivered").unwrap_or(0),
        );
    }
    println!(
        "\nThe adaptive runtime notices selected sensors going silent under \
         the jammer\nand re-covers their cells from spare assets outside the \
         jamming footprint."
    );
}
