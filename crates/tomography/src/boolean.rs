//! Boolean tomography: localizing failed links from path reachability
//! (ref \[21\], "node failure localization via network tomography").
//!
//! Monitors observe only whether each monitor-to-monitor path works. A
//! path fails iff it crosses at least one failed link. Localization first
//! exonerates every link on a working path, then greedily picks suspect
//! links that cover the most unexplained failed paths (minimum-hitting-set
//! heuristic).

use std::collections::HashSet;

use crate::topology::Topology;

/// Result of failure localization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Localization {
    /// Links inferred as failed, ascending.
    pub inferred_failed: Vec<usize>,
    /// Links proven good (on at least one working path), ascending.
    pub exonerated: Vec<usize>,
    /// Failed paths that could not be explained by any suspect link
    /// (indicates the failure set is outside the measurement's reach).
    pub unexplained_paths: usize,
}

impl Localization {
    /// Precision against a ground-truth failure set.
    pub fn precision(&self, truth: &[usize]) -> f64 {
        if self.inferred_failed.is_empty() {
            return if truth.is_empty() { 1.0 } else { 0.0 };
        }
        let truth: HashSet<usize> = truth.iter().copied().collect();
        let tp = self
            .inferred_failed
            .iter()
            .filter(|e| truth.contains(e))
            .count();
        tp as f64 / self.inferred_failed.len() as f64
    }

    /// Recall against a ground-truth failure set.
    pub fn recall(&self, truth: &[usize]) -> f64 {
        if truth.is_empty() {
            return 1.0;
        }
        let inferred: HashSet<usize> = self.inferred_failed.iter().copied().collect();
        let tp = truth.iter().filter(|e| inferred.contains(e)).count();
        tp as f64 / truth.len() as f64
    }
}

/// Simulates path observations for a ground-truth failure set and runs
/// localization.
///
/// Paths are the shortest monitor-pair paths of `topology` (computed on
/// the *healthy* topology — routing tables have not yet reacted, the common
/// assumption in boolean tomography).
///
/// # Panics
///
/// Panics when fewer than two distinct monitors are given, or when a
/// monitor or failed edge is out of range.
pub fn localize_failures(
    topology: &Topology,
    monitors: &[usize],
    failed_edges: &[usize],
) -> Localization {
    let mut unique: Vec<usize> = monitors.to_vec();
    unique.sort_unstable();
    unique.dedup();
    assert!(unique.len() >= 2, "need at least two monitors");
    for &m in &unique {
        assert!(m < topology.node_count(), "monitor out of range");
    }
    for &e in failed_edges {
        assert!(e < topology.edge_count(), "failed edge out of range");
    }
    let failed: HashSet<usize> = failed_edges.iter().copied().collect();

    // Collect paths and observe their health.
    let mut working_paths: Vec<Vec<usize>> = Vec::new();
    let mut failed_paths: Vec<Vec<usize>> = Vec::new();
    for i in 0..unique.len() {
        for j in (i + 1)..unique.len() {
            let Some(path) = topology.shortest_path_edges(unique[i], unique[j]) else {
                continue;
            };
            if path.iter().any(|e| failed.contains(e)) {
                failed_paths.push(path);
            } else {
                working_paths.push(path);
            }
        }
    }

    // Exoneration: every link on a working path is good.
    let mut exonerated: HashSet<usize> = HashSet::new();
    for p in &working_paths {
        exonerated.extend(p.iter().copied());
    }

    // Greedy hitting set over failed paths with non-exonerated candidates.
    let mut uncovered: Vec<&Vec<usize>> = failed_paths.iter().collect();
    let mut inferred: Vec<usize> = Vec::new();
    while !uncovered.is_empty() {
        // Count how many uncovered paths each candidate link would explain.
        let mut counts: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
        for p in &uncovered {
            for &e in p.iter() {
                if !exonerated.contains(&e) {
                    *counts.entry(e).or_insert(0) += 1;
                }
            }
        }
        // Pick the most-covering candidate; BTreeMap iteration makes ties
        // resolve to the smallest edge id.
        let Some((&best, &best_count)) = counts.iter().max_by_key(|(e, c)| (**c, std::cmp::Reverse(**e))) else {
            break; // remaining failures are unexplainable
        };
        if best_count == 0 {
            break;
        }
        inferred.push(best);
        uncovered.retain(|p| !p.contains(&best));
    }

    inferred.sort_unstable();
    let mut exonerated: Vec<usize> = exonerated.into_iter().collect();
    exonerated.sort_unstable();
    Localization {
        inferred_failed: inferred,
        exonerated,
        unexplained_paths: uncovered.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_failure_on_line_is_found_exactly() {
        let g = Topology::line(5);
        let loc = localize_failures(&g, &[0, 1, 2, 3, 4], &[2]);
        assert_eq!(loc.inferred_failed, vec![2]);
        assert_eq!(loc.precision(&[2]), 1.0);
        assert_eq!(loc.recall(&[2]), 1.0);
        assert_eq!(loc.unexplained_paths, 0);
    }

    #[test]
    fn no_failures_yields_empty_inference() {
        let g = Topology::grid(3, 3);
        let loc = localize_failures(&g, &[0, 2, 6, 8], &[]);
        assert!(loc.inferred_failed.is_empty());
        assert_eq!(loc.precision(&[]), 1.0);
        assert_eq!(loc.recall(&[]), 1.0);
    }

    #[test]
    fn end_monitors_cannot_disambiguate_on_a_line() {
        // Only monitors at the two ends: any single failure kills the one
        // path; greedy picks the smallest edge id, which may be wrong, but
        // recall over the *set* reflects ambiguity.
        let g = Topology::line(4);
        let loc = localize_failures(&g, &[0, 3], &[1]);
        assert_eq!(loc.inferred_failed.len(), 1, "one suspect explains all");
        assert_eq!(loc.unexplained_paths, 0);
        // Ambiguity: the suspect might not equal the truth.
        assert!(loc.exonerated.is_empty());
    }

    #[test]
    fn dense_monitors_improve_multi_failure_recall() {
        let g = Topology::grid(4, 4);
        let failures = vec![3, 11];
        let few = localize_failures(&g, &[0, 15], &failures);
        let all: Vec<usize> = (0..g.node_count()).collect();
        let many = localize_failures(&g, &all, &failures);
        assert!(many.recall(&failures) >= few.recall(&failures));
        assert!(many.recall(&failures) > 0.99);
        assert!(many.precision(&failures) > 0.99);
    }

    #[test]
    fn exonerated_links_are_never_inferred_failed() {
        let g = Topology::random_connected(25, 15, 7);
        let failures = vec![0, 5];
        let monitors: Vec<usize> = (0..25).step_by(3).collect();
        let loc = localize_failures(&g, &monitors, &failures);
        for e in &loc.inferred_failed {
            assert!(!loc.exonerated.contains(e));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_failed_edge() {
        let g = Topology::line(3);
        localize_failures(&g, &[0, 2], &[99]);
    }
}
