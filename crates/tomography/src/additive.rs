//! Additive-metric tomography: inferring per-link delays from end-to-end
//! path measurements between monitors (refs \[20\], \[22\]).
//!
//! Monitors measure the sum of link metrics along monitor-to-monitor
//! paths. The measurement matrix `R` has one row per monitor pair (the
//! path's edge-indicator vector); a link is *identifiable* iff its
//! indicator basis vector lies in the row space of `R`. Inference uses the
//! minimum-norm solution, which is exact on identifiable links.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

use crate::matrix::{min_norm_solution, Matrix, EPS};
use crate::topology::Topology;

/// The measurement system induced by a monitor placement.
#[derive(Debug, Clone)]
pub struct MeasurementSystem {
    matrix: Matrix,
    paths: Vec<(usize, usize)>,
    edge_count: usize,
}

impl MeasurementSystem {
    /// Builds the path matrix for all monitor pairs, using shortest-path
    /// routing. Monitor pairs in different components are skipped.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two distinct monitors are given or a monitor
    /// id is out of range.
    pub fn build(topology: &Topology, monitors: &[usize]) -> Self {
        let mut unique: Vec<usize> = monitors.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert!(unique.len() >= 2, "need at least two monitors");
        for &m in &unique {
            assert!(m < topology.node_count(), "monitor out of range");
        }
        let e = topology.edge_count();
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut paths = Vec::new();
        for i in 0..unique.len() {
            for j in (i + 1)..unique.len() {
                let Some(path) = topology.shortest_path_edges(unique[i], unique[j]) else {
                    continue;
                };
                let mut row = vec![0.0; e];
                for edge in path {
                    row[edge] = 1.0;
                }
                rows.push(row);
                paths.push((unique[i], unique[j]));
            }
        }
        let matrix = if rows.is_empty() {
            // No measurable paths: a zero matrix keeps the API total.
            Matrix::zeros(1, e.max(1))
        } else {
            Matrix::from_rows(&rows)
        };
        MeasurementSystem {
            matrix,
            paths,
            edge_count: e,
        }
    }

    /// The path measurement matrix (paths × edges).
    pub const fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Monitor pairs with a usable path, in build order.
    pub fn paths(&self) -> &[(usize, usize)] {
        &self.paths
    }

    /// Rank of the measurement matrix.
    pub fn rank(&self) -> usize {
        self.matrix.rank()
    }

    /// Which edges are identifiable (their metric is uniquely determined by
    /// the measurements).
    pub fn identifiable_edges(&self) -> Vec<bool> {
        (0..self.edge_count)
            .map(|e| {
                let mut basis = vec![0.0; self.edge_count];
                basis[e] = 1.0;
                self.matrix.row_space_contains(&basis)
            })
            .collect()
    }

    /// Fraction of edges that are identifiable.
    pub fn identifiable_fraction(&self) -> f64 {
        if self.edge_count == 0 {
            return 0.0;
        }
        let identifiable = self.identifiable_edges().iter().filter(|&&b| b).count();
        identifiable as f64 / self.edge_count as f64
    }

    /// Simulates measurements for ground-truth edge metrics and infers
    /// per-edge estimates via the minimum-norm solution.
    ///
    /// `noise_std` adds Gaussian noise to each path measurement
    /// (deterministic in `seed`).
    ///
    /// # Panics
    ///
    /// Panics when `true_metrics.len()` differs from the edge count.
    pub fn infer(&self, true_metrics: &[f64], noise_std: f64, seed: u64) -> InferenceResult {
        assert_eq!(
            true_metrics.len(),
            self.edge_count,
            "metric vector must cover every edge"
        );
        let mut y = self.matrix.mul_vec(true_metrics);
        if noise_std > 0.0 {
            let mut rng = StdRng::seed_from_u64(seed);
            // lint: allow(panic) — guarded by noise_std > 0.0, so the distribution parameters are valid
            let normal = Normal::new(0.0, noise_std).expect("finite std");
            for v in &mut y {
                *v += normal.sample(&mut rng);
            }
        }
        let estimate = min_norm_solution(&self.matrix, &y);
        InferenceResult {
            estimate,
            identifiable: self.identifiable_edges(),
            truth: true_metrics.to_vec(),
        }
    }
}

/// Outcome of additive inference.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceResult {
    /// Estimated metric per edge (minimum-norm).
    pub estimate: Vec<f64>,
    /// Identifiability flag per edge.
    pub identifiable: Vec<bool>,
    /// Ground truth used to simulate measurements.
    pub truth: Vec<f64>,
}

impl InferenceResult {
    /// RMSE over identifiable edges only (the ones theory says we can get
    /// right), or `0.0` when none are identifiable.
    pub fn identifiable_rmse(&self) -> f64 {
        let pairs: Vec<(f64, f64)> = self
            .estimate
            .iter()
            .zip(&self.truth)
            .zip(&self.identifiable)
            .filter(|(_, &id)| id)
            .map(|((e, t), _)| (*e, *t))
            .collect();
        if pairs.is_empty() {
            return 0.0;
        }
        let sq: f64 = pairs.iter().map(|(e, t)| (e - t) * (e - t)).sum();
        (sq / pairs.len() as f64).sqrt()
    }

    /// RMSE over all edges (unidentifiable ones included).
    pub fn total_rmse(&self) -> f64 {
        if self.estimate.is_empty() {
            return 0.0;
        }
        let sq: f64 = self
            .estimate
            .iter()
            .zip(&self.truth)
            .map(|(e, t)| (e - t) * (e - t))
            .sum();
        (sq / self.estimate.len() as f64).sqrt()
    }
}

/// Samples uniform ground-truth edge delays in `[lo, hi)` ms,
/// deterministic in `seed`.
pub fn sample_metrics(topology: &Topology, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..topology.edge_count())
        .map(|_| if hi > lo { rng.gen_range(lo..hi) } else { lo })
        .collect()
}

/// Returns `true` when every edge metric is exactly recovered
/// (noise-free case) up to tolerance — used in tests.
pub fn exact_on_identifiable(result: &InferenceResult) -> bool {
    result
        .estimate
        .iter()
        .zip(&result.truth)
        .zip(&result.identifiable)
        .filter(|(_, &id)| id)
        .all(|((e, t), _)| (e - t).abs() < 1e4 * EPS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_with_end_monitors_identifies_nothing_individually() {
        // Only the total of the line is measured: no single edge is
        // identifiable when there are 2+ edges.
        let g = Topology::line(4);
        let sys = MeasurementSystem::build(&g, &[0, 3]);
        assert_eq!(sys.rank(), 1);
        assert_eq!(sys.identifiable_fraction(), 0.0);
    }

    #[test]
    fn line_with_all_monitors_identifies_everything() {
        let g = Topology::line(4);
        let sys = MeasurementSystem::build(&g, &[0, 1, 2, 3]);
        assert_eq!(sys.identifiable_fraction(), 1.0);
        let truth = sample_metrics(&g, 1.0, 10.0, 1);
        let result = sys.infer(&truth, 0.0, 0);
        assert!(exact_on_identifiable(&result));
        assert!(result.identifiable_rmse() < 1e-5);
    }

    #[test]
    fn tree_with_leaf_monitors() {
        // Binary tree with monitors at all leaves: internal edges adjacent
        // to the root are covered by multiple paths; edges to leaves are
        // each the symmetric difference of paths. Classic result: all edges
        // identifiable except possibly those incident to degree-2 chains.
        let g = Topology::binary_tree(2);
        let sys = MeasurementSystem::build(&g, &g.leaves());
        let frac = sys.identifiable_fraction();
        assert!(frac > 0.0, "leaf monitors identify some edges: {frac}");
        let truth = sample_metrics(&g, 1.0, 5.0, 2);
        let result = sys.infer(&truth, 0.0, 0);
        assert!(exact_on_identifiable(&result));
    }

    #[test]
    fn more_monitors_never_reduce_identifiability() {
        let g = Topology::random_connected(20, 10, 3);
        let few = MeasurementSystem::build(&g, &[0, 1, 2]);
        let many = MeasurementSystem::build(&g, &[0, 1, 2, 5, 9, 13, 17]);
        assert!(many.identifiable_fraction() >= few.identifiable_fraction());
        assert!(many.rank() >= few.rank());
    }

    #[test]
    fn noise_degrades_but_does_not_destroy_estimates() {
        let g = Topology::grid(4, 3);
        let monitors: Vec<usize> = (0..g.node_count()).collect();
        let sys = MeasurementSystem::build(&g, &monitors);
        let truth = sample_metrics(&g, 5.0, 20.0, 4);
        let clean = sys.infer(&truth, 0.0, 0).identifiable_rmse();
        let noisy = sys.infer(&truth, 1.0, 0).identifiable_rmse();
        assert!(clean < 1e-5);
        assert!(noisy > clean);
        assert!(noisy < 10.0, "noise should not blow up: {noisy}");
    }

    #[test]
    #[should_panic(expected = "two monitors")]
    fn rejects_single_monitor() {
        let g = Topology::line(3);
        MeasurementSystem::build(&g, &[0, 0]);
    }

    #[test]
    fn disconnected_monitor_pairs_are_skipped() {
        let g = Topology::new(4, vec![(0, 1), (2, 3)]);
        let sys = MeasurementSystem::build(&g, &[0, 1, 2]);
        // Only the (0,1) pair has a path.
        assert_eq!(sys.paths(), &[(0, 1)]);
    }

    #[test]
    fn inference_result_metrics() {
        let g = Topology::line(3);
        let sys = MeasurementSystem::build(&g, &[0, 1, 2]);
        let result = sys.infer(&[2.0, 3.0], 0.0, 0);
        assert!(result.total_rmse() < 1e-5);
        assert!((result.estimate[0] - 2.0).abs() < 1e-5);
        assert!((result.estimate[1] - 3.0).abs() < 1e-5);
    }
}
