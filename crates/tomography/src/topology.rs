//! Network topologies for tomography experiments.
//!
//! A lightweight undirected multigraph-free graph with generators for the
//! topology families used in the tomography literature (refs \[19\]–\[22\]):
//! trees, grids, and random connected graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An undirected graph with `n` nodes and indexed edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    n: usize,
    edges: Vec<(usize, usize)>,
    adj: Vec<Vec<(usize, usize)>>, // (neighbor, edge index)
}

impl Topology {
    /// Creates a graph from an edge list.
    ///
    /// Self-loops and duplicate edges are rejected.
    ///
    /// # Panics
    ///
    /// Panics on `n == 0`, endpoints out of range, self-loops, or
    /// duplicate edges.
    pub fn new(n: usize, edges: Vec<(usize, usize)>) -> Self {
        assert!(n > 0, "graph must have nodes");
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &edges {
            assert!(a < n && b < n, "edge endpoint out of range");
            assert_ne!(a, b, "self-loops are not allowed");
            let key = (a.min(b), a.max(b));
            assert!(seen.insert(key), "duplicate edge {key:?}");
        }
        let mut adj = vec![Vec::new(); n];
        for (i, &(a, b)) in edges.iter().enumerate() {
            adj[a].push((b, i));
            adj[b].push((a, i));
        }
        Topology { n, edges, adj }
    }

    /// A path graph `0 - 1 - … - (n-1)`.
    pub fn line(n: usize) -> Self {
        let edges = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        Topology::new(n, edges)
    }

    /// A balanced binary tree with `depth` levels below the root
    /// (`2^(depth+1) - 1` nodes).
    pub fn binary_tree(depth: u32) -> Self {
        let n = (1usize << (depth + 1)) - 1;
        let mut edges = Vec::new();
        for child in 1..n {
            edges.push(((child - 1) / 2, child));
        }
        Topology::new(n, edges)
    }

    /// A `cols x rows` grid.
    pub fn grid(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "grid dims must be nonzero");
        let idx = |c: usize, r: usize| r * cols + c;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(c, r), idx(c + 1, r)));
                }
                if r + 1 < rows {
                    edges.push((idx(c, r), idx(c, r + 1)));
                }
            }
        }
        Topology::new(cols * rows, edges)
    }

    /// A connected random graph: a random spanning tree plus `extra_edges`
    /// random chords, deterministic in `seed`.
    pub fn random_connected(n: usize, extra_edges: usize, seed: u64) -> Self {
        assert!(n > 0, "graph must have nodes");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        let mut seen = std::collections::HashSet::new();
        // Random tree: attach each node to a random earlier node.
        for v in 1..n {
            let u = rng.gen_range(0..v);
            edges.push((u, v));
            seen.insert((u.min(v), u.max(v)));
        }
        let max_extra = n * (n - 1) / 2 - edges.len();
        let mut added = 0;
        let mut guard = 0;
        while added < extra_edges.min(max_extra) && guard < 100 * (extra_edges + 1) {
            guard += 1;
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if seen.insert(key) {
                edges.push(key);
                added += 1;
            }
        }
        Topology::new(n, edges)
    }

    /// Number of nodes.
    pub const fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The endpoints of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics when `e` is out of range.
    pub fn edge(&self, e: usize) -> (usize, usize) {
        self.edges[e]
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of range.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Nodes with degree 1.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.n).filter(|&v| self.degree(v) == 1).collect()
    }

    /// BFS shortest path from `src` to `dst` as a list of **edge indices**,
    /// or `None` when disconnected. Ties resolve toward smaller node ids
    /// (deterministic).
    pub fn shortest_path_edges(&self, src: usize, dst: usize) -> Option<Vec<usize>> {
        assert!(src < self.n && dst < self.n, "node out of range");
        if src == dst {
            return Some(Vec::new());
        }
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; self.n]; // (node, edge)
        let mut visited = vec![false; self.n];
        let mut queue = std::collections::VecDeque::new();
        visited[src] = true;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            if u == dst {
                break;
            }
            let mut neighbors = self.adj[u].clone();
            neighbors.sort();
            for (v, e) in neighbors {
                if !visited[v] {
                    visited[v] = true;
                    prev[v] = Some((u, e));
                    queue.push_back(v);
                }
            }
        }
        if !visited[dst] {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = dst;
        while cur != src {
            // lint: allow(panic) — BFS sets prev for every visited node except src, and cur != src here
            let (p, e) = prev[cur].expect("visited nodes have predecessors");
            path.push(e);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Whether the graph is connected.
    pub fn is_connected(&self) -> bool {
        let mut visited = vec![false; self.n];
        let mut stack = vec![0];
        visited[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &(v, _) in &self.adj[u] {
                if !visited[v] {
                    visited[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn line_structure() {
        let g = Topology::line(4);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.leaves(), vec![0, 3]);
        assert!(g.is_connected());
    }

    #[test]
    fn binary_tree_structure() {
        let g = Topology::binary_tree(2);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.leaves(), vec![3, 4, 5, 6]);
    }

    #[test]
    fn grid_structure() {
        let g = Topology::grid(3, 2);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 7); // 2*2 horizontal + 3 vertical
        assert!(g.is_connected());
    }

    #[test]
    fn shortest_path_on_line() {
        let g = Topology::line(5);
        let path = g.shortest_path_edges(0, 4).unwrap();
        assert_eq!(path, vec![0, 1, 2, 3]);
        assert_eq!(g.shortest_path_edges(2, 2), Some(vec![]));
    }

    #[test]
    fn disconnected_pairs_have_no_path() {
        let g = Topology::new(4, vec![(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        assert_eq!(g.shortest_path_edges(0, 3), None);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loops() {
        Topology::new(2, vec![(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_edges() {
        Topology::new(3, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn random_connected_is_connected_and_deterministic() {
        for seed in 0..5 {
            let g = Topology::random_connected(30, 15, seed);
            assert!(g.is_connected());
            assert_eq!(g.edge_count(), 29 + 15);
            assert_eq!(g, Topology::random_connected(30, 15, seed));
        }
    }

    proptest! {
        #[test]
        fn paths_connect_endpoints(n in 2usize..20, extra in 0usize..10, seed in 0u64..20) {
            let g = Topology::random_connected(n, extra, seed);
            let path = g.shortest_path_edges(0, n - 1).expect("connected");
            // Walk the path, verifying consecutive edges share nodes.
            let mut at = 0usize;
            for &e in &path {
                let (a, b) = g.edge(e);
                prop_assert!(at == a || at == b, "edge {e} not incident to {at}");
                at = if at == a { b } else { a };
            }
            prop_assert_eq!(at, n - 1);
        }
    }
}
