//! Monitor placement heuristics (ref \[20\], "monitor placement for maximal
//! identifiability").
//!
//! Three strategies of increasing cost: random, degree-ranked, and greedy
//! identifiability-maximizing. The greedy strategy is the reference; the
//! experiment `t4_tomography` compares how fast each drives the
//! identifiable-link fraction toward 1.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::additive::MeasurementSystem;
use crate::topology::Topology;

/// Picks `k` random monitors, deterministic in `seed`.
///
/// # Panics
///
/// Panics when `k < 2` or `k` exceeds the node count.
pub fn random_placement(topology: &Topology, k: usize, seed: u64) -> Vec<usize> {
    assert!(k >= 2, "need at least two monitors");
    assert!(k <= topology.node_count(), "more monitors than nodes");
    let mut nodes: Vec<usize> = (0..topology.node_count()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    nodes.shuffle(&mut rng);
    let mut picked: Vec<usize> = nodes.into_iter().take(k).collect();
    picked.sort_unstable();
    picked
}

/// Picks the `k` highest-degree nodes (ties by smaller id). High-degree
/// nodes sit on many shortest paths, which tends to grow the row space.
///
/// # Panics
///
/// Panics when `k < 2` or `k` exceeds the node count.
pub fn degree_placement(topology: &Topology, k: usize) -> Vec<usize> {
    assert!(k >= 2, "need at least two monitors");
    assert!(k <= topology.node_count(), "more monitors than nodes");
    let mut nodes: Vec<usize> = (0..topology.node_count()).collect();
    nodes.sort_by_key(|&v| (std::cmp::Reverse(topology.degree(v)), v));
    let mut picked: Vec<usize> = nodes.into_iter().take(k).collect();
    picked.sort_unstable();
    picked
}

/// Greedy identifiability-maximizing placement: starts from the two
/// highest-degree nodes and repeatedly adds the node that maximizes the
/// identifiable-link fraction (ties by smaller id).
///
/// Cost is `O(k · n · build)` — fine for the experiment sizes here.
///
/// # Panics
///
/// Panics when `k < 2` or `k` exceeds the node count.
pub fn greedy_placement(topology: &Topology, k: usize) -> Vec<usize> {
    assert!(k >= 2, "need at least two monitors");
    assert!(k <= topology.node_count(), "more monitors than nodes");
    let mut monitors = degree_placement(topology, 2);
    while monitors.len() < k {
        let mut best: Option<(usize, f64)> = None;
        for v in 0..topology.node_count() {
            if monitors.contains(&v) {
                continue;
            }
            let mut candidate = monitors.clone();
            candidate.push(v);
            let frac = MeasurementSystem::build(topology, &candidate).identifiable_fraction();
            let better = match best {
                None => true,
                Some((_, bf)) => frac > bf + 1e-12,
            };
            if better {
                best = Some((v, frac));
            }
        }
        // lint: allow(panic) — k is clamped to the node count, so an unchosen candidate always remains
        let (v, _) = best.expect("k <= node count leaves candidates");
        monitors.push(v);
        monitors.sort_unstable();
    }
    monitors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_placement_is_deterministic_and_sized() {
        let g = Topology::grid(4, 4);
        let a = random_placement(&g, 5, 1);
        let b = random_placement(&g, 5, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted unique");
    }

    #[test]
    fn degree_placement_prefers_hubs() {
        // Star-ish graph: node 0 connects to everyone.
        let edges: Vec<(usize, usize)> = (1..6).map(|v| (0, v)).collect();
        let g = Topology::new(6, edges);
        let picked = degree_placement(&g, 2);
        assert!(picked.contains(&0), "hub must be picked: {picked:?}");
    }

    #[test]
    fn greedy_beats_or_matches_random() {
        let g = Topology::random_connected(15, 8, 2);
        let k = 5;
        let greedy = greedy_placement(&g, k);
        let random = random_placement(&g, k, 3);
        let gf = MeasurementSystem::build(&g, &greedy).identifiable_fraction();
        let rf = MeasurementSystem::build(&g, &random).identifiable_fraction();
        assert!(gf >= rf - 1e-9, "greedy {gf} vs random {rf}");
    }

    #[test]
    fn full_placement_maximizes_identifiability_on_line() {
        let g = Topology::line(5);
        let all = greedy_placement(&g, 5);
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        assert_eq!(
            MeasurementSystem::build(&g, &all).identifiable_fraction(),
            1.0
        );
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_k_below_two() {
        random_placement(&Topology::line(3), 1, 0);
    }

    #[test]
    #[should_panic(expected = "more monitors than nodes")]
    fn rejects_oversized_k() {
        degree_placement(&Topology::line(3), 4);
    }
}
