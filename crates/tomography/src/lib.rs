//! Network tomography for IoBT system diagnostics (paper §V-A,
//! refs \[19\]–\[22\]).
//!
//! "Health … needs to be inferred (and damage, if any, assessed) without
//! direct component observation." This crate implements the two classic
//! tomography problems over simulated [topologies](topology):
//!
//! * [`additive`] — inferring per-link delays from end-to-end path sums,
//!   with exact [identifiability analysis](additive::MeasurementSystem::identifiable_edges)
//!   via row-space membership.
//! * [`boolean`] — localizing failed links from path reachability alone.
//!
//! [`placement`] provides monitor-placement heuristics, and [`matrix`] the
//! from-scratch linear algebra everything runs on.
//!
//! # Examples
//!
//! ```
//! use iobt_tomography::prelude::*;
//!
//! let net = Topology::grid(4, 3);
//! let monitors = greedy_placement(&net, 6);
//! let system = MeasurementSystem::build(&net, &monitors);
//! let truth = sample_metrics(&net, 1.0, 10.0, 42);
//! let result = system.infer(&truth, 0.0, 0);
//! assert!(result.identifiable_rmse() < 1e-5, "exact on identifiable links");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod additive;
pub mod boolean;
pub mod matrix;
pub mod placement;
pub mod topology;

pub use additive::{exact_on_identifiable, sample_metrics, InferenceResult, MeasurementSystem};
pub use boolean::{localize_failures, Localization};
pub use matrix::{min_norm_solution, solve, Matrix};
pub use placement::{degree_placement, greedy_placement, random_placement};
pub use topology::Topology;

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::{
        degree_placement, greedy_placement, localize_failures, random_placement, sample_metrics,
        InferenceResult, Localization, Matrix, MeasurementSystem, Topology,
    };
}
