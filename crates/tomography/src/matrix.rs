//! Minimal dense linear algebra for tomography: rank, row space
//! membership, and minimum-norm least-squares solutions.
//!
//! Implemented from scratch (Gaussian elimination with partial pivoting);
//! matrices here are small (≤ a few hundred paths × links), so dense
//! elimination is the right tool.

// Index loops mirror the usual linear-algebra notation (row r, column c);
// enumerate/zip chains obscure the elimination structure.
#![allow(clippy::needless_range_loop)]

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Numerical tolerance for treating a pivot as zero.
pub const EPS: f64 = 1e-9;

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be nonzero");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics when rows are empty or ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "need at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have equal length"
        );
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Number of rows.
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the row length differs from the column count.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row length must match columns");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// `A x` for a vector `x`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| {
                (0..self.cols)
                    .map(|c| self.get(r, c) * x[c])
                    .sum()
            })
            .collect()
    }

    /// `Aᵀ y` for a vector `y`.
    ///
    /// # Panics
    ///
    /// Panics when `y.len() != rows`.
    pub fn transpose_mul_vec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[c] += self.get(r, c) * y[r];
            }
        }
        out
    }

    /// Rank via Gaussian elimination with partial pivoting.
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        let mut rank = 0;
        let mut row = 0;
        for col in 0..m.cols {
            // Find pivot.
            let mut pivot = row;
            for r in row..m.rows {
                if m.get(r, col).abs() > m.get(pivot, col).abs() {
                    pivot = r;
                }
            }
            if row >= m.rows || m.get(pivot, col).abs() < EPS {
                continue;
            }
            m.swap_rows(row, pivot);
            let pv = m.get(row, col);
            for r in (row + 1)..m.rows {
                let factor = m.get(r, col) / pv;
                if factor != 0.0 {
                    for c in col..m.cols {
                        let v = m.get(r, c) - factor * m.get(row, c);
                        m.set(r, c, v);
                    }
                }
            }
            rank += 1;
            row += 1;
            if row == m.rows {
                break;
            }
        }
        rank
    }

    /// Whether the vector `v` lies in the row space of `self`:
    /// `rank([A; v]) == rank(A)`.
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != cols`.
    pub fn row_space_contains(&self, v: &[f64]) -> bool {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        let base = self.rank();
        let mut extended = self.clone();
        extended.push_row(v);
        extended.rank() == base
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data
                .swap(a * self.cols + c, b * self.cols + c);
        }
    }
}

/// Solves the square system `A x = b` by Gaussian elimination with partial
/// pivoting. Returns `None` for (numerically) singular systems.
///
/// # Panics
///
/// Panics when `a` is not square or `b.len() != a.rows()`.
pub fn solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.rows(), a.cols(), "solve requires a square matrix");
    assert_eq!(b.len(), a.rows(), "dimension mismatch");
    let n = a.rows();
    let mut m = a.clone();
    let mut rhs = b.to_vec();
    for col in 0..n {
        let mut pivot = col;
        for r in col..n {
            if m.get(r, col).abs() > m.get(pivot, col).abs() {
                pivot = r;
            }
        }
        if m.get(pivot, col).abs() < EPS {
            return None;
        }
        m.swap_rows(col, pivot);
        rhs.swap(col, pivot);
        let pv = m.get(col, col);
        for r in (col + 1)..n {
            let factor = m.get(r, col) / pv;
            if factor != 0.0 {
                for c in col..n {
                    let v = m.get(r, c) - factor * m.get(col, c);
                    m.set(r, c, v);
                }
                rhs[r] -= factor * rhs[col];
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let mut sum = rhs[r];
        for c in (r + 1)..n {
            sum -= m.get(r, c) * x[c];
        }
        x[r] = sum / m.get(r, r);
    }
    Some(x)
}

/// Minimum-norm solution of the (possibly underdetermined) consistent
/// system `A x = y`: `x = Aᵀ (A Aᵀ)⁺ y`, computed by regularizing
/// `A Aᵀ` with a tiny ridge so rank-deficient systems stay solvable.
///
/// For inconsistent `y` (noise), this returns the least-squares fit within
/// the row space — appropriate for tomographic inference.
///
/// # Panics
///
/// Panics when `y.len() != a.rows()`.
pub fn min_norm_solution(a: &Matrix, y: &[f64]) -> Vec<f64> {
    assert_eq!(y.len(), a.rows(), "dimension mismatch");
    let n = a.rows();
    // Gram matrix G = A Aᵀ + ridge I.
    let mut g = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let mut dot = 0.0;
            for c in 0..a.cols() {
                dot += a.get(i, c) * a.get(j, c);
            }
            g.set(i, j, dot + if i == j { 1e-9 } else { 0.0 });
        }
    }
    // lint: allow(panic) — the 1e-9 ridge term on the diagonal keeps the Gram matrix nonsingular
    let alpha = solve(&g, y).expect("ridge keeps the Gram matrix nonsingular");
    a.transpose_mul_vec(&alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rank_of_identity_and_dependent_rows() {
        let id = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(id.rank(), 2);
        let dep = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(dep.rank(), 1);
        let zero = Matrix::zeros(3, 3);
        assert_eq!(zero.rank(), 0);
    }

    #[test]
    fn row_space_membership() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0, 0.0], vec![0.0, 1.0, 1.0]]);
        assert!(a.row_space_contains(&[1.0, 2.0, 1.0])); // sum of rows
        assert!(a.row_space_contains(&[1.0, 0.0, -1.0])); // difference
        assert!(!a.row_space_contains(&[1.0, 0.0, 0.0]));
    }

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn solve_detects_singularity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(solve(&a, &[1.0, 2.0]), None);
    }

    #[test]
    fn min_norm_reproduces_measurements() {
        // Underdetermined: one equation, two unknowns.
        let a = Matrix::from_rows(&[vec![1.0, 1.0]]);
        let x = min_norm_solution(&a, &[4.0]);
        // Min-norm solution splits evenly.
        assert!((x[0] - 2.0).abs() < 1e-6);
        assert!((x[1] - 2.0).abs() < 1e-6);
        let y = a.mul_vec(&x);
        assert!((y[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn min_norm_handles_rank_deficient_gram() {
        // Duplicate measurements must not blow up.
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 0.0]]);
        let x = min_norm_solution(&a, &[3.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-5);
        assert!(x[1].abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn from_rows_rejects_ragged() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn mul_vec_and_transpose_mul_vec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
        assert_eq!(a.transpose_mul_vec(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    proptest! {
        #[test]
        fn solve_inverts_mul(coeffs in proptest::collection::vec(-10.0..10.0f64, 9),
                             x in proptest::collection::vec(-10.0..10.0f64, 3)) {
            let a = Matrix::from_rows(&[
                coeffs[0..3].to_vec(),
                coeffs[3..6].to_vec(),
                coeffs[6..9].to_vec(),
            ]);
            let b = a.mul_vec(&x);
            if let Some(sol) = solve(&a, &b) {
                let back = a.mul_vec(&sol);
                for (bi, yi) in back.iter().zip(&b) {
                    prop_assert!((bi - yi).abs() < 1e-5);
                }
            }
        }

        #[test]
        fn rank_bounded_by_dims(rows in 1usize..6, cols in 1usize..6, seed in 0u64..50) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let data: Vec<Vec<f64>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect())
                .collect();
            let m = Matrix::from_rows(&data);
            prop_assert!(m.rank() <= rows.min(cols));
        }
    }
}
