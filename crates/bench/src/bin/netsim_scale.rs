//! Battlefield-scale netsim throughput harness: events/sec and peak RSS
//! at 1k/10k/100k nodes.
//!
//! The workload is a static sensor field on a √n × √n grid (70 m
//! spacing, wifi mesh) with periodic multi-hop reports from every 7th
//! node to its 10×10-block cluster head, plus a seeded fail/recover
//! churn process — the regime the zero-copy message path, batched event
//! loop, dense routing tables, and incremental connectivity maintenance
//! are built for.
//!
//! ```sh
//! cargo run -p iobt-bench --release --bin netsim_scale -- --json
//! # CI determinism smoke (no timing in the output):
//! cargo run -p iobt-bench --release --bin netsim_scale -- --nodes 10000 --fingerprint
//! ```
//!
//! Wall-clock use here is reporting-only: it never feeds back into the
//! simulation, whose event stream is a pure function of the seed.

use std::time::Instant;

use iobt_netsim::prelude::*;
use iobt_types::prelude::*;

/// Grid spacing in meters (adjacent + diagonal wifi links exist, two-away
/// does not, so block traffic is genuinely multi-hop).
const SPACING_M: f64 = 70.0;
/// Simulated duration per size, seconds.
const SIM_SECONDS: f64 = 30.0;
/// Report period per sender, seconds.
const REPORT_PERIOD_S: f64 = 2.0;
/// Report payload size, bytes.
const REPORT_BYTES: usize = 64;

/// Periodic reporter: sends a fixed payload to a fixed sink forever.
struct Reporter {
    sink: NodeId,
}

impl Behavior for Reporter {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::from_secs_f64(REPORT_PERIOD_S), 0);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        ctx.send(self.sink, 1, vec![0u8; REPORT_BYTES]);
        ctx.set_timer(SimDuration::from_secs_f64(REPORT_PERIOD_S), 0);
    }
}

fn build_catalog(n: u64) -> NodeCatalog {
    let side = (n as f64).sqrt().ceil() as u64;
    let mut catalog = NodeCatalog::new();
    for i in 0..n {
        let (row, col) = (i / side, i % side);
        catalog
            .insert(
                NodeSpec::builder(NodeId::new(i))
                    .affiliation(Affiliation::Blue)
                    .position(Point::new(col as f64 * SPACING_M, row as f64 * SPACING_M))
                    .radio(Radio::new(RadioKind::Wifi))
                    .energy(EnergyBudget::new(50_000.0))
                    .build(),
            )
            .expect("fresh ids never collide");
    }
    catalog
}

/// Cluster head of the 10×10 block containing node `i`: the node at the
/// block's center cell (clamped to the grid).
fn block_head(i: u64, side: u64) -> u64 {
    let (row, col) = (i / side, i % side);
    let head_row = ((row / 10) * 10 + 5).min(side - 1);
    let head_col = ((col / 10) * 10 + 5).min(side - 1);
    head_row * side + head_col
}

struct SizeResult {
    nodes: u64,
    events: u64,
    wall_s: f64,
    sent: u64,
    delivered: u64,
    dropped: u64,
    peak_rss_mb: f64,
    fingerprint: u64,
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

fn run_size(n: u64, seed: u64) -> SizeResult {
    let side = (n as f64).sqrt().ceil() as u64;
    let extent = side as f64 * SPACING_M + 100.0;
    let catalog = build_catalog(n);
    let terrain = Terrain::uniform(
        Rect::new(Point::new(-50.0, -50.0), Point::new(extent, extent)),
        Clutter::Open,
    );
    let mut sim = Simulator::builder(catalog).terrain(terrain).seed(seed).build();

    // Every 7th node reports to its block head (multi-hop over the mesh).
    for i in (0..n).step_by(7) {
        let head = block_head(i, side);
        if head != i {
            sim.set_behavior(NodeId::new(i), Box::new(Reporter { sink: NodeId::new(head) }));
        }
    }

    // Seeded churn: ~1.5% of the fleet fails during the run, most recover.
    let ids: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    let churn = ChurnProcess::recovering(2_000.0, 10.0, seed);
    churn.schedule(&mut sim, &ids, SimTime::from_secs_f64(SIM_SECONDS));

    let start = Instant::now();
    sim.run_for(SimDuration::from_secs_f64(SIM_SECONDS));
    let wall_s = start.elapsed().as_secs_f64();

    let stats = sim.stats();
    let mut fp = 0xcbf2_9ce4_8422_2325u64;
    for v in [
        stats.sent,
        stats.delivered,
        stats.dropped,
        stats.dropped_no_route,
        stats.dropped_channel,
        stats.dropped_dead,
        stats.dropped_asleep,
        stats.hop_attempts,
        stats.retransmits,
        sim.events_processed(),
    ] {
        fnv1a(&mut fp, &v.to_le_bytes());
    }
    fnv1a(&mut fp, &stats.energy_spent_j.to_bits().to_le_bytes());
    fnv1a(&mut fp, &stats.latency_ms.mean().to_bits().to_le_bytes());
    for i in 0..n {
        let id = NodeId::new(i);
        fnv1a(&mut fp, &[u8::from(sim.is_alive(id))]);
        if let Some(e) = sim.energy(id) {
            fnv1a(&mut fp, &e.remaining_j().to_bits().to_le_bytes());
        }
    }

    SizeResult {
        nodes: n,
        events: sim.events_processed(),
        wall_s,
        sent: stats.sent,
        delivered: stats.delivered,
        dropped: stats.dropped,
        peak_rss_mb: peak_rss_mb(),
        fingerprint: fp,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let fingerprint_only = args.iter().any(|a| a == "--fingerprint");
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let sizes: Vec<u64> = args
        .iter()
        .position(|a| a == "--nodes")
        .and_then(|i| args.get(i + 1))
        .map(|s| {
            s.split(',')
                .filter_map(|p| p.trim().parse().ok())
                .collect()
        })
        .unwrap_or_else(|| vec![1_000, 10_000, 100_000]);

    let mut rows = Vec::new();
    for &n in &sizes {
        let r = run_size(n, seed);
        if fingerprint_only {
            println!(
                "nodes={} seed={} events={} sent={} delivered={} dropped={} fingerprint={:016x}",
                r.nodes, seed, r.events, r.sent, r.delivered, r.dropped, r.fingerprint
            );
        } else if !json {
            println!(
                "nodes={:>7} events={:>9} wall={:>8.2}s events/s={:>10.0} \
                 sent={} delivered={} dropped={} peak_rss={:.0}MB fp={:016x}",
                r.nodes,
                r.events,
                r.wall_s,
                r.events as f64 / r.wall_s.max(1e-9),
                r.sent,
                r.delivered,
                r.dropped,
                r.peak_rss_mb,
                r.fingerprint
            );
        }
        rows.push(r);
    }

    if json {
        let mut out = String::from("{\n  \"bench\": \"netsim_scale\",\n  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"nodes\": {}, \"sim_seconds\": {}, \"events\": {}, \"wall_s\": {:.3}, \
                 \"events_per_sec\": {:.1}, \"peak_rss_mb\": {:.1}, \"sent\": {}, \
                 \"delivered\": {}, \"dropped\": {}, \"fingerprint\": \"{:016x}\"}}{}\n",
                r.nodes,
                SIM_SECONDS,
                r.events,
                r.wall_s,
                r.events as f64 / r.wall_s.max(1e-9),
                r.peak_rss_mb,
                r.sent,
                r.delivered,
                r.dropped,
                r.fingerprint,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        print!("{out}");
    }
}
