//! Fleet-saturation harness: missions/sec, p99 slice latency, and peak
//! RSS with 1k/10k concurrent missions on one scheduler.
//!
//! Each mission is a small persistent-surveillance vignette (32 nodes,
//! 20 simulated seconds, two utility windows). Submitting thousands of
//! them at once drives the scheduler far past its per-worker residency
//! cap, so the run exercises the full admission → slice → checkpoint-
//! evict → resume → complete cycle under genuine memory pressure — the
//! regime the fleet exists for. Per-mission results stay a pure function
//! of each mission's seed, which is what `--fingerprint` checks.
//!
//! ```sh
//! cargo run -p iobt-bench --release --bin fleet_scale -- --json
//! # CI determinism smoke (no timing in the output):
//! cargo run -p iobt-bench --release --bin fleet_scale -- --missions 1000 --fingerprint
//! # Supervision smoke: injected checkpoint-IO faults, then a mid-drain
//! # kill (exit 17) and a manifest recovery whose fingerprint must match
//! # the clean run's:
//! cargo run -p iobt-bench --release --bin fleet_scale -- \
//!     --supervise --missions 64 --fail-one-in 5 --fingerprint
//! cargo run -p iobt-bench --release --bin fleet_scale -- \
//!     --supervise --missions 64 --durable --dir /tmp/d --halt-slices 40
//! cargo run -p iobt-bench --release --bin fleet_scale -- \
//!     --supervise --missions 64 --recover --dir /tmp/d --fingerprint
//! ```
//!
//! Wall-clock use here is reporting-only: it never feeds back into the
//! scheduler or any mission, whose results are pure functions of their
//! seeds.

use std::path::PathBuf;
use std::time::Instant;

use iobt_core::{persistent_surveillance, RunConfig, Scenario};
use iobt_fleet::{
    DiskStore, FailingStore, FaultProfile, Fleet, FleetBuilder, MissionStatus, MissionTicket,
};
use iobt_netsim::SimDuration;

/// Nodes per mission (small: the point is mission count, not field size).
const MISSION_NODES: usize = 32;
/// Simulated seconds per mission.
const MISSION_SECONDS: f64 = 20.0;
/// Utility-window seconds (two windows per mission).
const WINDOW_SECONDS: f64 = 10.0;

struct SizeResult {
    missions: usize,
    workers: usize,
    wall_s: f64,
    slices: u64,
    evictions: u64,
    resumes: u64,
    p50_slice_ms: f64,
    p99_slice_ms: f64,
    peak_rss_mb: f64,
    fingerprint: u64,
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

fn run_size(missions: usize, workers: usize, seed: u64) -> SizeResult {
    let root = std::env::temp_dir().join(format!(
        "iobt-fleet-scale-{}-{missions}",
        std::process::id()
    ));
    let mut fleet = FleetBuilder::new()
        .workers(workers)
        .checkpoint_root(&root)
        .build()
        .expect("bench fleet config is valid");

    let mut tickets = Vec::with_capacity(missions);
    for i in 0..missions {
        let scenario = persistent_surveillance(MISSION_NODES, seed.wrapping_add(i as u64));
        let cfg = RunConfig::builder()
            .duration(SimDuration::from_secs_f64(MISSION_SECONDS))
            .window(SimDuration::from_secs_f64(WINDOW_SECONDS))
            .build()
            .expect("bench run config is valid");
        tickets.push(fleet.submit(scenario, cfg).expect("admissible mission"));
    }

    let start = Instant::now();
    let summary = fleet.drain();
    let wall_s = start.elapsed().as_secs_f64();
    assert_eq!(
        summary.completed, missions,
        "every submitted mission must complete"
    );

    // Combined fingerprint over every mission's end state, in ticket
    // order: metrics fingerprint plus the digest's headline counters.
    let mut fp = 0xcbf2_9ce4_8422_2325u64;
    for &t in &tickets {
        let d = fleet.digest(t).expect("completed mission has a digest");
        let m = fleet
            .metrics_fingerprint(t)
            .expect("mission metrics are on by default");
        fnv1a(&mut fp, &m.to_le_bytes());
        for v in [d.sent, d.delivered, d.dropped] {
            fnv1a(&mut fp, &v.to_le_bytes());
        }
        fnv1a(&mut fp, &d.energy_spent_j.to_bits().to_le_bytes());
        fnv1a(&mut fp, &d.mean_utility.to_bits().to_le_bytes());
    }

    let _ = std::fs::remove_dir_all(&root);
    SizeResult {
        missions,
        workers,
        wall_s,
        slices: summary.slices,
        evictions: summary.evictions,
        resumes: summary.resumes,
        p50_slice_ms: summary.p50_slice_ms,
        p99_slice_ms: summary.p99_slice_ms,
        peak_rss_mb: peak_rss_mb(),
        fingerprint: fp,
    }
}

/// The mission list for a supervised run: pure function of
/// `(missions, seed)`, so the kill run and the recover run rebuild the
/// exact scenarios the manifest fingerprints expect.
fn supervised_batch(missions: usize, seed: u64) -> Vec<Scenario> {
    (0..missions)
        .map(|i| persistent_surveillance(MISSION_NODES, seed.wrapping_add(i as u64)))
        .collect()
}

/// Fingerprint over every completed mission's end state, ticket order.
fn combined_fingerprint(fleet: &Fleet, tickets: &[MissionTicket]) -> u64 {
    let mut fp = 0xcbf2_9ce4_8422_2325u64;
    for &t in tickets {
        let d = fleet.digest(t).expect("completed mission has a digest");
        let m = fleet
            .metrics_fingerprint(t)
            .expect("mission metrics are on by default");
        fnv1a(&mut fp, &m.to_le_bytes());
        for v in [d.sent, d.delivered, d.dropped] {
            fnv1a(&mut fp, &v.to_le_bytes());
        }
        fnv1a(&mut fp, &d.energy_spent_j.to_bits().to_le_bytes());
        fnv1a(&mut fp, &d.mean_utility.to_bits().to_le_bytes());
    }
    fp
}

/// Supervision smoke: run `missions` with optional injected
/// checkpoint-IO faults, a durable manifest, and a mid-drain kill; or
/// recover a previous kill's manifest and drain it to completion.
/// Exits 17 on a halted (killed) drain so the caller can assert the
/// crash actually happened; otherwise prints the combined fingerprint,
/// which must be identical across clean, faulty, and recovered runs.
#[allow(clippy::too_many_arguments)]
fn run_supervised(
    missions: usize,
    workers: usize,
    seed: u64,
    fail_one_in: u64,
    durable: bool,
    halt_slices: Option<u64>,
    dir: PathBuf,
    recover: bool,
) {
    let scenarios = supervised_batch(missions, seed);
    let (mut fleet, tickets) = if recover {
        let fleet = FleetBuilder::new()
            .workers(workers)
            .checkpoint_root(&dir)
            .recover(scenarios)
            .expect("manifest under --dir rebuilds the fleet");
        let tickets = fleet.tickets();
        (fleet, tickets)
    } else {
        let mut builder = FleetBuilder::new()
            .workers(workers)
            .evict_every_slice(true)
            .checkpoint_root(&dir)
            .durable_manifest(durable)
            .retry_limit(64);
        if fail_one_in > 0 {
            builder = builder.store(FailingStore::new(
                DiskStore::new(&dir),
                FaultProfile::uniform(seed ^ 0xf417, fail_one_in),
            ));
        }
        if let Some(halt) = halt_slices {
            builder = builder.halt_after_slices(halt);
        }
        let mut fleet = builder.build().expect("supervised fleet config is valid");
        let mut tickets = Vec::with_capacity(missions);
        for scenario in scenarios {
            let cfg = RunConfig::builder()
                .duration(SimDuration::from_secs_f64(MISSION_SECONDS))
                .window(SimDuration::from_secs_f64(WINDOW_SECONDS))
                .build()
                .expect("bench run config is valid");
            tickets.push(fleet.submit(scenario, cfg).expect("admissible mission"));
        }
        (fleet, tickets)
    };

    let summary = fleet.drain();
    if halt_slices.is_some() && summary.completed < missions {
        eprintln!(
            "halted mid-drain: completed={} of {} (slices={}, retries={}) — manifest left under {}",
            summary.completed,
            missions,
            summary.slices,
            summary.retries,
            dir.display()
        );
        std::process::exit(17);
    }
    // `summary.completed` counts only missions finished during THIS
    // drain; a recovered fleet may have restored some as already Done,
    // so the invariant is on terminal status, not the drain delta.
    let done = tickets
        .iter()
        .filter(|&&t| fleet.poll(t) == Some(MissionStatus::Done))
        .count();
    assert_eq!(
        done, missions,
        "every mission must end Done (quarantined={})",
        summary.quarantined
    );
    let fp = combined_fingerprint(&fleet, &tickets);
    println!(
        "supervise missions={} workers={} seed={} fail_one_in={} retries={} recovered={} fingerprint={:016x}",
        missions, workers, seed, fail_one_in, summary.retries, recover, fp
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json = args.iter().any(|a| a == "--json");
    let fingerprint_only = args.iter().any(|a| a == "--fingerprint");
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let workers: usize = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, usize::from));
    let sizes: Vec<usize> = args
        .iter()
        .position(|a| a == "--missions")
        .and_then(|i| args.get(i + 1))
        .map(|s| {
            s.split(',')
                .filter_map(|p| p.trim().parse().ok())
                .collect()
        })
        .unwrap_or_else(|| vec![1_000, 10_000]);

    if args.iter().any(|a| a == "--supervise") {
        // Supervision smoke mode: one size (default 64 — the point is
        // fault/crash coverage, not saturation).
        let missions = if args.iter().any(|a| a == "--missions") {
            sizes.first().copied().unwrap_or(64)
        } else {
            64
        };
        let fail_one_in: u64 = args
            .iter()
            .position(|a| a == "--fail-one-in")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let halt_slices: Option<u64> = args
            .iter()
            .position(|a| a == "--halt-slices")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok());
        let dir: PathBuf = args
            .iter()
            .position(|a| a == "--dir")
            .and_then(|i| args.get(i + 1))
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                std::env::temp_dir().join(format!("iobt-fleet-supervise-{}", std::process::id()))
            });
        run_supervised(
            missions,
            workers,
            seed,
            fail_one_in,
            args.iter().any(|a| a == "--durable"),
            halt_slices,
            dir,
            args.iter().any(|a| a == "--recover"),
        );
        return;
    }

    let mut rows = Vec::new();
    for &n in &sizes {
        let r = run_size(n, workers, seed);
        if fingerprint_only {
            // Eviction/resume counts reflect the actual schedule and vary
            // across multi-worker runs; the smoke output carries only the
            // schedule-independent facts (slice count at quantum 1 is the
            // total window count).
            println!(
                "missions={} workers={} seed={} slices={} fingerprint={:016x}",
                r.missions, r.workers, seed, r.slices, r.fingerprint
            );
        } else if !json {
            println!(
                "missions={:>6} workers={:>3} wall={:>7.2}s missions/s={:>8.1} \
                 slices={} evictions={} resumes={} p50_slice={:.2}ms p99_slice={:.2}ms \
                 peak_rss={:.0}MB fp={:016x}",
                r.missions,
                r.workers,
                r.wall_s,
                r.missions as f64 / r.wall_s.max(1e-9),
                r.slices,
                r.evictions,
                r.resumes,
                r.p50_slice_ms,
                r.p99_slice_ms,
                r.peak_rss_mb,
                r.fingerprint
            );
        }
        rows.push(r);
    }

    if json {
        let mut out = String::from("{\n  \"bench\": \"fleet_scale\",\n  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"missions\": {}, \"workers\": {}, \"mission_seconds\": {}, \
                 \"windows_per_mission\": 2, \"wall_s\": {:.3}, \"missions_per_sec\": {:.1}, \
                 \"slices\": {}, \"evictions\": {}, \"resumes\": {}, \"p50_slice_ms\": {:.3}, \
                 \"p99_slice_ms\": {:.3}, \"peak_rss_mb\": {:.1}, \"fingerprint\": \"{:016x}\"}}{}\n",
                r.missions,
                r.workers,
                MISSION_SECONDS,
                r.wall_s,
                r.missions as f64 / r.wall_s.max(1e-9),
                r.slices,
                r.evictions,
                r.resumes,
                r.p50_slice_ms,
                r.p99_slice_ms,
                r.peak_rss_mb,
                r.fingerprint,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        print!("{out}");
    }
}
