//! Shared helpers for the experiment harnesses: aligned table printing and
//! JSON result dumping (so `EXPERIMENTS.md` can be regenerated
//! mechanically from `target/experiments/*.json`).

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// A printable results table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment identifier (e.g. `f2_synthesis_scale`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of preformatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row/column mismatch");
        self.rows.push(cells);
    }

    /// Prints the table with aligned columns.
    pub fn print(&self) {
        println!("\n## {} — {}\n", self.id, self.title);
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("| {} |", header.join(" | "));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            println!("| {} |", cells.join(" | "));
        }
    }

    /// Prints the table and writes it as JSON under `target/experiments/`.
    pub fn finish(&self) {
        self.print();
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
        if fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("{}.json", self.id));
            if let Ok(json) = serde_json::to_string_pretty(self) {
                let _ = fs::write(&path, json);
                println!("\n[saved {}]", path.display());
            }
        }
    }
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Mean and population standard deviation of a sample.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

/// Formats `mean ± std`.
pub fn pm(xs: &[f64]) -> String {
    let (m, s) = mean_std(xs);
    format!("{m:.3} ± {s:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_must_match_columns() {
        let mut t = Table::new("x", "t", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn bad_row_panics() {
        let mut t = Table::new("x", "t", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn stats_helpers() {
        let (m, s) = mean_std(&[2.0, 4.0]);
        assert_eq!(m, 3.0);
        assert_eq!(s, 1.0);
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
        assert!(pm(&[1.0, 1.0]).starts_with("1.000"));
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }
}
