//! Experiment `f3_adaptation` (paper Fig. 3, §IV): adaptive, self-aware
//! behaviour — best-response convergence of intent decomposition, the
//! modality-switching reflex, and self-stabilization effort.
//!
//! Paper claims: agent-objective design makes battlefield interactions
//! "converge to an equilibrium in which the desired objectives are met"
//! (fast, without explicit coordination), and reflexes switch modalities
//! "when smoke or other phenomena render visual tracking unreliable".

use iobt_adapt::{
    track, FusionRule, IntentGame, InvariantMonitor, ModalitySwitcher, Stabilizer, SwitchPolicy,
};
use iobt_bench::{f3, pm, Table};
use iobt_types::SensorKind;

fn convergence_table() -> Table {
    let mut table = Table::new(
        "f3_adaptation_convergence",
        "Best-response convergence of intent decomposition vs fleet size",
        &["agents", "tasks", "sweeps", "moves", "nash"],
    );
    for &(agents, tasks) in &[(10usize, 3usize), (100, 5), (1_000, 8), (5_000, 10)] {
        let weights: Vec<f64> = (1..=tasks).map(|t| t as f64).collect();
        let game = IntentGame::new(weights);
        let mut sweeps = Vec::new();
        let mut moves = Vec::new();
        let mut all_nash = true;
        for seed in 0..5u64 {
            let eq = game.best_response(agents, seed);
            sweeps.push(eq.sweeps as f64);
            moves.push(eq.moves as f64);
            all_nash &= eq.converged && game.is_nash(&eq.assignment);
        }
        table.row(vec![
            agents.to_string(),
            tasks.to_string(),
            pm(&sweeps),
            pm(&moves),
            all_nash.to_string(),
        ]);
    }
    table
}

fn reflex_table() -> Table {
    let mut table = Table::new(
        "f3_adaptation_reflex",
        "Modality-switching reflex: smoke event at step 50 of 200",
        &["policy margin", "switched by step", "switches total", "final modality"],
    );
    for &margin in &[0.05, 0.15, 0.3] {
        let mut s = ModalitySwitcher::new(
            &[SensorKind::Visual, SensorKind::Seismic],
            SwitchPolicy {
                switch_margin: margin,
                ..SwitchPolicy::default()
            },
        );
        let mut switched_at: Option<usize> = None;
        for step in 0..200 {
            // Visual healthy until smoke at 50, then collapses; seismic
            // steady at 0.8 with small deterministic wobble.
            let visual = if step < 50 { 0.95 } else { 0.05 };
            let wobble = if step % 2 == 0 { 0.02 } else { -0.02 };
            s.observe(SensorKind::Visual, visual);
            s.observe(SensorKind::Seismic, 0.8 + wobble);
            if switched_at.is_none() && s.active() == Some(SensorKind::Seismic) {
                switched_at = Some(step);
            }
        }
        table.row(vec![
            f3(margin),
            switched_at.map_or("never".to_string(), |s| s.to_string()),
            s.switches().to_string(),
            s.active().map_or("none".to_string(), |k| k.to_string()),
        ]);
    }
    table
}

fn stabilization_table() -> Table {
    let mut table = Table::new(
        "f3_adaptation_stabilization",
        "Self-stabilization effort vs displacement from the invariant set",
        &["initial deficit", "rounds", "corrections", "stable"],
    );
    for &deficit in &[1i32, 10, 100, 1_000] {
        let stabilizer: Stabilizer<i32> = Stabilizer::new().monitor(InvariantMonitor::new(
            "replicas at target",
            |s: &i32| *s >= 0,
            |s: &mut i32| *s += 1,
        ));
        let mut state = -deficit;
        let report = stabilizer.stabilize(&mut state, 10_000);
        table.row(vec![
            deficit.to_string(),
            report.rounds.to_string(),
            report.corrections.to_string(),
            report.stable.to_string(),
        ]);
    }
    table
}

fn estimation_table() -> Table {
    let mut table = Table::new(
        "f3_resilient_estimation",
        "Tracking RMSE with contaminated sensors (9 sensors, bias 100 units)",
        &["compromised", "mean fusion rmse", "median fusion rmse"],
    );
    let truth: Vec<f64> = (0..200).map(|t| t as f64 * 2.0).collect();
    for &bad in &[0usize, 2, 4, 5] {
        let mean = track(&truth, 9, bad, 100.0, FusionRule::Mean);
        let median = track(&truth, 9, bad, 100.0, FusionRule::Median);
        table.row(vec![
            format!("{bad}/9"),
            f3(mean.rmse),
            f3(median.rmse),
        ]);
    }
    table
}

fn main() {
    convergence_table().finish();
    reflex_table().finish();
    stabilization_table().finish();
    estimation_table().finish();
    println!(
        "\nShape check: sweeps grow sublinearly with fleet size; wider hysteresis \
         margins delay (but do not prevent) the smoke-triggered switch; \
         stabilization effort is linear in the displacement; median-fusion \
         tracking is unmoved by any sensor minority and breaks exactly at \
         the 5/9 majority — the classic breakdown point."
    );
}
