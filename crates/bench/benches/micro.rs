//! Criterion microbenchmarks for the hot kernels of every subsystem.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use iobt_learning::{gossip_mix, krum, MixingTopology};
use iobt_netsim::{Channel, Clutter, Terrain};
use iobt_synthesis::{CompositionProblem, Solver};
use iobt_tomography::{MeasurementSystem, Topology};
use iobt_truth::{discover, EmConfig, ScenarioBuilder};
use iobt_types::catalog::PopulationBuilder;
use iobt_types::{
    Mission, MissionId, MissionKind, NodeSpec, Point, RadioKind, Rect, SensorKind,
};

fn bench_path_loss(c: &mut Criterion) {
    let channel = Channel::new(Terrain::random_urban(Rect::square(2_000.0), 20, 20, 1));
    let points: Vec<(Point, Point)> = (0..256)
        .map(|i| {
            (
                Point::new((i * 7 % 2_000) as f64, (i * 13 % 2_000) as f64),
                Point::new((i * 29 % 2_000) as f64, (i * 31 % 2_000) as f64),
            )
        })
        .collect();
    c.bench_function("channel/mean_delivery_probability_256_links", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(from, to) in &points {
                acc += channel.mean_delivery_probability(from, to, RadioKind::Wifi);
            }
            black_box(acc)
        })
    });
}

fn bench_graph_build(c: &mut Criterion) {
    use iobt_netsim::{ConnectivityGraph, GraphNode};
    let catalog = PopulationBuilder::new(Rect::square(2_000.0)).count(500).build(3);
    let nodes: Vec<GraphNode> = catalog
        .iter()
        .map(|n| GraphNode {
            id: n.id(),
            position: n.position(),
            radios: n.capabilities().radios().iter().map(|r| r.kind()).collect(),
            alive: true,
        })
        .collect();
    let channel = Channel::new(Terrain::uniform(Rect::square(2_000.0), Clutter::Suburban));
    c.bench_function("graph/build_500_nodes", |b| {
        b.iter(|| black_box(ConnectivityGraph::build(&nodes, &channel)))
    });
}

fn bench_truth_em(c: &mut Criterion) {
    let s = ScenarioBuilder::new(50, 200).observe_prob(0.3).build(1);
    c.bench_function("truth/em_50x200", |b| {
        b.iter(|| {
            black_box(discover(
                &s.reports,
                s.num_sources,
                s.num_claims,
                EmConfig::default(),
            ))
        })
    });
}

fn bench_krum(c: &mut Criterion) {
    let grads: Vec<Vec<f64>> = (0..30)
        .map(|i| (0..100).map(|j| ((i * j) % 17) as f64 * 0.1).collect())
        .collect();
    c.bench_function("learning/krum_30x100", |b| {
        b.iter(|| black_box(krum(&grads, 5).clone()))
    });
}

fn bench_gossip(c: &mut Criterion) {
    let values: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64; 32]).collect();
    let edges = MixingTopology::Random { degree: 4 }.edges(64, 0, 1);
    c.bench_function("learning/gossip_mix_64x32", |b| {
        b.iter_batched(
            || values.clone(),
            |mut v| {
                gossip_mix(&mut v, &edges);
                black_box(v)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_greedy_composition(c: &mut Criterion) {
    let catalog = PopulationBuilder::new(Rect::square(2_000.0)).count(1_000).build(5);
    let specs: Vec<NodeSpec> = catalog.iter().cloned().collect();
    let mission = Mission::builder(MissionId::new(1), MissionKind::Surveillance)
        .area(Rect::square(2_000.0))
        .require_modality(SensorKind::Visual)
        .coverage_fraction(0.9)
        .min_trust(0.3)
        .build();
    let problem = CompositionProblem::from_mission(&mission, &specs, 8);
    c.bench_function("synthesis/greedy_1000_candidates", |b| {
        b.iter(|| black_box(Solver::Greedy.solve(&problem)))
    });
}

fn bench_tomography_identifiability(c: &mut Criterion) {
    let g = Topology::random_connected(30, 20, 2);
    let monitors: Vec<usize> = (0..30).step_by(4).collect();
    c.bench_function("tomography/identifiability_30_nodes", |b| {
        b.iter(|| {
            let sys = MeasurementSystem::build(&g, &monitors);
            black_box(sys.identifiable_fraction())
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_path_loss,
        bench_graph_build,
        bench_truth_em,
        bench_krum,
        bench_gossip,
        bench_greedy_composition,
        bench_tomography_identifiability
);
criterion_main!(micro);
