//! Experiment `t3_assurance` (paper §III): validating the quantifiable
//! assurance calculus — predicted mission-success probability vs empirical
//! frequency under independent failure injection.
//!
//! Paper claim: aggregate properties of composites "must be formally
//! assured in an appropriately quantifiable and operationally relevant
//! manner, subject to well-understood assumptions". Here the assumption is
//! independent node failures; the prediction should match injection to
//! within Monte-Carlo error.

use iobt_bench::{f3, Table};
use iobt_core::prelude::*;
use iobt_synthesis::{assess, CompositionProblem, Solver};
use iobt_types::NodeSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut table = Table::new(
        "t3_assurance",
        "Predicted vs empirical mission success under node-failure injection",
        &[
            "failure prob",
            "redundancy k",
            "predicted success",
            "empirical success",
            "abs error",
            "expected coverage",
        ],
    );
    for &k in &[1usize, 2] {
        for &pf in &[0.05, 0.15, 0.3, 0.5] {
            let mut scenario = persistent_surveillance(400, 77);
            // Raise redundancy through the mission spec.
            scenario.mission = iobt_types::Mission::builder(
                scenario.mission.id(),
                scenario.mission.kind(),
            )
            .area(scenario.mission.area())
            .coverage_fraction(0.8)
            .resilience(k)
            .min_trust(0.3)
            .build();
            let specs: Vec<NodeSpec> = scenario.catalog.iter().cloned().collect();
            let mut problem = CompositionProblem::from_mission(&scenario.mission, &specs, 6);
            let result = Solver::Greedy.solve(&problem);
            // Success = retaining 90% of the coverage the composition
            // achieved at deployment (the mission's own target may be
            // infeasible for this population, which would make success
            // degenerately zero).
            problem.required_fraction = result.coverage * 0.9;
            let probs = vec![pf; result.selected.len()];
            let report = assess(&problem, &result.selected, &probs, 5_000, 11);
            // Independent empirical validation with a different seed and
            // an independently coded success check.
            let mut rng = StdRng::seed_from_u64(999);
            let trials = 5_000;
            let needed =
                (problem.required_fraction * problem.pair_count as f64).ceil() as usize;
            let mut successes = 0;
            for _ in 0..trials {
                let survivors: Vec<usize> = result
                    .selected
                    .iter()
                    .copied()
                    .filter(|_| rng.gen::<f64>() >= pf)
                    .collect();
                if problem.pairs_satisfied(&survivors) >= needed {
                    successes += 1;
                }
            }
            let empirical = successes as f64 / trials as f64;
            table.row(vec![
                f3(pf),
                k.to_string(),
                f3(report.success_probability),
                f3(empirical),
                f3((report.success_probability - empirical).abs()),
                f3(report.expected_coverage),
            ]);
        }
    }
    table.finish();
    println!(
        "\nShape check: predicted and empirical success agree to within \
         Monte-Carlo error (~0.02); success falls with failure probability; \
         sustaining k=2 redundancy is strictly harder to retain than k=1 \
         (losing either of a pair's two coverers already breaks it)."
    );
}
