//! Experiment `obs_overhead`: cost of the observability layer on the f1
//! evacuation vignette.
//!
//! Acceptance bound for the tracing subsystem: a metrics-only recorder
//! (`NullSink`) must stay within a few percent of a fully disabled
//! recorder, so observability can be left on in every experiment harness.

use std::time::Instant;

use iobt_bench::{f1, f3, Table};
use iobt_core::prelude::*;
use iobt_netsim::{SimDuration, SimTime};
use iobt_obs::{Recorder, SharedBytes};

fn scenario() -> Scenario {
    let mut s = urban_evacuation(200, 11);
    s.disruptions = vec![Disruption::JammerOn {
        at: SimTime::from_secs_f64(60.0),
        index: 0,
    }];
    s
}

fn run_with(scenario: &Scenario, recorder: Recorder) -> f64 {
    let config = RunConfig::builder()
        .duration(SimDuration::from_secs_f64(120.0))
        .recorder(recorder)
        .build().expect("valid run config");
    let t0 = Instant::now();
    let report = run_mission(scenario, &config);
    let ms = t0.elapsed().as_secs_f64() * 1_000.0;
    assert!(report.digest.delivered > 0);
    ms
}

fn main() {
    let s = scenario();
    let reps = 5usize;
    // Warm-up run so allocator/page-cache effects hit every mode equally.
    run_with(&s, Recorder::disabled());

    let mut table = Table::new(
        "obs_overhead",
        "f1 evacuation (200 nodes, 120 s): run time by recorder sink",
        &["sink", "mean ms", "min ms", "overhead vs disabled %"],
    );
    let modes: [(&str, fn() -> Recorder); 4] = [
        ("disabled", Recorder::disabled),
        ("null (metrics only)", Recorder::null),
        ("memory ring (64k)", || Recorder::memory(1 << 16).0),
        ("jsonl (in-memory writer)", || {
            Recorder::jsonl(SharedBytes::new())
        }),
    ];
    let mut baseline = f64::NAN;
    for (name, make) in modes {
        let times: Vec<f64> = (0..reps).map(|_| run_with(&s, make())).collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        if baseline.is_nan() {
            baseline = mean;
        }
        table.row(vec![
            name.to_string(),
            f1(mean),
            f1(min),
            f3((mean / baseline - 1.0) * 100.0),
        ]);
    }
    table.finish();
    println!(
        "\nShape check: the NullSink column should sit within ~5% of the \
         disabled baseline (one branch + counter bumps per event); the ring \
         adds record copies; JSONL adds serialization, still far below the \
         simulation's own cost."
    );
}
