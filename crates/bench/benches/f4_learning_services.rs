//! Experiment `f4_learning_services` (paper Fig. 4, §V): intelligent
//! battlefield services under adversarial pressure.
//!
//! Part A — social-sensing truth discovery: claim accuracy vs fraction of
//! adversarial sources, EM fact-finder vs weighted vote vs majority vote.
//! Paper claim: "analytics must deal with conflicting and deceptive data"
//! — the estimation-theoretic approach degrades gracefully where naive
//! voting collapses.
//!
//! Part B — Byzantine-resilient distributed learning: final accuracy vs
//! number of compromised workers for each aggregation rule under a
//! sign-flip attack. Paper claim: learning must "tolerate a wide array of
//! failures and adversarial compromises of learning nodes".

use iobt_bench::{pm, Table};
use iobt_learning::{
    logistic_dataset, partition, poison_labels, train_federated, Aggregator, ByzantineAttack,
    Dataset, FederatedConfig,
};
use iobt_truth::{discover, majority_vote, weighted_vote, EmConfig, ScenarioBuilder};

fn truth_table() -> Table {
    let mut table = Table::new(
        "f4_truth_discovery",
        "Claim accuracy vs adversarial source fraction (60 sources, 200 claims)",
        &["adversarial %", "EM", "weighted vote", "majority vote"],
    );
    for &adv in &[0.0, 0.1, 0.2, 0.3, 0.4] {
        let mut em_acc = Vec::new();
        let mut wv_acc = Vec::new();
        let mut mv_acc = Vec::new();
        for seed in 0..5u64 {
            let s = ScenarioBuilder::new(60, 200)
                .observe_prob(0.3)
                .adversarial_fraction(adv)
                .build(seed);
            let est = discover(&s.reports, s.num_sources, s.num_claims, EmConfig::default());
            em_acc.push(s.score_claims(&est.claim_values()));
            let (wv, _) = weighted_vote(&s.reports, s.num_sources, s.num_claims, 10);
            wv_acc.push(s.score_claims(&wv));
            mv_acc.push(s.score_claims(&majority_vote(&s.reports, s.num_claims)));
        }
        table.row(vec![
            format!("{:.0}", adv * 100.0),
            pm(&em_acc),
            pm(&wv_acc),
            pm(&mv_acc),
        ]);
    }
    table
}

fn byzantine_table() -> Table {
    let mut table = Table::new(
        "f4_byzantine_learning",
        "Federated accuracy vs #attackers of 12 workers (sign-flip x10)",
        &["attackers", "mean", "median", "trimmed(3)", "krum"],
    );
    let aggregators = [
        Aggregator::Mean,
        Aggregator::Median,
        Aggregator::TrimmedMean { trim: 3 },
        Aggregator::Krum { f: 3 },
    ];
    for &attackers in &[0usize, 1, 2, 3, 4] {
        let mut cells = vec![attackers.to_string()];
        for agg in aggregators {
            let mut accs = Vec::new();
            for seed in 0..3u64 {
                let d = logistic_dataset(1_500, 6, 5.0, seed);
                let (train, test) = d.examples.split_at(1_200);
                let ds = Dataset {
                    examples: train.to_vec(),
                    dim: 6,
                    true_weights: d.true_weights.clone(),
                };
                let shards = partition(&ds, 12, 0.3, seed + 100);
                let run = train_federated(
                    6,
                    &shards,
                    test,
                    &FederatedConfig {
                        aggregator: agg,
                        attack: (attackers > 0)
                            .then_some(ByzantineAttack::SignFlip { scale: 10.0 }),
                        num_attackers: attackers,
                        rounds: 40,
                        seed,
                        ..FederatedConfig::default()
                    },
                );
                accs.push(run.final_accuracy());
            }
            cells.push(pm(&accs));
        }
        table.row(cells);
    }
    table
}

fn collusion_table() -> Table {
    let mut table = Table::new(
        "f4_collusion_learning",
        "Stealthy collusion attack (z=1.5, 3 of 12 workers)",
        &["aggregator", "clean accuracy", "attacked accuracy", "degradation"],
    );
    for agg in [
        Aggregator::Mean,
        Aggregator::Median,
        Aggregator::TrimmedMean { trim: 3 },
        Aggregator::Krum { f: 3 },
    ] {
        let mut clean = Vec::new();
        let mut attacked = Vec::new();
        for seed in 0..3u64 {
            let d = logistic_dataset(1_500, 6, 5.0, seed + 50);
            let (train, test) = d.examples.split_at(1_200);
            let ds = Dataset {
                examples: train.to_vec(),
                dim: 6,
                true_weights: d.true_weights.clone(),
            };
            let shards = partition(&ds, 12, 0.3, seed + 150);
            let base = FederatedConfig {
                aggregator: agg,
                rounds: 40,
                seed,
                ..FederatedConfig::default()
            };
            clean.push(train_federated(6, &shards, test, &base).final_accuracy());
            attacked.push(
                train_federated(
                    6,
                    &shards,
                    test,
                    &FederatedConfig {
                        attack: Some(ByzantineAttack::Collusion { z: 1.5 }),
                        num_attackers: 3,
                        ..base
                    },
                )
                .final_accuracy(),
            );
        }
        let (cm, _) = iobt_bench::mean_std(&clean);
        let (am, _) = iobt_bench::mean_std(&attacked);
        table.row(vec![
            agg.to_string(),
            pm(&clean),
            pm(&attacked),
            format!("{:+.3}", am - cm),
        ]);
    }
    table
}

fn poisoning_table() -> Table {
    let mut table = Table::new(
        "f4_label_poisoning",
        "Data-layer attack: 4 of 12 workers train on label-flipped shards",
        &["flip prob", "mean", "median", "krum"],
    );
    for &flip in &[0.0, 0.5, 1.0] {
        let mut cells = vec![format!("{flip:.1}")];
        for agg in [Aggregator::Mean, Aggregator::Median, Aggregator::Krum { f: 4 }] {
            let mut accs = Vec::new();
            for seed in 0..3u64 {
                let d = logistic_dataset(1_500, 6, 5.0, seed + 200);
                let (train, test) = d.examples.split_at(1_200);
                let ds = Dataset {
                    examples: train.to_vec(),
                    dim: 6,
                    true_weights: d.true_weights.clone(),
                };
                let mut shards = partition(&ds, 12, 0.3, seed + 300);
                // Poison the LAST four shards: the compromised workers
                // compute honest gradients over corrupted data, so the
                // attack lives below the aggregation layer.
                for shard in shards.iter_mut().skip(8) {
                    poison_labels(shard, flip, seed + 400);
                }
                let run = train_federated(
                    6,
                    &shards,
                    test,
                    &FederatedConfig {
                        aggregator: agg,
                        rounds: 40,
                        seed,
                        ..FederatedConfig::default()
                    },
                );
                accs.push(run.final_accuracy());
            }
            cells.push(pm(&accs));
        }
        table.row(cells);
    }
    table
}

fn main() {
    truth_table().finish();
    byzantine_table().finish();
    collusion_table().finish();
    poisoning_table().finish();
    println!(
        "\nShape check: EM stays high while majority voting decays with the \
         adversarial fraction; mean aggregation collapses under sign-flip while \
         Krum/median/trimmed-mean hold; stealthy collusion degrades everyone \
         mildly (its design goal is evading robust aggregators); label \
         poisoning degrades gradually and robust aggregation only partially \
         helps — the attack lives below the aggregation layer."
    );
}
