//! Experiment `t4_tomography` (paper §V-A, refs \[19\]–\[22\]): inferring
//! network health without direct component observation.
//!
//! Part A — identifiable-link fraction vs number of monitors, per
//! placement strategy. Part B — failure-localization precision/recall vs
//! number of simultaneous failures.

use iobt_bench::{f3, pm, Table};
use iobt_tomography::{
    degree_placement, greedy_placement, localize_failures, random_placement, sample_metrics,
    MeasurementSystem, Topology,
};

fn identifiability_table() -> Table {
    let mut table = Table::new(
        "t4_identifiability",
        "Identifiable-link fraction vs #monitors (40-node random graphs)",
        &["monitors", "random", "degree", "greedy", "rmse on identifiable (greedy)"],
    );
    for &k in &[2usize, 4, 6, 8, 12] {
        let mut rand_frac = Vec::new();
        let mut deg_frac = Vec::new();
        let mut greedy_frac = Vec::new();
        let mut rmse = Vec::new();
        for seed in 0..3u64 {
            let g = Topology::random_connected(40, 25, seed);
            let rp = random_placement(&g, k, seed + 10);
            rand_frac.push(MeasurementSystem::build(&g, &rp).identifiable_fraction());
            let dp = degree_placement(&g, k);
            deg_frac.push(MeasurementSystem::build(&g, &dp).identifiable_fraction());
            let gp = greedy_placement(&g, k);
            let sys = MeasurementSystem::build(&g, &gp);
            greedy_frac.push(sys.identifiable_fraction());
            let truth = sample_metrics(&g, 1.0, 20.0, seed);
            rmse.push(sys.infer(&truth, 0.0, 0).identifiable_rmse());
        }
        table.row(vec![
            k.to_string(),
            pm(&rand_frac),
            pm(&deg_frac),
            pm(&greedy_frac),
            pm(&rmse),
        ]);
    }
    table
}

fn localization_table() -> Table {
    let mut table = Table::new(
        "t4_failure_localization",
        "Boolean failure localization on a 6x6 grid (monitors = all border nodes)",
        &["#failures", "precision", "recall", "unexplained paths"],
    );
    let g = Topology::grid(6, 6);
    let border: Vec<usize> = (0..36)
        .filter(|&v| {
            let (c, r) = (v % 6, v / 6);
            c == 0 || c == 5 || r == 0 || r == 5
        })
        .collect();
    for &fails in &[1usize, 2, 3, 5] {
        let mut precision = Vec::new();
        let mut recall = Vec::new();
        let mut unexplained = Vec::new();
        for seed in 0..5u64 {
            // Deterministic pseudo-random failure set.
            let failed: Vec<usize> = (0..fails)
                .map(|i| (seed as usize * 17 + i * 23) % g.edge_count())
                .collect();
            let mut failed_unique = failed.clone();
            failed_unique.sort_unstable();
            failed_unique.dedup();
            let loc = localize_failures(&g, &border, &failed_unique);
            precision.push(loc.precision(&failed_unique));
            recall.push(loc.recall(&failed_unique));
            unexplained.push(loc.unexplained_paths as f64);
        }
        table.row(vec![
            fails.to_string(),
            pm(&precision),
            pm(&recall),
            f3(unexplained.iter().sum::<f64>() / unexplained.len() as f64),
        ]);
    }
    table
}

fn main() {
    identifiability_table().finish();
    localization_table().finish();
    println!(
        "\nShape check: identifiability grows monotonically with monitor \
         count and greedy ≥ degree ≥ random; localization precision/recall \
         degrade gracefully as simultaneous failures increase."
    );
}
