//! Experiment `t2_composition_solvers` (paper §III-B, scalability):
//! solver ablation across the three motivating scenario classes, plus an
//! optimality check against exhaustive search on small instances.

use iobt_bench::{f1, f3, Table};
use iobt_core::prelude::*;
use iobt_synthesis::{CompositionProblem, Solver};
use iobt_types::NodeSpec;

fn scenario_problem(name: &str, seed: u64) -> (String, CompositionProblem) {
    // The 10k row exercises the indexed construction + portfolio path at
    // the paper's headline scale; the 500-node rows keep the ablation
    // comparable across scenario classes.
    let (scenario, grid) = match name {
        "evacuation" => (urban_evacuation(500, seed), 8),
        "surveillance" => (persistent_surveillance(500, seed), 8),
        "surveillance-10k" => (persistent_surveillance(10_000, seed), 12),
        _ => (disaster_relief(500, seed), 8),
    };
    let specs: Vec<NodeSpec> = scenario.catalog.iter().cloned().collect();
    (
        name.to_string(),
        CompositionProblem::from_mission(&scenario.mission, &specs, grid),
    )
}

fn main() {
    let mut table = Table::new(
        "t2_composition_solvers",
        "Solver ablation across scenario classes (500-node populations + 10k surveillance)",
        &[
            "scenario",
            "solver",
            "coverage",
            "feasible max",
            "cost",
            "nodes",
            "solve ms",
        ],
    );
    for name in ["evacuation", "surveillance", "disaster", "surveillance-10k"] {
        let (label, problem) = scenario_problem(name, 21);
        let feasible = problem.max_achievable_fraction();
        for solver in [
            Solver::Greedy,
            Solver::Anneal {
                iterations: 2_000,
                seed: 5,
            },
            Solver::Portfolio {
                iterations: 2_000,
                seed: 5,
            },
            Solver::Random { seed: 6 },
        ] {
            let (r, solve_ms) = solver.solve_timed(&problem);
            table.row(vec![
                label.clone(),
                solver.to_string(),
                f3(r.coverage),
                f3(feasible),
                f1(r.cost),
                r.selected.len().to_string(),
                f1(solve_ms),
            ]);
        }
    }
    table.finish();

    // Optimality gap vs exhaustive on small instances.
    let mut gap = Table::new(
        "t2_optimality_gap",
        "Greedy/anneal cost vs exact optimum (12-candidate instances)",
        &["seed", "greedy cost", "anneal cost", "optimal cost", "greedy gap %"],
    );
    for seed in 0..5u64 {
        // Hand-built feasible instances: 12 visual sensors of mixed range
        // scattered over a 300 m square, full coverage required.
        use iobt_types::{
            Affiliation, EnergyBudget, Mission, MissionId, MissionKind, NodeId, Point, Rect,
            Sensor, SensorKind,
        };
        let specs: Vec<NodeSpec> = (0..12u64)
            .map(|i| {
                let x = ((i * 73 + seed * 37) % 300) as f64;
                let y = ((i * 131 + seed * 59) % 300) as f64;
                let range = 90.0 + ((i * 41) % 140) as f64;
                NodeSpec::builder(NodeId::new(i))
                    .affiliation(if i % 3 == 0 {
                        Affiliation::Gray
                    } else {
                        Affiliation::Blue
                    })
                    .position(Point::new(x, y))
                    .sensor(Sensor::new(SensorKind::Visual, range, 0.9))
                    .energy(EnergyBudget::unlimited())
                    .build()
            })
            .collect();
        let mission = Mission::builder(MissionId::new(1), MissionKind::Surveillance)
            .area(Rect::square(300.0))
            .require_modality(SensorKind::Visual)
            .coverage_fraction(1.0)
            .min_trust(0.3)
            .build();
        let mut problem = CompositionProblem::from_mission(&mission, &specs, 4);
        // Require exactly what the full candidate set can achieve so the
        // exact optimum exists.
        problem.required_fraction = problem.max_achievable_fraction();
        let g = Solver::Greedy.solve(&problem);
        let a = Solver::Anneal {
            iterations: 3_000,
            seed,
        }
        .solve(&problem);
        let e = Solver::Exhaustive.solve(&problem);
        let gap_pct = if e.cost > 0.0 {
            (g.cost - e.cost) / e.cost * 100.0
        } else {
            0.0
        };
        gap.row(vec![
            seed.to_string(),
            f1(g.cost),
            f1(a.cost),
            f1(e.cost),
            f1(gap_pct),
        ]);
    }
    gap.finish();
    println!(
        "\nShape check: greedy ≈ anneal ≪ random in cost at equal coverage on \
         the 500-node scenarios; on the small exact instances annealing \
         reaches the optimum every time while pure greedy occasionally \
         overpays (its guarantee is approximate, not exact)."
    );
}
