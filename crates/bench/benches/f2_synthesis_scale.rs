//! Experiment `f2_synthesis_scale` (paper Fig. 2, §III): composition of
//! composite IoBTs from populations of 100 to 10,000 nodes.
//!
//! Paper claim: "it should be possible to assemble (or re-assemble …)
//! composite assets comprising an IoBT of possibly 1,000s to 10,000s of
//! nodes on demand and within an appropriately short time (e.g., minutes,
//! if needed)". The greedy solver should stay far below that bound and
//! repair-after-damage should be cheaper than full re-synthesis.

use std::collections::BTreeSet;
use std::time::Instant;

use iobt_bench::{f1, f3, Table};
use iobt_synthesis::{repair, repair_with_timed, CompositionProblem, Solver};
use iobt_types::catalog::PopulationBuilder;
use iobt_types::{Mission, MissionId, MissionKind, NodeSpec, Rect, SensorKind};

fn mission(area: Rect) -> Mission {
    Mission::builder(MissionId::new(1), MissionKind::Surveillance)
        .area(area)
        .require_modality(SensorKind::Visual)
        .require_modality(SensorKind::Acoustic)
        .coverage_fraction(0.9)
        .resilience(1)
        .min_trust(0.3)
        .build()
}

fn main() {
    let sizes = [100usize, 300, 1_000, 3_000, 10_000];
    let mut table = Table::new(
        "f2_synthesis_scale",
        "Composition time & quality vs population size (greedy vs anneal vs random)",
        &[
            "nodes",
            "solver",
            "solve ms",
            "selected",
            "coverage",
            "cost",
            "repair ms (10% loss)",
        ],
    );
    for &n in &sizes {
        let area = Rect::square(2_000.0);
        let catalog = PopulationBuilder::new(area)
            .count(n)
            .blue_fraction(0.4)
            .red_fraction(0.1)
            .build(7);
        let specs: Vec<NodeSpec> = catalog.iter().cloned().collect();
        let problem = CompositionProblem::from_mission(&mission(area), &specs, 8);
        let solvers: Vec<Solver> = vec![
            Solver::Greedy,
            Solver::Anneal {
                iterations: 1_000,
                seed: 1,
            },
            Solver::Portfolio {
                iterations: 1_000,
                seed: 1,
            },
            Solver::Random { seed: 2 },
        ];
        for solver in solvers {
            let (result, solve_ms) = solver.solve_timed(&problem);
            // Repair benchmark: fail 10% of the selected set.
            let fail_count = (result.selected.len() / 10).max(1);
            let failed: BTreeSet<_> = result
                .selected
                .iter()
                .take(fail_count)
                .map(|&i| problem.candidates[i].id)
                .collect();
            let t0 = Instant::now();
            let repaired = repair(&problem, &result, &failed);
            let repair_ms = t0.elapsed().as_secs_f64() * 1_000.0;
            let _ = repaired;
            table.row(vec![
                n.to_string(),
                solver.to_string(),
                f1(solve_ms),
                result.selected.len().to_string(),
                f3(result.coverage),
                f1(result.cost),
                f3(repair_ms),
            ]);
        }
    }
    table.finish();

    // Ablation: incremental repair vs full re-synthesis after 20% loss.
    let mut ablation = Table::new(
        "f2_repair_vs_resynthesis",
        "After losing 20% of the selection: incremental repair vs full re-solve",
        &[
            "nodes",
            "repair ms",
            "resolve ms",
            "repair coverage",
            "resolve coverage",
            "repair added",
            "resolve selected",
        ],
    );
    for &n in &[1_000usize, 10_000] {
        let area = Rect::square(2_000.0);
        let catalog = PopulationBuilder::new(area)
            .count(n)
            .blue_fraction(0.4)
            .red_fraction(0.1)
            .build(7);
        let specs: Vec<NodeSpec> = catalog.iter().cloned().collect();
        let problem = CompositionProblem::from_mission(&mission(area), &specs, 8);
        let base = Solver::Greedy.solve(&problem);
        let fail_count = (base.selected.len() / 5).max(1);
        let failed: BTreeSet<_> = base
            .selected
            .iter()
            .take(fail_count)
            .map(|&i| problem.candidates[i].id)
            .collect();
        // (a) incremental repair.
        let (repaired, repair_timed_ms) = repair_with_timed(&problem, &base, &failed, Solver::Greedy);
        // (b) full re-synthesis over the survivors only.
        let survivors: Vec<NodeSpec> = specs
            .iter()
            .filter(|s| !failed.contains(&s.id()))
            .cloned()
            .collect();
        let t0 = Instant::now();
        let survivor_problem = CompositionProblem::from_mission(&mission(area), &survivors, 8);
        let resolved = Solver::Greedy.solve(&survivor_problem);
        let resolve_ms = t0.elapsed().as_secs_f64() * 1_000.0;
        ablation.row(vec![
            n.to_string(),
            f3(repair_timed_ms),
            f3(resolve_ms),
            f3(repaired.coverage),
            f3(resolved.coverage),
            repaired.added.len().to_string(),
            resolved.selected.len().to_string(),
        ]);
    }
    ablation.finish();

    // Construction ablation: spatial-index candidate construction vs the
    // brute-force every-cell scan it replaced, on the paper's headline
    // scale (10,000 candidates, 12x12 grid, two modalities).
    let mut construction = Table::new(
        "f2_construction_index",
        "Problem construction: spatial index vs brute-force scan (12x12 grid, 2 modalities)",
        &["nodes", "indexed ms", "scan ms", "speedup"],
    );
    for &n in &[1_000usize, 10_000] {
        let area = Rect::square(2_000.0);
        let catalog = PopulationBuilder::new(area)
            .count(n)
            .blue_fraction(0.4)
            .red_fraction(0.1)
            .build(7);
        let specs: Vec<NodeSpec> = catalog.iter().cloned().collect();
        let m = mission(area);
        let t0 = Instant::now();
        let indexed = CompositionProblem::from_mission(&m, &specs, 12);
        let indexed_ms = t0.elapsed().as_secs_f64() * 1_000.0;
        let t0 = Instant::now();
        let scanned = CompositionProblem::from_mission_scan(&m, &specs, 12);
        let scan_ms = t0.elapsed().as_secs_f64() * 1_000.0;
        assert_eq!(indexed, scanned, "construction paths must agree");
        construction.row(vec![
            n.to_string(),
            f3(indexed_ms),
            f3(scan_ms),
            f1(scan_ms / indexed_ms.max(1e-9)),
        ]);
    }
    construction.finish();
    println!(
        "\nPaper bound: 'within minutes' for 10,000-node composition; \
         measured times above are milliseconds-to-seconds, comfortably inside \
         the claim. Incremental repair matches re-synthesis coverage while \
         touching only the damaged pairs (and keeping surviving assignments \
         stable, which full re-solve does not guarantee)."
    );
}
