//! Criterion benchmarks for the synthesis hot paths introduced by the
//! index/bitset/portfolio work:
//!
//! - problem construction, spatial index vs brute-force scan, at 10,000
//!   candidates / 2 modalities across grid resolutions. The index's edge
//!   grows with cell count: at 12x12 both paths share the sensor-resolve
//!   walk and per-candidate bitset/output costs, which bounds the ratio
//!   (~2.3x measured on a single-core dev box); by 48x48 the scan's
//!   per-cell work dominates and the indexed path is >5x faster;
//! - the portfolio solver vs its members — racing on scoped threads means
//!   portfolio wall-clock tracks the slowest member (not the sum) given
//!   one core per member; on a single core it degrades to the sum.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iobt_synthesis::{CompositionProblem, Solver};
use iobt_types::catalog::PopulationBuilder;
use iobt_types::{Mission, MissionId, MissionKind, NodeSpec, Rect, SensorKind};

const GRID: usize = 12;

fn mission(area: Rect) -> Mission {
    Mission::builder(MissionId::new(1), MissionKind::Surveillance)
        .area(area)
        .require_modality(SensorKind::Visual)
        .require_modality(SensorKind::Acoustic)
        .coverage_fraction(0.9)
        .resilience(1)
        .min_trust(0.3)
        .build()
}

fn population(n: usize) -> (Mission, Vec<NodeSpec>) {
    let area = Rect::square(2_000.0);
    let catalog = PopulationBuilder::new(area)
        .count(n)
        .blue_fraction(0.4)
        .red_fraction(0.1)
        .build(7);
    (mission(area), catalog.iter().cloned().collect())
}

fn bench_construction(c: &mut Criterion) {
    let (mission, specs) = population(10_000);
    for grid in [12usize, 24, 48] {
        c.bench_function(&format!("synthesis/construct_indexed_10k_{grid}x{grid}x2"), |b| {
            b.iter(|| black_box(CompositionProblem::from_mission(&mission, &specs, grid)))
        });
        c.bench_function(&format!("synthesis/construct_scan_10k_{grid}x{grid}x2"), |b| {
            b.iter(|| black_box(CompositionProblem::from_mission_scan(&mission, &specs, grid)))
        });
    }
}

fn bench_portfolio_vs_members(c: &mut Criterion) {
    let (mission, specs) = population(10_000);
    let problem = CompositionProblem::from_mission(&mission, &specs, GRID);
    let iterations = 2_000;
    let seed = 11;
    c.bench_function("synthesis/portfolio_10k", |b| {
        b.iter(|| black_box(Solver::Portfolio { iterations, seed }.solve(&problem)))
    });
    // The individual members, for comparison: portfolio wall-clock should
    // sit near the slowest of these, not near their sum.
    for member in Solver::portfolio_members(iterations, seed) {
        let label = format!("synthesis/member_{member}_10k");
        c.bench_function(&label, |b| {
            b.iter(|| black_box(member.solve(&problem)))
        });
    }
}

criterion_group!(
    name = synthesis_kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_construction, bench_portfolio_vs_members
);
criterion_main!(synthesis_kernels);
