//! Experiment `t5_resource_adaptation` (paper §IV-B): edge-resource
//! allocation under moving hotspots and a DoS flood.
//!
//! Paper claim: allocation must "dynamically reallocate … to handle
//! rapidly changing situations", "scale … to match workloads that exhibit
//! high spatial and temporal variability", and "prevent any subset of IoBT
//! devices (including attackers) from saturating" shared resources.
//! Ablation: static split vs demand-proportional (tracks hotspots but is
//! stealable by a flood) vs max-min water-filling (contains the flood).

use iobt_adapt::{hotspot_trace, simulate, AllocationPolicy};
use iobt_bench::{f1, f3, Table};

fn main() {
    let mut table = Table::new(
        "t5_resource_adaptation",
        "Latency under hotspot + DoS (8 regions, 60 epochs, capacity 300 req/s)",
        &[
            "workload",
            "policy",
            "mean ms",
            "p50 ms",
            "p99 ms",
            "saturated %",
        ],
    );
    let capacity = 300.0;
    let workloads: Vec<(&str, Vec<Vec<f64>>)> = vec![
        ("hotspot", hotspot_trace(8, 60, 12.0, 90.0, None, 0, 0.0)),
        (
            "hotspot+dos",
            hotspot_trace(8, 60, 12.0, 90.0, Some(0), 20, 600.0),
        ),
    ];
    let policies = [
        AllocationPolicy::Static,
        AllocationPolicy::Proportional,
        AllocationPolicy::MaxMin { headroom: 0.2 },
    ];
    for (name, trace) in &workloads {
        for policy in policies {
            let run = simulate(policy, capacity, trace);
            table.row(vec![
                name.to_string(),
                policy.to_string(),
                f1(run.mean_ms()),
                f1(run.quantile_ms(0.5)),
                f1(run.quantile_ms(0.99)),
                f3(run.saturation_fraction * 100.0),
            ]);
        }
    }
    table.finish();
    println!(
        "\nShape check: both reactive policies beat static on the moving \
         hotspot; under DoS, proportional lets the flood steal the pool \
         (victims saturate) while max-min confines saturation to the \
         attacker's own region."
    );
}
