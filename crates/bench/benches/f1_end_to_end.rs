//! Experiment `f1_end_to_end` (paper Fig. 1 and the §I evacuation
//! vignette): the full discovery → synthesis → execution pipeline on an
//! urban evacuation with mid-mission jamming, comparing the adaptive
//! runtime against a static plan.
//!
//! Paper claim (qualitative): the self-aware IoBT "regroups and
//! reconfigures independently … in response to unexpected conditions",
//! sustaining mission utility where a static plan degrades.

use iobt_bench::{f3, pm, Table};
use iobt_core::prelude::*;
use iobt_netsim::{SimDuration, SimTime};

fn main() {
    let seeds = [11u64, 23, 47];
    let node_counts = [200usize, 400];
    let mut table = Table::new(
        "f1_end_to_end",
        "Urban evacuation under jamming: adaptive vs static runtime",
        &[
            "nodes",
            "runtime",
            "mean utility",
            "post-jam utility",
            "delivery %",
            "repairs",
            "recruited",
            "infiltration %",
        ],
    );
    for &n in &node_counts {
        for adaptive in [true, false] {
            let mut mean_u = Vec::new();
            let mut post_u = Vec::new();
            let mut delivery = Vec::new();
            let mut repairs = Vec::new();
            let mut recruited = Vec::new();
            let mut infiltration = Vec::new();
            for &seed in &seeds {
                let mut scenario = urban_evacuation(n, seed);
                // Jam earlier so the run has a long post-jam phase.
                scenario.disruptions = vec![Disruption::JammerOn {
                    at: SimTime::from_secs_f64(60.0),
                    index: 0,
                }];
                let config = RunConfig::builder()
                    .duration(SimDuration::from_secs_f64(180.0))
                    .adaptive(adaptive)
                    .build().expect("valid run config");
                let report = run_mission(&scenario, &config);
                mean_u.push(report.mean_utility());
                post_u.push(report.utility_after(60.0));
                delivery.push(report.delivery_ratio * 100.0);
                repairs.push(report.repairs as f64);
                recruited.push(report.recruited as f64);
                infiltration.push(report.infiltration_rate * 100.0);
            }
            table.row(vec![
                n.to_string(),
                if adaptive { "adaptive" } else { "static" }.to_string(),
                pm(&mean_u),
                pm(&post_u),
                pm(&delivery),
                f3(repairs.iter().sum::<f64>() / repairs.len() as f64),
                f3(recruited.iter().sum::<f64>() / recruited.len() as f64),
                pm(&infiltration),
            ]);
        }
    }
    table.finish();
    println!(
        "\nShape check: at 200 nodes the jammer bites and the adaptive runtime \
         repairs around it (post-jam utility recovers); at 400 nodes the mesh \
         is dense enough to route around the jammer on its own, so the reflex \
         never has to fire — resilience through redundancy, as Fig. 2 argues."
    );
}
