//! Experiment `t6_learning_cost` (paper §V-B, refs \[28\]–\[33\]): the
//! accuracy-vs-communication frontier of topology activation policies for
//! decentralized learning.
//!
//! Paper claim: "one might activate different network topologies based on
//! the trade-off between network learning and communication", jointly
//! optimizing "learning cost and decision making accuracy". The adaptive
//! policy should sit near dense accuracy at a fraction of the bytes.

use iobt_bench::{pm, Table};
use iobt_learning::{cost_aware_sgd, logistic_dataset, partition, ActivationPolicy, Dataset};

fn main() {
    let mut table = Table::new(
        "t6_learning_cost",
        "Accuracy vs communication (16 nodes, 15 rounds, fully label-skewed shards)",
        &[
            "policy",
            "avg-model accuracy",
            "worst-node accuracy",
            "kB on wire",
            "dense rounds",
        ],
    );
    let policies = [
        ActivationPolicy::AlwaysDense,
        ActivationPolicy::Periodic { period: 4 },
        ActivationPolicy::Adaptive { threshold: 0.05 },
        ActivationPolicy::AlwaysSparse,
    ];
    for policy in policies {
        let mut accs = Vec::new();
        let mut worst = Vec::new();
        let mut kbs = Vec::new();
        let mut dense = Vec::new();
        for seed in 0..3u64 {
            let d = logistic_dataset(1_600, 6, 5.0, seed);
            let (train, test) = d.examples.split_at(1_200);
            let ds = Dataset {
                examples: train.to_vec(),
                dim: 6,
                true_weights: d.true_weights.clone(),
            };
            // Extreme label skew + a short horizon: mixing speed decides
            // whether stragglers escape their biased shards.
            let shards = partition(&ds, 16, 1.0, seed + 7);
            let run = cost_aware_sgd(6, &shards, test, policy, 15, 0.5, seed);
            accs.push(run.final_accuracy);
            worst.push(run.min_node_accuracy);
            kbs.push(run.bytes as f64 / 1_024.0);
            dense.push(run.dense_rounds as f64);
        }
        table.row(vec![
            policy.to_string(),
            pm(&accs),
            pm(&worst),
            pm(&kbs),
            pm(&dense),
        ]);
    }
    table.finish();
    println!(
        "\nShape check: the average model is robust, but the worst node's \
         accuracy collapses under sparse mixing on skewed shards; dense \
         fixes it at maximal bytes, periodic/adaptive trace the frontier."
    );
}
