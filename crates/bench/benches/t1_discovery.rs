//! Experiment `t1_discovery` (paper §III-A): red/gray/blue classification
//! from side-channel emissions vs observation window and collection noise.
//!
//! Paper claim: "algorithms for discovery of gray/red nodes using side
//! channel emanations" are feasible but must contend with intermittent,
//! noisy observation — longer windows and cleaner collection should
//! monotonically improve precision/recall.

use iobt_bench::{f3, Table};
use iobt_discovery::{evaluate, EmissionModel, LogisticClassifier, LogisticConfig, NaiveBayes};
use iobt_types::Affiliation;

fn main() {
    let mut table = Table::new(
        "t1_discovery",
        "Affiliation classification vs observation window and noise",
        &[
            "window s",
            "noise",
            "model",
            "accuracy",
            "red precision",
            "red recall",
            "macro F1",
        ],
    );
    for &window in &[10.0, 60.0, 300.0] {
        for &noise in &[1.0, 3.0] {
            let mut model = EmissionModel::new(42).with_window_s(window).with_noise(noise);
            let train = model.labelled_dataset(400);
            let test = model.labelled_dataset(200);
            let nb = NaiveBayes::fit(&train).expect("balanced data");
            let lr = LogisticClassifier::fit(&train, LogisticConfig::default())
                .expect("balanced data");
            for (name, confusion) in [
                ("naive-bayes", evaluate(&nb, &test)),
                ("logistic", evaluate(&lr, &test)),
            ] {
                table.row(vec![
                    format!("{window:.0}"),
                    format!("{noise:.0}"),
                    name.to_string(),
                    f3(confusion.accuracy()),
                    f3(confusion.precision(Affiliation::Red)),
                    f3(confusion.recall(Affiliation::Red)),
                    f3(confusion.macro_f1()),
                ]);
            }
        }
    }
    table.finish();

    // Spoofing ablation: red camouflaging as gray.
    let mut spoof = Table::new(
        "t1_discovery_spoofing",
        "Red recall vs spoofing probability (60 s window, unit noise)",
        &["spoof prob", "red recall", "red precision"],
    );
    let mut model = EmissionModel::new(43);
    let train = model.labelled_dataset(400);
    let nb = NaiveBayes::fit(&train).expect("balanced data");
    for &p in &[0.0, 0.2, 0.4, 0.6, 0.8] {
        let mut confusion = iobt_discovery::ConfusionMatrix::new();
        for _ in 0..400 {
            use iobt_discovery::AffiliationClassifier;
            let obs = model.observe_with_spoofing(Affiliation::Red, p);
            confusion.record(Affiliation::Red, nb.classify(&obs));
            let gray_obs = model.observe_with_spoofing(Affiliation::Gray, 0.0);
            confusion.record(Affiliation::Gray, nb.classify(&gray_obs));
        }
        spoof.row(vec![
            f3(p),
            f3(confusion.recall(Affiliation::Red)),
            f3(confusion.precision(Affiliation::Red)),
        ]);
    }
    spoof.finish();
    println!(
        "\nShape check: accuracy and macro-F1 rise with window length, fall \
         with noise; spoofing trades red recall down while precision holds."
    );
}
