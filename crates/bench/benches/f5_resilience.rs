//! Experiment `f5_resilience` (§IV "robustness to failure as a normal
//! operating regime"): a seeded fault campaign — crashes, a recovering
//! crash, a region blackout, a partition, link degradation, and a
//! compromised relay — against three runtimes on the same scenario:
//!
//! * **armed**    — adaptive + heartbeat failure detection with early
//!   repair + graceful-degradation ladder + acked task dissemination,
//! * **adaptive** — the plain window-close repair reflex,
//! * **static**   — no reaction at all.
//!
//! Paper claim (qualitative): an IoBT that treats faults as routine
//! recovers mission utility once transients clear, instead of carrying
//! the damage to the end of the mission.

use iobt_bench::{f3, pm, Table};
use iobt_core::prelude::*;
use iobt_netsim::SimDuration;
use iobt_types::{Affiliation, NodeId};

const DURATION_S: f64 = 120.0;

fn armed(base: RunConfigBuilder) -> RunConfig {
    base.early_repair(true)
        .degradation_ladder(true)
        .acked_tasking(true)
        .build()
        .expect("valid run config")
}

fn main() {
    let seeds = [3u64, 17, 42, 1009];
    let mut table = Table::new(
        "f5_resilience",
        "Fault campaign: armed reaction layer vs plain adaptive vs static",
        &[
            "runtime",
            "mean utility",
            "tail utility",
            "suspected",
            "early repairs",
            "sheds",
            "task acked %",
        ],
    );
    for mode in ["armed", "adaptive", "static"] {
        let mut mean_u = Vec::new();
        let mut tail_u = Vec::new();
        let mut suspected = Vec::new();
        let mut early = Vec::new();
        let mut sheds = Vec::new();
        let mut acked_pct = Vec::new();
        for &seed in &seeds {
            let mut scenario = persistent_surveillance(200, seed);
            let blue: Vec<NodeId> = scenario
                .catalog
                .with_affiliation(Affiliation::Blue)
                .iter()
                .map(|n| n.id())
                .collect();
            let cfg = CampaignConfig::light(
                SimDuration::from_secs_f64(DURATION_S),
                scenario.mission.area(),
            );
            scenario.fault_plan = generate_campaign(seed, &blue, &cfg);
            let clear_s = scenario.fault_plan.transient_clear_time().as_secs_f64();
            let base = RunConfig::builder()
                .duration(SimDuration::from_secs_f64(DURATION_S))
                .window(SimDuration::from_secs_f64(10.0));
            let config = match mode {
                "armed" => armed(base),
                "adaptive" => base.build().expect("valid run config"),
                _ => base.adaptive(false).build().expect("valid run config"),
            };
            let report = run_mission(&scenario, &config);
            let res = report.digest.resilience;
            mean_u.push(report.mean_utility());
            tail_u.push(report.utility_after((clear_s / 10.0).ceil() * 10.0));
            suspected.push(res.suspected as f64);
            early.push(res.early_repairs as f64);
            sheds.push(res.sheds as f64);
            acked_pct.push(if res.tasking.assigned > 0 {
                100.0 * res.tasking.acked as f64 / res.tasking.assigned as f64
            } else {
                0.0
            });
        }
        let avg = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        table.row(vec![
            mode.to_string(),
            pm(&mean_u),
            pm(&tail_u),
            f3(avg(&suspected)),
            f3(avg(&early)),
            f3(avg(&sheds)),
            f3(avg(&acked_pct)),
        ]);
    }
    table.finish();
    println!(
        "\nShape check: the armed runtime suspects silenced assets mid-window \
         and repairs early, so its tail utility (after the transients clear) \
         tracks the fault-free ceiling; the static plan carries every fault \
         to the end of the run. Same seed, same campaign, same digest — \
         every number above reproduces bit-for-bit."
    );
}
