//! Property: incremental connectivity maintenance is indistinguishable
//! from rebuilding the graph from scratch.
//!
//! The simulator patches single-node liveness changes into its cached
//! [`ConnectivityGraph`] with [`ConnectivityGraph::refresh_node`] instead
//! of discarding the cache on every churn event. That is only sound if a
//! patched graph is *exactly* the graph a from-scratch
//! [`ConnectivityGraph::build_filtered`] would produce — same links, same
//! bit-identical link qualities, same routes. This suite drives random
//! churn sequences (arbitrary node sets, radio loadouts, jammers, and
//! partition-style deny predicates) and checks that equivalence after
//! every single step, not just at the end.

use std::rc::Rc;

use iobt_netsim::{Channel, ConnectivityGraph, GraphNode, Jammer, Terrain};
use iobt_types::{NodeId, Point, RadioKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministically samples a node population: clustered positions so
/// links actually form, mixed radio loadouts (including radio-less and
/// long-range nodes), and mixed initial liveness.
fn population(seed: u64, n: usize) -> Vec<GraphNode> {
    let mut rng = StdRng::seed_from_u64(seed);
    let loadouts: [&[RadioKind]; 6] = [
        &[RadioKind::Wifi],
        &[RadioKind::Wifi, RadioKind::Bluetooth],
        &[RadioKind::TacticalUhf],
        &[RadioKind::Wifi, RadioKind::TacticalUhf],
        &[RadioKind::Cellular],
        &[], // sensor with no working radio: never links
    ];
    (0..n)
        .map(|i| {
            let cluster = Point::new(
                f64::from(rng.gen_range(0..3u32)) * 150.0,
                f64::from(rng.gen_range(0..3u32)) * 150.0,
            );
            let position = Point::new(
                cluster.x + rng.gen_range(-80.0..80.0),
                cluster.y + rng.gen_range(-80.0..80.0),
            );
            let radios: Rc<[RadioKind]> = loadouts[rng.gen_range(0..loadouts.len())].into();
            GraphNode {
                id: NodeId::new(i as u64),
                position,
                radios,
                alive: rng.gen_bool(0.8),
            }
        })
        .collect()
}

fn channel(with_jammer: bool) -> Channel {
    let mut ch = Channel::new(Terrain::default());
    if with_jammer {
        ch.add_jammer(Jammer::new(Point::new(150.0, 150.0), 2.0));
    }
    ch
}

proptest! {
    /// Random churn: after every liveness flip, the patched graph must
    /// have the same topology (ids, liveness, bit-identical adjacency)
    /// as a from-scratch rebuild with the current liveness vector.
    #[test]
    fn random_churn_matches_scratch_rebuild(
        seed in 0u64..10_000,
        n in 8usize..48,
        with_jammer in proptest::bool::ANY,
        ops in proptest::collection::vec((0usize..1 << 16, proptest::bool::ANY), 1..40),
    ) {
        let ch = channel(with_jammer);
        let deny = |_: NodeId, _: NodeId| false;
        let mut nodes = population(seed, n);
        let mut patched = ConnectivityGraph::build_filtered(&nodes, &ch, &deny);
        for (who, up) in ops {
            let i = who % n;
            nodes[i].alive = up;
            patched.refresh_node(i as u32, up, &ch, &deny);
            let scratch = ConnectivityGraph::build_filtered(&nodes, &ch, &deny);
            prop_assert!(
                patched.same_topology(&scratch),
                "patched graph diverged from scratch rebuild after setting node {} alive={}",
                i, up
            );
            prop_assert_eq!(patched.link_count(), scratch.link_count());
        }
    }

    /// Same property under a partition-style deny predicate: the
    /// incremental path must consult the predicate exactly like the full
    /// build does, in both link orientations.
    #[test]
    fn random_churn_respects_deny_predicate(
        seed in 0u64..10_000,
        n in 8usize..48,
        cut in 0usize..1 << 16,
        ops in proptest::collection::vec((0usize..1 << 16, proptest::bool::ANY), 1..24),
    ) {
        let ch = channel(false);
        // Partition: no links across the id threshold, like a
        // network-partition fault cuts the topology.
        let threshold = (cut % n) as u64;
        let deny = move |a: NodeId, b: NodeId| {
            (a.raw() < threshold) != (b.raw() < threshold)
        };
        let mut nodes = population(seed ^ 0x9e37, n);
        let mut patched = ConnectivityGraph::build_filtered(&nodes, &ch, &deny);
        for (who, up) in ops {
            let i = who % n;
            nodes[i].alive = up;
            patched.refresh_node(i as u32, up, &ch, &deny);
            let scratch = ConnectivityGraph::build_filtered(&nodes, &ch, &deny);
            prop_assert!(
                patched.same_topology(&scratch),
                "deny-predicate churn diverged after setting node {} alive={}",
                i, up
            );
        }
    }

    /// Routes read off a patched graph equal routes off a fresh build:
    /// topology equivalence must extend to what the router actually sees.
    #[test]
    fn routes_after_churn_match_scratch_rebuild(
        seed in 0u64..10_000,
        n in 8usize..32,
        ops in proptest::collection::vec((0usize..1 << 16, proptest::bool::ANY), 1..12),
    ) {
        let ch = channel(false);
        let deny = |_: NodeId, _: NodeId| false;
        let mut nodes = population(seed ^ 0x51f0, n);
        let mut patched = ConnectivityGraph::build_filtered(&nodes, &ch, &deny);
        for (who, up) in ops {
            let i = who % n;
            nodes[i].alive = up;
            patched.refresh_node(i as u32, up, &ch, &deny);
        }
        let scratch = ConnectivityGraph::build_filtered(&nodes, &ch, &deny);
        for s in 0..n as u64 {
            for d in 0..n as u64 {
                prop_assert_eq!(
                    patched.route(NodeId::new(s), NodeId::new(d)),
                    scratch.route(NodeId::new(s), NodeId::new(d)),
                    "route {}->{} diverged after churn", s, d
                );
            }
        }
    }
}
