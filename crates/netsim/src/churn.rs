//! Churn injection: stochastic failure/recovery processes.
//!
//! §III: "The large scale of IoBTs implies continuous churn, so discovery
//! and composition solutions will need to be robust to failure or removal
//! of assets as a normal operating regime." A [`ChurnProcess`] samples
//! per-node exponential failure (and optional recovery) times and
//! schedules them on a [`Simulator`] up to a horizon.

use iobt_types::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Exp};

use crate::sim::Simulator;
use crate::time::SimTime;

/// A memoryless failure/recovery process.
///
/// ```
/// # use iobt_netsim::churn::ChurnProcess;
/// # use iobt_netsim::SimTime;
/// # use iobt_types::NodeId;
/// let churn = ChurnProcess::recovering(300.0, 30.0, 42);
/// let nodes: Vec<NodeId> = (0..10).map(NodeId::new).collect();
/// let plan = churn.plan(&nodes, SimTime::from_secs_f64(1_000.0));
/// assert!(plan.recoveries.len() <= plan.failures.len());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnProcess {
    /// Mean time between failures per node, seconds.
    pub mtbf_s: f64,
    /// Mean time to recovery, seconds; `None` means failures are permanent
    /// (battle damage rather than reboots).
    pub mttr_s: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

/// What one churn scheduling pass injected.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnPlan {
    /// Scheduled `(time, node)` failures, time-ordered.
    pub failures: Vec<(SimTime, NodeId)>,
    /// Scheduled `(time, node)` recoveries, time-ordered.
    pub recoveries: Vec<(SimTime, NodeId)>,
}

impl ChurnProcess {
    /// Creates a permanent-failure process.
    ///
    /// # Panics
    ///
    /// Panics when `mtbf_s` is not positive.
    pub fn permanent(mtbf_s: f64, seed: u64) -> Self {
        assert!(mtbf_s > 0.0, "MTBF must be positive");
        ChurnProcess {
            mtbf_s,
            mttr_s: None,
            seed,
        }
    }

    /// Creates a failure/recovery process.
    ///
    /// # Panics
    ///
    /// Panics when either mean is not positive.
    pub fn recovering(mtbf_s: f64, mttr_s: f64, seed: u64) -> Self {
        assert!(mtbf_s > 0.0 && mttr_s > 0.0, "means must be positive");
        ChurnProcess {
            mtbf_s,
            mttr_s: Some(mttr_s),
            seed,
        }
    }

    /// Samples the plan for `nodes` over `[0, horizon]` without touching a
    /// simulator — useful for analysis and tests.
    pub fn plan(&self, nodes: &[NodeId], horizon: SimTime) -> ChurnPlan {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // lint: allow(panic) — mtbf_s is validated positive at construction, so the rate is finite
        let fail = Exp::new(1.0 / self.mtbf_s).expect("positive rate");
        // Hoisted out of the per-failure loop: distribution construction
        // consumes no RNG words, so the sample sequence is unchanged, but
        // at 100k nodes the per-event `Exp::new` was pure overhead.
        let repair = self.mttr_s.map(|mttr| {
            // lint: allow(panic) — mttr is validated positive at construction, so the rate is finite
            Exp::new(1.0 / mttr).expect("positive rate")
        });
        let horizon_s = horizon.as_secs_f64();
        let mut plan = ChurnPlan::default();
        for &node in nodes {
            let mut t = 0.0;
            loop {
                t += fail.sample(&mut rng);
                if t >= horizon_s {
                    break;
                }
                plan.failures.push((SimTime::from_secs_f64(t), node));
                match repair {
                    Some(repair) => {
                        t += repair.sample(&mut rng);
                        if t >= horizon_s {
                            break;
                        }
                        plan.recoveries.push((SimTime::from_secs_f64(t), node));
                    }
                    None => break, // permanent: one failure per node
                }
            }
        }
        // Unstable sort is safe: equal (time, node) keys are
        // indistinguishable, so any permutation of ties is the same plan.
        plan.failures.sort_unstable();
        plan.recoveries.sort_unstable();
        plan
    }

    /// Samples and schedules the plan onto a simulator. Returns the plan
    /// for inspection.
    pub fn schedule(
        &self,
        sim: &mut Simulator,
        nodes: &[NodeId],
        horizon: SimTime,
    ) -> ChurnPlan {
        let plan = self.plan(nodes, horizon);
        for &(at, node) in &plan.failures {
            sim.schedule_node_down(at, node);
        }
        for &(at, node) in &plan.recoveries {
            sim.schedule_node_up(at, node);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use iobt_types::{NodeCatalog, NodeSpec};

    fn ids(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn permanent_failure_count_tracks_mtbf() {
        // MTBF 100 s over a 100 s horizon: ~63% of nodes fail
        // (1 - e^-1); at most one failure per node.
        let p = ChurnProcess::permanent(100.0, 1);
        let plan = p.plan(&ids(1_000), SimTime::from_secs_f64(100.0));
        let frac = plan.failures.len() as f64 / 1_000.0;
        assert!((frac - 0.632).abs() < 0.05, "failure fraction {frac}");
        assert!(plan.recoveries.is_empty());
        let mut nodes: Vec<NodeId> = plan.failures.iter().map(|&(_, n)| n).collect();
        nodes.dedup();
        assert_eq!(nodes.len(), plan.failures.len(), "one failure per node");
    }

    #[test]
    fn recovering_process_alternates_down_up() {
        let p = ChurnProcess::recovering(50.0, 10.0, 2);
        let plan = p.plan(&ids(20), SimTime::from_secs_f64(1_000.0));
        assert!(!plan.failures.is_empty());
        assert!(!plan.recoveries.is_empty());
        // Per node: recoveries never exceed failures.
        for node in ids(20) {
            let f = plan.failures.iter().filter(|&&(_, n)| n == node).count();
            let r = plan.recoveries.iter().filter(|&&(_, n)| n == node).count();
            assert!(r <= f);
        }
    }

    #[test]
    fn plans_are_deterministic_and_time_ordered() {
        let p = ChurnProcess::recovering(30.0, 5.0, 7);
        let a = p.plan(&ids(10), SimTime::from_secs_f64(200.0));
        let b = p.plan(&ids(10), SimTime::from_secs_f64(200.0));
        assert_eq!(a, b);
        assert!(a.failures.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn scheduling_applies_to_the_simulator() {
        let mut catalog = NodeCatalog::new();
        for id in ids(10) {
            catalog.insert(NodeSpec::builder(id).build()).unwrap();
        }
        let mut sim = Simulator::builder(catalog).seed(0).build();
        let p = ChurnProcess::permanent(20.0, 3);
        let plan = p.schedule(&mut sim, &ids(10), SimTime::from_secs_f64(100.0));
        assert!(!plan.failures.is_empty());
        sim.run_until(SimTime::from_secs_f64(100.0));
        let dead = ids(10).iter().filter(|&&n| !sim.is_alive(n)).count();
        assert_eq!(dead, plan.failures.len());
    }

    #[test]
    fn horizon_zero_schedules_nothing() {
        let p = ChurnProcess::permanent(1.0, 0);
        let plan = p.plan(&ids(50), SimTime::ZERO);
        assert!(plan.failures.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_mtbf() {
        ChurnProcess::permanent(0.0, 0);
    }

    #[test]
    fn recovered_nodes_are_alive_again() {
        let mut catalog = NodeCatalog::new();
        for id in ids(30) {
            catalog.insert(NodeSpec::builder(id).build()).unwrap();
        }
        let mut sim = Simulator::builder(catalog).seed(0).build();
        // Fast failures, fast repairs: most nodes should be up at any time.
        let p = ChurnProcess::recovering(40.0, 2.0, 9);
        p.schedule(&mut sim, &ids(30), SimTime::from_secs_f64(500.0));
        sim.run_for(SimDuration::from_secs_f64(500.0));
        let alive = ids(30).iter().filter(|&&n| sim.is_alive(n)).count();
        assert!(alive >= 24, "steady-state availability ~ mtbf/(mtbf+mttr): {alive}/30");
    }
}
