//! Mobility models.
//!
//! §III-A: cyberphysical assets "may move frequently, so their discovery
//! needs to be continuous". The simulator advances positions in fixed
//! mobility steps; each node carries one [`MobilityModel`].

use iobt_types::{Point, Rect};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a node moves.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum MobilityModel {
    /// The node never moves (emplaced sensors, infrastructure).
    #[default]
    Static,
    /// Random waypoint inside `area`: pick a destination uniformly, move at
    /// `speed_mps`, pause `pause_s`, repeat. The classic MANET model.
    RandomWaypoint {
        /// Area the node roams in.
        area: Rect,
        /// Travel speed in meters per second.
        speed_mps: f64,
        /// Pause at each waypoint in seconds.
        pause_s: f64,
    },
    /// Follow a fixed route of waypoints at constant speed, stopping at the
    /// last one (convoys, patrol routes, evacuation columns).
    Route {
        /// Ordered waypoints to visit.
        waypoints: Vec<Point>,
        /// Travel speed in meters per second.
        speed_mps: f64,
    },
}

/// Per-node mobility state advanced by the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobilityState {
    model: MobilityModel,
    position: Point,
    target: Option<Point>,
    pause_left_s: f64,
    route_index: usize,
}

impl MobilityState {
    /// Creates mobility state at an initial position.
    pub fn new(model: MobilityModel, position: Point) -> Self {
        MobilityState {
            model,
            position,
            target: None,
            pause_left_s: 0.0,
            route_index: 0,
        }
    }

    /// Current position.
    pub const fn position(&self) -> Point {
        self.position
    }

    /// The mobility model.
    pub const fn model(&self) -> &MobilityModel {
        &self.model
    }

    /// Whether the node has finished a fixed route (always `false` for
    /// other models).
    pub fn route_complete(&self) -> bool {
        match &self.model {
            MobilityModel::Route { waypoints, .. } => self.route_index >= waypoints.len(),
            _ => false,
        }
    }

    /// All fields, for checkpoint serialisation.
    pub(crate) fn snapshot_raw(&self) -> (&MobilityModel, Point, Option<Point>, f64, usize) {
        (
            &self.model,
            self.position,
            self.target,
            self.pause_left_s,
            self.route_index,
        )
    }

    /// Rebuilds mobility state exactly from checkpointed fields.
    pub(crate) fn from_snapshot_raw(
        model: MobilityModel,
        position: Point,
        target: Option<Point>,
        pause_left_s: f64,
        route_index: usize,
    ) -> Self {
        MobilityState {
            model,
            position,
            target,
            pause_left_s,
            route_index,
        }
    }

    /// Advances the node by `dt_s` seconds, sampling any new waypoints from
    /// `rng`. Returns the new position.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, dt_s: f64) -> Point {
        let dt_s = dt_s.max(0.0);
        match self.model.clone() {
            MobilityModel::Static => {}
            MobilityModel::RandomWaypoint {
                area,
                speed_mps,
                pause_s,
            } => {
                let mut remaining = dt_s;
                while remaining > 1e-12 {
                    if self.pause_left_s > 0.0 {
                        let wait = self.pause_left_s.min(remaining);
                        self.pause_left_s -= wait;
                        remaining -= wait;
                        continue;
                    }
                    let target = match self.target {
                        Some(t) => t,
                        None => {
                            let t = Point::new(
                                rng.gen_range(area.min().x..=area.max().x),
                                rng.gen_range(area.min().y..=area.max().y),
                            );
                            self.target = Some(t);
                            t
                        }
                    };
                    let dist = self.position.distance_to(target);
                    let step = speed_mps * remaining;
                    if step >= dist {
                        self.position = target;
                        self.target = None;
                        self.pause_left_s = pause_s;
                        remaining -= if speed_mps > 0.0 { dist / speed_mps } else { remaining };
                        if speed_mps <= 0.0 {
                            break;
                        }
                    } else {
                        let t = if dist > 0.0 { step / dist } else { 1.0 };
                        self.position = self.position.lerp(target, t);
                        remaining = 0.0;
                    }
                }
            }
            MobilityModel::Route {
                waypoints,
                speed_mps,
            } => {
                let mut remaining = dt_s;
                while remaining > 1e-12 && self.route_index < waypoints.len() {
                    let target = waypoints[self.route_index];
                    let dist = self.position.distance_to(target);
                    let step = speed_mps * remaining;
                    if step >= dist {
                        self.position = target;
                        self.route_index += 1;
                        remaining -= if speed_mps > 0.0 { dist / speed_mps } else { remaining };
                        if speed_mps <= 0.0 {
                            break;
                        }
                    } else {
                        let t = if dist > 0.0 { step / dist } else { 1.0 };
                        self.position = self.position.lerp(target, t);
                        remaining = 0.0;
                    }
                }
            }
        }
        self.position
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn static_nodes_never_move() {
        let mut m = MobilityState::new(MobilityModel::Static, Point::new(3.0, 4.0));
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(m.step(&mut rng, 5.0), Point::new(3.0, 4.0));
        }
    }

    #[test]
    fn route_visits_waypoints_in_order_then_stops() {
        let wps = vec![Point::new(10.0, 0.0), Point::new(10.0, 10.0)];
        let mut m = MobilityState::new(
            MobilityModel::Route {
                waypoints: wps,
                speed_mps: 1.0,
            },
            Point::ORIGIN,
        );
        let mut rng = StdRng::seed_from_u64(0);
        // After 5 s at 1 m/s: halfway to the first waypoint.
        m.step(&mut rng, 5.0);
        assert!((m.position().x - 5.0).abs() < 1e-9);
        assert!(!m.route_complete());
        // After another 15 s: reached both waypoints (10 + 10 = 20 m total).
        m.step(&mut rng, 15.0);
        assert_eq!(m.position(), Point::new(10.0, 10.0));
        assert!(m.route_complete());
        // Further steps stay put.
        m.step(&mut rng, 100.0);
        assert_eq!(m.position(), Point::new(10.0, 10.0));
    }

    #[test]
    fn waypoint_speed_bounds_displacement() {
        let area = Rect::square(1_000.0);
        let mut m = MobilityState::new(
            MobilityModel::RandomWaypoint {
                area,
                speed_mps: 3.0,
                pause_s: 0.0,
            },
            Point::new(500.0, 500.0),
        );
        let mut rng = StdRng::seed_from_u64(1);
        let mut prev = m.position();
        for _ in 0..200 {
            let next = m.step(&mut rng, 1.0);
            assert!(prev.distance_to(next) <= 3.0 + 1e-9);
            assert!(area.contains(next));
            prev = next;
        }
    }

    #[test]
    fn waypoint_pause_holds_position() {
        let area = Rect::square(100.0);
        let mut m = MobilityState::new(
            MobilityModel::RandomWaypoint {
                area,
                speed_mps: 1_000.0, // reach waypoint within one step
                pause_s: 10.0,
            },
            Point::new(50.0, 50.0),
        );
        let mut rng = StdRng::seed_from_u64(2);
        m.step(&mut rng, 1.0); // arrives and begins pause
        let at_waypoint = m.position();
        let after_pause_step = m.step(&mut rng, 5.0); // still pausing
        assert_eq!(at_waypoint, after_pause_step);
    }

    #[test]
    fn zero_or_negative_dt_is_noop() {
        let mut m = MobilityState::new(
            MobilityModel::Route {
                waypoints: vec![Point::new(5.0, 0.0)],
                speed_mps: 1.0,
            },
            Point::ORIGIN,
        );
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(m.step(&mut rng, 0.0), Point::ORIGIN);
        assert_eq!(m.step(&mut rng, -3.0), Point::ORIGIN);
    }

    proptest! {
        #[test]
        fn waypoint_never_escapes_area(seed in 0u64..20, steps in 1usize..50,
                                       speed in 0.1..50.0f64) {
            let area = Rect::square(200.0);
            let mut m = MobilityState::new(
                MobilityModel::RandomWaypoint { area, speed_mps: speed, pause_s: 1.0 },
                Point::new(100.0, 100.0),
            );
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..steps {
                let p = m.step(&mut rng, 2.0);
                prop_assert!(area.contains(p));
            }
        }
    }
}
