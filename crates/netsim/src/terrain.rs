//! Terrain model: clutter classes affecting radio propagation.
//!
//! §II of the paper spans "the highly dense and cluttered mega-city
//! environment" to "sparse terrain with limited entities". We model terrain
//! as a grid of clutter classes; each class selects a path-loss exponent
//! and shadowing spread for the [channel model](crate::channel).

use iobt_types::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Propagation environment of a terrain cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Clutter {
    /// Unobstructed flat ground.
    #[default]
    Open,
    /// Light vegetation or low buildings.
    Suburban,
    /// Dense high-rise urban canyon.
    Urban,
}

impl Clutter {
    /// Path-loss exponent `n` for the log-distance model; free space is 2.
    pub const fn path_loss_exponent(self) -> f64 {
        match self {
            Clutter::Open => 2.1,
            Clutter::Suburban => 2.8,
            Clutter::Urban => 3.5,
        }
    }

    /// Log-normal shadowing standard deviation in dB.
    pub const fn shadowing_sigma_db(self) -> f64 {
        match self {
            Clutter::Open => 2.0,
            Clutter::Suburban => 4.0,
            Clutter::Urban => 7.0,
        }
    }
}

/// A rectangular battlefield tiled with clutter cells.
///
/// ```
/// # use iobt_netsim::terrain::{Clutter, Terrain};
/// # use iobt_types::{Point, Rect};
/// let t = Terrain::uniform(Rect::square(1_000.0), Clutter::Urban);
/// assert_eq!(t.clutter_at(Point::new(500.0, 500.0)), Clutter::Urban);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Terrain {
    bounds: Rect,
    cols: usize,
    rows: usize,
    cells: Vec<Clutter>,
}

impl Terrain {
    /// A single-cell terrain of uniform clutter.
    pub fn uniform(bounds: Rect, clutter: Clutter) -> Self {
        Terrain {
            bounds,
            cols: 1,
            rows: 1,
            cells: vec![clutter],
        }
    }

    /// Creates a terrain from an explicit row-major cell grid.
    ///
    /// # Panics
    ///
    /// Panics when `cells.len() != cols * rows` or either dimension is zero.
    pub fn from_cells(bounds: Rect, cols: usize, rows: usize, cells: Vec<Clutter>) -> Self {
        assert!(cols > 0 && rows > 0, "terrain dimensions must be nonzero");
        assert_eq!(cells.len(), cols * rows, "cell count must match grid");
        Terrain {
            bounds,
            cols,
            rows,
            cells,
        }
    }

    /// Samples a mixed urban battlefield: an urban core surrounded by
    /// suburban fringe over open ground, with `seed` controlling the exact
    /// layout. The split is roughly 25% urban / 35% suburban / 40% open.
    pub fn random_urban(bounds: Rect, cols: usize, rows: usize, seed: u64) -> Self {
        assert!(cols > 0 && rows > 0, "terrain dimensions must be nonzero");
        let mut rng = StdRng::seed_from_u64(seed);
        let center = bounds.center();
        let max_d = center.distance_to(bounds.max());
        let mut cells = Vec::with_capacity(cols * rows);
        for r in 0..rows {
            for c in 0..cols {
                let cell_center = Point::new(
                    bounds.min().x + (c as f64 + 0.5) * bounds.width() / cols as f64,
                    bounds.min().y + (r as f64 + 0.5) * bounds.height() / rows as f64,
                );
                // Urban probability decays with distance from the core.
                let d = cell_center.distance_to(center) / max_d.max(1e-9);
                let u: f64 = rng.gen();
                let clutter = if u < (0.7 - d).max(0.05) {
                    Clutter::Urban
                } else if u < (0.95 - 0.5 * d).max(0.3) {
                    Clutter::Suburban
                } else {
                    Clutter::Open
                };
                cells.push(clutter);
            }
        }
        Terrain {
            bounds,
            cols,
            rows,
            cells,
        }
    }

    /// Battlefield bounds.
    pub const fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Grid dimensions `(cols, rows)`.
    pub const fn grid_dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// Clutter at a point; points outside the bounds clamp to the nearest
    /// cell.
    pub fn clutter_at(&self, p: Point) -> Clutter {
        let p = self.bounds.clamp(p);
        let cx = (((p.x - self.bounds.min().x) / self.bounds.width().max(1e-9))
            * self.cols as f64) as usize;
        let cy = (((p.y - self.bounds.min().y) / self.bounds.height().max(1e-9))
            * self.rows as f64) as usize;
        let cx = cx.min(self.cols - 1);
        let cy = cy.min(self.rows - 1);
        self.cells[cy * self.cols + cx]
    }

    /// The worse (more lossy) clutter along the segment between two points,
    /// sampled at cell granularity. Used for link budgets: a link through an
    /// urban canyon behaves like urban even if the endpoints sit in the open.
    pub fn clutter_between(&self, a: Point, b: Point) -> Clutter {
        let steps = 8;
        let mut worst = Clutter::Open;
        for i in 0..=steps {
            let c = self.clutter_at(a.lerp(b, i as f64 / steps as f64));
            if severity(c) > severity(worst) {
                worst = c;
            }
        }
        worst
    }

    /// Fraction of cells of each clutter class as `[open, suburban, urban]`.
    pub fn clutter_mix(&self) -> [f64; 3] {
        let mut counts = [0usize; 3];
        for c in &self.cells {
            counts[severity(*c)] += 1;
        }
        let total = self.cells.len() as f64;
        [
            counts[0] as f64 / total,
            counts[1] as f64 / total,
            counts[2] as f64 / total,
        ]
    }
}

impl Default for Terrain {
    /// 1 km × 1 km of open ground.
    fn default() -> Self {
        Terrain::uniform(Rect::square(1_000.0), Clutter::Open)
    }
}

const fn severity(c: Clutter) -> usize {
    match c {
        Clutter::Open => 0,
        Clutter::Suburban => 1,
        Clutter::Urban => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_terrain_everywhere() {
        let t = Terrain::uniform(Rect::square(100.0), Clutter::Suburban);
        assert_eq!(t.clutter_at(Point::new(0.0, 0.0)), Clutter::Suburban);
        assert_eq!(t.clutter_at(Point::new(99.9, 99.9)), Clutter::Suburban);
        // Outside points clamp.
        assert_eq!(t.clutter_at(Point::new(-50.0, 500.0)), Clutter::Suburban);
    }

    #[test]
    fn from_cells_maps_row_major() {
        let t = Terrain::from_cells(
            Rect::square(100.0),
            2,
            2,
            vec![Clutter::Open, Clutter::Urban, Clutter::Suburban, Clutter::Open],
        );
        assert_eq!(t.clutter_at(Point::new(25.0, 25.0)), Clutter::Open);
        assert_eq!(t.clutter_at(Point::new(75.0, 25.0)), Clutter::Urban);
        assert_eq!(t.clutter_at(Point::new(25.0, 75.0)), Clutter::Suburban);
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn from_cells_validates_length() {
        Terrain::from_cells(Rect::square(10.0), 2, 2, vec![Clutter::Open]);
    }

    #[test]
    fn clutter_between_takes_the_worst() {
        let t = Terrain::from_cells(
            Rect::square(100.0),
            2,
            1,
            vec![Clutter::Open, Clutter::Urban],
        );
        let worst = t.clutter_between(Point::new(10.0, 50.0), Point::new(90.0, 50.0));
        assert_eq!(worst, Clutter::Urban);
    }

    #[test]
    fn random_urban_is_deterministic_and_mixed() {
        let bounds = Rect::square(2_000.0);
        let a = Terrain::random_urban(bounds, 20, 20, 5);
        let b = Terrain::random_urban(bounds, 20, 20, 5);
        assert_eq!(a, b);
        let mix = a.clutter_mix();
        assert!((mix.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(mix[2] > 0.05, "urban core should exist: {mix:?}");
    }

    #[test]
    fn exponents_grow_with_clutter() {
        assert!(Clutter::Open.path_loss_exponent() < Clutter::Suburban.path_loss_exponent());
        assert!(Clutter::Suburban.path_loss_exponent() < Clutter::Urban.path_loss_exponent());
        assert!(Clutter::Urban.shadowing_sigma_db() > Clutter::Open.shadowing_sigma_db());
    }
}
