//! The discrete-event simulator.
//!
//! [`Simulator`] owns a population of nodes (from an
//! [`iobt_types::NodeCatalog`]), a [`Channel`] (terrain + jammers), per-node
//! [mobility](crate::mobility), energy accounting, and a deterministic event
//! queue. Application logic is plugged in as [`Behavior`] implementations;
//! behaviours talk to the world exclusively through a [`Context`].
//!
//! # Examples
//!
//! A ping-pong pair:
//!
//! ```
//! use iobt_netsim::prelude::*;
//! use iobt_types::prelude::*;
//!
//! struct Ping;
//! impl Behavior for Ping {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         ctx.send(NodeId::new(1), 0, b"ping".to_vec());
//!     }
//! }
//!
//! # fn main() {
//! let mut catalog = NodeCatalog::new();
//! for i in 0..2 {
//!     catalog.insert(
//!         NodeSpec::builder(NodeId::new(i))
//!             .affiliation(Affiliation::Blue)
//!             .position(Point::new(i as f64 * 50.0, 0.0))
//!             .radio(Radio::new(RadioKind::Wifi))
//!             .energy(EnergyBudget::new(1_000.0))
//!             .build(),
//!     ).unwrap();
//! }
//! let mut sim = Simulator::builder(catalog).seed(7).build();
//! sim.set_behavior(NodeId::new(0), Box::new(Ping));
//! sim.run_for(SimDuration::from_millis(500));
//! assert_eq!(sim.stats().sent, 1);
//! # }
//! ```

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::rc::Rc;

use bytes::Bytes;
use iobt_obs::{DropCause, Recorder, TraceEvent};
use iobt_types::{EnergyBudget, NodeCatalog, NodeId, Point, RadioKind, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod snapshot;

pub use snapshot::{BehaviorRegistry, BehaviorSnapshot, SnapshotError};

use crate::channel::{Channel, Jammer};
use crate::graph::{ConnectivityGraph, GraphNode, LinkQuality, RouteScratch, RouteTree};
use crate::message::Message;
use crate::mobility::{MobilityModel, MobilityState};
use crate::stats::NetStats;
use crate::terrain::Terrain;
use crate::time::{SimDuration, SimTime};

/// Application logic attached to a node.
///
/// All methods have empty defaults so behaviours implement only what they
/// need. Behaviours must not assume wall-clock time or OS randomness; use
/// [`Context::now`] and [`Context::gen_f64`] so runs stay reproducible.
pub trait Behavior {
    /// Called once when the simulation starts (or when the behaviour is
    /// attached to an already-running simulation).
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }

    /// Called when a message addressed to this node is delivered.
    fn on_message(&mut self, ctx: &mut Context<'_>, msg: &Message) {
        let _ = (ctx, msg);
    }

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        let _ = (ctx, token);
    }

    /// Serialises this behaviour's mutable state for a checkpoint.
    ///
    /// Returns `None` (the default) for behaviours that cannot be
    /// checkpointed — [`Simulator::save_state`] then fails rather than
    /// silently dropping them. Checkpointable behaviours return a
    /// [`BehaviorSnapshot`] whose `kind` names a factory registered in
    /// the [`BehaviorRegistry`] used at restore.
    fn save_state(&self) -> Option<BehaviorSnapshot> {
        None
    }

    /// Restores state captured by [`Behavior::save_state`] into a
    /// freshly constructed instance. Returns `false` when the bytes are
    /// malformed (the restore is then rejected as corrupt). The default
    /// accepts only an empty state, matching stateless behaviours.
    fn restore_state(&mut self, state: &[u8]) -> bool {
        state.is_empty()
    }
}

/// A periodic duty cycle: the node is awake for the first
/// `awake_fraction` of every `period`, offset by `phase` (§III-A:
/// intermittently-connected assets "may not consistently respond to
/// probes or emit traffic").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SleepSchedule {
    period: SimDuration,
    awake_fraction: f64,
    phase: SimDuration,
}

impl SleepSchedule {
    /// Creates a schedule. `awake_fraction` is clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when `period` is zero.
    pub fn new(period: SimDuration, awake_fraction: f64, phase: SimDuration) -> Self {
        assert!(period.as_micros() > 0, "period must be nonzero");
        SleepSchedule {
            period,
            awake_fraction: awake_fraction.clamp(0.0, 1.0),
            phase,
        }
    }

    /// Whether the node is awake at instant `t`.
    pub fn is_awake(&self, t: SimTime) -> bool {
        let pos = (t.as_micros().wrapping_add(self.phase.as_micros())) % self.period.as_micros();
        (pos as f64) < self.awake_fraction * self.period.as_micros() as f64
    }
}

/// A network-partition cut: while active, no link may cross between
/// group `a` and group `b` (fiber cut, relay sabotage, RF occlusion).
/// Nodes stay alive — only the links between the groups vanish, which is
/// exactly the correlated regime of Farooq & Zhu (arXiv:1703.01224) that
/// point failures cannot express.
#[derive(Debug, Clone)]
pub struct PartitionSpec {
    a: BTreeSet<NodeId>,
    b: BTreeSet<NodeId>,
}

impl PartitionSpec {
    /// Creates a cut between two groups. Ids present in both groups are
    /// treated as members of `a` only (a node cannot be cut from itself).
    pub fn new(a: impl IntoIterator<Item = NodeId>, b: impl IntoIterator<Item = NodeId>) -> Self {
        let a: BTreeSet<NodeId> = a.into_iter().collect();
        let b = b.into_iter().filter(|id| !a.contains(id)).collect();
        PartitionSpec { a, b }
    }

    /// Whether this cut severs the link `x`–`y`.
    pub fn cuts(&self, x: NodeId, y: NodeId) -> bool {
        (self.a.contains(&x) && self.b.contains(&y)) || (self.a.contains(&y) && self.b.contains(&x))
    }
}

/// A channel-wide link degradation: extra path loss on every link plus a
/// service-time multiplier (weather, obscurants, wide-band interference).
/// Multiple active degradations compose: losses add, multipliers multiply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDegradation {
    /// Extra path loss applied to every link while active, in dB.
    pub extra_loss_db: f64,
    /// Multiplier on per-hop service time (≥ 1 in practice; values below
    /// are clamped to 1 when applied).
    pub latency_mult: f64,
}

impl LinkDegradation {
    /// Creates a degradation spec; loss clamps to ≥ 0, multiplier to ≥ 1.
    pub fn new(extra_loss_db: f64, latency_mult: f64) -> Self {
        LinkDegradation {
            extra_loss_db: extra_loss_db.max(0.0),
            latency_mult: latency_mult.max(1.0),
        }
    }
}

/// A set of compromised (gray/red) relays: while active, any message
/// routed *through* one of these nodes is delayed by `extra_delay` and,
/// if `tamper` is set, delivered with its integrity flag raised so
/// receivers can discard it (§IV: partially-trusted assets may corrupt
/// what they carry). Messages originating at or addressed to a
/// compromised node are unaffected — the attack is on the relay role.
#[derive(Debug, Clone)]
pub struct CompromiseSpec {
    relays: BTreeSet<NodeId>,
    extra_delay: SimDuration,
    tamper: bool,
}

impl CompromiseSpec {
    /// Creates a compromised-relay spec.
    pub fn new(relays: impl IntoIterator<Item = NodeId>, extra_delay: SimDuration, tamper: bool) -> Self {
        CompromiseSpec {
            relays: relays.into_iter().collect(),
            extra_delay,
            tamper,
        }
    }

    /// The compromised relay ids.
    pub fn relays(&self) -> &BTreeSet<NodeId> {
        &self.relays
    }
}

/// A registered region blackout: the rect is fixed at registration, the
/// affected set is resolved from live node positions when the outage
/// fires (mobile nodes are caught where they actually are).
#[derive(Debug, Clone)]
struct Blackout {
    rect: Rect,
    affected: BTreeSet<NodeId>,
}

/// Per-node runtime state. Stored densely (index order = id order) so
/// the hot path never touches a map; the radio list is shared with every
/// graph snapshot instead of being recloned per rebuild.
#[derive(Debug)]
struct NodeRuntime {
    id: NodeId,
    radios: Rc<[RadioKind]>,
    tx_power_w: f64,
    mobility: MobilityState,
    energy: EnergyBudget,
    alive: bool,
    sleep: Option<SleepSchedule>,
}

#[derive(Debug)]
enum Event {
    Deliver(Message),
    Timer { node: NodeId, token: u64 },
    MobilityTick,
    NodeDown(NodeId),
    NodeUp(NodeId),
    SetJammer { index: usize, active: bool },
    SetPartition { index: usize, active: bool },
    SetDegradation { index: usize, active: bool },
    SetCompromise { index: usize, active: bool },
    RegionOutage { index: usize },
    RegionRestore { index: usize },
}

struct Queued {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Everything behaviours can observe and do. Obtained only inside
/// [`Behavior`] callbacks.
pub struct Context<'a> {
    core: &'a mut Core,
    node: NodeId,
}

impl<'a> Context<'a> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// The node this behaviour runs on.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Current position of this node.
    pub fn position(&self) -> Point {
        // lint: allow(panic) — contexts are only constructed for catalog nodes
        self.core.node(self.node).expect("context node exists").mobility.position()
    }

    /// Remaining energy fraction of this node in `[0, 1]`.
    pub fn energy_fraction(&self) -> f64 {
        // lint: allow(panic) — contexts are only constructed for catalog nodes
        self.core.node(self.node).expect("context node exists").energy.fraction_remaining()
    }

    /// Ids of nodes this node currently has a direct link to.
    pub fn neighbors(&mut self) -> Vec<NodeId> {
        self.core
            .graph()
            .neighbors(self.node)
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    /// Sends a unicast message; the network routes it over the current
    /// connectivity graph with per-hop losses, retries, latency, and energy
    /// accounting. Delivery (or drop) happens asynchronously.
    ///
    /// The payload is refcounted end to end: passing [`Bytes`] (or
    /// anything convertible) shares the buffer with zero copies, so a
    /// behaviour can hold one buffer and send it to many peers.
    pub fn send(&mut self, dst: NodeId, kind: u32, payload: impl Into<Bytes>) {
        let msg = Message::new(self.node, dst, kind, payload).stamped(self.core.now);
        self.core.transmit(msg);
    }

    /// Sends the same payload to every current one-hop neighbor. The
    /// payload is converted to shared [`Bytes`] once; each recipient's
    /// message holds a refcounted handle, not a copy.
    pub fn broadcast(&mut self, kind: u32, payload: impl Into<Bytes>) {
        let payload: Bytes = payload.into();
        for n in self.neighbors() {
            self.send(n, kind, payload.clone());
        }
    }

    /// Schedules [`Behavior::on_timer`] after `delay` with an opaque token.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        let at = self.core.now + delay;
        self.core.push(at, Event::Timer { node: self.node, token });
    }

    /// The observability recorder, synced to sim time — behaviors can
    /// record their own application-layer events through it.
    pub fn recorder(&self) -> &Recorder {
        &self.core.recorder
    }

    /// Uniform random sample in `[0, 1)` from the simulation RNG.
    pub fn gen_f64(&mut self) -> f64 {
        self.core.rng.gen()
    }

    /// Uniform random integer in `[0, bound)` from the simulation RNG.
    /// Returns 0 when `bound` is 0.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.core.rng.gen_range(0..bound)
        }
    }
}

/// Simulator configuration and construction.
#[derive(Debug)]
pub struct SimulatorBuilder {
    catalog: NodeCatalog,
    terrain: Terrain,
    jammers: Vec<Jammer>,
    mobility: BTreeMap<NodeId, MobilityModel>,
    sleep: BTreeMap<NodeId, SleepSchedule>,
    seed: u64,
    mobility_step: SimDuration,
    retries: u32,
    idle_drain_w: f64,
    recorder: Recorder,
    reference_mode: bool,
}

impl SimulatorBuilder {
    /// Sets the terrain (default: 1 km × 1 km open ground).
    pub fn terrain(mut self, terrain: Terrain) -> Self {
        self.terrain = terrain;
        self
    }

    /// Adds a jammer present from the start (toggle later via
    /// [`Simulator::schedule_jammer`]).
    pub fn jammer(mut self, jammer: Jammer) -> Self {
        self.jammers.push(jammer);
        self
    }

    /// Assigns a mobility model to one node (default: static).
    pub fn mobility(mut self, node: NodeId, model: MobilityModel) -> Self {
        self.mobility.insert(node, model);
        self
    }

    /// Assigns a duty-cycle sleep schedule to one node (default: always
    /// awake). Sleeping nodes neither receive nor transmit and take no
    /// relay role while asleep.
    pub fn sleep_schedule(mut self, node: NodeId, schedule: SleepSchedule) -> Self {
        self.sleep.insert(node, schedule);
        self
    }

    /// Seeds the simulation RNG (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Interval between mobility/connectivity updates (default 1 s).
    pub fn mobility_step(mut self, step: SimDuration) -> Self {
        self.mobility_step = step;
        self
    }

    /// Per-hop MAC retries (default 3; total attempts = retries + 1).
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Idle power draw per node in watts (default 0.01 W).
    pub fn idle_drain_w(mut self, watts: f64) -> Self {
        self.idle_drain_w = watts.max(0.0);
        self
    }

    /// Attaches an observability recorder (default: disabled). The
    /// simulator stamps the recorder's clock with sim time as events
    /// dispatch and emits `netsim.*` trace events; a disabled recorder
    /// costs one branch per site.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Runs the simulator on the legacy reference path: one-at-a-time
    /// event dispatch, per-query Dijkstra, and full graph rebuilds on
    /// every invalidation (default: off). Results are bit-identical
    /// either way — this exists so the equivalence tests can compare the
    /// optimized hot path against the straightforward implementation
    /// in-process.
    pub fn reference_mode(mut self, on: bool) -> Self {
        self.reference_mode = on;
        self
    }

    /// Builds the simulator. Behaviours are attached afterwards with
    /// [`Simulator::set_behavior`].
    pub fn build(self) -> Simulator {
        let mut channel = Channel::new(self.terrain);
        for j in self.jammers {
            channel.add_jammer(j);
        }
        // Dense node storage: index order = catalog (id) order. The id
        // universe is fixed for the simulator's lifetime and shared with
        // every connectivity graph, so graph index i and node index i
        // always name the same node.
        let mut ids: Vec<NodeId> = Vec::with_capacity(self.catalog.len());
        let mut nodes: Vec<NodeRuntime> = Vec::with_capacity(self.catalog.len());
        for spec in self.catalog.iter() {
            let model = self
                .mobility
                .get(&spec.id())
                .cloned()
                .unwrap_or(MobilityModel::Static);
            let tx_power_w = spec
                .capabilities()
                .radios()
                .iter()
                .map(|r| r.kind().tx_power_w())
                .fold(0.0, f64::max);
            ids.push(spec.id());
            nodes.push(NodeRuntime {
                id: spec.id(),
                radios: spec
                    .capabilities()
                    .radios()
                    .iter()
                    .map(|r| r.kind())
                    .collect::<Vec<_>>()
                    .into(),
                tx_power_w,
                mobility: MobilityState::new(model, spec.position()),
                energy: spec.energy(),
                alive: true,
                sleep: self.sleep.get(&spec.id()).copied(),
            });
        }
        let index: BTreeMap<NodeId, u32> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();
        let has_sleep = nodes.iter().any(|n| n.sleep.is_some());
        let mut core = Core {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            ids: ids.into(),
            index: Rc::new(index),
            nodes,
            has_sleep,
            channel,
            rng: StdRng::seed_from_u64(self.seed),
            stats: NetStats::new(),
            graph: None,
            graph_dirty: GraphDirty::Full,
            graph_epoch: 0,
            route_scratch: RouteScratch::new(),
            route_trees: BTreeMap::new(),
            route_tree_fifo: VecDeque::new(),
            last_route: None,
            retries: self.retries,
            mobility_step: self.mobility_step,
            idle_drain_w: self.idle_drain_w,
            recorder: self.recorder,
            partitions: Vec::new(),
            degradations: Vec::new(),
            latency_mult: 1.0,
            compromises: Vec::new(),
            blackouts: Vec::new(),
            events_processed: 0,
            reference_mode: self.reference_mode,
        };
        core.push(SimTime::ZERO + self.mobility_step, Event::MobilityTick);
        Simulator {
            core,
            behaviors: BTreeMap::new(),
            started: Vec::new(),
            batch: Vec::new(),
        }
    }
}

/// How stale the cached connectivity graph is relative to world state.
///
/// The legacy design invalidated by dropping the cache (`graph = None`)
/// and rebuilding from scratch on next access. This enum keeps the
/// cache and records *what* changed instead, so the next access can
/// patch only the affected nodes' links in place. Whenever the state is
/// not `Clean`, the next [`Core::refresh_graph`] emits a `GraphRebuilt`
/// trace — exactly when and how often the legacy blanket invalidation
/// did, so observability streams stay bit-identical.
#[derive(Debug)]
enum GraphDirty {
    /// Cache (when present) matches world state.
    Clean,
    /// Only the listed nodes' liveness changed since the cache was
    /// built; positions, radios, channel, and partitions are untouched.
    /// An empty list still forces a refresh event (a mobility tick that
    /// moved nothing) without recomputing any links.
    Nodes(Vec<u32>),
    /// Anything broader changed (movement, jammers, partitions,
    /// degradations, sleep phases): rebuild from scratch.
    Full,
}

/// Cap on retained per-source route trees (FIFO eviction). At 100k
/// nodes a tree is ~400 KB, so the cache tops out around 13 MB.
const MAX_ROUTE_TREES: usize = 32;

/// Internal mutable world state shared with behaviour contexts.
struct Core {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Queued>>,
    /// Node ids in index order (sorted); shared with every graph.
    ids: Rc<[NodeId]>,
    /// `NodeId → dense index`, fixed at construction; shared with every
    /// graph so both sides agree on what index `i` means.
    index: Rc<BTreeMap<NodeId, u32>>,
    /// Dense per-node runtime state, parallel to `ids`.
    nodes: Vec<NodeRuntime>,
    /// Whether any node carries a sleep schedule. Sleep phases fold the
    /// clock into graph liveness, so incremental maintenance is disabled
    /// and every invalidation falls back to a full rebuild.
    has_sleep: bool,
    channel: Channel,
    rng: StdRng,
    stats: NetStats,
    graph: Option<Rc<ConnectivityGraph>>,
    graph_dirty: GraphDirty,
    /// Monotonic graph content version across full rebuilds and
    /// incremental refreshes; stamps route trees for invalidation.
    graph_epoch: u64,
    route_scratch: RouteScratch,
    /// Per-source shortest-path trees, valid at their stamped epoch.
    route_trees: BTreeMap<u32, RouteTree>,
    /// Insertion order of `route_trees` keys, for FIFO eviction.
    route_tree_fifo: VecDeque<u32>,
    /// Last routed `(graph epoch, source index)`: a repeat promotes the
    /// source to a full route tree.
    last_route: Option<(u64, u32)>,
    retries: u32,
    mobility_step: SimDuration,
    idle_drain_w: f64,
    recorder: Recorder,
    partitions: Vec<(PartitionSpec, bool)>,
    degradations: Vec<(LinkDegradation, bool)>,
    /// Product of active degradation multipliers, cached on toggle.
    latency_mult: f64,
    compromises: Vec<(CompromiseSpec, bool)>,
    blackouts: Vec<Blackout>,
    /// Events dispatched since construction. Reporting-only (throughput
    /// harnesses); deliberately excluded from checkpoints and digests.
    events_processed: u64,
    /// Legacy execution path for equivalence testing; see
    /// [`SimulatorBuilder::reference_mode`].
    reference_mode: bool,
}

/// Base MAC backoff before the first retransmission, in seconds.
pub const MAC_BACKOFF_BASE_S: f64 = 0.0005;
/// Cap on the per-attempt MAC backoff, in seconds.
pub const MAC_BACKOFF_CAP_S: f64 = 0.004;

/// Deterministic capped exponential MAC backoff for `attempt` (1-based):
/// 0.5 ms, 1 ms, 2 ms, 4 ms, 4 ms, … Replaces the old per-attempt random
/// service draw so hop latency is a pure function of the attempt count.
pub fn mac_backoff_s(attempt: u32) -> f64 {
    let exp = attempt.saturating_sub(1).min(30);
    (MAC_BACKOFF_BASE_S * f64::from(1u32 << exp)).min(MAC_BACKOFF_CAP_S)
}

impl Core {
    fn push(&mut self, at: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Queued { at, seq, event }));
    }

    /// Dense index of a node id, if the node exists.
    fn idx(&self, id: NodeId) -> Option<u32> {
        self.index.get(&id).copied()
    }

    /// Node runtime by id, if the node exists.
    fn node(&self, id: NodeId) -> Option<&NodeRuntime> {
        self.idx(id).map(|i| &self.nodes[i as usize])
    }

    /// Whether the node is up (alive and not energy-depleted).
    fn is_up(&self, id: NodeId) -> bool {
        self.node(id)
            .map(|n| n.alive && !n.energy.is_depleted())
            .unwrap_or(false)
    }

    /// Whether the node is up *and* awake right now.
    fn is_active(&self, node: NodeId) -> bool {
        self.node(node)
            .map(|n| {
                n.alive
                    && !n.energy.is_depleted()
                    && n.sleep.is_none_or(|s| s.is_awake(self.now))
            })
            .unwrap_or(false)
    }

    /// Records that only node `i`'s liveness changed: the next graph
    /// access patches that node's links in place instead of rebuilding.
    /// Falls back to full invalidation when incremental maintenance
    /// cannot apply (no cache yet, sleep schedules folding the clock
    /// into liveness, or the legacy reference path).
    fn invalidate_node(&mut self, i: u32) {
        if self.reference_mode || self.has_sleep || self.graph.is_none() {
            self.graph_dirty = GraphDirty::Full;
            return;
        }
        match &mut self.graph_dirty {
            GraphDirty::Full => {}
            GraphDirty::Nodes(v) => {
                if !v.contains(&i) {
                    v.push(i);
                }
            }
            GraphDirty::Clean => self.graph_dirty = GraphDirty::Nodes(vec![i]),
        }
    }

    /// Records a channel-wide change (jammer, partition, degradation):
    /// the next graph access rebuilds from scratch.
    fn invalidate_graph(&mut self) {
        self.graph_dirty = GraphDirty::Full;
    }

    /// Invalidation for a mobility tick: a tick that moved nothing still
    /// refreshes the graph (matching the legacy blanket invalidation and
    /// its trace event) but costs no link recomputation.
    fn invalidate_tick(&mut self, moved: bool) {
        if moved || self.reference_mode || self.has_sleep || self.graph.is_none() {
            self.graph_dirty = GraphDirty::Full;
        } else if matches!(self.graph_dirty, GraphDirty::Clean) {
            self.graph_dirty = GraphDirty::Nodes(Vec::new());
        }
    }

    /// Builds the connectivity graph from current world state without
    /// touching the cache or the recorder. Pure function of state, so
    /// the restore path can rebuild a cached graph silently — emitting
    /// a `GraphRebuilt` trace there would diverge from the
    /// uninterrupted run's event stream.
    fn build_graph(&self) -> ConnectivityGraph {
        let now = self.now;
        let nodes: Vec<GraphNode> = self
            .nodes
            .iter()
            .map(|n| GraphNode {
                id: n.id,
                position: n.mobility.position(),
                radios: Rc::clone(&n.radios),
                alive: n.alive
                    && !n.energy.is_depleted()
                    && n.sleep.is_none_or(|s| s.is_awake(now)),
            })
            .collect();
        let partitions = &self.partitions;
        let deny = |x: NodeId, y: NodeId| partitions.iter().any(|(p, on)| *on && p.cuts(x, y));
        ConnectivityGraph::build_shared(
            Rc::clone(&self.ids),
            Rc::clone(&self.index),
            nodes,
            &self.channel,
            &deny,
        )
    }

    /// Brings the cached graph in sync with world state, emitting one
    /// `GraphRebuilt` trace if anything was stale — the same times and
    /// counts as the legacy rebuild-on-access, whether the refresh is a
    /// full rebuild or an in-place patch of a few nodes.
    fn refresh_graph(&mut self) {
        if self.graph.is_some() && matches!(self.graph_dirty, GraphDirty::Clean) {
            return;
        }
        let dirty = std::mem::replace(&mut self.graph_dirty, GraphDirty::Clean);
        self.graph_epoch += 1;
        let epoch = self.graph_epoch;
        let refreshed = match (self.graph.take(), dirty) {
            (Some(mut rc), GraphDirty::Nodes(changed)) => {
                {
                    // Copy-on-write: external `connectivity()` holders
                    // keep their frozen snapshot, matching the legacy
                    // clone-out semantics.
                    let g = Rc::make_mut(&mut rc);
                    let partitions = &self.partitions;
                    let deny = |x: NodeId, y: NodeId| {
                        partitions.iter().any(|(p, on)| *on && p.cuts(x, y))
                    };
                    for i in changed {
                        let n = &self.nodes[i as usize];
                        let alive = n.alive && !n.energy.is_depleted();
                        g.refresh_node(i, alive, &self.channel, &deny);
                    }
                    g.set_epoch(epoch);
                }
                debug_assert!(
                    rc.same_topology(&self.build_graph()),
                    "incremental graph maintenance diverged from a full rebuild"
                );
                rc
            }
            _ => {
                let mut built = self.build_graph();
                built.set_epoch(epoch);
                Rc::new(built)
            }
        };
        self.recorder.record(TraceEvent::GraphRebuilt {
            nodes: refreshed.len() as u64,
            edges: refreshed.link_count() as u64,
        });
        self.graph = Some(refreshed);
    }

    fn graph(&mut self) -> &ConnectivityGraph {
        self.refresh_graph();
        // lint: allow(panic) — refresh_graph always leaves a cached graph behind
        self.graph.as_deref().expect("refreshed")
    }

    /// A refcounted handle to the up-to-date graph snapshot.
    fn graph_handle(&mut self) -> Rc<ConnectivityGraph> {
        self.refresh_graph();
        // lint: allow(panic) — refresh_graph always leaves a cached graph behind
        Rc::clone(self.graph.as_ref().expect("refreshed"))
    }

    /// Routes `s → d` over `graph`, promoting hot sources to full route
    /// trees: the first query from a source runs plain early-exit
    /// Dijkstra; a second query from the same source at the same graph
    /// epoch invests in the full predecessor tree and serves every later
    /// destination in O(path-length). Paths are bit-identical either way
    /// (settled predecessors never change under non-negative weights),
    /// and epoch stamps invalidate trees the moment the graph changes.
    fn route_cached(&mut self, graph: &ConnectivityGraph, s: u32, d: u32) -> Option<Vec<u32>> {
        if self.reference_mode {
            return graph.route_idx_with(&mut self.route_scratch, s, d);
        }
        let epoch = graph.epoch();
        if let Some(tree) = self.route_trees.get(&s) {
            if tree.epoch() == epoch {
                return graph.route_idx_from_tree(tree, d);
            }
            self.route_trees.remove(&s);
            self.route_tree_fifo.retain(|&x| x != s);
        }
        if self.last_route == Some((epoch, s)) {
            let tree = graph.route_tree_idx(&mut self.route_scratch, s);
            let out = graph.route_idx_from_tree(&tree, d);
            if self.route_trees.insert(s, tree).is_none() {
                self.route_tree_fifo.push_back(s);
                if self.route_tree_fifo.len() > MAX_ROUTE_TREES {
                    if let Some(evicted) = self.route_tree_fifo.pop_front() {
                        self.route_trees.remove(&evicted);
                    }
                }
            }
            return out;
        }
        self.last_route = Some((epoch, s));
        graph.route_idx_with(&mut self.route_scratch, s, d)
    }

    /// Simulates a unicast transmission hop by hop and schedules delivery
    /// or records the drop.
    fn transmit(&mut self, msg: Message) {
        self.stats.sent += 1;
        self.recorder.record(TraceEvent::MsgSent {
            from: msg.src().raw(),
            to: msg.dst().raw(),
        });
        let (src, dst) = (self.idx(msg.src()), self.idx(msg.dst()));
        let (Some(src), Some(dst)) = (src, dst) else {
            self.drop_message(&msg, DropCause::Dead);
            return;
        };
        let up = |n: &NodeRuntime| n.alive && !n.energy.is_depleted();
        if !up(&self.nodes[src as usize]) || !up(&self.nodes[dst as usize]) {
            self.drop_message(&msg, DropCause::Dead);
            return;
        }
        if !self.is_active(msg.src()) || !self.is_active(msg.dst()) {
            // Alive but inside a sleep phase of the duty cycle.
            self.drop_message(&msg, DropCause::Asleep);
            return;
        }
        // A refcounted handle keeps the routing snapshot alive while the
        // scratch, route trees, and node state are mutated below.
        let graph = self.graph_handle();
        let Some(route) = self.route_cached(&graph, src, dst) else {
            self.drop_message(&msg, DropCause::NoRoute);
            return;
        };
        let size_bits = msg.size_bits();
        let mut latency = SimDuration::ZERO;
        let mut success = true;
        for hop in route.windows(2) {
            let (from, to) = (hop[0], hop[1]);
            // Re-check the link against the *current* graph each hop: a
            // relay may deplete mid-message, and the refreshed topology
            // must be consulted exactly as the legacy rebuild-per-hop did.
            let Some(link) = self.graph().link_idx(from, to) else {
                self.recorder.record(TraceEvent::RouteFallback {
                    from: self.ids[from as usize].raw(),
                    to: self.ids[to as usize].raw(),
                });
                success = false;
                break;
            };
            let (hop_ok, attempts) = self.attempt_hop(from, to, link);
            self.stats.hop_attempts += u64::from(attempts);
            self.stats.retransmits += u64::from(attempts.saturating_sub(1));
            let tx_time_s = size_bits as f64 / (link.radio.bandwidth_kbps() * 1_000.0);
            // Propagation is negligible at these ranges; each attempt pays
            // its transmission time plus a deterministic capped exponential
            // MAC backoff, scaled by any active link-degradation multiplier.
            let service_s: f64 = (1..=attempts)
                .map(|k| tx_time_s + mac_backoff_s(k))
                .sum();
            latency = latency + SimDuration::from_secs_f64(service_s * self.latency_mult);
            // Energy: transmitter pays per attempt, receiver pays once.
            let tx_energy = self.nodes[from as usize].tx_power_w * tx_time_s * attempts as f64;
            self.drain(from, tx_energy);
            self.drain(to, 0.5 * link.radio.tx_power_w() * tx_time_s);
            if !hop_ok {
                success = false;
                break;
            }
        }
        if success {
            let mut msg = msg;
            // Compromised-relay faults act on the *relay role*: the first
            // active compromised node strictly inside the route delays the
            // message and (optionally) corrupts it.
            let interdiction = route
                .iter()
                .skip(1)
                .take(route.len().saturating_sub(2))
                .map(|&i| self.ids[i as usize])
                .find_map(|relay| {
                    self.compromises
                        .iter()
                        .find(|(spec, on)| *on && spec.relays.contains(&relay))
                        .map(|(spec, _)| (relay, spec.extra_delay, spec.tamper))
                });
            if let Some((relay, extra_delay, tamper)) = interdiction {
                latency = latency + extra_delay;
                if tamper {
                    msg.mark_tampered();
                    self.stats.tampered += 1;
                    self.recorder.record(TraceEvent::MsgTampered {
                        from: msg.src().raw(),
                        to: msg.dst().raw(),
                        relay: relay.raw(),
                    });
                }
            }
            let at = self.now + latency;
            self.push(at, Event::Deliver(msg));
        } else {
            self.drop_message(&msg, DropCause::Channel);
        }
    }

    /// The single place a message death is accounted: increments the
    /// total drop counter and exactly one per-cause counter, and emits
    /// the trace event. Both the synchronous transmit path and the
    /// deferred delivery path route through here, so `dropped` always
    /// equals the sum of the per-cause counters.
    fn drop_message(&mut self, msg: &Message, cause: DropCause) {
        self.stats.dropped += 1;
        match cause {
            DropCause::NoRoute => self.stats.dropped_no_route += 1,
            DropCause::Channel => self.stats.dropped_channel += 1,
            DropCause::Dead => self.stats.dropped_dead += 1,
            DropCause::Asleep => self.stats.dropped_asleep += 1,
        }
        self.recorder.record(TraceEvent::MsgDropped {
            from: msg.src().raw(),
            to: msg.dst().raw(),
            cause,
        });
    }

    /// Tries a hop up to `retries + 1` times; returns success and the
    /// number of attempts consumed.
    fn attempt_hop(&mut self, from: u32, to: u32, link: LinkQuality) -> (bool, u32) {
        let from_pos = self.nodes[from as usize].mobility.position();
        let to_pos = self.nodes[to as usize].mobility.position();
        for attempt in 1..=(self.retries + 1) {
            let p = self
                .channel
                .delivery_probability(&mut self.rng, from_pos, to_pos, link.radio);
            if self.rng.gen::<f64>() < p {
                return (true, attempt);
            }
        }
        (false, self.retries + 1)
    }

    fn drain(&mut self, i: u32, joules: f64) {
        let n = &mut self.nodes[i as usize];
        n.energy.drain(joules);
        self.stats.energy_spent_j += joules;
        if self.nodes[i as usize].energy.is_depleted() && self.nodes[i as usize].alive {
            self.nodes[i as usize].alive = false;
            self.invalidate_node(i);
            let node = self.ids[i as usize].raw();
            self.recorder.record(TraceEvent::NodeDepleted { node });
        }
    }

    fn mobility_tick(&mut self) {
        let dt = self.mobility_step.as_secs_f64();
        let mut moved = false;
        for i in 0..self.nodes.len() {
            // Split borrow: temporarily move mobility state out so the
            // model can draw from the shared RNG.
            let mut mob = std::mem::replace(
                &mut self.nodes[i].mobility,
                MobilityState::new(MobilityModel::Static, Point::ORIGIN),
            );
            let before = mob.position();
            mob.step(&mut self.rng, dt);
            moved |= mob.position() != before;
            self.nodes[i].mobility = mob;
            if self.nodes[i].alive {
                let idle = self.idle_drain_w * dt;
                self.nodes[i].energy.drain(idle);
                self.stats.energy_spent_j += idle;
                if self.nodes[i].energy.is_depleted() {
                    self.nodes[i].alive = false;
                    self.invalidate_node(i as u32);
                    let node = self.ids[i].raw();
                    self.recorder.record(TraceEvent::NodeDepleted { node });
                }
            }
        }
        // A tick over an all-static fleet refreshes liveness only; any
        // actual movement forces the full spatial rebuild.
        self.invalidate_tick(moved);
        self.recorder
            .set_gauge("netsim.energy_spent_j", self.stats.energy_spent_j);
        let next = self.now + self.mobility_step;
        self.push(next, Event::MobilityTick);
    }
}

/// The battlefield network simulator. See the [module docs](self) for an
/// end-to-end example.
pub struct Simulator {
    core: Core,
    behaviors: BTreeMap<NodeId, Box<dyn Behavior>>,
    started: Vec<NodeId>,
    /// Reused buffer for same-timestamp event batches in the run loop.
    batch: Vec<Event>,
}

impl Simulator {
    /// Starts building a simulator over a node catalog.
    pub fn builder(catalog: NodeCatalog) -> SimulatorBuilder {
        SimulatorBuilder {
            catalog,
            terrain: Terrain::default(),
            jammers: Vec::new(),
            mobility: BTreeMap::new(),
            sleep: BTreeMap::new(),
            seed: 0,
            mobility_step: SimDuration::from_millis(1_000),
            retries: 3,
            idle_drain_w: 0.01,
            recorder: Recorder::disabled(),
            reference_mode: false,
        }
    }

    /// Attaches (or replaces) the behaviour of a node. `on_start` fires at
    /// the current simulation time.
    pub fn set_behavior(&mut self, node: NodeId, behavior: Box<dyn Behavior>) {
        self.behaviors.insert(node, behavior);
        self.started.retain(|&n| n != node);
        self.dispatch_start(node);
    }

    fn dispatch_start(&mut self, node: NodeId) {
        if self.started.contains(&node) || self.core.idx(node).is_none() {
            return;
        }
        if let Some(mut b) = self.behaviors.remove(&node) {
            let mut ctx = Context {
                core: &mut self.core,
                node,
            };
            b.on_start(&mut ctx);
            self.behaviors.insert(node, b);
            self.started.push(node);
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// Accumulated network statistics.
    pub fn stats(&self) -> &NetStats {
        &self.core.stats
    }

    /// Events dispatched by the event loop since construction. A
    /// throughput denominator for scale harnesses; not part of any
    /// digest or checkpoint, so resumed runs restart the count.
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }

    /// The observability recorder this simulator records into (disabled
    /// unless one was attached via [`SimulatorBuilder::recorder`]).
    pub fn recorder(&self) -> &Recorder {
        &self.core.recorder
    }

    /// Whether a node is up (alive and not energy-depleted).
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.core.is_up(node)
    }

    /// Current position of a node, or `None` for unknown ids.
    pub fn position(&self, node: NodeId) -> Option<Point> {
        self.core.node(node).map(|n| n.mobility.position())
    }

    /// Remaining energy of a node, or `None` for unknown ids.
    pub fn energy(&self, node: NodeId) -> Option<EnergyBudget> {
        self.core.node(node).map(|n| n.energy)
    }

    /// A shared handle to the current connectivity graph snapshot.
    ///
    /// O(1) when the cached graph is fresh: the handle is refcounted,
    /// not a deep copy. The snapshot is frozen at this instant — the
    /// simulator copies-on-write before mutating its own graph, so the
    /// handle never changes underneath the caller.
    pub fn connectivity(&mut self) -> Rc<ConnectivityGraph> {
        self.core.graph_handle()
    }

    /// Schedules a node failure at `at` (battle damage, crash).
    pub fn schedule_node_down(&mut self, at: SimTime, node: NodeId) {
        self.core.push(at, Event::NodeDown(node));
    }

    /// Schedules a node recovery at `at`.
    pub fn schedule_node_up(&mut self, at: SimTime, node: NodeId) {
        self.core.push(at, Event::NodeUp(node));
    }

    /// Schedules toggling jammer `index` (as returned by
    /// [`SimulatorBuilder::jammer`] insertion order) at `at`.
    pub fn schedule_jammer(&mut self, at: SimTime, index: usize, active: bool) {
        self.core.push(at, Event::SetJammer { index, active });
    }

    /// Registers a partition cut (inactive), returning its index for
    /// [`Simulator::schedule_partition`].
    pub fn add_partition(&mut self, spec: PartitionSpec) -> usize {
        self.core.partitions.push((spec, false));
        self.core.partitions.len() - 1
    }

    /// Schedules activating or clearing partition `index` at `at`.
    pub fn schedule_partition(&mut self, at: SimTime, index: usize, active: bool) {
        self.core.push(at, Event::SetPartition { index, active });
    }

    /// Registers a link degradation (inactive), returning its index for
    /// [`Simulator::schedule_degradation`].
    pub fn add_degradation(&mut self, spec: LinkDegradation) -> usize {
        self.core.degradations.push((spec, false));
        self.core.degradations.len() - 1
    }

    /// Schedules activating or clearing link degradation `index` at `at`.
    /// Active degradations compose: losses add, multipliers multiply.
    pub fn schedule_degradation(&mut self, at: SimTime, index: usize, active: bool) {
        self.core.push(at, Event::SetDegradation { index, active });
    }

    /// Registers a compromised-relay spec (inactive), returning its index
    /// for [`Simulator::schedule_compromise`].
    pub fn add_compromise(&mut self, spec: CompromiseSpec) -> usize {
        self.core.compromises.push((spec, false));
        self.core.compromises.len() - 1
    }

    /// Schedules activating or clearing compromise `index` at `at`.
    pub fn schedule_compromise(&mut self, at: SimTime, index: usize, active: bool) {
        self.core.push(at, Event::SetCompromise { index, active });
    }

    /// Registers a region blackout over `rect`, returning its index for
    /// [`Simulator::schedule_region_outage`] /
    /// [`Simulator::schedule_region_restore`].
    pub fn add_region_blackout(&mut self, rect: Rect) -> usize {
        self.core.blackouts.push(Blackout {
            rect,
            affected: BTreeSet::new(),
        });
        self.core.blackouts.len() - 1
    }

    /// Schedules blackout `index` to fire at `at`: every alive node
    /// inside the rect at that instant goes down together.
    pub fn schedule_region_outage(&mut self, at: SimTime, index: usize) {
        self.core.push(at, Event::RegionOutage { index });
    }

    /// Schedules lifting blackout `index` at `at`: nodes it killed are
    /// revived unless they depleted in the meantime.
    pub fn schedule_region_restore(&mut self, at: SimTime, index: usize) {
        self.core.push(at, Event::RegionRestore { index });
    }

    /// Runs until the queue is empty or `deadline` is reached; the clock
    /// ends at `deadline` (or the last event time if the queue drains).
    pub fn run_until(&mut self, deadline: SimTime) {
        // Fire on_start for behaviours attached before the first run.
        let pending: Vec<NodeId> = self
            .behaviors
            .keys()
            .copied()
            .filter(|n| !self.started.contains(n))
            .collect();
        for n in pending {
            self.dispatch_start(n);
        }
        if self.core.reference_mode {
            // Legacy single-pop dispatch, kept verbatim as the oracle the
            // batched loop is tested against.
            while let Some(Reverse(next)) = self.core.queue.peek() {
                if next.at > deadline {
                    break;
                }
                // lint: allow(panic) — the loop condition peeked this entry, so pop cannot fail
                let Reverse(q) = self.core.queue.pop().expect("peeked");
                self.core.now = q.at;
                // Stamp the shared observability clock before dispatching so
                // every event recorded downstream carries this sim time.
                self.core.recorder.set_time_us(q.at.as_micros());
                self.core.events_processed += 1;
                self.handle(q.event);
            }
        } else {
            // Batched dispatch: drain every event sharing the head
            // timestamp in one pass (heap pops yield them in seq order,
            // i.e. schedule order), stamp the observability clock once,
            // then dispatch in order. Events scheduled *at* the current
            // timestamp during dispatch are picked up by the next outer
            // iteration — after the in-flight batch, exactly where the
            // one-at-a-time loop would have popped them.
            let mut batch = std::mem::take(&mut self.batch);
            loop {
                let at = match self.core.queue.peek() {
                    Some(Reverse(head)) if head.at <= deadline => head.at,
                    _ => break,
                };
                self.core.now = at;
                self.core.recorder.set_time_us(at.as_micros());
                while let Some(Reverse(head)) = self.core.queue.peek() {
                    if head.at != at {
                        break;
                    }
                    // lint: allow(panic) — the loop condition peeked this entry, so pop cannot fail
                    let Reverse(q) = self.core.queue.pop().expect("peeked");
                    batch.push(q.event);
                }
                for event in batch.drain(..) {
                    self.core.events_processed += 1;
                    self.handle(event);
                }
            }
            self.batch = batch;
        }
        if self.core.now < deadline {
            self.core.now = deadline;
            self.core.recorder.set_time_us(deadline.as_micros());
        }
    }

    /// Runs for a duration from the current time.
    pub fn run_for(&mut self, duration: SimDuration) {
        let deadline = self.core.now + duration;
        self.run_until(deadline);
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Deliver(msg) => {
                if !self.core.is_up(msg.dst()) {
                    self.core.drop_message(&msg, DropCause::Dead);
                    return;
                }
                if !self.core.is_active(msg.dst()) {
                    // The destination dozed off while the message was in
                    // flight.
                    self.core.drop_message(&msg, DropCause::Asleep);
                    return;
                }
                self.core.stats.delivered += 1;
                let latency = self.core.now.saturating_since(msg.sent_at());
                self.core.stats.latency_ms.record(latency.as_millis_f64());
                self.core.recorder.record(TraceEvent::MsgDelivered {
                    from: msg.src().raw(),
                    to: msg.dst().raw(),
                    latency_us: latency.as_micros(),
                });
                *self
                    .core
                    .stats
                    .delivered_by_kind
                    .entry(msg.kind())
                    .or_insert(0) += 1;
                let dst = msg.dst();
                if let Some(mut b) = self.behaviors.remove(&dst) {
                    let mut ctx = Context {
                        core: &mut self.core,
                        node: dst,
                    };
                    b.on_message(&mut ctx, &msg);
                    self.behaviors.insert(dst, b);
                }
            }
            Event::Timer { node, token } => {
                if !self.core.is_up(node) {
                    return;
                }
                if let Some(mut b) = self.behaviors.remove(&node) {
                    let mut ctx = Context {
                        core: &mut self.core,
                        node,
                    };
                    b.on_timer(&mut ctx, token);
                    self.behaviors.insert(node, b);
                }
            }
            Event::MobilityTick => self.core.mobility_tick(),
            Event::NodeDown(id) => {
                if let Some(i) = self.core.idx(id) {
                    self.core.nodes[i as usize].alive = false;
                    self.core.invalidate_node(i);
                    self.core
                        .recorder
                        .record(TraceEvent::NodeDown { node: id.raw() });
                }
            }
            Event::NodeUp(id) => {
                if let Some(i) = self.core.idx(id) {
                    if !self.core.nodes[i as usize].energy.is_depleted() {
                        self.core.nodes[i as usize].alive = true;
                        self.core.invalidate_node(i);
                        self.core
                            .recorder
                            .record(TraceEvent::NodeUp { node: id.raw() });
                    }
                }
            }
            Event::SetJammer { index, active } => {
                self.core.channel.set_jammer_active(index, active);
                self.core.invalidate_graph();
                self.core.recorder.record(TraceEvent::JammerSet {
                    index: index as u64,
                    on: active,
                });
            }
            Event::SetPartition { index, active } => {
                if let Some(p) = self.core.partitions.get_mut(index) {
                    p.1 = active;
                    self.core.invalidate_graph();
                    self.core.recorder.record(TraceEvent::PartitionSet {
                        index: index as u64,
                        on: active,
                    });
                }
            }
            Event::SetDegradation { index, active } => {
                if let Some(d) = self.core.degradations.get_mut(index) {
                    d.1 = active;
                    let spec = d.0;
                    let mut loss = 0.0;
                    let mut mult = 1.0;
                    for (s, on) in &self.core.degradations {
                        if *on {
                            loss += s.extra_loss_db.max(0.0);
                            mult *= s.latency_mult.max(1.0);
                        }
                    }
                    self.core.channel.set_extra_loss_db(loss);
                    self.core.latency_mult = mult;
                    self.core.invalidate_graph();
                    self.core.recorder.record(TraceEvent::DegradeSet {
                        index: index as u64,
                        on: active,
                        extra_loss_db: spec.extra_loss_db,
                        latency_mult: spec.latency_mult,
                    });
                }
            }
            Event::SetCompromise { index, active } => {
                if let Some(c) = self.core.compromises.get_mut(index) {
                    c.1 = active;
                    self.core.recorder.record(TraceEvent::CompromiseSet {
                        index: index as u64,
                        on: active,
                    });
                }
            }
            Event::RegionOutage { index } => {
                let Some(rect) = self.core.blackouts.get(index).map(|b| b.rect) else {
                    return;
                };
                // Membership is resolved at fire time so mobile nodes are
                // caught wherever they actually are. Dense iteration is
                // id-ascending, matching the legacy map order.
                let mut killed = BTreeSet::new();
                let mut killed_idx: Vec<u32> = Vec::new();
                for (i, n) in self.core.nodes.iter_mut().enumerate() {
                    if n.alive && !n.energy.is_depleted() && rect.contains(n.mobility.position())
                    {
                        n.alive = false;
                        killed.insert(n.id);
                        killed_idx.push(i as u32);
                    }
                }
                for &i in &killed_idx {
                    self.core.invalidate_node(i);
                }
                for id in &killed {
                    self.core
                        .recorder
                        .record(TraceEvent::NodeDown { node: id.raw() });
                }
                self.core.recorder.record(TraceEvent::RegionOutage {
                    index: index as u64,
                    killed: killed.len() as u64,
                });
                self.core.blackouts[index].affected = killed;
            }
            Event::RegionRestore { index } => {
                let Some(b) = self.core.blackouts.get_mut(index) else {
                    return;
                };
                let affected = std::mem::take(&mut b.affected);
                let mut revived = 0u64;
                for id in &affected {
                    if let Some(i) = self.core.idx(*id) {
                        // Energy depletion during the outage is permanent.
                        let n = &mut self.core.nodes[i as usize];
                        if !n.energy.is_depleted() && !n.alive {
                            n.alive = true;
                            revived += 1;
                            self.core.invalidate_node(i);
                            self.core
                                .recorder
                                .record(TraceEvent::NodeUp { node: id.raw() });
                        }
                    }
                }
                self.core.recorder.record(TraceEvent::RegionRestore {
                    index: index as u64,
                    revived,
                });
            }
        }
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.core.now)
            .field("nodes", &self.core.nodes.len())
            .field("behaviors", &self.behaviors.len())
            .field("stats", &self.core.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iobt_types::{Affiliation, NodeSpec, Radio};

    fn two_node_catalog(gap_m: f64) -> NodeCatalog {
        let mut catalog = NodeCatalog::new();
        for i in 0..2 {
            catalog
                .insert(
                    NodeSpec::builder(NodeId::new(i))
                        .affiliation(Affiliation::Blue)
                        .position(Point::new(i as f64 * gap_m, 0.0))
                        .radio(Radio::new(RadioKind::Wifi))
                        .energy(EnergyBudget::new(10_000.0))
                        .build(),
                )
                .unwrap();
        }
        catalog
    }

    struct Echo;
    impl Behavior for Echo {
        fn on_message(&mut self, ctx: &mut Context<'_>, msg: &Message) {
            if msg.kind() == 0 {
                ctx.send(msg.src(), 1, msg.payload().to_vec());
            }
        }
    }

    struct PingOnce {
        target: NodeId,
    }
    impl Behavior for PingOnce {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.send(self.target, 0, b"ping".to_vec());
        }
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = Simulator::builder(two_node_catalog(50.0)).seed(1).build();
        sim.set_behavior(NodeId::new(1), Box::new(Echo));
        sim.set_behavior(NodeId::new(0), Box::new(PingOnce { target: NodeId::new(1) }));
        sim.run_for(SimDuration::from_millis(2_000));
        let stats = sim.stats();
        assert_eq!(stats.sent, 2, "ping and echo");
        assert_eq!(stats.delivered, 2);
        assert!(stats.latency_ms.mean() > 0.0);
        assert_eq!(stats.delivered_by_kind[&0], 1);
        assert_eq!(stats.delivered_by_kind[&1], 1);
    }

    #[test]
    fn unreachable_destination_is_dropped_no_route() {
        let mut sim = Simulator::builder(two_node_catalog(50_000.0)).seed(1).build();
        sim.set_behavior(NodeId::new(0), Box::new(PingOnce { target: NodeId::new(1) }));
        sim.run_for(SimDuration::from_millis(500));
        assert_eq!(sim.stats().dropped_no_route, 1);
        assert_eq!(sim.stats().delivered, 0);
    }

    #[test]
    fn dead_destination_is_dropped_dead() {
        let mut sim = Simulator::builder(two_node_catalog(50.0)).seed(1).build();
        sim.schedule_node_down(SimTime::from_millis(1), NodeId::new(1));
        sim.run_until(SimTime::from_millis(10));
        sim.set_behavior(NodeId::new(0), Box::new(PingOnce { target: NodeId::new(1) }));
        sim.run_for(SimDuration::from_millis(500));
        assert_eq!(sim.stats().dropped_dead, 1);
        assert!(!sim.is_alive(NodeId::new(1)));
    }

    #[test]
    fn node_recovers_after_up_event() {
        let mut sim = Simulator::builder(two_node_catalog(50.0)).seed(1).build();
        sim.schedule_node_down(SimTime::from_millis(1), NodeId::new(1));
        sim.schedule_node_up(SimTime::from_millis(100), NodeId::new(1));
        sim.run_until(SimTime::from_millis(200));
        assert!(sim.is_alive(NodeId::new(1)));
        sim.set_behavior(NodeId::new(0), Box::new(PingOnce { target: NodeId::new(1) }));
        sim.run_for(SimDuration::from_millis(500));
        assert_eq!(sim.stats().delivered, 1);
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let run = |seed: u64| {
            let mut sim = Simulator::builder(two_node_catalog(120.0)).seed(seed).build();
            sim.set_behavior(NodeId::new(1), Box::new(Echo));
            sim.set_behavior(NodeId::new(0), Box::new(PingOnce { target: NodeId::new(1) }));
            sim.run_for(SimDuration::from_millis(3_000));
            (
                sim.stats().sent,
                sim.stats().delivered,
                sim.stats().latency_ms.mean(),
                sim.stats().energy_spent_j,
            )
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn transmissions_cost_energy() {
        let mut sim = Simulator::builder(two_node_catalog(50.0)).seed(1).build();
        sim.set_behavior(NodeId::new(0), Box::new(PingOnce { target: NodeId::new(1) }));
        sim.run_for(SimDuration::from_millis(100));
        assert!(sim.stats().energy_spent_j > 0.0);
        let e0 = sim.energy(NodeId::new(0)).unwrap();
        assert!(e0.remaining_j() < e0.capacity_j());
    }

    #[test]
    fn depleted_nodes_die() {
        let mut catalog = NodeCatalog::new();
        catalog
            .insert(
                NodeSpec::builder(NodeId::new(0))
                    .position(Point::new(0.0, 0.0))
                    .radio(Radio::new(RadioKind::Wifi))
                    .energy(EnergyBudget::new(0.5)) // dies after ~50 s idle at 0.01 W
                    .build(),
            )
            .unwrap();
        let mut sim = Simulator::builder(catalog).seed(1).build();
        sim.run_for(SimDuration::from_secs_f64(120.0));
        assert!(!sim.is_alive(NodeId::new(0)));
    }

    struct PeriodicSender {
        target: NodeId,
        period: SimDuration,
        remaining: u32,
    }
    impl Behavior for PeriodicSender {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(self.period, 0);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
            if self.remaining == 0 {
                return;
            }
            self.remaining -= 1;
            ctx.send(self.target, 2, vec![0u8; 64]);
            ctx.set_timer(self.period, 0);
        }
    }

    #[test]
    fn timers_drive_periodic_traffic() {
        let mut sim = Simulator::builder(two_node_catalog(50.0)).seed(3).build();
        sim.set_behavior(
            NodeId::new(0),
            Box::new(PeriodicSender {
                target: NodeId::new(1),
                period: SimDuration::from_millis(100),
                remaining: 5,
            }),
        );
        sim.run_for(SimDuration::from_millis(2_000));
        assert_eq!(sim.stats().sent, 5);
        assert_eq!(sim.stats().delivered, 5);
    }

    #[test]
    fn jammer_toggle_cuts_and_restores_links() {
        let mut catalog = two_node_catalog(100.0);
        // A third node far away to make sure nothing else interferes.
        catalog
            .insert(
                NodeSpec::builder(NodeId::new(2))
                    .position(Point::new(10_000.0, 10_000.0))
                    .build(),
            )
            .unwrap();
        let jammer = Jammer::new(Point::new(50.0, 0.0), 50.0);
        let mut sim = Simulator::builder(catalog).jammer(jammer).seed(5).build();
        // Jammed from the start: ping drops.
        sim.set_behavior(NodeId::new(0), Box::new(PingOnce { target: NodeId::new(1) }));
        sim.run_for(SimDuration::from_millis(500));
        assert_eq!(sim.stats().delivered, 0, "jammer should kill the link");
        // Switch jammer off and ping again.
        let at = sim.now() + SimDuration::from_millis(10);
        sim.schedule_jammer(at, 0, false);
        sim.run_for(SimDuration::from_millis(50));
        sim.set_behavior(NodeId::new(0), Box::new(PingOnce { target: NodeId::new(1) }));
        sim.run_for(SimDuration::from_millis(500));
        assert_eq!(sim.stats().delivered, 1, "link should recover after jamming stops");
    }

    #[test]
    fn sleep_schedule_phases() {
        let s = SleepSchedule::new(SimDuration::from_millis(100), 0.5, SimDuration::ZERO);
        assert!(s.is_awake(SimTime::from_millis(0)));
        assert!(s.is_awake(SimTime::from_millis(49)));
        assert!(!s.is_awake(SimTime::from_millis(50)));
        assert!(!s.is_awake(SimTime::from_millis(99)));
        assert!(s.is_awake(SimTime::from_millis(100)));
        // Phase shifts the window.
        let shifted =
            SleepSchedule::new(SimDuration::from_millis(100), 0.5, SimDuration::from_millis(50));
        assert!(!shifted.is_awake(SimTime::from_millis(0)));
        assert!(shifted.is_awake(SimTime::from_millis(60)));
    }

    #[test]
    fn sleeping_destination_drops_with_asleep_stat() {
        let mut catalog = two_node_catalog(50.0);
        let _ = &mut catalog;
        // Node 1 sleeps the entire time (awake fraction 0).
        let mut sim = Simulator::builder(catalog)
            .sleep_schedule(
                NodeId::new(1),
                SleepSchedule::new(SimDuration::from_millis(1_000), 0.0, SimDuration::ZERO),
            )
            .seed(1)
            .build();
        sim.set_behavior(NodeId::new(0), Box::new(PingOnce { target: NodeId::new(1) }));
        sim.run_for(SimDuration::from_millis(500));
        assert_eq!(sim.stats().dropped_asleep, 1);
        assert_eq!(sim.stats().delivered, 0);
    }

    #[test]
    fn duty_cycled_destination_receives_while_awake() {
        // Node 1 is awake for the first half of every second; a ping at
        // t=0 lands within the awake window.
        let mut sim = Simulator::builder(two_node_catalog(50.0))
            .sleep_schedule(
                NodeId::new(1),
                SleepSchedule::new(SimDuration::from_millis(1_000), 0.5, SimDuration::ZERO),
            )
            .seed(1)
            .build();
        sim.set_behavior(NodeId::new(0), Box::new(PingOnce { target: NodeId::new(1) }));
        sim.run_for(SimDuration::from_millis(400));
        assert_eq!(sim.stats().delivered, 1);
        assert_eq!(sim.stats().dropped_asleep, 0);
    }

    #[test]
    fn periodic_traffic_to_duty_cycled_node_loses_sleep_phase_messages() {
        let mut sim = Simulator::builder(two_node_catalog(50.0))
            .sleep_schedule(
                NodeId::new(1),
                SleepSchedule::new(SimDuration::from_millis(1_000), 0.5, SimDuration::ZERO),
            )
            .seed(2)
            .build();
        sim.set_behavior(
            NodeId::new(0),
            Box::new(PeriodicSender {
                target: NodeId::new(1),
                period: SimDuration::from_millis(100),
                remaining: 40,
            }),
        );
        sim.run_for(SimDuration::from_secs_f64(10.0));
        let stats = sim.stats();
        assert_eq!(stats.sent, 40);
        assert!(stats.dropped_asleep > 10, "{stats}");
        assert!(stats.delivered > 10, "{stats}");
        let ratio = stats.delivered as f64 / stats.sent as f64;
        assert!((0.3..=0.7).contains(&ratio), "≈half arrive: {ratio}");
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut sim = Simulator::builder(two_node_catalog(50.0)).build();
        sim.run_until(SimTime::from_millis(1_234));
        assert_eq!(sim.now(), SimTime::from_millis(1_234));
    }

    #[test]
    fn mac_backoff_is_capped_exponential() {
        assert_eq!(mac_backoff_s(1), 0.0005);
        assert_eq!(mac_backoff_s(2), 0.0010);
        assert_eq!(mac_backoff_s(3), 0.0020);
        assert_eq!(mac_backoff_s(4), 0.0040);
        assert_eq!(mac_backoff_s(5), MAC_BACKOFF_CAP_S, "capped from here on");
        assert_eq!(mac_backoff_s(40), MAC_BACKOFF_CAP_S, "shift is clamped");
    }

    fn chain_catalog(n: u64, gap_m: f64) -> NodeCatalog {
        let mut catalog = NodeCatalog::new();
        for i in 0..n {
            catalog
                .insert(
                    NodeSpec::builder(NodeId::new(i))
                        .affiliation(Affiliation::Blue)
                        .position(Point::new(i as f64 * gap_m, 0.0))
                        .radio(Radio::new(RadioKind::Wifi))
                        .energy(EnergyBudget::new(10_000.0))
                        .build(),
                )
                .unwrap();
        }
        catalog
    }

    #[test]
    fn backoff_counts_attempts_and_retransmits_reproducibly() {
        // A marginal urban link forces MAC retries; the attempt accounting
        // must satisfy attempts = first-transmissions + retransmits and be
        // byte-stable across same-seed runs.
        let run = || {
            let urban = Terrain::uniform(Rect::square(2_000.0), crate::terrain::Clutter::Urban);
            let mut sim = Simulator::builder(two_node_catalog(115.0))
                .terrain(urban)
                .seed(11)
                .build();
            sim.set_behavior(
                NodeId::new(0),
                Box::new(PeriodicSender {
                    target: NodeId::new(1),
                    period: SimDuration::from_millis(100),
                    remaining: 30,
                }),
            );
            sim.run_for(SimDuration::from_secs_f64(5.0));
            (
                sim.stats().hop_attempts,
                sim.stats().retransmits,
                sim.stats().latency_ms.mean(),
            )
        };
        let (attempts, retx, latency) = run();
        assert!(attempts >= 30, "every send consumes at least one attempt");
        assert!(retx > 0, "a 115 m wifi link must force some retries");
        assert_eq!(
            attempts - retx,
            30,
            "attempts minus retransmits = hops tried once"
        );
        assert_eq!(run(), (attempts, retx, latency), "same-seed stability");
    }

    #[test]
    fn drop_causes_are_counted_exactly_once_each() {
        // Mix of failure modes: an unreachable peer (no_route), a dead
        // destination, and sleep-phase losses on the deferred path. The
        // total must equal the sum over causes — no double counting.
        let mut catalog = chain_catalog(2, 50.0);
        catalog
            .insert(
                NodeSpec::builder(NodeId::new(9))
                    .position(Point::new(50_000.0, 0.0))
                    .radio(Radio::new(RadioKind::Wifi))
                    .energy(EnergyBudget::new(10_000.0))
                    .build(),
            )
            .unwrap();
        let mut sim = Simulator::builder(catalog)
            .sleep_schedule(
                NodeId::new(1),
                SleepSchedule::new(SimDuration::from_millis(40), 0.5, SimDuration::ZERO),
            )
            .seed(7)
            .build();
        sim.set_behavior(NodeId::new(0), Box::new(PingOnce { target: NodeId::new(9) }));
        sim.set_behavior(
            NodeId::new(0),
            Box::new(PeriodicSender {
                target: NodeId::new(1),
                period: SimDuration::from_millis(35),
                remaining: 60,
            }),
        );
        sim.schedule_node_down(SimTime::from_secs_f64(1.0), NodeId::new(1));
        sim.run_for(SimDuration::from_secs_f64(4.0));
        let s = sim.stats();
        assert_eq!(
            s.dropped,
            s.dropped_no_route + s.dropped_channel + s.dropped_dead + s.dropped_asleep,
            "each drop counted under exactly one cause: {s}"
        );
        assert_eq!(s.sent, s.delivered + s.dropped, "no message unaccounted");
        assert!(s.dropped_dead > 0, "sends after the kill must drop dead");
    }

    #[test]
    fn message_dying_in_flight_is_counted_once() {
        // Kill the destination *between* transmit and deferred delivery:
        // the message must be counted dropped_dead exactly once and never
        // delivered.
        let mut sim = Simulator::builder(two_node_catalog(50.0)).seed(1).build();
        sim.set_behavior(NodeId::new(0), Box::new(PingOnce { target: NodeId::new(1) }));
        // Delivery latency is ≥ tx_time + 0.5 ms backoff; 200 µs lands
        // inside the in-flight window.
        sim.schedule_node_down(SimTime::from_micros(200), NodeId::new(1));
        sim.run_for(SimDuration::from_millis(500));
        let s = sim.stats();
        assert_eq!(s.delivered, 0);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.dropped_dead, 1);
        assert_eq!(
            s.dropped,
            s.dropped_no_route + s.dropped_channel + s.dropped_dead + s.dropped_asleep
        );
    }

    #[test]
    fn partition_cuts_links_and_clears() {
        let mut sim = Simulator::builder(two_node_catalog(50.0)).seed(3).build();
        let cut = sim.add_partition(PartitionSpec::new([NodeId::new(0)], [NodeId::new(1)]));
        sim.schedule_partition(SimTime::from_millis(1), cut, true);
        sim.run_until(SimTime::from_millis(5));
        sim.set_behavior(NodeId::new(0), Box::new(PingOnce { target: NodeId::new(1) }));
        sim.run_for(SimDuration::from_millis(100));
        assert_eq!(sim.stats().dropped_no_route, 1, "cut link: no route");
        let at = sim.now() + SimDuration::from_millis(1);
        sim.schedule_partition(at, cut, false);
        sim.run_for(SimDuration::from_millis(10));
        sim.set_behavior(NodeId::new(0), Box::new(PingOnce { target: NodeId::new(1) }));
        sim.run_for(SimDuration::from_millis(100));
        assert_eq!(sim.stats().delivered, 1, "link restored after clear");
    }

    #[test]
    fn degradation_multiplies_latency_and_adds_loss() {
        let base = {
            let mut sim = Simulator::builder(two_node_catalog(50.0)).seed(5).build();
            sim.set_behavior(NodeId::new(0), Box::new(PingOnce { target: NodeId::new(1) }));
            sim.run_for(SimDuration::from_millis(200));
            sim.stats().latency_ms.mean()
        };
        let mut sim = Simulator::builder(two_node_catalog(50.0)).seed(5).build();
        let deg = sim.add_degradation(LinkDegradation::new(0.0, 4.0));
        sim.schedule_degradation(SimTime::from_micros(1), deg, true);
        sim.run_until(SimTime::from_micros(10));
        sim.set_behavior(NodeId::new(0), Box::new(PingOnce { target: NodeId::new(1) }));
        sim.run_for(SimDuration::from_millis(200));
        let degraded = sim.stats().latency_ms.mean();
        assert_eq!(sim.stats().delivered, 1);
        assert!(
            degraded > base * 2.0,
            "4x service-time multiplier must show up: base={base} degraded={degraded}"
        );
        // A strong extra loss on a marginal link severs it outright.
        let mut sim = Simulator::builder(two_node_catalog(115.0)).seed(5).build();
        let deg = sim.add_degradation(LinkDegradation::new(60.0, 1.0));
        sim.schedule_degradation(SimTime::from_micros(1), deg, true);
        sim.run_until(SimTime::from_micros(10));
        sim.set_behavior(NodeId::new(0), Box::new(PingOnce { target: NodeId::new(1) }));
        sim.run_for(SimDuration::from_millis(200));
        assert_eq!(sim.stats().delivered, 0, "60 dB extra loss kills the link");
    }

    #[test]
    fn compromised_relay_delays_and_tampers() {
        // Chain 0 – 1 – 2 where node 1 must relay: 100 m hops link, but the
        // 200 m direct path exceeds wifi range, so the route goes through
        // the compromised middle node.
        let mut sim = Simulator::builder(chain_catalog(3, 100.0)).seed(9).build();
        let spec = CompromiseSpec::new(
            [NodeId::new(1)],
            SimDuration::from_millis(250),
            true,
        );
        let idx = sim.add_compromise(spec);
        sim.schedule_compromise(SimTime::from_micros(1), idx, true);
        sim.run_until(SimTime::from_micros(10));
        sim.set_behavior(NodeId::new(0), Box::new(PingOnce { target: NodeId::new(2) }));
        sim.run_for(SimDuration::from_secs_f64(2.0));
        let s = sim.stats();
        assert_eq!(s.delivered, 1, "tampered messages still arrive: {s}");
        assert_eq!(s.tampered, 1, "relay must flag the message");
        assert!(
            s.latency_ms.mean() >= 250.0,
            "interdiction delay must appear in latency: {}",
            s.latency_ms.mean()
        );
        // Direct traffic between honest neighbors is untouched.
        sim.set_behavior(NodeId::new(2), Box::new(PingOnce { target: NodeId::new(1) }));
        sim.run_for(SimDuration::from_secs_f64(1.0));
        assert_eq!(sim.stats().tampered, 1, "src/dst roles are not interdicted");
    }

    #[test]
    fn region_blackout_kills_inside_and_restores_survivors() {
        let mut sim = Simulator::builder(chain_catalog(4, 100.0)).seed(2).build();
        // Rect covers nodes 0 and 1 (x in [0, 150]); nodes 2, 3 outside.
        let rect = Rect::new(Point::new(-10.0, -10.0), Point::new(150.0, 10.0));
        let idx = sim.add_region_blackout(rect);
        sim.schedule_region_outage(SimTime::from_millis(10), idx);
        sim.run_until(SimTime::from_millis(20));
        assert!(!sim.is_alive(NodeId::new(0)));
        assert!(!sim.is_alive(NodeId::new(1)));
        assert!(sim.is_alive(NodeId::new(2)));
        assert!(sim.is_alive(NodeId::new(3)));
        sim.schedule_region_restore(SimTime::from_millis(100), idx);
        sim.run_until(SimTime::from_millis(200));
        assert!(sim.is_alive(NodeId::new(0)), "restored after the outage lifts");
        assert!(sim.is_alive(NodeId::new(1)));
    }
}
