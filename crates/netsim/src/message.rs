//! Messages exchanged between simulated nodes.

use std::fmt;

use bytes::Bytes;
use iobt_types::NodeId;

use crate::time::SimTime;

/// A unicast application message in flight between two nodes.
///
/// The payload is opaque to the simulator; application behaviours encode
/// whatever they need (sensor reports, model updates, commands).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    src: NodeId,
    dst: NodeId,
    kind: u32,
    payload: Bytes,
    sent_at: SimTime,
    tampered: bool,
}

impl Message {
    /// Creates a message. `kind` is an application-defined tag used for
    /// cheap dispatch without decoding the payload.
    pub fn new(src: NodeId, dst: NodeId, kind: u32, payload: impl Into<Bytes>) -> Self {
        Message {
            src,
            dst,
            kind,
            payload: payload.into(),
            sent_at: SimTime::ZERO,
            tampered: false,
        }
    }

    /// Originating node.
    pub const fn src(&self) -> NodeId {
        self.src
    }

    /// Destination node.
    pub const fn dst(&self) -> NodeId {
        self.dst
    }

    /// Application-defined message tag.
    pub const fn kind(&self) -> u32 {
        self.kind
    }

    /// Opaque payload bytes.
    pub const fn payload(&self) -> &Bytes {
        &self.payload
    }

    /// Time the message entered the network.
    pub const fn sent_at(&self) -> SimTime {
        self.sent_at
    }

    /// Whether a compromised relay tampered with this message in flight.
    /// Integrity-aware receivers must treat flagged payloads as
    /// untrustworthy (§IV: gray/red assets may corrupt what they carry).
    pub const fn tampered(&self) -> bool {
        self.tampered
    }

    pub(crate) fn mark_tampered(&mut self) {
        self.tampered = true;
    }

    /// Total size on the wire in bits, including a fixed 32-byte header.
    pub fn size_bits(&self) -> u64 {
        ((self.payload.len() as u64) + 32) * 8
    }

    pub(crate) fn stamped(mut self, at: SimTime) -> Self {
        self.sent_at = at;
        self
    }

    /// All fields, for checkpoint serialisation of in-flight messages.
    pub(crate) fn snapshot_raw(&self) -> (NodeId, NodeId, u32, &Bytes, SimTime, bool) {
        (
            self.src,
            self.dst,
            self.kind,
            &self.payload,
            self.sent_at,
            self.tampered,
        )
    }

    /// Rebuilds a message bit-for-bit from checkpointed fields.
    pub(crate) fn from_snapshot_raw(
        src: NodeId,
        dst: NodeId,
        kind: u32,
        payload: Bytes,
        sent_at: SimTime,
        tampered: bool,
    ) -> Self {
        Message {
            src,
            dst,
            kind,
            payload,
            sent_at,
            tampered,
        }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "msg kind={} {}→{} ({} B)",
            self.kind,
            self.src,
            self.dst,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_includes_header() {
        let m = Message::new(NodeId::new(1), NodeId::new(2), 0, Bytes::from_static(b"abcd"));
        assert_eq!(m.size_bits(), (4 + 32) * 8);
    }

    #[test]
    fn stamping_sets_sent_time() {
        let m = Message::new(NodeId::new(1), NodeId::new(2), 7, Bytes::new())
            .stamped(SimTime::from_millis(5));
        assert_eq!(m.sent_at(), SimTime::from_millis(5));
        assert_eq!(m.kind(), 7);
    }

    #[test]
    fn display_mentions_endpoints() {
        let m = Message::new(NodeId::new(3), NodeId::new(4), 1, Bytes::new());
        let s = m.to_string();
        assert!(s.contains("n3"));
        assert!(s.contains("n4"));
    }
}
