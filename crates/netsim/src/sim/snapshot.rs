//! Simulator checkpoint save/restore.
//!
//! [`Simulator::save_state`] serialises *every* determinism-relevant
//! piece of world state — the clock, the event-sequence counter, the
//! RNG stream position, the full event queue (including in-flight
//! messages), per-node mobility/energy/liveness, channel jammers and
//! degradation state, registered fault specs, and each behaviour's
//! state via [`Behavior::save_state`]. [`Simulator::restore_state`]
//! applies such a blob onto a freshly built simulator (same catalog,
//! terrain, and builder configuration) and reconstructs behaviours
//! through a [`BehaviorRegistry`] of factories *without* firing
//! `on_start` again, so a resumed run continues the exact event and
//! RNG sequence of the original.
//!
//! The one piece of derived state handled specially is the
//! connectivity-graph cache: it is a pure function of world state, so
//! the blob records only whether it was populated, and restore rebuilds
//! it silently (no `GraphRebuilt` trace event — emitting one would make
//! the post-resume trace diverge from the uninterrupted run).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt;

use bytes::Bytes;
use iobt_ckpt::{CkptError, Dec, DecodeError, Enc};
use iobt_types::{EnergyBudget, NodeId, Point, Rect};

use crate::message::Message;
use crate::mobility::{MobilityModel, MobilityState};
use crate::time::{SimDuration, SimTime};

use super::{
    Behavior, Blackout, CompromiseSpec, Core, Event, GraphDirty, Jammer, LinkDegradation,
    PartitionSpec, Queued, Simulator, SleepSchedule,
};

/// One behaviour's serialised state plus the registry key used to
/// reconstruct it at restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BehaviorSnapshot {
    /// Registry key naming the behaviour's factory (e.g.
    /// `"core.sensor_reporter"`).
    pub kind: String,
    /// Opaque state bytes, fed back through [`Behavior::restore_state`].
    pub state: Vec<u8>,
}

impl BehaviorSnapshot {
    /// Creates a snapshot from a kind and state bytes.
    pub fn new(kind: impl Into<String>, state: Vec<u8>) -> Self {
        BehaviorSnapshot {
            kind: kind.into(),
            state,
        }
    }
}

type BehaviorFactory = Box<dyn Fn() -> Box<dyn Behavior>>;

/// Maps behaviour kinds to factories that build blank instances for
/// [`Simulator::restore_state`] to fill via [`Behavior::restore_state`].
///
/// Factories typically capture shared handles (report logs, task
/// boards) so reconstructed behaviours share state with the runtime
/// exactly like the originals did.
#[derive(Default)]
pub struct BehaviorRegistry {
    factories: BTreeMap<String, BehaviorFactory>,
}

impl BehaviorRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the factory for `kind`.
    pub fn register(
        &mut self,
        kind: impl Into<String>,
        factory: impl Fn() -> Box<dyn Behavior> + 'static,
    ) {
        self.factories.insert(kind.into(), Box::new(factory));
    }

    /// Builds a blank behaviour of `kind`, or `None` for unknown kinds.
    pub fn create(&self, kind: &str) -> Option<Box<dyn Behavior>> {
        self.factories.get(kind).map(|f| f())
    }

    /// Registered kinds, in sorted order.
    pub fn kinds(&self) -> Vec<&str> {
        self.factories.keys().map(String::as_str).collect()
    }
}

impl fmt::Debug for BehaviorRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BehaviorRegistry")
            .field("kinds", &self.kinds())
            .finish()
    }
}

/// Everything that can go wrong saving or restoring a simulator
/// snapshot. Always an `Err`, never a panic — corrupted state must be
/// rejectable.
#[derive(Debug)]
pub enum SnapshotError {
    /// A behaviour returned `None` from [`Behavior::save_state`]; the
    /// simulator cannot be checkpointed with it attached.
    NotCheckpointable(NodeId),
    /// The snapshot bytes are malformed.
    Decode(DecodeError),
    /// The snapshot names a behaviour kind absent from the registry.
    UnknownBehaviorKind(String),
    /// A behaviour rejected its state bytes as malformed.
    BehaviorRestore {
        /// Node the behaviour belongs to.
        node: NodeId,
        /// Registry kind of the behaviour.
        kind: String,
    },
    /// The snapshot references a node id absent from this simulator.
    UnknownNode(u64),
    /// The snapshot disagrees with this simulator's fixed configuration
    /// (different catalog size, retries, mobility step, …).
    Mismatch(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::NotCheckpointable(node) => {
                write!(f, "behaviour on node {node} does not support checkpointing")
            }
            SnapshotError::Decode(e) => write!(f, "snapshot decode failed: {e}"),
            SnapshotError::UnknownBehaviorKind(kind) => {
                write!(f, "no factory registered for behaviour kind {kind:?}")
            }
            SnapshotError::BehaviorRestore { node, kind } => {
                write!(f, "behaviour {kind:?} on node {node} rejected its state")
            }
            SnapshotError::UnknownNode(raw) => {
                write!(f, "snapshot references unknown node id {raw}")
            }
            SnapshotError::Mismatch(why) => {
                write!(f, "snapshot does not match this simulator: {why}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<DecodeError> for SnapshotError {
    fn from(e: DecodeError) -> Self {
        SnapshotError::Decode(e)
    }
}

impl From<SnapshotError> for CkptError {
    fn from(e: SnapshotError) -> Self {
        match e {
            SnapshotError::Decode(d) => CkptError::Decode(d),
            other => CkptError::Mismatch(other.to_string()),
        }
    }
}

fn enc_id(e: &mut Enc, id: NodeId) {
    e.u64(id.raw());
}

fn dec_id(d: &mut Dec<'_>) -> Result<NodeId, DecodeError> {
    Ok(NodeId::new(d.u64()?))
}

fn enc_point(e: &mut Enc, p: Point) {
    e.f64(p.x);
    e.f64(p.y);
}

fn dec_point(d: &mut Dec<'_>) -> Result<Point, DecodeError> {
    Ok(Point::new(d.f64()?, d.f64()?))
}

fn enc_id_set(e: &mut Enc, set: &BTreeSet<NodeId>) {
    e.usize(set.len());
    for id in set {
        enc_id(e, *id);
    }
}

fn dec_id_set(d: &mut Dec<'_>) -> Result<BTreeSet<NodeId>, DecodeError> {
    let n = d.usize()?;
    let mut set = BTreeSet::new();
    for _ in 0..n {
        set.insert(dec_id(d)?);
    }
    Ok(set)
}

fn enc_mobility(e: &mut Enc, state: &MobilityState) {
    let (model, position, target, pause_left_s, route_index) = state.snapshot_raw();
    match model {
        MobilityModel::Static => e.u8(0),
        MobilityModel::RandomWaypoint {
            area,
            speed_mps,
            pause_s,
        } => {
            e.u8(1);
            enc_point(e, area.min());
            enc_point(e, area.max());
            e.f64(*speed_mps);
            e.f64(*pause_s);
        }
        MobilityModel::Route {
            waypoints,
            speed_mps,
        } => {
            e.u8(2);
            e.usize(waypoints.len());
            for w in waypoints {
                enc_point(e, *w);
            }
            e.f64(*speed_mps);
        }
    }
    enc_point(e, position);
    match target {
        Some(t) => {
            e.bool(true);
            enc_point(e, t);
        }
        None => e.bool(false),
    }
    e.f64(pause_left_s);
    e.usize(route_index);
}

fn dec_mobility(d: &mut Dec<'_>) -> Result<MobilityState, DecodeError> {
    let model = match d.u8()? {
        0 => MobilityModel::Static,
        1 => {
            let min = dec_point(d)?;
            let max = dec_point(d)?;
            MobilityModel::RandomWaypoint {
                area: Rect::new(min, max),
                speed_mps: d.f64()?,
                pause_s: d.f64()?,
            }
        }
        2 => {
            let n = d.usize()?;
            let mut waypoints = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                waypoints.push(dec_point(d)?);
            }
            MobilityModel::Route {
                waypoints,
                speed_mps: d.f64()?,
            }
        }
        tag => {
            return Err(DecodeError::UnknownTag {
                what: "mobility model",
                tag,
            })
        }
    };
    let position = dec_point(d)?;
    let target = if d.bool()? { Some(dec_point(d)?) } else { None };
    let pause_left_s = d.f64()?;
    let route_index = d.usize()?;
    Ok(MobilityState::from_snapshot_raw(
        model,
        position,
        target,
        pause_left_s,
        route_index,
    ))
}

fn enc_message(e: &mut Enc, msg: &Message) {
    let (src, dst, kind, payload, sent_at, tampered) = msg.snapshot_raw();
    enc_id(e, src);
    enc_id(e, dst);
    e.u32(kind);
    e.bytes(payload.as_ref());
    e.u64(sent_at.as_micros());
    e.bool(tampered);
}

fn dec_message(d: &mut Dec<'_>) -> Result<Message, DecodeError> {
    let src = dec_id(d)?;
    let dst = dec_id(d)?;
    let kind = d.u32()?;
    let payload = Bytes::from(d.bytes()?.to_vec());
    let sent_at = SimTime::from_micros(d.u64()?);
    let tampered = d.bool()?;
    Ok(Message::from_snapshot_raw(
        src, dst, kind, payload, sent_at, tampered,
    ))
}

fn enc_event(e: &mut Enc, event: &Event) {
    match event {
        Event::Deliver(msg) => {
            e.u8(0);
            enc_message(e, msg);
        }
        Event::Timer { node, token } => {
            e.u8(1);
            enc_id(e, *node);
            e.u64(*token);
        }
        Event::MobilityTick => e.u8(2),
        Event::NodeDown(id) => {
            e.u8(3);
            enc_id(e, *id);
        }
        Event::NodeUp(id) => {
            e.u8(4);
            enc_id(e, *id);
        }
        Event::SetJammer { index, active } => {
            e.u8(5);
            e.usize(*index);
            e.bool(*active);
        }
        Event::SetPartition { index, active } => {
            e.u8(6);
            e.usize(*index);
            e.bool(*active);
        }
        Event::SetDegradation { index, active } => {
            e.u8(7);
            e.usize(*index);
            e.bool(*active);
        }
        Event::SetCompromise { index, active } => {
            e.u8(8);
            e.usize(*index);
            e.bool(*active);
        }
        Event::RegionOutage { index } => {
            e.u8(9);
            e.usize(*index);
        }
        Event::RegionRestore { index } => {
            e.u8(10);
            e.usize(*index);
        }
    }
}

fn dec_event(d: &mut Dec<'_>) -> Result<Event, DecodeError> {
    Ok(match d.u8()? {
        0 => Event::Deliver(dec_message(d)?),
        1 => Event::Timer {
            node: dec_id(d)?,
            token: d.u64()?,
        },
        2 => Event::MobilityTick,
        3 => Event::NodeDown(dec_id(d)?),
        4 => Event::NodeUp(dec_id(d)?),
        5 => Event::SetJammer {
            index: d.usize()?,
            active: d.bool()?,
        },
        6 => Event::SetPartition {
            index: d.usize()?,
            active: d.bool()?,
        },
        7 => Event::SetDegradation {
            index: d.usize()?,
            active: d.bool()?,
        },
        8 => Event::SetCompromise {
            index: d.usize()?,
            active: d.bool()?,
        },
        9 => Event::RegionOutage { index: d.usize()? },
        10 => Event::RegionRestore { index: d.usize()? },
        tag => return Err(DecodeError::UnknownTag { what: "event", tag }),
    })
}

impl Simulator {
    /// Serialises the complete determinism-relevant simulator state.
    ///
    /// Fails with [`SnapshotError::NotCheckpointable`] when any
    /// attached behaviour does not implement [`Behavior::save_state`] —
    /// silently dropping behaviour state would produce a checkpoint
    /// that resumes to a *different* run.
    pub fn save_state(&self) -> Result<Vec<u8>, SnapshotError> {
        // Exhaustive-destructure convention (R6): adding a field to
        // `Simulator` or `Core` fails this lint (and this compile) until
        // its checkpoint story is written. `batch` is a reused scratch
        // buffer, empty between events.
        let Self { core, behaviors, started, batch: _ } = self;
        // Every `Core` field is either serialised below or deliberately
        // excluded as derived (`ids`/`index`/`graph*`/`route*`),
        // fixed-configuration (`has_sleep`/`recorder`/`reference_mode`),
        // or reporting-only (`events_processed`) state.
        let Core {
            now: _,
            seq: _,
            queue: _,
            ids: _,
            index: _,
            nodes: _,
            has_sleep: _,
            channel: _,
            rng: _,
            stats: _,
            graph: _,
            graph_dirty: _,
            graph_epoch: _,
            route_scratch: _,
            route_trees: _,
            route_tree_fifo: _,
            last_route: _,
            retries: _,
            mobility_step: _,
            idle_drain_w: _,
            recorder: _,
            partitions: _,
            degradations: _,
            latency_mult: _,
            compromises: _,
            blackouts: _,
            events_processed: _,
            reference_mode: _,
        } = core;
        let mut e = Enc::new();

        // Fixed-configuration guard, checked at restore.
        e.u32(core.retries);
        e.u64(core.mobility_step.as_micros());
        e.f64(core.idle_drain_w);
        e.usize(core.nodes.len());

        // Clock, event-sequence counter, RNG stream position.
        e.u64(core.now.as_micros());
        e.u64(core.seq);
        for w in core.rng.state() {
            e.u64(w);
        }

        // Network statistics, including every latency sample (the
        // digest's mean latency must match bit-for-bit after resume).
        let s = &core.stats;
        for v in [
            s.sent,
            s.delivered,
            s.dropped,
            s.dropped_no_route,
            s.dropped_channel,
            s.dropped_dead,
            s.dropped_asleep,
            s.hop_attempts,
            s.retransmits,
            s.tampered,
        ] {
            e.u64(v);
        }
        e.f64(s.energy_spent_j);
        e.usize(s.latency_ms.samples().len());
        for v in s.latency_ms.samples() {
            e.f64(*v);
        }
        e.usize(s.delivered_by_kind.len());
        for (kind, count) in &s.delivered_by_kind {
            e.u32(*kind);
            e.u64(*count);
        }

        // Per-node mutable state (dense storage iterates in id order).
        for n in &core.nodes {
            enc_id(&mut e, n.id);
            enc_mobility(&mut e, &n.mobility);
            e.f64(n.energy.capacity_j());
            e.f64(n.energy.remaining_j());
            e.bool(n.alive);
            match n.sleep {
                Some(sched) => {
                    e.bool(true);
                    e.u64(sched.period.as_micros());
                    e.f64(sched.awake_fraction);
                    e.u64(sched.phase.as_micros());
                }
                None => e.bool(false),
            }
        }

        // Channel: jammers and composite degradation loss.
        e.usize(core.channel.jammers().len());
        for j in core.channel.jammers() {
            enc_point(&mut e, j.position);
            e.f64(j.power_w);
            e.bool(j.active);
        }
        e.f64(core.channel.extra_loss_db());
        e.f64(core.latency_mult);

        // Registered fault specs and their activation flags.
        e.usize(core.partitions.len());
        for (spec, active) in &core.partitions {
            enc_id_set(&mut e, &spec.a);
            enc_id_set(&mut e, &spec.b);
            e.bool(*active);
        }
        e.usize(core.degradations.len());
        for (spec, active) in &core.degradations {
            e.f64(spec.extra_loss_db);
            e.f64(spec.latency_mult);
            e.bool(*active);
        }
        e.usize(core.compromises.len());
        for (spec, active) in &core.compromises {
            enc_id_set(&mut e, &spec.relays);
            e.u64(spec.extra_delay.as_micros());
            e.bool(spec.tamper);
            e.bool(*active);
        }
        e.usize(core.blackouts.len());
        for b in &core.blackouts {
            enc_point(&mut e, b.rect.min());
            enc_point(&mut e, b.rect.max());
            enc_id_set(&mut e, &b.affected);
        }

        // Graph-cache disposition (the graph itself is derived state,
        // rebuilt silently at restore): 0 = absent or fully stale, 1 =
        // present and clean, 2 = present with a pending liveness patch.
        // The distinction matters because the next graph access after
        // resume must emit (or not emit) a `GraphRebuilt` trace exactly
        // as the uninterrupted run would. Values 0/1 coincide with the
        // bool this byte used to be.
        e.u8(match (&core.graph, &core.graph_dirty) {
            (None, _) | (Some(_), GraphDirty::Full) => 0,
            (Some(_), GraphDirty::Clean) => 1,
            (Some(_), GraphDirty::Nodes(_)) => 2,
        });

        // The event queue, in deterministic (at, seq) order.
        let mut entries: Vec<&Queued> = core.queue.iter().map(|Reverse(q)| q).collect();
        entries.sort_by_key(|q| (q.at, q.seq));
        e.usize(entries.len());
        for q in entries {
            e.u64(q.at.as_micros());
            e.u64(q.seq);
            enc_event(&mut e, &q.event);
        }

        // Behaviours, via their save hooks.
        e.usize(behaviors.len());
        for (node, behavior) in behaviors {
            let snap = behavior
                .save_state()
                .ok_or(SnapshotError::NotCheckpointable(*node))?;
            enc_id(&mut e, *node);
            e.str(&snap.kind);
            e.bytes(&snap.state);
        }
        e.usize(started.len());
        for node in started {
            enc_id(&mut e, *node);
        }

        Ok(e.into_bytes())
    }

    /// Applies a snapshot produced by [`Simulator::save_state`] onto
    /// this simulator, which must have been freshly built from the same
    /// catalog, terrain, and builder configuration. Behaviours are
    /// reconstructed through `registry` *without* firing `on_start`.
    pub fn restore_state(
        &mut self,
        bytes: &[u8],
        registry: &BehaviorRegistry,
    ) -> Result<(), SnapshotError> {
        // Coverage guard (R6): every field's restore story is decided in
        // this fn — `core` is patched in place, `behaviors`/`started` are
        // rebuilt from the blob, `batch` is scratch.
        let Self { core: _, behaviors: _, started: _, batch: _ } = self;
        let mut d = Dec::new(bytes);

        let retries = d.u32()?;
        let mobility_step = SimDuration::from_micros(d.u64()?);
        let idle_drain_w = d.f64()?;
        let node_count = d.usize()?;
        {
            let core = &self.core;
            if retries != core.retries
                || mobility_step != core.mobility_step
                || idle_drain_w.to_bits() != core.idle_drain_w.to_bits()
            {
                return Err(SnapshotError::Mismatch(
                    "builder configuration (retries/mobility step/idle drain) differs".into(),
                ));
            }
            if node_count != core.nodes.len() {
                return Err(SnapshotError::Mismatch(format!(
                    "snapshot has {node_count} nodes, simulator has {}",
                    core.nodes.len()
                )));
            }
        }

        let now = SimTime::from_micros(d.u64()?);
        let seq = d.u64()?;
        let mut rng_state = [0u64; 4];
        for w in &mut rng_state {
            *w = d.u64()?;
        }

        let mut stats = crate::stats::NetStats::new();
        stats.sent = d.u64()?;
        stats.delivered = d.u64()?;
        stats.dropped = d.u64()?;
        stats.dropped_no_route = d.u64()?;
        stats.dropped_channel = d.u64()?;
        stats.dropped_dead = d.u64()?;
        stats.dropped_asleep = d.u64()?;
        stats.hop_attempts = d.u64()?;
        stats.retransmits = d.u64()?;
        stats.tampered = d.u64()?;
        stats.energy_spent_j = d.f64()?;
        let n_samples = d.usize()?;
        let mut samples = Vec::with_capacity(n_samples.min(1 << 20));
        for _ in 0..n_samples {
            samples.push(d.f64()?);
        }
        stats.latency_ms.set_samples(samples);
        let n_kinds = d.usize()?;
        for _ in 0..n_kinds {
            let kind = d.u32()?;
            let count = d.u64()?;
            stats.delivered_by_kind.insert(kind, count);
        }

        struct NodeRestore {
            id: NodeId,
            mobility: MobilityState,
            energy: EnergyBudget,
            alive: bool,
            sleep: Option<SleepSchedule>,
        }
        let mut node_restores = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let id = dec_id(&mut d)?;
            let mobility = dec_mobility(&mut d)?;
            let capacity = d.f64()?;
            let remaining = d.f64()?;
            let alive = d.bool()?;
            let sleep = if d.bool()? {
                let period = SimDuration::from_micros(d.u64()?);
                let awake_fraction = d.f64()?;
                let phase = SimDuration::from_micros(d.u64()?);
                if period.as_micros() == 0 {
                    return Err(SnapshotError::Mismatch(
                        "sleep schedule with zero period".into(),
                    ));
                }
                Some(SleepSchedule {
                    period,
                    awake_fraction,
                    phase,
                })
            } else {
                None
            };
            if self.core.idx(id).is_none() {
                return Err(SnapshotError::UnknownNode(id.raw()));
            }
            node_restores.push(NodeRestore {
                id,
                mobility,
                energy: EnergyBudget::from_parts(capacity, remaining),
                alive,
                sleep,
            });
        }

        let n_jammers = d.usize()?;
        let mut jammers = Vec::with_capacity(n_jammers.min(1 << 16));
        for _ in 0..n_jammers {
            let position = dec_point(&mut d)?;
            let power_w = d.f64()?;
            let active = d.bool()?;
            let mut j = Jammer::new(position, power_w);
            j.active = active;
            jammers.push(j);
        }
        let extra_loss_db = d.f64()?;
        let latency_mult = d.f64()?;

        let n_partitions = d.usize()?;
        let mut partitions = Vec::with_capacity(n_partitions.min(1 << 16));
        for _ in 0..n_partitions {
            let a = dec_id_set(&mut d)?;
            let b = dec_id_set(&mut d)?;
            let active = d.bool()?;
            partitions.push((PartitionSpec { a, b }, active));
        }
        let n_degradations = d.usize()?;
        let mut degradations = Vec::with_capacity(n_degradations.min(1 << 16));
        for _ in 0..n_degradations {
            let extra_loss_db = d.f64()?;
            let latency_mult = d.f64()?;
            let active = d.bool()?;
            degradations.push((
                LinkDegradation {
                    extra_loss_db,
                    latency_mult,
                },
                active,
            ));
        }
        let n_compromises = d.usize()?;
        let mut compromises = Vec::with_capacity(n_compromises.min(1 << 16));
        for _ in 0..n_compromises {
            let relays = dec_id_set(&mut d)?;
            let extra_delay = SimDuration::from_micros(d.u64()?);
            let tamper = d.bool()?;
            let active = d.bool()?;
            compromises.push((
                CompromiseSpec {
                    relays,
                    extra_delay,
                    tamper,
                },
                active,
            ));
        }
        let n_blackouts = d.usize()?;
        let mut blackouts = Vec::with_capacity(n_blackouts.min(1 << 16));
        for _ in 0..n_blackouts {
            let min = dec_point(&mut d)?;
            let max = dec_point(&mut d)?;
            let affected = dec_id_set(&mut d)?;
            blackouts.push(Blackout {
                rect: Rect::new(min, max),
                affected,
            });
        }

        let graph_cached = match d.u8()? {
            v @ 0..=2 => v,
            tag => {
                return Err(SnapshotError::Decode(DecodeError::UnknownTag {
                    what: "graph cache state",
                    tag,
                }))
            }
        };

        let n_events = d.usize()?;
        let mut queue = BinaryHeap::with_capacity(n_events.min(1 << 20));
        for _ in 0..n_events {
            let at = SimTime::from_micros(d.u64()?);
            let seq = d.u64()?;
            let event = dec_event(&mut d)?;
            queue.push(Reverse(Queued { at, seq, event }));
        }

        let n_behaviors = d.usize()?;
        let mut behaviors: BTreeMap<NodeId, Box<dyn Behavior>> = BTreeMap::new();
        for _ in 0..n_behaviors {
            let node = dec_id(&mut d)?;
            let kind = d.str()?;
            let state = d.bytes()?.to_vec();
            if self.core.idx(node).is_none() {
                return Err(SnapshotError::UnknownNode(node.raw()));
            }
            let mut behavior = registry
                .create(&kind)
                .ok_or_else(|| SnapshotError::UnknownBehaviorKind(kind.clone()))?;
            if !behavior.restore_state(&state) {
                return Err(SnapshotError::BehaviorRestore { node, kind });
            }
            behaviors.insert(node, behavior);
        }
        let n_started = d.usize()?;
        let mut started = Vec::with_capacity(n_started.min(1 << 20));
        for _ in 0..n_started {
            started.push(dec_id(&mut d)?);
        }
        d.finish()?;

        // Everything decoded cleanly; now mutate the simulator.
        let core = &mut self.core;
        core.now = now;
        core.seq = seq;
        core.rng = rand::rngs::StdRng::from_state(rng_state);
        core.stats = stats;
        for nr in node_restores {
            // lint: allow(panic) — membership was verified during decoding above
            let i = core.idx(nr.id).expect("verified during decode");
            let n = &mut core.nodes[i as usize];
            n.mobility = nr.mobility;
            n.energy = nr.energy;
            n.alive = nr.alive;
            n.sleep = nr.sleep;
        }
        core.has_sleep = core.nodes.iter().any(|n| n.sleep.is_some());
        core.channel.replace_jammers(jammers);
        core.channel.set_extra_loss_db(extra_loss_db);
        core.latency_mult = latency_mult;
        core.partitions = partitions;
        core.degradations = degradations;
        core.compromises = compromises;
        core.blackouts = blackouts;
        core.queue = queue;
        // Route caches are derived state scoped to a graph epoch; a
        // restored world starts them cold.
        core.route_trees.clear();
        core.route_tree_fifo.clear();
        core.last_route = None;
        core.graph = None;
        core.graph_dirty = GraphDirty::Full;
        if graph_cached > 0 {
            // Derived state: rebuild without recording a trace event. A
            // pending liveness patch (2) resolves to the same topology as
            // a fresh build of the restored world, but the next graph
            // access must still emit `GraphRebuilt` like the
            // uninterrupted run's patch application would — an empty
            // pending list encodes exactly that.
            core.graph_epoch += 1;
            let epoch = core.graph_epoch;
            let mut built = core.build_graph();
            built.set_epoch(epoch);
            core.graph = Some(std::rc::Rc::new(built));
            core.graph_dirty = if graph_cached == 2 {
                GraphDirty::Nodes(Vec::new())
            } else {
                GraphDirty::Clean
            };
        }
        self.behaviors = behaviors;
        self.started = started;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Context;
    use crate::terrain::Terrain;
    use iobt_types::{Affiliation, NodeCatalog, NodeSpec, Radio, RadioKind};

    fn catalog(n: u64, gap_m: f64) -> NodeCatalog {
        let mut catalog = NodeCatalog::new();
        for i in 0..n {
            catalog
                .insert(
                    NodeSpec::builder(NodeId::new(i))
                        .affiliation(Affiliation::Blue)
                        .position(Point::new(i as f64 * gap_m, 0.0))
                        .radio(Radio::new(RadioKind::Wifi))
                        .energy(EnergyBudget::new(10_000.0))
                        .build(),
                )
                .unwrap();
        }
        catalog
    }

    /// A checkpointable periodic sender used to exercise behaviour
    /// save/restore.
    struct Beacon {
        target: NodeId,
        period: SimDuration,
        sent: u64,
    }

    impl Behavior for Beacon {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(self.period, 0);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
            self.sent += 1;
            ctx.send(self.target, 7, vec![0u8; 32]);
            ctx.set_timer(self.period, 0);
        }
        fn save_state(&self) -> Option<BehaviorSnapshot> {
            let mut e = Enc::new();
            e.u64(self.target.raw());
            e.u64(self.period.as_micros());
            e.u64(self.sent);
            Some(BehaviorSnapshot::new("test.beacon", e.into_bytes()))
        }
        fn restore_state(&mut self, state: &[u8]) -> bool {
            let mut d = Dec::new(state);
            let Ok(target) = d.u64() else { return false };
            let Ok(period) = d.u64() else { return false };
            let Ok(sent) = d.u64() else { return false };
            if d.finish().is_err() {
                return false;
            }
            self.target = NodeId::new(target);
            self.period = SimDuration::from_micros(period);
            self.sent = sent;
            true
        }
    }

    fn beacon_registry() -> BehaviorRegistry {
        let mut reg = BehaviorRegistry::new();
        reg.register("test.beacon", || {
            Box::new(Beacon {
                target: NodeId::new(0),
                period: SimDuration::from_millis(1),
                sent: 0,
            })
        });
        reg
    }

    fn build_sim(seed: u64) -> Simulator {
        let mut sim = Simulator::builder(catalog(4, 80.0))
            .seed(seed)
            .terrain(Terrain::default())
            .build();
        sim.set_behavior(
            NodeId::new(0),
            Box::new(Beacon {
                target: NodeId::new(3),
                period: SimDuration::from_millis(40),
                sent: 0,
            }),
        );
        sim
    }

    #[test]
    fn snapshot_resume_matches_uninterrupted_run() {
        // Uninterrupted reference run.
        let mut reference = build_sim(42);
        reference.run_for(SimDuration::from_secs_f64(8.0));

        // Interrupted run: stop at 3 s, snapshot, restore into a fresh
        // simulator, continue to 8 s.
        let mut first = build_sim(42);
        first.run_for(SimDuration::from_secs_f64(3.0));
        let blob = first.save_state().unwrap();
        drop(first);

        let mut resumed = build_sim(42);
        // Note: build_sim attached a behaviour (whose on_start already
        // fired); restore replaces behaviours and all queued events.
        resumed.restore_state(&blob, &beacon_registry()).unwrap();
        assert_eq!(resumed.now(), SimTime::from_secs_f64(3.0));
        resumed.run_until(SimTime::from_secs_f64(8.0));

        assert_eq!(resumed.stats(), reference.stats());
        for i in 0..4 {
            let id = NodeId::new(i);
            assert_eq!(resumed.position(id), reference.position(id));
            assert_eq!(
                resumed.energy(id).map(|b| b.remaining_j().to_bits()),
                reference.energy(id).map(|b| b.remaining_j().to_bits()),
                "node {i} energy must match bit-for-bit"
            );
        }
        // The RNG stream must be at the same position.
        let a = resumed.save_state().unwrap();
        let b = reference.save_state().unwrap();
        assert_eq!(a, b, "full end state must be byte-identical");
    }

    #[test]
    fn snapshot_roundtrip_is_byte_stable() {
        let mut sim = build_sim(7);
        sim.run_for(SimDuration::from_secs_f64(2.0));
        let blob = sim.save_state().unwrap();
        let mut restored = build_sim(7);
        restored.restore_state(&blob, &beacon_registry()).unwrap();
        let blob2 = restored.save_state().unwrap();
        assert_eq!(blob, blob2, "save → restore → save must be identity");
    }

    #[test]
    fn non_checkpointable_behavior_fails_save() {
        struct Opaque;
        impl Behavior for Opaque {}
        let mut sim = build_sim(1);
        sim.set_behavior(NodeId::new(2), Box::new(Opaque));
        assert!(matches!(
            sim.save_state(),
            Err(SnapshotError::NotCheckpointable(n)) if n == NodeId::new(2)
        ));
    }

    #[test]
    fn unknown_kind_and_node_count_mismatch_are_rejected() {
        let mut sim = build_sim(3);
        sim.run_for(SimDuration::from_millis(100));
        let blob = sim.save_state().unwrap();

        // Empty registry: the beacon kind cannot be reconstructed.
        let mut fresh = build_sim(3);
        assert!(matches!(
            fresh.restore_state(&blob, &BehaviorRegistry::new()),
            Err(SnapshotError::UnknownBehaviorKind(_))
        ));

        // A simulator over a different catalog must refuse the blob.
        let mut other = Simulator::builder(catalog(5, 80.0)).seed(3).build();
        assert!(matches!(
            other.restore_state(&blob, &beacon_registry()),
            Err(SnapshotError::Mismatch(_))
        ));
    }

    #[test]
    fn truncated_snapshots_never_panic() {
        let mut sim = build_sim(9);
        sim.run_for(SimDuration::from_millis(500));
        let blob = sim.save_state().unwrap();
        for len in 0..blob.len() {
            let mut fresh = build_sim(9);
            assert!(
                fresh.restore_state(&blob[..len], &beacon_registry()).is_err(),
                "truncation to {len} bytes must be rejected"
            );
        }
    }
}
