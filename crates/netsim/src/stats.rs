//! Run statistics: counters and latency distributions.

use std::collections::BTreeMap;
use std::fmt;

/// An online summary of a set of samples (latencies, utilities, …).
///
/// Stores every sample so exact quantiles are available; experiments in
/// this workspace are small enough (≤ millions of samples) that this is the
/// right trade-off over a lossy sketch.
///
/// ```
/// # use iobt_netsim::stats::Summary;
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0, 4.0] { s.record(v); }
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.quantile(0.5), 2.0); // nearest-rank
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample. Non-finite samples are ignored.
    pub fn record(&mut self, value: f64) {
        if value.is_finite() {
            self.samples.push(value);
            self.sorted = false;
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Population standard deviation, or `0.0` when fewer than 2 samples.
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }

    /// Exact `q`-quantile (`q` clamped to `[0, 1]`) using the
    /// nearest-rank-above method, or `0.0` when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.samples.len() as f64).ceil() as usize)
            .min(self.samples.len())
            .saturating_sub(1);
        // q = 0 should return the minimum.
        let idx = if q == 0.0 { 0 } else { idx };
        self.samples[idx]
    }

    /// The raw recorded samples, in insertion order unless a quantile
    /// query has sorted them. Exposed so checkpoints can capture the
    /// exact sample set.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Replaces the sample set wholesale (checkpoint restore).
    pub(crate) fn set_samples(&mut self, samples: Vec<f64>) {
        self.samples = samples;
        self.sorted = false;
    }

    /// Smallest sample, or `0.0` when empty.
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .pipe_finite()
    }

    /// Largest sample, or `0.0` when empty.
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .pipe_finite()
    }
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}

impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = self.clone();
        write!(
            f,
            "n={} mean={:.3} p50={:.3} p99={:.3} max={:.3}",
            s.len(),
            s.mean(),
            s.quantile(0.5),
            s.quantile(0.99),
            s.max()
        )
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// Network-level statistics accumulated by a simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetStats {
    /// Messages handed to the network by applications.
    pub sent: u64,
    /// Messages delivered to their destination behaviour.
    pub delivered: u64,
    /// Messages dropped (loss, no route, dead node).
    pub dropped: u64,
    /// Drops caused by missing routes (partition).
    pub dropped_no_route: u64,
    /// Drops caused by channel loss after retries.
    pub dropped_channel: u64,
    /// Drops because an endpoint or relay was dead/depleted.
    pub dropped_dead: u64,
    /// Drops because an endpoint was in a sleep phase of its duty cycle.
    pub dropped_asleep: u64,
    /// Total per-hop MAC attempts (first transmissions + retransmits).
    pub hop_attempts: u64,
    /// Per-hop MAC retransmissions (attempts beyond the first).
    pub retransmits: u64,
    /// Messages tampered in flight by a compromised relay (counted at
    /// tamper time; the flagged copy may still be dropped downstream).
    pub tampered: u64,
    /// End-to-end delivery latencies in milliseconds.
    pub latency_ms: Summary,
    /// Total energy drained across all nodes, in joules.
    pub energy_spent_j: f64,
    /// Per-kind delivered counts, for application dispatch analysis.
    pub delivered_by_kind: BTreeMap<u32, u64>,
}

impl NetStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of sent messages that were delivered, or `0.0` when no
    /// messages were sent.
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent={} delivered={} ({:.1}%) dropped={} [route={} chan={} dead={} asleep={}] \
             attempts={} retx={} tampered={} latency: {}",
            self.sent,
            self.delivered,
            self.delivery_ratio() * 100.0,
            self.dropped,
            self.dropped_no_route,
            self.dropped_channel,
            self.dropped_dead,
            self.dropped_asleep,
            self.hop_attempts,
            self.retransmits,
            self.tampered,
            self.latency_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn nan_samples_are_ignored() {
        let mut s = Summary::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(1.0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn quantiles_are_exact() {
        let mut s: Summary = (1..=100).map(|v| v as f64).collect();
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(0.01), 1.0);
        assert_eq!(s.quantile(0.5), 50.0);
        assert_eq!(s.quantile(0.99), 99.0);
        assert_eq!(s.quantile(1.0), 100.0);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        let s: Summary = std::iter::repeat_n(4.2, 10).collect();
        assert!(s.stddev() < 1e-12);
    }

    #[test]
    fn delivery_ratio_handles_zero_sent() {
        let stats = NetStats::new();
        assert_eq!(stats.delivery_ratio(), 0.0);
        let stats = NetStats {
            sent: 10,
            delivered: 7,
            ..NetStats::new()
        };
        assert!((stats.delivery_ratio() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn display_does_not_panic() {
        let mut s = Summary::new();
        s.record(3.0);
        let _ = s.to_string();
        let _ = NetStats::new().to_string();
    }

    proptest! {
        #[test]
        fn quantile_monotone(values in proptest::collection::vec(-1e6..1e6f64, 1..200),
                             q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
            let mut s: Summary = values.into_iter().collect();
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(s.quantile(lo) <= s.quantile(hi));
            prop_assert!(s.quantile(0.0) == s.min());
            prop_assert!(s.quantile(1.0) == s.max());
        }

        #[test]
        fn mean_within_min_max(values in proptest::collection::vec(-1e6..1e6f64, 1..200)) {
            let s: Summary = values.into_iter().collect();
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }
    }
}
