//! Simulation time.
//!
//! Time is kept as integer microseconds so that event ordering is exact and
//! runs are bit-for-bit reproducible — floating-point clocks accumulate
//! rounding that can reorder ties across platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An instant on the simulation clock, in microseconds since start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The farthest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant from fractional seconds; negative and non-finite
    /// values clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_finite() && secs > 0.0 {
            SimTime((secs * 1e6).round().min(u64::MAX as f64) as u64)
        } else {
            SimTime::ZERO
        }
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating difference `self - earlier`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

/// A span of simulation time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span from fractional seconds; negative and non-finite
    /// values clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_finite() && secs > 0.0 {
            SimDuration((secs * 1e6).round().min(u64::MAX as f64) as u64)
        } else {
            SimDuration::ZERO
        }
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    /// Saturating: an earlier minus a later instant is zero.
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(t.as_secs_f64(), 1.5);
        assert_eq!(t.as_millis_f64(), 1_500.0);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NEG_INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime::MAX;
        assert_eq!(t + SimDuration::from_micros(10), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimTime::from_micros(5), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        let mut t = SimTime::ZERO;
        t += SimDuration::from_millis(1);
        assert_eq!(t, SimTime::from_millis(1));
    }

    proptest! {
        #[test]
        fn since_inverts_add(start in 0u64..1u64 << 40, delta in 0u64..1u64 << 20) {
            let t0 = SimTime::from_micros(start);
            let d = SimDuration::from_micros(delta);
            prop_assert_eq!((t0 + d).saturating_since(t0), d);
        }
    }
}
