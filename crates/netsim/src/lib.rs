//! Deterministic discrete-event battlefield network simulator.
//!
//! This crate is the substrate the paper's envisioned deployments run on in
//! this reproduction (see `DESIGN.md`): terrain-aware wireless propagation
//! with jamming ([`channel`]), node mobility ([`mobility`]), energy-limited
//! heterogeneous nodes, connectivity and reliability-aware routing
//! ([`graph`]), churn/failure injection, and an event-driven application
//! layer ([`sim`]).
//!
//! Everything is seeded and tie-broken deterministically: the same inputs
//! produce bit-identical runs, which the experiment harnesses rely on.
//!
//! # Examples
//!
//! See [`sim`] for an end-to-end ping-pong example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod churn;
pub mod graph;
pub mod message;
pub mod mobility;
pub mod sim;
pub mod stats;
pub mod terrain;
pub mod time;

pub use bytes::Bytes;
pub use channel::{Channel, Jammer, LinkBudget};
pub use churn::{ChurnPlan, ChurnProcess};
pub use graph::{ConnectivityGraph, GraphNode, LinkQuality, RouteScratch};
pub use message::Message;
pub use mobility::{MobilityModel, MobilityState};
pub use sim::{
    Behavior, BehaviorRegistry, BehaviorSnapshot, CompromiseSpec, Context, LinkDegradation,
    PartitionSpec, SimulatorBuilder, SleepSchedule, Simulator, SnapshotError,
};
pub use stats::{NetStats, Summary};
pub use terrain::{Clutter, Terrain};
pub use time::{SimDuration, SimTime};

pub use iobt_obs::Recorder;

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::{
        Behavior, BehaviorRegistry, BehaviorSnapshot, Bytes, Channel, ChurnProcess, Clutter,
        CompromiseSpec, ConnectivityGraph, Context, Jammer, LinkDegradation, Message,
        MobilityModel, NetStats, PartitionSpec, SimDuration, SimTime, Simulator, SleepSchedule,
        SnapshotError, Summary, Terrain,
    };
}
