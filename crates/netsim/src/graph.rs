//! Connectivity graphs and routing over the current radio environment.
//!
//! The simulator periodically snapshots which node pairs can hear each
//! other (shared radio technology, acceptable mean delivery probability)
//! into a [`ConnectivityGraph`], then routes messages along the most
//! reliable path (Dijkstra on `-ln p` weights, so path weight is the
//! negative log of end-to-end delivery probability).
//!
//! The graph is built for battlefield scale:
//!
//! * **Dense `u32` indexing** — node ids are mapped once to dense
//!   indices; the id universe (`Rc<[NodeId]>`) and index map are shared
//!   with the simulator, so adjacency, routing scratch, and route trees
//!   all run on flat `Vec`s with no per-query map lookups.
//! * **Radius-matched spatial hashing** — the bucket size is the largest
//!   radio range actually present (capped at [`MAX_LINK_RANGE_M`]), so a
//!   wifi-only mesh gets ~120 m cells instead of 6 km ones and pair
//!   testing stays near-linear.
//! * **Incremental maintenance** — [`ConnectivityGraph::refresh_node`]
//!   recomputes one node's liveness and incident links in place, which
//!   is what lets the simulator survive churn without rebuilding the
//!   whole graph (see the sim's dirty-tracking for the rules).
//! * **Route trees** — [`ConnectivityGraph::route_tree`] runs Dijkstra
//!   to completion from one source; the resulting predecessor tree
//!   answers every destination until the graph's [`epoch`](Self::epoch)
//!   moves, producing bit-identical paths to per-query routing.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::rc::Rc;

use iobt_types::{NodeId, Point, RadioKind};

use crate::channel::Channel;

/// Quality of a directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkQuality {
    /// Mean single-transmission delivery probability in `(0, 1]`.
    pub delivery_prob: f64,
    /// Radio technology the link uses.
    pub radio: RadioKind,
    /// Link distance in meters.
    pub distance_m: f64,
}

/// A node as seen by the graph builder.
#[derive(Debug, Clone)]
pub struct GraphNode {
    /// Node identifier.
    pub id: NodeId,
    /// Current position.
    pub position: Point,
    /// Radio technologies the node carries. Refcounted so graph builds
    /// and snapshots share the immutable catalog data instead of cloning
    /// a `Vec` per node per rebuild.
    pub radios: Rc<[RadioKind]>,
    /// Whether the node is up (dead nodes keep their slot but get no links).
    pub alive: bool,
}

/// Snapshot of who can talk to whom.
#[derive(Debug, Clone, Default)]
pub struct ConnectivityGraph {
    ids: Rc<[NodeId]>,
    index: Rc<BTreeMap<NodeId, u32>>,
    /// Retained builder inputs, so single-node refreshes can recompute
    /// links without the caller re-supplying the world.
    nodes: Vec<GraphNode>,
    adj: Vec<Vec<(u32, LinkQuality)>>,
    /// Spatial hash over *all* radio-equipped nodes (dead ones included,
    /// so a revived node can rediscover its neighborhood). Valid while
    /// positions are unchanged; any movement requires a full rebuild.
    buckets: BTreeMap<(i64, i64), Vec<u32>>,
    cell_m: f64,
    /// Bumped on every content change (full build or node refresh);
    /// route trees and caches are valid only for their stamped epoch.
    epoch: u64,
}

/// Minimum mean delivery probability for a link to exist at all.
pub const MIN_LINK_QUALITY: f64 = 0.05;

/// Links are only considered between nodes closer than this, keeping graph
/// construction near-linear via spatial hashing. Satcom-style infinite-range
/// radios are modelled as reachback, not mesh links.
pub const MAX_LINK_RANGE_M: f64 = 6_000.0;

/// Spatial-hash cell side: the longest radio range actually present,
/// capped at [`MAX_LINK_RANGE_M`]. No link can span more than one cell
/// diagonal's worth of range, so the 3×3 neighborhood scan stays exact
/// while short-range meshes get proportionally fine cells.
fn cell_size_m(nodes: &[GraphNode]) -> f64 {
    let mut cell: f64 = 0.0;
    for n in nodes {
        for r in n.radios.iter() {
            cell = cell.max(r.nominal_range_m().min(MAX_LINK_RANGE_M));
        }
    }
    if cell > 0.0 && cell.is_finite() {
        cell
    } else {
        MAX_LINK_RANGE_M
    }
}

fn bucket_key(p: Point, cell: f64) -> (i64, i64) {
    ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
}

impl ConnectivityGraph {
    /// Builds the graph from node states and the channel model.
    ///
    /// Uses a uniform spatial grid so only nearby pairs are tested; cost is
    /// `O(n + pairs-within-range)` rather than `O(n^2)`.
    pub fn build(nodes: &[GraphNode], channel: &Channel) -> Self {
        Self::build_filtered(nodes, channel, &|_, _| false)
    }

    /// [`ConnectivityGraph::build`] with a link-deny predicate: any pair
    /// for which `deny(a, b)` returns true gets no link regardless of
    /// radio compatibility. This is how network-partition faults cut the
    /// topology without touching node liveness. The predicate must be
    /// symmetric; it is consulted once per unordered pair.
    pub fn build_filtered(
        nodes: &[GraphNode],
        channel: &Channel,
        deny: &dyn Fn(NodeId, NodeId) -> bool,
    ) -> Self {
        let ids: Rc<[NodeId]> = nodes.iter().map(|g| g.id).collect();
        let index: Rc<BTreeMap<NodeId, u32>> = Rc::new(
            ids.iter()
                .enumerate()
                .map(|(i, &id)| (id, i as u32))
                .collect(),
        );
        Self::build_shared(ids, index, nodes.to_vec(), channel, deny)
    }

    /// [`ConnectivityGraph::build_filtered`] over a pre-built dense index.
    ///
    /// The simulator constructs the id universe once and shares it with
    /// every graph it builds, so graph index `i` and simulator index `i`
    /// always name the same node. `nodes[i].id` must equal `ids[i]`.
    pub fn build_shared(
        ids: Rc<[NodeId]>,
        index: Rc<BTreeMap<NodeId, u32>>,
        nodes: Vec<GraphNode>,
        channel: &Channel,
        deny: &dyn Fn(NodeId, NodeId) -> bool,
    ) -> Self {
        debug_assert_eq!(ids.len(), nodes.len());
        debug_assert!(nodes.iter().enumerate().all(|(i, n)| n.id == ids[i]));
        let n = nodes.len();
        let mut adj: Vec<Vec<(u32, LinkQuality)>> = vec![Vec::new(); n];

        let cell = cell_size_m(&nodes);
        let mut buckets: BTreeMap<(i64, i64), Vec<u32>> = BTreeMap::new();
        for (i, node) in nodes.iter().enumerate() {
            if node.radios.is_empty() {
                continue;
            }
            buckets
                .entry(bucket_key(node.position, cell))
                .or_default()
                .push(i as u32);
        }
        // Each unordered pair is visited exactly once with the lower
        // index as owner, so no dedup pass is needed and the stored link
        // orientation is deterministic regardless of bucket layout.
        for (&(bx, by), members) in &buckets {
            for &i in members {
                if !nodes[i as usize].alive {
                    continue;
                }
                for dx in -1..=1 {
                    for dy in -1..=1 {
                        let Some(others) = buckets.get(&(bx + dx, by + dy)) else {
                            continue;
                        };
                        for &j in others {
                            if j <= i || !nodes[j as usize].alive {
                                continue;
                            }
                            if deny(nodes[i as usize].id, nodes[j as usize].id) {
                                continue;
                            }
                            if let Some(link) =
                                best_link(&nodes[i as usize], &nodes[j as usize], channel)
                            {
                                adj[i as usize].push((j, link));
                                adj[j as usize].push((i, link));
                            }
                        }
                    }
                }
            }
        }
        for list in &mut adj {
            list.sort_by_key(|(j, _)| *j);
        }
        ConnectivityGraph {
            ids,
            index,
            nodes,
            adj,
            buckets,
            cell_m: cell,
            epoch: 0,
        }
    }

    /// Recomputes one node's liveness and incident links in place.
    ///
    /// Sound only while everything *else* is unchanged since the last
    /// full build: positions, radios, the channel (jammers, degradation
    /// loss), and the deny predicate must all be as they were — the
    /// caller falls back to a full rebuild for those. Produces a graph
    /// identical to rebuilding from scratch with the node's new
    /// liveness, and bumps [`epoch`](Self::epoch).
    pub fn refresh_node(
        &mut self,
        i: u32,
        alive: bool,
        channel: &Channel,
        deny: &dyn Fn(NodeId, NodeId) -> bool,
    ) {
        let iu = i as usize;
        if iu >= self.nodes.len() {
            return;
        }
        self.epoch += 1;
        // Tear out the node's current incident links from both sides.
        let old = std::mem::take(&mut self.adj[iu]);
        for (j, _) in old {
            let list = &mut self.adj[j as usize];
            if let Ok(pos) = list.binary_search_by_key(&i, |(k, _)| *k) {
                list.remove(pos);
            }
        }
        self.nodes[iu].alive = alive;
        if !alive || self.nodes[iu].radios.is_empty() {
            return;
        }
        // Rediscover links against the (position-frozen) neighborhood,
        // with the same lower-index-owner orientation as a full build.
        let (bx, by) = bucket_key(self.nodes[iu].position, self.cell_m);
        for dx in -1..=1 {
            for dy in -1..=1 {
                let Some(others) = self.buckets.get(&(bx + dx, by + dy)) else {
                    continue;
                };
                for &j in others {
                    if j == i || !self.nodes[j as usize].alive {
                        continue;
                    }
                    let (a, b) = if i < j { (iu, j as usize) } else { (j as usize, iu) };
                    if deny(self.nodes[a].id, self.nodes[b].id) {
                        continue;
                    }
                    if let Some(link) = best_link(&self.nodes[a], &self.nodes[b], channel) {
                        self.adj[iu].push((j, link));
                        let list = &mut self.adj[j as usize];
                        if let Err(pos) = list.binary_search_by_key(&i, |(k, _)| *k) {
                            list.insert(pos, (i, link));
                        }
                    }
                }
            }
        }
        self.adj[iu].sort_by_key(|(j, _)| *j);
    }

    /// Whether two graphs describe the same routable topology: same id
    /// universe, same per-node liveness, and bit-identical adjacency.
    /// This is the oracle the incremental-maintenance checks compare
    /// against a from-scratch rebuild.
    pub fn same_topology(&self, other: &Self) -> bool {
        self.ids == other.ids
            && self
                .nodes
                .iter()
                .zip(&other.nodes)
                .all(|(a, b)| a.alive == b.alive)
            && self.adj == other.adj
    }

    /// Content version: bumped on every full build or node refresh.
    /// Route trees and next-hop caches are valid only while the epoch
    /// they were built at still matches.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Stamps the content version; the simulator uses this to keep the
    /// epoch monotonic across full rebuilds (a fresh build starts at 0).
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Number of nodes (including dead ones, which have no links).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of undirected links.
    pub fn link_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Dense index of a node id, if known.
    pub fn index_of(&self, id: NodeId) -> Option<u32> {
        self.index.get(&id).copied()
    }

    /// Node id at a dense index. Panics on out-of-range indices, which
    /// can only come from a different id universe.
    pub fn id_at(&self, i: u32) -> NodeId {
        self.ids[i as usize]
    }

    /// Neighbors of a node, with link qualities. Empty for unknown ids.
    pub fn neighbors(&self, id: NodeId) -> Vec<(NodeId, LinkQuality)> {
        match self.index.get(&id) {
            Some(&i) => self.adj[i as usize]
                .iter()
                .map(|&(j, q)| (self.ids[j as usize], q))
                .collect(),
            None => Vec::new(),
        }
    }

    /// The most reliable route from `src` to `dst` as a node sequence
    /// (inclusive of both endpoints), or `None` when unreachable.
    ///
    /// Reliability is the product of per-hop delivery probabilities;
    /// Dijkstra runs on `-ln p` weights. Allocates fresh working state —
    /// callers routing many times per snapshot should hold a
    /// [`RouteScratch`] and use [`ConnectivityGraph::route_with`].
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        self.route_with(&mut RouteScratch::new(), src, dst)
    }

    /// [`ConnectivityGraph::route`] with caller-owned scratch space.
    ///
    /// The per-query distance/predecessor state is epoch-stamped instead
    /// of cleared, and the heap/path buffers are reused, so repeated
    /// queries (the simulator routes every message) cost no allocations
    /// once the scratch has warmed up. Stale heap entries — nodes already
    /// settled via a cheaper path — are skipped on pop.
    pub fn route_with(
        &self,
        scratch: &mut RouteScratch,
        src: NodeId,
        dst: NodeId,
    ) -> Option<Vec<NodeId>> {
        let &s = self.index.get(&src)?;
        let &d = self.index.get(&dst)?;
        Some(
            self.route_idx_with(scratch, s, d)?
                .into_iter()
                .map(|i| self.ids[i as usize])
                .collect(),
        )
    }

    /// [`ConnectivityGraph::route_with`] on dense indices: the hot-path
    /// form the simulator uses, avoiding id↔index translation entirely.
    pub fn route_idx_with(
        &self,
        scratch: &mut RouteScratch,
        s: u32,
        d: u32,
    ) -> Option<Vec<u32>> {
        if s as usize >= self.ids.len() || d as usize >= self.ids.len() {
            return None;
        }
        if s == d {
            return Some(vec![s]);
        }
        scratch.reset(self.ids.len());
        scratch.set(s, 0.0, u32::MAX);
        scratch.heap.push(HeapEntry { cost: 0.0, node: s });
        while let Some(HeapEntry { cost, node }) = scratch.heap.pop() {
            if cost > scratch.dist(node) {
                continue; // stale entry: settled earlier via a cheaper path
            }
            if node == d {
                break;
            }
            for &(next, q) in &self.adj[node as usize] {
                let w = -(q.delivery_prob.max(1e-12)).ln();
                let nd = cost + w;
                if nd < scratch.dist(next) {
                    scratch.set(next, nd, node);
                    scratch.heap.push(HeapEntry { cost: nd, node: next });
                }
            }
        }
        if scratch.dist(d).is_infinite() {
            return None;
        }
        let mut path = vec![d];
        let mut cur = d;
        while cur != s {
            cur = scratch.prev(cur);
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Runs Dijkstra to completion from `src` and returns the full
    /// shortest-path tree, valid for every destination at the current
    /// [`epoch`](Self::epoch).
    ///
    /// Routes read out of the tree are bit-identical to per-destination
    /// [`route_with`](Self::route_with) queries: early exit only skips
    /// work *after* the destination settles, and settled predecessors
    /// never change under non-negative weights, so both walks read the
    /// same predecessor chain.
    pub fn route_tree(&self, scratch: &mut RouteScratch, src: NodeId) -> Option<RouteTree> {
        let &s = self.index.get(&src)?;
        Some(self.route_tree_idx(scratch, s))
    }

    /// [`ConnectivityGraph::route_tree`] on a dense source index.
    pub fn route_tree_idx(&self, scratch: &mut RouteScratch, s: u32) -> RouteTree {
        let n = self.ids.len();
        scratch.reset(n);
        if (s as usize) < n {
            scratch.set(s, 0.0, s);
            scratch.heap.push(HeapEntry { cost: 0.0, node: s });
        }
        while let Some(HeapEntry { cost, node }) = scratch.heap.pop() {
            if cost > scratch.dist(node) {
                continue;
            }
            for &(next, q) in &self.adj[node as usize] {
                let w = -(q.delivery_prob.max(1e-12)).ln();
                let nd = cost + w;
                if nd < scratch.dist(next) {
                    scratch.set(next, nd, node);
                    scratch.heap.push(HeapEntry { cost: nd, node: next });
                }
            }
        }
        let prev: Vec<u32> = (0..n as u32)
            .map(|i| {
                if scratch.stamp[i as usize] == scratch.epoch {
                    scratch.prev[i as usize]
                } else {
                    u32::MAX
                }
            })
            .collect();
        RouteTree {
            src: s,
            epoch: self.epoch,
            prev,
        }
    }

    /// Reads the route to `dst` out of a shortest-path tree, as dense
    /// indices from the tree's source to `dst` inclusive. `None` when
    /// unreachable. The tree must come from this graph at the current
    /// epoch.
    pub fn route_idx_from_tree(&self, tree: &RouteTree, d: u32) -> Option<Vec<u32>> {
        debug_assert_eq!(tree.epoch, self.epoch, "route tree used across graph changes");
        debug_assert_eq!(tree.prev.len(), self.ids.len());
        if d as usize >= tree.prev.len() {
            return None;
        }
        if d == tree.src {
            return Some(vec![d]);
        }
        if tree.prev[d as usize] == u32::MAX {
            return None;
        }
        let mut path = vec![d];
        let mut cur = d;
        while cur != tree.src {
            cur = tree.prev[cur as usize];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Id-level convenience over [`Self::route_idx_from_tree`].
    pub fn route_from_tree(&self, tree: &RouteTree, dst: NodeId) -> Option<Vec<NodeId>> {
        let &d = self.index.get(&dst)?;
        Some(
            self.route_idx_from_tree(tree, d)?
                .into_iter()
                .map(|i| self.ids[i as usize])
                .collect(),
        )
    }

    /// Link quality between two adjacent nodes, if a link exists.
    pub fn link(&self, a: NodeId, b: NodeId) -> Option<LinkQuality> {
        let &i = self.index.get(&a)?;
        let &j = self.index.get(&b)?;
        self.link_idx(i, j)
    }

    /// [`ConnectivityGraph::link`] on dense indices.
    pub fn link_idx(&self, i: u32, j: u32) -> Option<LinkQuality> {
        let list = self.adj.get(i as usize)?;
        list.binary_search_by_key(&j, |(k, _)| *k)
            .ok()
            .map(|pos| list[pos].1)
    }

    /// Connected components as sorted id lists, largest first.
    pub fn components(&self) -> Vec<Vec<NodeId>> {
        let n = self.ids.len();
        let mut seen = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut stack = vec![start];
            let mut comp = Vec::new();
            seen[start] = true;
            while let Some(i) = stack.pop() {
                comp.push(self.ids[i]);
                for &(j, _) in &self.adj[i] {
                    if !seen[j as usize] {
                        seen[j as usize] = true;
                        stack.push(j as usize);
                    }
                }
            }
            comp.sort();
            components.push(comp);
        }
        components.sort_by(|a, b| b.len().cmp(&a.len()).then(a.cmp(b)));
        components
    }

    /// Whether every node with at least one link can reach every other
    /// (isolated/dead nodes are ignored).
    pub fn connected_core(&self) -> bool {
        let linked: Vec<usize> = (0..self.ids.len())
            .filter(|&i| !self.adj[i].is_empty())
            .collect();
        if linked.len() <= 1 {
            return true;
        }
        self.components()
            .iter()
            .filter(|c| c.len() > 1)
            .count()
            <= 1
    }
}

fn best_link(a: &GraphNode, b: &GraphNode, channel: &Channel) -> Option<LinkQuality> {
    if !a.alive || !b.alive {
        return None;
    }
    let distance_m = a.position.distance_to(b.position);
    if distance_m > MAX_LINK_RANGE_M {
        return None;
    }
    let mut best: Option<LinkQuality> = None;
    // Path loss and receiver noise are radio-independent; compute them at
    // most once per pair (only when some shared radio survives the range
    // checks) and evaluate each radio against the shared budget.
    let mut budget = None;
    for &ra in a.radios.iter() {
        if !b.radios.contains(&ra) {
            continue;
        }
        if distance_m > ra.nominal_range_m() {
            continue;
        }
        let budget =
            *budget.get_or_insert_with(|| channel.link_budget(a.position, b.position));
        let p = channel.mean_delivery_probability_budgeted(budget, ra);
        if p < MIN_LINK_QUALITY {
            continue;
        }
        let candidate = LinkQuality {
            delivery_prob: p,
            radio: ra,
            distance_m,
        };
        best = match best {
            Some(cur) if cur.delivery_prob >= p => Some(cur),
            _ => Some(candidate),
        };
    }
    best
}

/// A full shortest-path tree from one source node, produced by
/// [`ConnectivityGraph::route_tree`]. Valid only at the graph epoch it
/// was built from; the owner checks the stamp before reuse.
#[derive(Debug, Clone)]
pub struct RouteTree {
    src: u32,
    epoch: u64,
    /// Predecessor per dense index: the source maps to itself,
    /// unreachable nodes to `u32::MAX`.
    prev: Vec<u32>,
}

impl RouteTree {
    /// Dense index of the tree's source node.
    pub fn src(&self) -> u32 {
        self.src
    }

    /// Graph epoch the tree was computed at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Reusable Dijkstra working state for [`ConnectivityGraph::route_with`].
///
/// Distance and predecessor slots are validated by an epoch stamp, so
/// starting a new query is `O(1)` — no per-node clearing — and the heap
/// keeps its capacity across queries.
#[derive(Debug, Clone, Default)]
pub struct RouteScratch {
    dist: Vec<f64>,
    prev: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<HeapEntry>,
}

impl RouteScratch {
    /// An empty scratch; buffers grow to the graph size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begins a new query over `n` nodes.
    fn reset(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.prev.resize(n, u32::MAX);
            self.stamp.resize(n, 0);
            // A resize may keep a prefix whose stamps collide with a
            // restarted epoch sequence; invalidate everything.
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.heap.clear();
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // Stamp wrap-around: invalidate everything explicitly.
                self.stamp.fill(0);
                1
            }
        };
    }

    #[inline]
    fn dist(&self, i: u32) -> f64 {
        if self.stamp[i as usize] == self.epoch {
            self.dist[i as usize]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn prev(&self, i: u32) -> u32 {
        debug_assert_eq!(self.stamp[i as usize], self.epoch);
        self.prev[i as usize]
    }

    #[inline]
    fn set(&mut self, i: u32, dist: f64, prev: u32) {
        self.dist[i as usize] = dist;
        self.prev[i as usize] = prev;
        self.stamp[i as usize] = self.epoch;
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: u32,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost; tie-break on node index for determinism.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terrain::{Clutter, Terrain};
    use iobt_types::Rect;

    fn node(id: u64, x: f64, y: f64, radios: &[RadioKind]) -> GraphNode {
        GraphNode {
            id: NodeId::new(id),
            position: Point::new(x, y),
            radios: Rc::from(radios),
            alive: true,
        }
    }

    fn open_channel() -> Channel {
        Channel::new(Terrain::uniform(Rect::square(20_000.0), Clutter::Open))
    }

    #[test]
    fn chain_topology_routes_end_to_end() {
        let nodes: Vec<GraphNode> = (0..5)
            .map(|i| node(i, i as f64 * 80.0, 0.0, &[RadioKind::Wifi]))
            .collect();
        let g = ConnectivityGraph::build(&nodes, &open_channel());
        let route = g.route(NodeId::new(0), NodeId::new(4)).unwrap();
        assert_eq!(route.first(), Some(&NodeId::new(0)));
        assert_eq!(route.last(), Some(&NodeId::new(4)));
        assert!(route.len() >= 2);
        assert!(g.connected_core());
    }

    #[test]
    fn incompatible_radios_do_not_link() {
        let nodes = vec![
            node(0, 0.0, 0.0, &[RadioKind::Wifi]),
            node(1, 10.0, 0.0, &[RadioKind::Bluetooth]),
        ];
        let g = ConnectivityGraph::build(&nodes, &open_channel());
        assert_eq!(g.link_count(), 0);
        assert!(g.route(NodeId::new(0), NodeId::new(1)).is_none());
    }

    #[test]
    fn dead_nodes_get_no_links() {
        let mut nodes = vec![
            node(0, 0.0, 0.0, &[RadioKind::Wifi]),
            node(1, 50.0, 0.0, &[RadioKind::Wifi]),
        ];
        nodes[1].alive = false;
        let g = ConnectivityGraph::build(&nodes, &open_channel());
        assert_eq!(g.link_count(), 0);
    }

    #[test]
    fn out_of_range_pairs_do_not_link() {
        let nodes = vec![
            node(0, 0.0, 0.0, &[RadioKind::Bluetooth]),
            node(1, 100.0, 0.0, &[RadioKind::Bluetooth]), // beyond 25 m nominal
        ];
        let g = ConnectivityGraph::build(&nodes, &open_channel());
        assert_eq!(g.link_count(), 0);
    }

    #[test]
    fn route_to_self_is_trivial() {
        let nodes = vec![node(0, 0.0, 0.0, &[RadioKind::Wifi])];
        let g = ConnectivityGraph::build(&nodes, &open_channel());
        assert_eq!(
            g.route(NodeId::new(0), NodeId::new(0)),
            Some(vec![NodeId::new(0)])
        );
    }

    #[test]
    fn components_split_across_gap() {
        let nodes = vec![
            node(0, 0.0, 0.0, &[RadioKind::Wifi]),
            node(1, 60.0, 0.0, &[RadioKind::Wifi]),
            node(2, 5_000.0, 0.0, &[RadioKind::Wifi]),
            node(3, 5_060.0, 0.0, &[RadioKind::Wifi]),
        ];
        let g = ConnectivityGraph::build(&nodes, &open_channel());
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 2);
        assert!(!g.connected_core());
        assert!(g.route(NodeId::new(0), NodeId::new(3)).is_none());
    }

    #[test]
    fn route_prefers_reliable_paths() {
        // 0 -- 1 -- 2 short hops vs 0 -- 2 long direct: the two-hop path
        // multiplies two near-1 probabilities and beats the lossy direct hop.
        let nodes = vec![
            node(0, 0.0, 0.0, &[RadioKind::TacticalUhf]),
            node(1, 500.0, 0.0, &[RadioKind::TacticalUhf]),
            node(2, 1_000.0, 0.0, &[RadioKind::TacticalUhf]),
        ];
        let ch = open_channel();
        let g = ConnectivityGraph::build(&nodes, &ch);
        let direct = ch.mean_delivery_probability(
            Point::new(0.0, 0.0),
            Point::new(1_000.0, 0.0),
            RadioKind::TacticalUhf,
        );
        let hop = ch.mean_delivery_probability(
            Point::new(0.0, 0.0),
            Point::new(500.0, 0.0),
            RadioKind::TacticalUhf,
        );
        if hop * hop > direct {
            let route = g.route(NodeId::new(0), NodeId::new(2)).unwrap();
            assert_eq!(route.len(), 3, "should relay via node 1");
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        let nodes: Vec<GraphNode> = (0..10)
            .map(|i| node(i, (i % 5) as f64 * 60.0, (i / 5) as f64 * 60.0, &[RadioKind::Wifi]))
            .collect();
        let g = ConnectivityGraph::build(&nodes, &open_channel());
        for i in 0..10u64 {
            for (j, _) in g.neighbors(NodeId::new(i)) {
                assert!(
                    g.neighbors(j).iter().any(|(k, _)| *k == NodeId::new(i)),
                    "link {i} -> {j} must be symmetric"
                );
            }
        }
    }

    #[test]
    fn reused_scratch_matches_fresh_routes() {
        // A shared scratch must give the same answers as per-call
        // allocation, across multiple graphs of different sizes and
        // unreachable queries in between.
        let ch = open_channel();
        let big: Vec<GraphNode> = (0..30)
            .map(|i| node(i, (i % 6) as f64 * 70.0, (i / 6) as f64 * 70.0, &[RadioKind::Wifi]))
            .collect();
        let small = vec![
            node(100, 0.0, 0.0, &[RadioKind::Wifi]),
            node(101, 60.0, 0.0, &[RadioKind::Wifi]),
            node(102, 9_000.0, 0.0, &[RadioKind::Wifi]), // isolated
        ];
        let g_big = ConnectivityGraph::build(&big, &ch);
        let g_small = ConnectivityGraph::build(&small, &ch);
        let mut scratch = RouteScratch::new();
        for (g, pairs) in [
            (&g_big, vec![(0u64, 29u64), (5, 17), (29, 0)]),
            (&g_small, vec![(100, 101), (100, 102), (101, 100)]),
            (&g_big, vec![(3, 22), (0, 29)]),
        ] {
            for (a, b) in pairs {
                assert_eq!(
                    g.route_with(&mut scratch, NodeId::new(a), NodeId::new(b)),
                    g.route(NodeId::new(a), NodeId::new(b)),
                    "route {a} -> {b}"
                );
            }
        }
    }

    #[test]
    fn spatial_hashing_matches_bruteforce_linkcount() {
        // Grid of nodes spanning multiple buckets: every adjacent pair in
        // range must be found exactly once.
        let nodes: Vec<GraphNode> = (0..40)
            .map(|i| node(i, (i as f64) * 90.0, 0.0, &[RadioKind::Wifi]))
            .collect();
        let ch = open_channel();
        let g = ConnectivityGraph::build(&nodes, &ch);
        let mut expected = 0;
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                if best_link(&nodes[i], &nodes[j], &ch).is_some() {
                    expected += 1;
                }
            }
        }
        assert_eq!(g.link_count(), expected);
    }

    #[test]
    fn mixed_radio_ranges_keep_hashing_exact() {
        // Cell size follows the longest range present (cellular, 2 km),
        // but short-range links must still be found exactly.
        let mut nodes: Vec<GraphNode> = (0..30)
            .map(|i| node(i, (i as f64) * 85.0, 0.0, &[RadioKind::Wifi]))
            .collect();
        nodes.push(node(100, 0.0, 900.0, &[RadioKind::Cellular]));
        nodes.push(node(101, 1_500.0, 900.0, &[RadioKind::Cellular]));
        let ch = open_channel();
        let g = ConnectivityGraph::build(&nodes, &ch);
        let mut expected = 0;
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                if best_link(&nodes[i], &nodes[j], &ch).is_some() {
                    expected += 1;
                }
            }
        }
        assert_eq!(g.link_count(), expected);
    }

    #[test]
    fn refresh_node_matches_full_rebuild() {
        // Kill and revive nodes one at a time; after every step the
        // incrementally maintained graph must be indistinguishable from
        // a from-scratch build over the same world state.
        let ch = open_channel();
        let mut world: Vec<GraphNode> = (0..36)
            .map(|i| node(i, (i % 6) as f64 * 75.0, (i / 6) as f64 * 75.0, &[RadioKind::Wifi]))
            .collect();
        let mut g = ConnectivityGraph::build(&world, &ch);
        let start_epoch = g.epoch();
        // A deterministic little churn script: down, down, up, down, up...
        let script: [(u32, bool); 8] = [
            (7, false),
            (14, false),
            (7, true),
            (0, false),
            (35, false),
            (14, true),
            (0, true),
            (21, false),
        ];
        for &(i, alive) in &script {
            world[i as usize].alive = alive;
            g.refresh_node(i, alive, &ch, &|_, _| false);
            let fresh = ConnectivityGraph::build(&world, &ch);
            assert!(
                g.same_topology(&fresh),
                "incremental refresh diverged at node {i} alive={alive}"
            );
        }
        assert_eq!(g.epoch(), start_epoch + script.len() as u64);
    }

    #[test]
    fn refresh_node_respects_deny_predicate() {
        let ch = open_channel();
        let mut world = vec![
            node(0, 0.0, 0.0, &[RadioKind::Wifi]),
            node(1, 60.0, 0.0, &[RadioKind::Wifi]),
            node(2, 120.0, 0.0, &[RadioKind::Wifi]),
        ];
        let deny = |a: NodeId, b: NodeId| {
            let (a, b) = (a.raw().min(b.raw()), a.raw().max(b.raw()));
            (a, b) == (0, 1)
        };
        let mut g = ConnectivityGraph::build_filtered(&world, &ch, &deny);
        assert!(g.link(NodeId::new(0), NodeId::new(1)).is_none());
        // Bounce node 1; the denied pair must stay cut afterwards.
        world[1].alive = false;
        g.refresh_node(1, false, &ch, &deny);
        assert!(g.same_topology(&ConnectivityGraph::build_filtered(&world, &ch, &deny)));
        world[1].alive = true;
        g.refresh_node(1, true, &ch, &deny);
        assert!(g.same_topology(&ConnectivityGraph::build_filtered(&world, &ch, &deny)));
        assert!(g.link(NodeId::new(0), NodeId::new(1)).is_none());
        assert!(g.link(NodeId::new(1), NodeId::new(2)).is_some());
    }

    #[test]
    fn route_tree_matches_per_destination_routes() {
        // Every destination read out of one source's tree must equal the
        // early-exit per-destination query, including unreachable ones.
        let ch = open_channel();
        let mut nodes: Vec<GraphNode> = (0..25)
            .map(|i| node(i, (i % 5) as f64 * 70.0, (i / 5) as f64 * 70.0, &[RadioKind::Wifi]))
            .collect();
        nodes.push(node(99, 15_000.0, 0.0, &[RadioKind::Wifi])); // isolated
        let g = ConnectivityGraph::build(&nodes, &ch);
        let mut scratch = RouteScratch::new();
        for src in [0u64, 7, 24, 99] {
            let tree = g.route_tree(&mut scratch, NodeId::new(src)).unwrap();
            for n in &nodes {
                assert_eq!(
                    g.route_from_tree(&tree, n.id),
                    g.route_with(&mut scratch, NodeId::new(src), n.id),
                    "tree route {src} -> {:?}",
                    n.id
                );
            }
        }
    }
}
