//! Connectivity graphs and routing over the current radio environment.
//!
//! The simulator periodically snapshots which node pairs can hear each
//! other (shared radio technology, acceptable mean delivery probability)
//! into a [`ConnectivityGraph`], then routes messages along the most
//! reliable path (Dijkstra on `-ln p` weights, so path weight is the
//! negative log of end-to-end delivery probability).

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

use iobt_types::{NodeId, Point, RadioKind};

use crate::channel::Channel;

/// Quality of a directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkQuality {
    /// Mean single-transmission delivery probability in `(0, 1]`.
    pub delivery_prob: f64,
    /// Radio technology the link uses.
    pub radio: RadioKind,
    /// Link distance in meters.
    pub distance_m: f64,
}

/// A node as seen by the graph builder.
#[derive(Debug, Clone)]
pub struct GraphNode {
    /// Node identifier.
    pub id: NodeId,
    /// Current position.
    pub position: Point,
    /// Radio technologies the node carries.
    pub radios: Vec<RadioKind>,
    /// Whether the node is up (dead nodes keep their slot but get no links).
    pub alive: bool,
}

/// Snapshot of who can talk to whom.
#[derive(Debug, Clone, Default)]
pub struct ConnectivityGraph {
    ids: Vec<NodeId>,
    index: BTreeMap<NodeId, usize>,
    adj: Vec<Vec<(usize, LinkQuality)>>,
}

/// Minimum mean delivery probability for a link to exist at all.
pub const MIN_LINK_QUALITY: f64 = 0.05;

/// Links are only considered between nodes closer than this, keeping graph
/// construction near-linear via spatial hashing. Satcom-style infinite-range
/// radios are modelled as reachback, not mesh links.
pub const MAX_LINK_RANGE_M: f64 = 6_000.0;

impl ConnectivityGraph {
    /// Builds the graph from node states and the channel model.
    ///
    /// Uses a uniform spatial grid so only nearby pairs are tested; cost is
    /// `O(n + pairs-within-range)` rather than `O(n^2)`.
    pub fn build(nodes: &[GraphNode], channel: &Channel) -> Self {
        Self::build_filtered(nodes, channel, &|_, _| false)
    }

    /// [`ConnectivityGraph::build`] with a link-deny predicate: any pair
    /// for which `deny(a, b)` returns true gets no link regardless of
    /// radio compatibility. This is how network-partition faults cut the
    /// topology without touching node liveness.
    pub fn build_filtered(
        nodes: &[GraphNode],
        channel: &Channel,
        deny: &dyn Fn(NodeId, NodeId) -> bool,
    ) -> Self {
        let n = nodes.len();
        let ids: Vec<NodeId> = nodes.iter().map(|g| g.id).collect();
        let index: BTreeMap<NodeId, usize> = ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let mut adj: Vec<Vec<(usize, LinkQuality)>> = vec![Vec::new(); n];

        // Spatial hash with cell side MAX_LINK_RANGE_M.
        let cell = MAX_LINK_RANGE_M;
        let mut buckets: BTreeMap<(i64, i64), Vec<usize>> = BTreeMap::new();
        for (i, node) in nodes.iter().enumerate() {
            if !node.alive || node.radios.is_empty() {
                continue;
            }
            let key = (
                (node.position.x / cell).floor() as i64,
                (node.position.y / cell).floor() as i64,
            );
            buckets.entry(key).or_default().push(i);
        }
        for (&(bx, by), members) in &buckets {
            for &i in members {
                for dx in -1..=1 {
                    for dy in -1..=1 {
                        let Some(others) = buckets.get(&(bx + dx, by + dy)) else {
                            continue;
                        };
                        for &j in others {
                            if j <= i && (dx, dy) == (0, 0) {
                                continue; // handle each in-bucket pair once
                            }
                            if (dx, dy) != (0, 0) && j == i {
                                continue;
                            }
                            if deny(nodes[i].id, nodes[j].id) {
                                continue;
                            }
                            if let Some(link) = best_link(&nodes[i], &nodes[j], channel) {
                                adj[i].push((j, link));
                                adj[j].push((i, link));
                            }
                        }
                    }
                }
            }
        }
        // Deduplicate (cross-bucket pairs are visited from both buckets) and
        // sort for deterministic iteration.
        for (i, list) in adj.iter_mut().enumerate() {
            list.sort_by_key(|(j, _)| *j);
            list.dedup_by_key(|(j, _)| *j);
            debug_assert!(list.iter().all(|(j, _)| *j != i));
        }
        ConnectivityGraph { ids, index, adj }
    }

    /// Number of nodes (including dead ones, which have no links).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of undirected links.
    pub fn link_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Neighbors of a node, with link qualities. Empty for unknown ids.
    pub fn neighbors(&self, id: NodeId) -> Vec<(NodeId, LinkQuality)> {
        match self.index.get(&id) {
            Some(&i) => self.adj[i]
                .iter()
                .map(|&(j, q)| (self.ids[j], q))
                .collect(),
            None => Vec::new(),
        }
    }

    /// The most reliable route from `src` to `dst` as a node sequence
    /// (inclusive of both endpoints), or `None` when unreachable.
    ///
    /// Reliability is the product of per-hop delivery probabilities;
    /// Dijkstra runs on `-ln p` weights. Allocates fresh working state —
    /// callers routing many times per snapshot should hold a
    /// [`RouteScratch`] and use [`ConnectivityGraph::route_with`].
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        self.route_with(&mut RouteScratch::new(), src, dst)
    }

    /// [`ConnectivityGraph::route`] with caller-owned scratch space.
    ///
    /// The per-query distance/predecessor state is epoch-stamped instead
    /// of cleared, and the heap/path buffers are reused, so repeated
    /// queries (the simulator routes every message) cost no allocations
    /// once the scratch has warmed up. Stale heap entries — nodes already
    /// settled via a cheaper path — are skipped on pop.
    pub fn route_with(
        &self,
        scratch: &mut RouteScratch,
        src: NodeId,
        dst: NodeId,
    ) -> Option<Vec<NodeId>> {
        let &s = self.index.get(&src)?;
        let &d = self.index.get(&dst)?;
        if s == d {
            return Some(vec![src]);
        }
        scratch.reset(self.ids.len());
        scratch.set(s, 0.0, usize::MAX);
        scratch.heap.push(HeapEntry { cost: 0.0, node: s });
        while let Some(HeapEntry { cost, node }) = scratch.heap.pop() {
            if cost > scratch.dist(node) {
                continue; // stale entry: settled earlier via a cheaper path
            }
            if node == d {
                break;
            }
            for &(next, q) in &self.adj[node] {
                let w = -(q.delivery_prob.max(1e-12)).ln();
                let nd = cost + w;
                if nd < scratch.dist(next) {
                    scratch.set(next, nd, node);
                    scratch.heap.push(HeapEntry { cost: nd, node: next });
                }
            }
        }
        if scratch.dist(d).is_infinite() {
            return None;
        }
        let mut path = vec![d];
        let mut cur = d;
        while cur != s {
            cur = scratch.prev(cur);
            path.push(cur);
        }
        path.reverse();
        Some(path.into_iter().map(|i| self.ids[i]).collect())
    }

    /// Link quality between two adjacent nodes, if a link exists.
    pub fn link(&self, a: NodeId, b: NodeId) -> Option<LinkQuality> {
        let &i = self.index.get(&a)?;
        let &j = self.index.get(&b)?;
        self.adj[i].iter().find(|(k, _)| *k == j).map(|(_, q)| *q)
    }

    /// Connected components as sorted id lists, largest first.
    pub fn components(&self) -> Vec<Vec<NodeId>> {
        let n = self.ids.len();
        let mut seen = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut stack = vec![start];
            let mut comp = Vec::new();
            seen[start] = true;
            while let Some(i) = stack.pop() {
                comp.push(self.ids[i]);
                for &(j, _) in &self.adj[i] {
                    if !seen[j] {
                        seen[j] = true;
                        stack.push(j);
                    }
                }
            }
            comp.sort();
            components.push(comp);
        }
        components.sort_by(|a, b| b.len().cmp(&a.len()).then(a.cmp(b)));
        components
    }

    /// Whether every node with at least one link can reach every other
    /// (isolated/dead nodes are ignored).
    pub fn connected_core(&self) -> bool {
        let linked: Vec<usize> = (0..self.ids.len())
            .filter(|&i| !self.adj[i].is_empty())
            .collect();
        if linked.len() <= 1 {
            return true;
        }
        self.components()
            .iter()
            .filter(|c| c.len() > 1)
            .count()
            <= 1
    }
}

fn best_link(a: &GraphNode, b: &GraphNode, channel: &Channel) -> Option<LinkQuality> {
    if !a.alive || !b.alive {
        return None;
    }
    let distance_m = a.position.distance_to(b.position);
    if distance_m > MAX_LINK_RANGE_M {
        return None;
    }
    let mut best: Option<LinkQuality> = None;
    for &ra in &a.radios {
        if !b.radios.contains(&ra) {
            continue;
        }
        if distance_m > ra.nominal_range_m() {
            continue;
        }
        let p = channel.mean_delivery_probability(a.position, b.position, ra);
        if p < MIN_LINK_QUALITY {
            continue;
        }
        let candidate = LinkQuality {
            delivery_prob: p,
            radio: ra,
            distance_m,
        };
        best = match best {
            Some(cur) if cur.delivery_prob >= p => Some(cur),
            _ => Some(candidate),
        };
    }
    best
}

/// Reusable Dijkstra working state for [`ConnectivityGraph::route_with`].
///
/// Distance and predecessor slots are validated by an epoch stamp, so
/// starting a new query is `O(1)` — no per-node clearing — and the heap
/// keeps its capacity across queries.
#[derive(Debug, Clone, Default)]
pub struct RouteScratch {
    dist: Vec<f64>,
    prev: Vec<usize>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<HeapEntry>,
}

impl RouteScratch {
    /// An empty scratch; buffers grow to the graph size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begins a new query over `n` nodes.
    fn reset(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.prev.resize(n, usize::MAX);
            self.stamp.resize(n, 0);
            // A resize may keep a prefix whose stamps collide with a
            // restarted epoch sequence; invalidate everything.
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.heap.clear();
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // Stamp wrap-around: invalidate everything explicitly.
                self.stamp.fill(0);
                1
            }
        };
    }

    #[inline]
    fn dist(&self, i: usize) -> f64 {
        if self.stamp[i] == self.epoch {
            self.dist[i]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn prev(&self, i: usize) -> usize {
        debug_assert_eq!(self.stamp[i], self.epoch);
        self.prev[i]
    }

    #[inline]
    fn set(&mut self, i: usize, dist: f64, prev: usize) {
        self.dist[i] = dist;
        self.prev[i] = prev;
        self.stamp[i] = self.epoch;
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost; tie-break on node index for determinism.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terrain::{Clutter, Terrain};
    use iobt_types::Rect;

    fn node(id: u64, x: f64, y: f64, radios: &[RadioKind]) -> GraphNode {
        GraphNode {
            id: NodeId::new(id),
            position: Point::new(x, y),
            radios: radios.to_vec(),
            alive: true,
        }
    }

    fn open_channel() -> Channel {
        Channel::new(Terrain::uniform(Rect::square(20_000.0), Clutter::Open))
    }

    #[test]
    fn chain_topology_routes_end_to_end() {
        let nodes: Vec<GraphNode> = (0..5)
            .map(|i| node(i, i as f64 * 80.0, 0.0, &[RadioKind::Wifi]))
            .collect();
        let g = ConnectivityGraph::build(&nodes, &open_channel());
        let route = g.route(NodeId::new(0), NodeId::new(4)).unwrap();
        assert_eq!(route.first(), Some(&NodeId::new(0)));
        assert_eq!(route.last(), Some(&NodeId::new(4)));
        assert!(route.len() >= 2);
        assert!(g.connected_core());
    }

    #[test]
    fn incompatible_radios_do_not_link() {
        let nodes = vec![
            node(0, 0.0, 0.0, &[RadioKind::Wifi]),
            node(1, 10.0, 0.0, &[RadioKind::Bluetooth]),
        ];
        let g = ConnectivityGraph::build(&nodes, &open_channel());
        assert_eq!(g.link_count(), 0);
        assert!(g.route(NodeId::new(0), NodeId::new(1)).is_none());
    }

    #[test]
    fn dead_nodes_get_no_links() {
        let mut nodes = vec![
            node(0, 0.0, 0.0, &[RadioKind::Wifi]),
            node(1, 50.0, 0.0, &[RadioKind::Wifi]),
        ];
        nodes[1].alive = false;
        let g = ConnectivityGraph::build(&nodes, &open_channel());
        assert_eq!(g.link_count(), 0);
    }

    #[test]
    fn out_of_range_pairs_do_not_link() {
        let nodes = vec![
            node(0, 0.0, 0.0, &[RadioKind::Bluetooth]),
            node(1, 100.0, 0.0, &[RadioKind::Bluetooth]), // beyond 25 m nominal
        ];
        let g = ConnectivityGraph::build(&nodes, &open_channel());
        assert_eq!(g.link_count(), 0);
    }

    #[test]
    fn route_to_self_is_trivial() {
        let nodes = vec![node(0, 0.0, 0.0, &[RadioKind::Wifi])];
        let g = ConnectivityGraph::build(&nodes, &open_channel());
        assert_eq!(
            g.route(NodeId::new(0), NodeId::new(0)),
            Some(vec![NodeId::new(0)])
        );
    }

    #[test]
    fn components_split_across_gap() {
        let nodes = vec![
            node(0, 0.0, 0.0, &[RadioKind::Wifi]),
            node(1, 60.0, 0.0, &[RadioKind::Wifi]),
            node(2, 5_000.0, 0.0, &[RadioKind::Wifi]),
            node(3, 5_060.0, 0.0, &[RadioKind::Wifi]),
        ];
        let g = ConnectivityGraph::build(&nodes, &open_channel());
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 2);
        assert!(!g.connected_core());
        assert!(g.route(NodeId::new(0), NodeId::new(3)).is_none());
    }

    #[test]
    fn route_prefers_reliable_paths() {
        // 0 -- 1 -- 2 short hops vs 0 -- 2 long direct: the two-hop path
        // multiplies two near-1 probabilities and beats the lossy direct hop.
        let nodes = vec![
            node(0, 0.0, 0.0, &[RadioKind::TacticalUhf]),
            node(1, 500.0, 0.0, &[RadioKind::TacticalUhf]),
            node(2, 1_000.0, 0.0, &[RadioKind::TacticalUhf]),
        ];
        let ch = open_channel();
        let g = ConnectivityGraph::build(&nodes, &ch);
        let direct = ch.mean_delivery_probability(
            Point::new(0.0, 0.0),
            Point::new(1_000.0, 0.0),
            RadioKind::TacticalUhf,
        );
        let hop = ch.mean_delivery_probability(
            Point::new(0.0, 0.0),
            Point::new(500.0, 0.0),
            RadioKind::TacticalUhf,
        );
        if hop * hop > direct {
            let route = g.route(NodeId::new(0), NodeId::new(2)).unwrap();
            assert_eq!(route.len(), 3, "should relay via node 1");
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        let nodes: Vec<GraphNode> = (0..10)
            .map(|i| node(i, (i % 5) as f64 * 60.0, (i / 5) as f64 * 60.0, &[RadioKind::Wifi]))
            .collect();
        let g = ConnectivityGraph::build(&nodes, &open_channel());
        for i in 0..10u64 {
            for (j, _) in g.neighbors(NodeId::new(i)) {
                assert!(
                    g.neighbors(j).iter().any(|(k, _)| *k == NodeId::new(i)),
                    "link {i} -> {j} must be symmetric"
                );
            }
        }
    }

    #[test]
    fn reused_scratch_matches_fresh_routes() {
        // A shared scratch must give the same answers as per-call
        // allocation, across multiple graphs of different sizes and
        // unreachable queries in between.
        let ch = open_channel();
        let big: Vec<GraphNode> = (0..30)
            .map(|i| node(i, (i % 6) as f64 * 70.0, (i / 6) as f64 * 70.0, &[RadioKind::Wifi]))
            .collect();
        let small = vec![
            node(100, 0.0, 0.0, &[RadioKind::Wifi]),
            node(101, 60.0, 0.0, &[RadioKind::Wifi]),
            node(102, 9_000.0, 0.0, &[RadioKind::Wifi]), // isolated
        ];
        let g_big = ConnectivityGraph::build(&big, &ch);
        let g_small = ConnectivityGraph::build(&small, &ch);
        let mut scratch = RouteScratch::new();
        for (g, pairs) in [
            (&g_big, vec![(0u64, 29u64), (5, 17), (29, 0)]),
            (&g_small, vec![(100, 101), (100, 102), (101, 100)]),
            (&g_big, vec![(3, 22), (0, 29)]),
        ] {
            for (a, b) in pairs {
                assert_eq!(
                    g.route_with(&mut scratch, NodeId::new(a), NodeId::new(b)),
                    g.route(NodeId::new(a), NodeId::new(b)),
                    "route {a} -> {b}"
                );
            }
        }
    }

    #[test]
    fn spatial_hashing_matches_bruteforce_linkcount() {
        // Grid of nodes spanning multiple buckets: every adjacent pair in
        // range must be found exactly once.
        let nodes: Vec<GraphNode> = (0..40)
            .map(|i| node(i, (i as f64) * 90.0, 0.0, &[RadioKind::Wifi]))
            .collect();
        let ch = open_channel();
        let g = ConnectivityGraph::build(&nodes, &ch);
        let mut expected = 0;
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                if best_link(&nodes[i], &nodes[j], &ch).is_some() {
                    expected += 1;
                }
            }
        }
        assert_eq!(g.link_count(), expected);
    }
}
