//! Wireless channel model: path loss, shadowing, jamming, and loss rates.
//!
//! The model is a standard log-distance path-loss law with log-normal
//! shadowing, a thermal noise floor, and additive jamming interference.
//! Per-hop delivery probability is a logistic function of SINR, which
//! reproduces the qualitative S-curve of real packet-error-rate data
//! without modelling any particular modulation.

use iobt_types::{Point, RadioKind};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::terrain::Terrain;

/// Reference path loss at 1 m, in dB (2.4 GHz-class radios).
pub const REFERENCE_LOSS_DB: f64 = 40.0;
/// Thermal noise floor in dBm.
pub const NOISE_FLOOR_DBM: f64 = -100.0;
/// SINR at which delivery probability is 50%.
pub const SINR_MIDPOINT_DB: f64 = 10.0;
/// Slope of the delivery-probability logistic, in dB.
pub const SINR_SLOPE_DB: f64 = 2.0;

/// Converts watts to dBm. Returns `-inf` dBm for non-positive power.
pub fn watts_to_dbm(watts: f64) -> f64 {
    if watts <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * (watts * 1_000.0).log10()
    }
}

/// Converts dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// A hostile RF emitter raising the noise floor around it (§IV-B: "a
/// wireless jamming attack").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Jammer {
    /// Where the jammer sits.
    pub position: Point,
    /// Radiated power in watts.
    pub power_w: f64,
    /// Whether the jammer is currently emitting.
    pub active: bool,
}

impl Jammer {
    /// Creates an active jammer. Negative power clamps to zero.
    pub fn new(position: Point, power_w: f64) -> Self {
        Jammer {
            position,
            power_w: power_w.max(0.0),
            active: true,
        }
    }
}

/// The channel model used by the simulator for every transmission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    terrain: Terrain,
    jammers: Vec<Jammer>,
    extra_loss_db: f64,
}

impl Channel {
    /// Creates a channel over the given terrain with no jammers.
    pub fn new(terrain: Terrain) -> Self {
        Channel {
            terrain,
            jammers: Vec::new(),
            extra_loss_db: 0.0,
        }
    }

    /// The underlying terrain.
    pub const fn terrain(&self) -> &Terrain {
        &self.terrain
    }

    /// Adds a jammer, returning its index for later toggling.
    pub fn add_jammer(&mut self, jammer: Jammer) -> usize {
        self.jammers.push(jammer);
        self.jammers.len() - 1
    }

    /// Enables/disables a jammer by index. Out-of-range indices are ignored.
    pub fn set_jammer_active(&mut self, index: usize, active: bool) {
        if let Some(j) = self.jammers.get_mut(index) {
            j.active = active;
        }
    }

    /// Currently registered jammers.
    pub fn jammers(&self) -> &[Jammer] {
        &self.jammers
    }

    /// Replaces the jammer list wholesale (checkpoint restore).
    pub(crate) fn replace_jammers(&mut self, jammers: Vec<Jammer>) {
        self.jammers = jammers;
    }

    /// Sets a channel-wide extra path loss in dB (link-degradation
    /// faults: weather, obscurants, wide-band interference). Applies to
    /// every link's SINR; negative values clamp to zero.
    pub fn set_extra_loss_db(&mut self, db: f64) {
        self.extra_loss_db = db.max(0.0);
    }

    /// The channel-wide extra path loss currently applied, in dB.
    pub fn extra_loss_db(&self) -> f64 {
        self.extra_loss_db
    }

    /// Deterministic (no-shadowing) path loss between two points in dB.
    pub fn path_loss_db(&self, from: Point, to: Point) -> f64 {
        let d = from.distance_to(to).max(1.0);
        let n = self.terrain.clutter_between(from, to).path_loss_exponent();
        REFERENCE_LOSS_DB + 10.0 * n * d.log10()
    }

    /// Received power at `to` for a transmitter of `tx_power_w` at `from`,
    /// in dBm, before shadowing.
    pub fn received_power_dbm(&self, from: Point, to: Point, tx_power_w: f64) -> f64 {
        watts_to_dbm(tx_power_w) - self.path_loss_db(from, to)
    }

    /// Total interference-plus-noise at a receiver, in dBm: thermal floor
    /// plus the power received from every active jammer.
    pub fn noise_dbm(&self, at: Point) -> f64 {
        let mut total_mw = dbm_to_mw(NOISE_FLOOR_DBM);
        for j in &self.jammers {
            if j.active && j.power_w > 0.0 {
                total_mw += dbm_to_mw(self.received_power_dbm(j.position, at, j.power_w));
            }
        }
        10.0 * total_mw.log10()
    }

    /// Mean SINR of a link in dB, before shadowing. Includes any active
    /// channel-wide degradation loss.
    pub fn sinr_db(&self, from: Point, to: Point, radio: RadioKind) -> f64 {
        self.received_power_dbm(from, to, radio.tx_power_w()) - self.noise_dbm(to)
            - self.extra_loss_db
    }

    /// Single-transmission delivery probability on a link, sampling
    /// log-normal shadowing from `rng`. Deterministic given the RNG state.
    pub fn delivery_probability<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        from: Point,
        to: Point,
        radio: RadioKind,
    ) -> f64 {
        let sigma = self.terrain.clutter_between(from, to).shadowing_sigma_db();
        // Box-Muller-free: rand_distr is available but a simple sum of
        // uniforms (Irwin-Hall, n=12) gives a good normal with exactly one
        // RNG word per uniform and no rejection loop.
        let z: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
        let sinr = self.sinr_db(from, to, radio) + z * sigma;
        logistic((sinr - SINR_MIDPOINT_DB) / SINR_SLOPE_DB)
    }

    /// Expected (shadowing-averaged) delivery probability; used for link
    /// weights in routing so routes do not flap with every sample.
    pub fn mean_delivery_probability(&self, from: Point, to: Point, radio: RadioKind) -> f64 {
        logistic((self.sinr_db(from, to, radio) - SINR_MIDPOINT_DB) / SINR_SLOPE_DB)
    }

    /// Precomputes the radio-independent terms of a link's SINR: path
    /// loss between the endpoints and interference-plus-noise at the
    /// receiver. Graph builds evaluate every shared radio of a candidate
    /// pair against one budget instead of re-deriving both terms (a
    /// terrain query, a log, and a per-jammer sum) per radio kind.
    pub fn link_budget(&self, from: Point, to: Point) -> LinkBudget {
        LinkBudget {
            path_loss_db: self.path_loss_db(from, to),
            noise_dbm: self.noise_dbm(to),
        }
    }

    /// Mean delivery probability for `radio` over a precomputed
    /// [`LinkBudget`]. Bit-identical to
    /// [`Channel::mean_delivery_probability`] for the same endpoints:
    /// the SINR terms combine in the same order.
    pub fn mean_delivery_probability_budgeted(&self, budget: LinkBudget, radio: RadioKind) -> f64 {
        let sinr = watts_to_dbm(radio.tx_power_w()) - budget.path_loss_db - budget.noise_dbm
            - self.extra_loss_db;
        logistic((sinr - SINR_MIDPOINT_DB) / SINR_SLOPE_DB)
    }
}

/// The radio-independent part of a link's SINR computation, produced by
/// [`Channel::link_budget`]. Valid only for the channel state (jammers,
/// degradation, terrain) it was computed under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBudget {
    path_loss_db: f64,
    noise_dbm: f64,
}

impl Default for Channel {
    fn default() -> Self {
        Channel::new(Terrain::default())
    }
}

fn logistic(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terrain::Clutter;
    use iobt_types::Rect;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn open_channel() -> Channel {
        Channel::new(Terrain::uniform(Rect::square(10_000.0), Clutter::Open))
    }

    #[test]
    fn dbm_conversions() {
        assert!((watts_to_dbm(1.0) - 30.0).abs() < 1e-9);
        assert!((watts_to_dbm(0.001) - 0.0).abs() < 1e-9);
        assert_eq!(watts_to_dbm(0.0), f64::NEG_INFINITY);
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_loss_grows_with_distance() {
        let ch = open_channel();
        let a = Point::new(0.0, 0.0);
        let near = ch.path_loss_db(a, Point::new(10.0, 0.0));
        let far = ch.path_loss_db(a, Point::new(1_000.0, 0.0));
        assert!(far > near);
        // Sub-meter distances clamp to the reference distance.
        assert!((ch.path_loss_db(a, Point::new(0.5, 0.0)) - REFERENCE_LOSS_DB).abs() < 1e-9);
    }

    #[test]
    fn urban_is_lossier_than_open() {
        let open = open_channel();
        let urban = Channel::new(Terrain::uniform(Rect::square(10_000.0), Clutter::Urban));
        let a = Point::new(0.0, 0.0);
        let b = Point::new(200.0, 0.0);
        assert!(urban.path_loss_db(a, b) > open.path_loss_db(a, b));
    }

    #[test]
    fn jammer_raises_noise_and_kills_nearby_links() {
        let mut ch = open_channel();
        let rx = Point::new(100.0, 0.0);
        let tx = Point::new(0.0, 0.0);
        let clean = ch.sinr_db(tx, rx, RadioKind::Wifi);
        let idx = ch.add_jammer(Jammer::new(Point::new(110.0, 0.0), 10.0));
        let jammed = ch.sinr_db(tx, rx, RadioKind::Wifi);
        assert!(jammed < clean - 20.0, "jamming should crush SINR");
        ch.set_jammer_active(idx, false);
        let restored = ch.sinr_db(tx, rx, RadioKind::Wifi);
        assert!((restored - clean).abs() < 1e-9);
    }

    #[test]
    fn delivery_probability_monotone_in_distance() {
        let ch = open_channel();
        let tx = Point::new(0.0, 0.0);
        let near = ch.mean_delivery_probability(tx, Point::new(20.0, 0.0), RadioKind::Wifi);
        let far = ch.mean_delivery_probability(tx, Point::new(400.0, 0.0), RadioKind::Wifi);
        assert!(near > 0.9, "short open-field wifi link should be reliable: {near}");
        assert!(far < near);
    }

    #[test]
    fn sampled_probability_in_unit_interval_and_deterministic() {
        let ch = open_channel();
        let mut rng1 = StdRng::seed_from_u64(3);
        let mut rng2 = StdRng::seed_from_u64(3);
        for i in 0..100 {
            let to = Point::new(10.0 + i as f64 * 5.0, 0.0);
            let p1 = ch.delivery_probability(&mut rng1, Point::ORIGIN, to, RadioKind::Wifi);
            let p2 = ch.delivery_probability(&mut rng2, Point::ORIGIN, to, RadioKind::Wifi);
            assert!((0.0..=1.0).contains(&p1));
            assert_eq!(p1, p2);
        }
    }

    #[test]
    fn budgeted_probability_is_bit_identical() {
        let mut ch = open_channel();
        ch.add_jammer(Jammer::new(Point::new(300.0, 50.0), 5.0));
        ch.set_extra_loss_db(3.0);
        let tx = Point::ORIGIN;
        for i in 0..50 {
            let rx = Point::new(5.0 + i as f64 * 37.0, i as f64 * 11.0);
            let budget = ch.link_budget(tx, rx);
            for radio in [
                RadioKind::Wifi,
                RadioKind::Bluetooth,
                RadioKind::Cellular,
                RadioKind::TacticalUhf,
                RadioKind::Satcom,
            ] {
                let plain = ch.mean_delivery_probability(tx, rx, radio);
                let budgeted = ch.mean_delivery_probability_budgeted(budget, radio);
                assert_eq!(plain.to_bits(), budgeted.to_bits());
            }
        }
    }

    #[test]
    fn tactical_uhf_outranges_bluetooth() {
        let ch = open_channel();
        let tx = Point::ORIGIN;
        let rx = Point::new(500.0, 0.0);
        let uhf = ch.mean_delivery_probability(tx, rx, RadioKind::TacticalUhf);
        let bt = ch.mean_delivery_probability(tx, rx, RadioKind::Bluetooth);
        assert!(uhf > bt);
    }
}
