//! Crash-safe mission checkpointing.
//!
//! The paper's IoBT vision demands missions that "survive substantial
//! failures and disconnections" — including failures of the *runtime
//! host* itself. This crate provides the storage half of that story:
//!
//! * [`codec`] — a tiny fixed-layout binary codec ([`Enc`]/[`Dec`])
//!   with exact `f64` bit round-tripping, so restored state is
//!   bit-identical to saved state (a prerequisite for deterministic
//!   resume).
//! * [`envelope`] — the checkpoint file format: a fixed-order header
//!   (magic, format version, seed, window index), the payload, and a
//!   trailing CRC-32 over everything before it. Files are written
//!   temp-then-rename so a crash mid-write never leaves a truncated
//!   file under the final name.
//! * [`store`] — a directory of per-window checkpoints with a
//!   latest-good scan: a torn or bit-flipped checkpoint is detected,
//!   reported, and skipped in favour of the previous good one.
//!
//! Everything in this crate is pure bytes + `std::fs`; the state that
//! goes *into* a checkpoint is assembled by `iobt-netsim` and
//! `iobt-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod envelope;
pub mod store;

pub use codec::{Dec, DecodeError, Enc};
pub use envelope::{
    crc32, decode_checkpoint, encode_checkpoint, read_checkpoint_file, write_checkpoint_atomic,
    CheckpointHeader, CkptError, FORMAT_VERSION, MAGIC,
};
pub use store::{CheckpointStore, LatestGood};
