//! The checkpoint file format.
//!
//! Fixed-order layout (all integers little-endian):
//!
//! | offset | size | field                                    |
//! |--------|------|------------------------------------------|
//! | 0      | 8    | magic `b"IOBTCKPT"`                      |
//! | 8      | 4    | format version (`u32`, see below)        |
//! | 12     | 8    | mission seed (`u64`)                     |
//! | 20     | 8    | window index (`u64`, windows completed)  |
//! | 28     | 8    | payload length (`u64`)                   |
//! | 36     | n    | payload                                  |
//! | 36 + n | 4    | CRC-32 (IEEE) over bytes `[0, 36 + n)`   |
//!
//! The CRC covers the header *and* the payload, so a bit flip anywhere
//! in the file — including in the header fields themselves — is
//! detected at load. Files are written to a `.tmp` sibling and
//! atomically renamed into place, so a crash mid-write can only ever
//! leave a stale temp file behind, never a truncated checkpoint under
//! the final name.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::codec::DecodeError;

/// File magic: the first eight bytes of every checkpoint.
pub const MAGIC: [u8; 8] = *b"IOBTCKPT";

/// Current checkpoint format version. Bump on any layout change; the
/// loader rejects versions it does not understand.
///
/// History: v1 recorded the netsim graph cache as a present/absent
/// bool; v2 widened that byte to a three-state disposition (absent,
/// clean, pending-liveness-patch) for incremental connectivity
/// maintenance, so v1 readers would misparse v2 payloads; v3 widened
/// the recorder's per-subsystem emission-counter array from 5 to 6
/// slots when the `fleet` subsystem was added, shifting every field
/// after it; v4 widened it again from 6 to 7 slots for the `bridge`
/// subsystem.
pub const FORMAT_VERSION: u32 = 4;

/// Fixed header size in bytes (magic + version + seed + window + len).
pub const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8;

/// Trailing checksum size in bytes.
pub const TRAILER_LEN: usize = 4;

/// Decoded checkpoint header fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// Format version the file was written with.
    pub version: u32,
    /// Mission seed the checkpoint belongs to.
    pub seed: u64,
    /// Number of utility windows completed when the checkpoint was
    /// taken (resume continues from window `window`).
    pub window: u64,
}

/// Everything that can go wrong saving or loading a checkpoint.
///
/// None of these are panics: a torn, truncated or bit-flipped file
/// surfaces as an `Err` so the caller can fall back to the previous
/// good checkpoint.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem error (open/read/write/rename).
    Io {
        /// What was being attempted (e.g. `"write"`).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file is shorter than a minimal envelope.
    Truncated {
        /// Actual file length.
        len: usize,
        /// Minimum length for an empty-payload checkpoint.
        min: usize,
    },
    /// The first eight bytes are not [`MAGIC`].
    BadMagic,
    /// The format version is newer (or otherwise unknown) to this build.
    UnsupportedVersion(u32),
    /// The header's payload length disagrees with the file size.
    LengthMismatch {
        /// Length declared in the header.
        declared: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// The trailing CRC-32 does not match the file contents.
    CrcMismatch {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the file contents.
        computed: u32,
    },
    /// The checkpoint was written for a different mission seed.
    SeedMismatch {
        /// Seed the caller expected.
        expected: u64,
        /// Seed found in the header.
        found: u64,
    },
    /// The envelope verified, but the payload failed to decode.
    Decode(DecodeError),
    /// The payload decoded, but disagrees with the scenario/config the
    /// caller is resuming with (e.g. different window count).
    Mismatch(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io { op, path, source } => {
                write!(f, "checkpoint {op} failed for {}: {source}", path.display())
            }
            CkptError::Truncated { len, min } => {
                write!(f, "checkpoint truncated: {len} bytes, minimum {min}")
            }
            CkptError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CkptError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            CkptError::LengthMismatch { declared, actual } => write!(
                f,
                "payload length mismatch: header declares {declared}, file holds {actual}"
            ),
            CkptError::CrcMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            CkptError::SeedMismatch { expected, found } => {
                write!(f, "seed mismatch: expected {expected}, checkpoint has {found}")
            }
            CkptError::Decode(e) => write!(f, "payload decode failed: {e}"),
            CkptError::Mismatch(why) => write!(f, "checkpoint does not match this run: {why}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io { source, .. } => Some(source),
            CkptError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for CkptError {
    fn from(e: DecodeError) -> Self {
        CkptError::Decode(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`).
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Serialises a checkpoint envelope around `payload`.
pub fn encode_checkpoint(seed: u64, window: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&seed.to_le_bytes());
    out.extend_from_slice(&window.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Verifies an envelope and returns its header and payload slice.
///
/// Verification order: length floor → magic → version → declared
/// payload length → CRC. Every failure is an `Err`; nothing panics on
/// arbitrary input.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<(CheckpointHeader, &[u8]), CkptError> {
    let min = HEADER_LEN + TRAILER_LEN;
    if bytes.len() < min {
        return Err(CkptError::Truncated {
            len: bytes.len(),
            min,
        });
    }
    if bytes[..8] != MAGIC {
        return Err(CkptError::BadMagic);
    }
    let le_u32 = |b: &[u8]| {
        let mut w = [0u8; 4];
        w.copy_from_slice(&b[..4]);
        u32::from_le_bytes(w)
    };
    let le_u64 = |b: &[u8]| {
        let mut w = [0u8; 8];
        w.copy_from_slice(&b[..8]);
        u64::from_le_bytes(w)
    };
    let version = le_u32(&bytes[8..12]);
    if version != FORMAT_VERSION {
        return Err(CkptError::UnsupportedVersion(version));
    }
    let seed = le_u64(&bytes[12..20]);
    let window = le_u64(&bytes[20..28]);
    let declared = le_u64(&bytes[28..36]);
    let actual = (bytes.len() - min) as u64;
    if declared != actual {
        return Err(CkptError::LengthMismatch { declared, actual });
    }
    let body = &bytes[..bytes.len() - TRAILER_LEN];
    let stored = le_u32(&bytes[bytes.len() - TRAILER_LEN..]);
    let computed = crc32(body);
    if stored != computed {
        return Err(CkptError::CrcMismatch { stored, computed });
    }
    Ok((
        CheckpointHeader {
            version,
            seed,
            window,
        },
        &bytes[HEADER_LEN..bytes.len() - TRAILER_LEN],
    ))
}

/// Writes a checkpoint to `path` atomically: the envelope is written
/// to a `.tmp` sibling, flushed, then renamed over `path`.
pub fn write_checkpoint_atomic(
    path: &Path,
    seed: u64,
    window: u64,
    payload: &[u8],
) -> Result<(), CkptError> {
    let bytes = encode_checkpoint(seed, window, payload);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let io = |op: &'static str, p: &Path| {
        let path = p.to_path_buf();
        move |source| CkptError::Io { op, path, source }
    };
    let mut file = fs::File::create(&tmp).map_err(io("create", &tmp))?;
    file.write_all(&bytes).map_err(io("write", &tmp))?;
    file.sync_all().map_err(io("sync", &tmp))?;
    drop(file);
    fs::rename(&tmp, path).map_err(io("rename", path))?;
    Ok(())
}

/// Reads and verifies a checkpoint file, returning header + payload.
pub fn read_checkpoint_file(path: &Path) -> Result<(CheckpointHeader, Vec<u8>), CkptError> {
    let bytes = fs::read(path).map_err(|source| CkptError::Io {
        op: "read",
        path: path.to_path_buf(),
        source,
    })?;
    let (header, payload) = decode_checkpoint(&bytes)?;
    Ok((header, payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn envelope_roundtrip() {
        let payload = b"mission state goes here";
        let bytes = encode_checkpoint(42, 7, payload);
        let (header, got) = decode_checkpoint(&bytes).unwrap();
        assert_eq!(header.version, FORMAT_VERSION);
        assert_eq!(header.seed, 42);
        assert_eq!(header.window, 7);
        assert_eq!(got, payload);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let bytes = encode_checkpoint(1, 0, &[]);
        let (header, got) = decode_checkpoint(&bytes).unwrap();
        assert_eq!(header.window, 0);
        assert!(got.is_empty());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = encode_checkpoint(42, 3, b"abcdefgh");
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[i] ^= 1 << bit;
                assert!(
                    decode_checkpoint(&bad).is_err(),
                    "flip of byte {i} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = encode_checkpoint(42, 3, b"abcdefgh");
        for len in 0..bytes.len() {
            assert!(
                decode_checkpoint(&bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = encode_checkpoint(1, 1, b"x");
        bytes[8] = 99; // version field
        assert!(matches!(
            decode_checkpoint(&bytes),
            Err(CkptError::UnsupportedVersion(_) | CkptError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join(format!("iobt-ckpt-env-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("one.ickpt");
        write_checkpoint_atomic(&path, 9, 2, b"payload").unwrap();
        let (header, payload) = read_checkpoint_file(&path).unwrap();
        assert_eq!((header.seed, header.window), (9, 2));
        assert_eq!(payload, b"payload");
        // No temp file left behind.
        assert!(!dir.join("one.ickpt.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
