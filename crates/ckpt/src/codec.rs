//! Fixed-layout binary codec for checkpoint payloads.
//!
//! Everything is little-endian with explicit widths; `f64` travels as
//! its IEEE-754 bit pattern via [`f64::to_bits`], so a value restored
//! from a checkpoint compares bit-identical to the value saved — JSON
//! round-tripping cannot guarantee that, and deterministic resume
//! requires it. Decoding never panics: every read is bounds-checked
//! and returns a [`DecodeError`] on malformed input, which is what
//! lets corrupted checkpoints be *rejected* rather than crash the
//! process.

use std::fmt;

/// Error produced by [`Dec`] on malformed or truncated input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before a fixed-width read could complete.
    UnexpectedEof {
        /// Byte offset at which the read started.
        at: usize,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A boolean byte was neither 0 nor 1.
    InvalidBool(u8),
    /// A length prefix exceeded the remaining input (or `usize`).
    BadLength {
        /// Byte offset of the length prefix.
        at: usize,
        /// The declared length.
        declared: u64,
    },
    /// A string field did not hold valid UTF-8.
    InvalidUtf8 {
        /// Byte offset of the string payload.
        at: usize,
    },
    /// Input bytes remained after the final expected field.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// A tag byte did not name a known variant of `what`.
    UnknownTag {
        /// What was being decoded (e.g. `"event"`).
        what: &'static str,
        /// The unrecognised tag value.
        tag: u8,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof {
                at,
                needed,
                remaining,
            } => write!(
                f,
                "unexpected end of input at byte {at}: needed {needed} bytes, {remaining} remain"
            ),
            DecodeError::InvalidBool(b) => write!(f, "invalid bool byte {b:#04x}"),
            DecodeError::BadLength { at, declared } => {
                write!(f, "length prefix {declared} at byte {at} exceeds input")
            }
            DecodeError::InvalidUtf8 { at } => write!(f, "invalid UTF-8 at byte {at}"),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after final field")
            }
            DecodeError::UnknownTag { what, tag } => {
                write!(f, "unknown {what} tag {tag}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only encoder. All writes are infallible.
#[derive(Debug, Default, Clone)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its exact IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Bounds-checked decoder over a byte slice. Never panics.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Starts decoding at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Succeeds only when every input byte has been consumed; call as
    /// the last step of decoding a payload to reject oversized input.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                at: self.pos,
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        let mut w = [0u8; 4];
        w.copy_from_slice(b);
        Ok(u32::from_le_bytes(w))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        let mut w = [0u8; 8];
        w.copy_from_slice(b);
        Ok(u64::from_le_bytes(w))
    }

    /// Reads a `usize` stored as `u64`, rejecting values that do not
    /// fit (or could not possibly index the remaining input).
    pub fn usize(&mut self) -> Result<usize, DecodeError> {
        let at = self.pos;
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| DecodeError::BadLength { at, declared: v })
    }

    /// Reads an `f64` from its exact bit pattern.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool byte, rejecting anything but 0 or 1.
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError::InvalidBool(b)),
        }
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let at = self.pos;
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(DecodeError::BadLength {
                at,
                declared: n as u64,
            });
        }
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let at = self.pos;
        let b = self.bytes()?;
        std::str::from_utf8(b)
            .map(str::to_owned)
            .map_err(|_| DecodeError::InvalidUtf8 { at })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 3);
        e.usize(42);
        e.f64(-0.1);
        e.f64(f64::INFINITY);
        e.f64(f64::NAN);
        e.bool(true);
        e.bool(false);
        e.bytes(&[1, 2, 3]);
        e.str("jammer ∆");
        let bytes = e.into_bytes();

        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8(), Ok(7));
        assert_eq!(d.u32(), Ok(0xDEAD_BEEF));
        assert_eq!(d.u64(), Ok(u64::MAX - 3));
        assert_eq!(d.usize(), Ok(42));
        assert_eq!(d.f64().map(f64::to_bits), Ok((-0.1f64).to_bits()));
        assert_eq!(d.f64(), Ok(f64::INFINITY));
        assert!(d.f64().is_ok_and(f64::is_nan));
        assert_eq!(d.bool(), Ok(true));
        assert_eq!(d.bool(), Ok(false));
        assert_eq!(d.bytes(), Ok(&[1u8, 2, 3][..]));
        assert_eq!(d.str().as_deref(), Ok("jammer ∆"));
        assert_eq!(d.finish(), Ok(()));
    }

    #[test]
    fn f64_bit_patterns_survive_exactly() {
        for v in [
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::EPSILON,
            f64::NEG_INFINITY,
            f64::from_bits(0x7ff8_0000_dead_beef), // a payloaded NaN
        ] {
            let mut e = Enc::new();
            e.f64(v);
            let b = e.into_bytes();
            let got = Dec::new(&b).f64().map(f64::to_bits);
            assert_eq!(got, Ok(v.to_bits()));
        }
    }

    #[test]
    fn eof_and_bad_length_are_errors_not_panics() {
        let mut d = Dec::new(&[1, 2]);
        assert!(matches!(d.u32(), Err(DecodeError::UnexpectedEof { .. })));

        // Length prefix claims 100 bytes but only 1 follows.
        let mut e = Enc::new();
        e.usize(100);
        e.u8(9);
        let b = e.into_bytes();
        let mut d = Dec::new(&b);
        assert!(matches!(d.bytes(), Err(DecodeError::BadLength { .. })));
    }

    #[test]
    fn invalid_bool_and_utf8_rejected() {
        let mut d = Dec::new(&[3]);
        assert_eq!(d.bool(), Err(DecodeError::InvalidBool(3)));

        let mut e = Enc::new();
        e.bytes(&[0xFF, 0xFE]);
        let b = e.into_bytes();
        let mut d = Dec::new(&b);
        assert!(matches!(d.str(), Err(DecodeError::InvalidUtf8 { .. })));
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut d = Dec::new(&[1, 2, 3]);
        let _ = d.u8();
        assert_eq!(d.finish(), Err(DecodeError::TrailingBytes { remaining: 2 }));
    }
}
