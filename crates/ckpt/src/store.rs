//! Directory of per-window checkpoints with latest-good fallback.
//!
//! One mission checkpoints into one directory; each completed window
//! `w` produces `ckpt-<w, zero-padded>.ickpt`. Loading scans windows
//! in *descending* order and returns the newest checkpoint that
//! verifies (magic, version, length, CRC, seed); corrupt or torn files
//! are collected in [`LatestGood::skipped`] so the caller can report
//! them — they are never silently ignored and never a panic.

use std::fs;
use std::path::{Path, PathBuf};

use crate::envelope::{read_checkpoint_file, write_checkpoint_atomic, CkptError};

const PREFIX: &str = "ckpt-";
const SUFFIX: &str = ".ickpt";

/// A directory holding one mission's checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

/// Result of a latest-good scan: the newest verifiable checkpoint (if
/// any) plus every newer file that failed verification.
#[derive(Debug)]
pub struct LatestGood {
    /// `(window, payload)` of the newest good checkpoint, or `None`
    /// when no file in the directory verifies.
    pub loaded: Option<(u64, Vec<u8>)>,
    /// Files that looked like checkpoints but failed verification,
    /// with the reason each was skipped.
    pub skipped: Vec<(PathBuf, CkptError)>,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CkptError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|source| CkptError::Io {
            op: "create dir",
            path: dir.clone(),
            source,
        })?;
        Ok(CheckpointStore { dir })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the checkpoint for window `window`.
    pub fn path_for(&self, window: u64) -> PathBuf {
        self.dir.join(format!("{PREFIX}{window:08}{SUFFIX}"))
    }

    /// Atomically writes the checkpoint for `window`.
    pub fn save(&self, seed: u64, window: u64, payload: &[u8]) -> Result<PathBuf, CkptError> {
        let path = self.path_for(window);
        write_checkpoint_atomic(&path, seed, window, payload)?;
        Ok(path)
    }

    /// Window indices present in the directory, ascending. Parsed from
    /// file names, so ordering never depends on filesystem timestamps.
    pub fn windows(&self) -> Result<Vec<u64>, CkptError> {
        let entries = fs::read_dir(&self.dir).map_err(|source| CkptError::Io {
            op: "read dir",
            path: self.dir.clone(),
            source,
        })?;
        let mut windows = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(PREFIX) else { continue };
            let Some(digits) = rest.strip_suffix(SUFFIX) else { continue };
            if let Ok(w) = digits.parse::<u64>() {
                windows.push(w);
            }
        }
        windows.sort_unstable();
        windows.dedup();
        Ok(windows)
    }

    /// Reads and verifies the checkpoint for one specific window,
    /// additionally checking it belongs to `seed`.
    pub fn load_window(&self, seed: u64, window: u64) -> Result<Vec<u8>, CkptError> {
        let path = self.path_for(window);
        let (header, payload) = read_checkpoint_file(&path)?;
        if header.seed != seed {
            return Err(CkptError::SeedMismatch {
                expected: seed,
                found: header.seed,
            });
        }
        if header.window != window {
            return Err(CkptError::Mismatch(format!(
                "file named for window {window} holds window {}",
                header.window
            )));
        }
        Ok(payload)
    }

    /// Scans for the newest checkpoint that verifies against `seed`,
    /// falling back past corrupt files and reporting each one skipped.
    /// `Err` only on a directory-listing failure.
    pub fn load_latest_good(&self, seed: u64) -> Result<LatestGood, CkptError> {
        let mut skipped = Vec::new();
        for window in self.windows()?.into_iter().rev() {
            match self.load_window(seed, window) {
                Ok(payload) => {
                    return Ok(LatestGood {
                        loaded: Some((window, payload)),
                        skipped,
                    })
                }
                Err(e) => skipped.push((self.path_for(window), e)),
            }
        }
        Ok(LatestGood {
            loaded: None,
            skipped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iobt-ckpt-store-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_then_latest_good_returns_newest() {
        let dir = scratch("newest");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save(42, 1, b"one").unwrap();
        store.save(42, 2, b"two").unwrap();
        store.save(42, 10, b"ten").unwrap();
        assert_eq!(store.windows().unwrap(), vec![1, 2, 10]);
        let latest = store.load_latest_good(42).unwrap();
        assert_eq!(latest.loaded, Some((10, b"ten".to_vec())));
        assert!(latest.skipped.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous_good() {
        let dir = scratch("fallback");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save(7, 1, b"good-one").unwrap();
        store.save(7, 2, b"good-two").unwrap();
        // Flip one payload byte in the newest file.
        let path = store.path_for(2);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let latest = store.load_latest_good(7).unwrap();
        assert_eq!(latest.loaded, Some((1, b"good-one".to_vec())));
        assert_eq!(latest.skipped.len(), 1);
        assert_eq!(latest.skipped[0].0, path);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_seed_is_skipped() {
        let dir = scratch("seed");
        let store = CheckpointStore::open(&dir).unwrap();
        store.save(1, 3, b"other mission").unwrap();
        let latest = store.load_latest_good(2).unwrap();
        assert!(latest.loaded.is_none());
        assert_eq!(latest.skipped.len(), 1);
        assert!(matches!(latest.skipped[0].1, CkptError::SeedMismatch { .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_loads_nothing() {
        let dir = scratch("empty");
        let store = CheckpointStore::open(&dir).unwrap();
        let latest = store.load_latest_good(0).unwrap();
        assert!(latest.loaded.is_none());
        assert!(latest.skipped.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unrelated_files_are_ignored() {
        let dir = scratch("unrelated");
        let store = CheckpointStore::open(&dir).unwrap();
        fs::write(dir.join("notes.txt"), b"hello").unwrap();
        fs::write(dir.join("ckpt-abc.ickpt"), b"garbage").unwrap();
        store.save(5, 4, b"real").unwrap();
        let latest = store.load_latest_good(5).unwrap();
        assert_eq!(latest.loaded, Some((4, b"real".to_vec())));
        fs::remove_dir_all(&dir).unwrap();
    }
}
