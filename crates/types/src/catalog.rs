//! Node catalogs and synthetic population generation.
//!
//! A [`NodeCatalog`] is the registry of known assets that recruitment fills
//! and composition draws from. [`PopulationBuilder`] samples the large,
//! heterogeneous blue/red/gray populations (Fig. 2: "1,000s to 10,000s of
//! nodes") that every experiment in this reproduction runs against.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{
    Affiliation, CapabilityProfile, ComputeClass, EnergyBudget, NodeId, NodeSpec, Point, Radio,
    RadioKind, Rect, Sensor, SensorKind, TypesError,
};

/// An ordered registry of [`NodeSpec`]s keyed by [`NodeId`].
///
/// Iteration order is ascending id, so downstream algorithms are
/// deterministic given the same catalog.
///
/// ```
/// # use iobt_types::prelude::*;
/// # use iobt_types::catalog::NodeCatalog;
/// let mut catalog = NodeCatalog::new();
/// catalog.insert(NodeSpec::builder(NodeId::new(1)).build()).unwrap();
/// assert_eq!(catalog.len(), 1);
/// assert!(catalog.get(NodeId::new(1)).is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeCatalog {
    nodes: BTreeMap<NodeId, NodeSpec>,
}

impl NodeCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Registers a node.
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::DuplicateNode`] if the id is already present.
    pub fn insert(&mut self, node: NodeSpec) -> Result<(), TypesError> {
        let id = node.id();
        if self.nodes.contains_key(&id) {
            return Err(TypesError::DuplicateNode(id));
        }
        self.nodes.insert(id, node);
        Ok(())
    }

    /// Replaces a node's spec (or inserts it), returning the previous spec.
    pub fn upsert(&mut self, node: NodeSpec) -> Option<NodeSpec> {
        self.nodes.insert(node.id(), node)
    }

    /// Removes a node, returning its spec if present. Models churn and
    /// battle damage.
    pub fn remove(&mut self, id: NodeId) -> Option<NodeSpec> {
        self.nodes.remove(&id)
    }

    /// Looks up a node.
    pub fn get(&self, id: NodeId) -> Option<&NodeSpec> {
        self.nodes.get(&id)
    }

    /// Iterates over nodes in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = &NodeSpec> {
        self.nodes.values()
    }

    /// All node ids in ascending order.
    pub fn ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// Nodes with the given affiliation, ascending id order.
    pub fn with_affiliation(&self, affiliation: Affiliation) -> Vec<&NodeSpec> {
        self.iter()
            .filter(|n| n.affiliation() == affiliation)
            .collect()
    }

    /// Nodes able to sense the given modality, ascending id order.
    pub fn with_sensor(&self, kind: SensorKind) -> Vec<&NodeSpec> {
        self.iter()
            .filter(|n| n.capabilities().can_sense(kind))
            .collect()
    }

    /// Nodes within `radius_m` of `center`, ascending id order.
    pub fn within_radius(&self, center: Point, radius_m: f64) -> Vec<&NodeSpec> {
        let r2 = radius_m * radius_m;
        self.iter()
            .filter(|n| n.position().distance_sq_to(center) <= r2)
            .collect()
    }

    /// Nodes inside the rectangle, ascending id order.
    pub fn within_rect(&self, area: &Rect) -> Vec<&NodeSpec> {
        self.iter().filter(|n| area.contains(n.position())).collect()
    }

    /// Counts nodes per affiliation as `[blue, red, gray]`.
    pub fn affiliation_counts(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for n in self.iter() {
            counts[n.affiliation().index()] += 1;
        }
        counts
    }
}

impl FromIterator<NodeSpec> for NodeCatalog {
    /// Collects nodes; later duplicates replace earlier ones.
    fn from_iter<T: IntoIterator<Item = NodeSpec>>(iter: T) -> Self {
        let mut catalog = NodeCatalog::new();
        for node in iter {
            catalog.upsert(node);
        }
        catalog
    }
}

impl Extend<NodeSpec> for NodeCatalog {
    fn extend<T: IntoIterator<Item = NodeSpec>>(&mut self, iter: T) {
        for node in iter {
            self.upsert(node);
        }
    }
}

impl IntoIterator for NodeCatalog {
    type Item = NodeSpec;
    type IntoIter = std::collections::btree_map::IntoValues<NodeId, NodeSpec>;

    fn into_iter(self) -> Self::IntoIter {
        self.nodes.into_values()
    }
}

/// Deterministic generator of synthetic mixed populations.
///
/// The defaults mirror the paper's description of a contested urban area:
/// mostly gray civilian devices, a blue force package, and a small red
/// contingent.
///
/// ```
/// # use iobt_types::catalog::PopulationBuilder;
/// # use iobt_types::Rect;
/// let catalog = PopulationBuilder::new(Rect::square(1_000.0))
///     .count(100)
///     .blue_fraction(0.4)
///     .red_fraction(0.1)
///     .build(42);
/// assert_eq!(catalog.len(), 100);
/// let [blue, red, gray] = catalog.affiliation_counts();
/// assert_eq!(blue + red + gray, 100);
/// ```
#[derive(Debug, Clone)]
pub struct PopulationBuilder {
    area: Rect,
    count: usize,
    blue_fraction: f64,
    red_fraction: f64,
    human_fraction: f64,
}

impl PopulationBuilder {
    /// Starts a population over `area` with default mix (30% blue, 10% red,
    /// the rest gray; 15% of gray nodes are humans).
    pub fn new(area: Rect) -> Self {
        PopulationBuilder {
            area,
            count: 100,
            blue_fraction: 0.3,
            red_fraction: 0.1,
            human_fraction: 0.15,
        }
    }

    /// Sets the number of nodes.
    pub fn count(mut self, count: usize) -> Self {
        self.count = count;
        self
    }

    /// Sets the blue fraction (clamped so blue + red ≤ 1).
    pub fn blue_fraction(mut self, fraction: f64) -> Self {
        self.blue_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the red fraction (clamped so blue + red ≤ 1).
    pub fn red_fraction(mut self, fraction: f64) -> Self {
        self.red_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the fraction of gray nodes that are human participants.
    pub fn human_fraction(mut self, fraction: f64) -> Self {
        self.human_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Samples the population deterministically from `seed`.
    pub fn build(&self, seed: u64) -> NodeCatalog {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut catalog = NodeCatalog::new();
        let blue_cut = self.blue_fraction.min(1.0);
        let red_cut = (blue_cut + self.red_fraction).min(1.0);
        for i in 0..self.count {
            let u: f64 = rng.gen();
            let affiliation = if u < blue_cut {
                Affiliation::Blue
            } else if u < red_cut {
                Affiliation::Red
            } else {
                Affiliation::Gray
            };
            let position = Point::new(
                rng.gen_range(self.area.min().x..=self.area.max().x),
                rng.gen_range(self.area.min().y..=self.area.max().y),
            );
            let is_human = affiliation == Affiliation::Gray && rng.gen::<f64>() < self.human_fraction;
            let capabilities = sample_capabilities(&mut rng, affiliation, is_human);
            let energy = sample_energy(&mut rng, &capabilities);
            let node = NodeSpec::builder(NodeId::new(i as u64))
                .affiliation(affiliation)
                .position(position)
                .capabilities(capabilities)
                .energy(energy)
                .human(is_human)
                .build();
            catalog
                .insert(node)
                // lint: allow(panic) — the builder assigns sequential ids, so duplicates are impossible
                .expect("population ids are sequential and unique");
        }
        catalog
    }
}

fn sample_capabilities(
    rng: &mut StdRng,
    affiliation: Affiliation,
    is_human: bool,
) -> CapabilityProfile {
    let mut b = CapabilityProfile::builder();
    if is_human {
        // Humans report observations through a phone: visual "sensing",
        // cellular + wifi connectivity, embedded compute.
        return b
            .sensor(Sensor::new(SensorKind::Visual, 60.0, rng.gen_range(0.4..0.9)))
            .compute(ComputeClass::Embedded)
            .radio(Radio::new(RadioKind::Cellular))
            .radio(Radio::new(RadioKind::Wifi))
            .build();
    }
    // 1-3 sensors drawn from a modality mix that depends on affiliation:
    // blue assets carry military-grade modalities more often.
    let sensor_count = rng.gen_range(1..=3);
    for _ in 0..sensor_count {
        let kind = match affiliation {
            Affiliation::Blue => {
                *pick(
                    rng,
                    &[
                        SensorKind::Visual,
                        SensorKind::Infrared,
                        SensorKind::Radar,
                        SensorKind::Lidar,
                        SensorKind::Acoustic,
                        SensorKind::Seismic,
                        SensorKind::RfSpectrum,
                        SensorKind::Chemical,
                    ],
                )
            }
            Affiliation::Red => *pick(
                rng,
                &[SensorKind::Visual, SensorKind::RfSpectrum, SensorKind::Acoustic],
            ),
            Affiliation::Gray => *pick(
                rng,
                &[
                    SensorKind::Visual,
                    SensorKind::Acoustic,
                    SensorKind::Occupancy,
                    SensorKind::Physiological,
                ],
            ),
        };
        let range = rng.gen_range(30.0..400.0);
        let quality = rng.gen_range(0.5..0.99);
        b = b.sensor(Sensor::new(kind, range, quality));
    }
    // Compute tier: heavier tiers are rarer.
    let compute = match rng.gen_range(0..100) {
        0..=39 => ComputeClass::Disposable,
        40..=79 => ComputeClass::Embedded,
        80..=94 => ComputeClass::EdgeServer,
        _ => ComputeClass::EdgeCloud,
    };
    b = b.compute(compute);
    // Radios: blue gets tactical UHF, everyone gets commodity radios.
    if affiliation == Affiliation::Blue {
        b = b.radio(Radio::new(RadioKind::TacticalUhf));
    }
    if rng.gen::<f64>() < 0.8 {
        b = b.radio(Radio::new(RadioKind::Wifi));
    }
    if rng.gen::<f64>() < 0.4 {
        b = b.radio(Radio::new(RadioKind::Cellular));
    }
    if rng.gen::<f64>() < 0.2 {
        b = b.radio(Radio::new(RadioKind::Bluetooth));
    }
    b.build()
}

fn sample_energy(rng: &mut StdRng, capabilities: &CapabilityProfile) -> EnergyBudget {
    match capabilities.compute() {
        Some(ComputeClass::EdgeCloud) | Some(ComputeClass::EdgeServer) => EnergyBudget::unlimited(),
        _ => EnergyBudget::new(rng.gen_range(500.0..20_000.0)),
    }
}

fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn node(id: u64, affiliation: Affiliation, x: f64, y: f64) -> NodeSpec {
        NodeSpec::builder(NodeId::new(id))
            .affiliation(affiliation)
            .position(Point::new(x, y))
            .build()
    }

    #[test]
    fn insert_rejects_duplicates() {
        let mut c = NodeCatalog::new();
        c.insert(node(1, Affiliation::Blue, 0.0, 0.0)).unwrap();
        let err = c.insert(node(1, Affiliation::Red, 1.0, 1.0)).unwrap_err();
        assert_eq!(err, TypesError::DuplicateNode(NodeId::new(1)));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(NodeId::new(1)).unwrap().affiliation(), Affiliation::Blue);
    }

    #[test]
    fn spatial_queries() {
        let mut c = NodeCatalog::new();
        c.insert(node(1, Affiliation::Blue, 0.0, 0.0)).unwrap();
        c.insert(node(2, Affiliation::Blue, 10.0, 0.0)).unwrap();
        c.insert(node(3, Affiliation::Gray, 100.0, 100.0)).unwrap();
        assert_eq!(c.within_radius(Point::ORIGIN, 15.0).len(), 2);
        assert_eq!(c.within_radius(Point::ORIGIN, 5.0).len(), 1);
        let area = Rect::square(50.0);
        assert_eq!(c.within_rect(&area).len(), 2);
    }

    #[test]
    fn iteration_is_id_ordered() {
        let mut c = NodeCatalog::new();
        c.insert(node(5, Affiliation::Gray, 0.0, 0.0)).unwrap();
        c.insert(node(1, Affiliation::Gray, 0.0, 0.0)).unwrap();
        c.insert(node(3, Affiliation::Gray, 0.0, 0.0)).unwrap();
        let ids: Vec<u64> = c.iter().map(|n| n.id().raw()).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }

    #[test]
    fn population_is_deterministic_per_seed() {
        let b = PopulationBuilder::new(Rect::square(500.0)).count(50);
        let a = b.build(7);
        let c = b.build(7);
        assert_eq!(a, c);
        let d = b.build(8);
        assert_ne!(a, d);
    }

    #[test]
    fn population_respects_fractions_roughly() {
        let catalog = PopulationBuilder::new(Rect::square(1_000.0))
            .count(2_000)
            .blue_fraction(0.5)
            .red_fraction(0.2)
            .build(1);
        let [blue, red, gray] = catalog.affiliation_counts();
        assert!((blue as f64 / 2_000.0 - 0.5).abs() < 0.05);
        assert!((red as f64 / 2_000.0 - 0.2).abs() < 0.05);
        assert!(gray > 0);
    }

    #[test]
    fn population_positions_inside_area() {
        let area = Rect::new(Point::new(100.0, 200.0), Point::new(300.0, 400.0));
        let catalog = PopulationBuilder::new(area).count(200).build(3);
        assert!(catalog.iter().all(|n| area.contains(n.position())));
    }

    #[test]
    fn humans_only_among_gray() {
        let catalog = PopulationBuilder::new(Rect::square(100.0))
            .count(500)
            .human_fraction(1.0)
            .build(11);
        for n in catalog.iter() {
            if n.is_human() {
                assert_eq!(n.affiliation(), Affiliation::Gray);
            }
        }
        assert!(catalog.iter().any(NodeSpec::is_human));
    }

    #[test]
    fn from_iterator_and_extend() {
        let nodes = vec![
            node(1, Affiliation::Blue, 0.0, 0.0),
            node(2, Affiliation::Red, 1.0, 1.0),
        ];
        let mut c: NodeCatalog = nodes.into_iter().collect();
        assert_eq!(c.len(), 2);
        c.extend(vec![node(3, Affiliation::Gray, 2.0, 2.0)]);
        assert_eq!(c.len(), 3);
        let back: Vec<NodeSpec> = c.into_iter().collect();
        assert_eq!(back.len(), 3);
    }

    proptest! {
        #[test]
        fn affiliation_counts_sum_to_len(count in 0usize..300, seed in 0u64..20) {
            let catalog = PopulationBuilder::new(Rect::square(100.0)).count(count).build(seed);
            let [b, r, g] = catalog.affiliation_counts();
            prop_assert_eq!(b + r + g, catalog.len());
            prop_assert_eq!(catalog.len(), count);
        }
    }
}
