//! Node specifications: the "things" of the IoBT.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{
    Affiliation, CapabilityProfile, EnergyBudget, NodeId, Point, Radio, Sensor, TrustScore,
};

/// Static description of one IoBT entity — sensor mote, drone, edge server,
/// human-carried device, or adversarial emitter.
///
/// A `NodeSpec` is the unit that recruitment discovers, synthesis composes,
/// and the simulator instantiates. Dynamic state (current battery level,
/// live position under mobility) lives in the simulator; the spec carries
/// the initial conditions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    id: NodeId,
    affiliation: Affiliation,
    position: Point,
    capabilities: CapabilityProfile,
    energy: EnergyBudget,
    trust: TrustScore,
    is_human: bool,
}

impl NodeSpec {
    /// Starts building a node with the given id. All other fields default
    /// to: gray affiliation, origin position, empty capabilities, default
    /// 1 kJ battery, trust from the affiliation prior, non-human.
    pub fn builder(id: NodeId) -> NodeSpecBuilder {
        NodeSpecBuilder {
            id,
            affiliation: Affiliation::Gray,
            position: Point::ORIGIN,
            capabilities: CapabilityProfile::new(),
            energy: EnergyBudget::default(),
            trust: None,
            is_human: false,
        }
    }

    /// Node identifier.
    pub const fn id(&self) -> NodeId {
        self.id
    }

    /// Blue/red/gray affiliation (ground truth; discovery must estimate it).
    pub const fn affiliation(&self) -> Affiliation {
        self.affiliation
    }

    /// Initial position.
    pub const fn position(&self) -> Point {
        self.position
    }

    /// What the node can sense/compute/actuate and how it communicates.
    pub const fn capabilities(&self) -> &CapabilityProfile {
        &self.capabilities
    }

    /// Initial energy budget.
    pub const fn energy(&self) -> EnergyBudget {
        self.energy
    }

    /// Current trust estimate (defaults to the affiliation prior).
    pub const fn trust(&self) -> TrustScore {
        self.trust
    }

    /// Whether the node is a human participant (§III-A, human assets).
    pub const fn is_human(&self) -> bool {
        self.is_human
    }

    /// Returns a copy with an updated trust score. Trust evolves as
    /// evidence accumulates in a [`TrustLedger`](crate::TrustLedger).
    pub fn with_trust(mut self, trust: TrustScore) -> Self {
        self.trust = trust;
        self
    }

    /// Returns a copy relocated to `position` (e.g. after a mobility step).
    pub fn with_position(mut self, position: Point) -> Self {
        self.position = position;
        self
    }
}

impl fmt::Display for NodeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] at {} trust={}",
            self.id, self.affiliation, self.position, self.trust
        )
    }
}

/// Builder for [`NodeSpec`]. See [`NodeSpec::builder`].
#[derive(Debug, Clone)]
pub struct NodeSpecBuilder {
    id: NodeId,
    affiliation: Affiliation,
    position: Point,
    capabilities: CapabilityProfile,
    energy: EnergyBudget,
    trust: Option<TrustScore>,
    is_human: bool,
}

impl NodeSpecBuilder {
    /// Sets the affiliation.
    pub fn affiliation(mut self, affiliation: Affiliation) -> Self {
        self.affiliation = affiliation;
        self
    }

    /// Sets the initial position.
    pub fn position(mut self, position: Point) -> Self {
        self.position = position;
        self
    }

    /// Replaces the whole capability profile.
    pub fn capabilities(mut self, capabilities: CapabilityProfile) -> Self {
        self.capabilities = capabilities;
        self
    }

    /// Adds a sensor to the capability profile.
    pub fn sensor(mut self, sensor: Sensor) -> Self {
        self.capabilities = {
            let mut b = CapabilityProfile::builder();
            for s in self.capabilities.sensors() {
                b = b.sensor(*s);
            }
            b = b.sensor(sensor);
            if let Some(c) = self.capabilities.compute() {
                b = b.compute(c);
            }
            for a in self.capabilities.actuators() {
                b = b.actuator(*a);
            }
            for r in self.capabilities.radios() {
                b = b.radio(*r);
            }
            b.build()
        };
        self
    }

    /// Adds a radio to the capability profile.
    pub fn radio(mut self, radio: Radio) -> Self {
        self.capabilities = {
            let mut b = CapabilityProfile::builder();
            for s in self.capabilities.sensors() {
                b = b.sensor(*s);
            }
            if let Some(c) = self.capabilities.compute() {
                b = b.compute(c);
            }
            for a in self.capabilities.actuators() {
                b = b.actuator(*a);
            }
            for r in self.capabilities.radios() {
                b = b.radio(*r);
            }
            b = b.radio(radio);
            b.build()
        };
        self
    }

    /// Sets the energy budget.
    pub fn energy(mut self, energy: EnergyBudget) -> Self {
        self.energy = energy;
        self
    }

    /// Overrides the trust score (defaults to the affiliation prior).
    pub fn trust(mut self, trust: TrustScore) -> Self {
        self.trust = Some(trust);
        self
    }

    /// Marks the node as a human participant.
    pub fn human(mut self, is_human: bool) -> Self {
        self.is_human = is_human;
        self
    }

    /// Finishes the node.
    pub fn build(self) -> NodeSpec {
        let trust = self
            .trust
            .unwrap_or_else(|| TrustScore::new(self.affiliation.prior_trust()));
        NodeSpec {
            id: self.id,
            affiliation: self.affiliation,
            position: self.position,
            capabilities: self.capabilities,
            energy: self.energy,
            trust,
            is_human: self.is_human,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RadioKind, SensorKind};

    #[test]
    fn builder_defaults() {
        let n = NodeSpec::builder(NodeId::new(1)).build();
        assert_eq!(n.affiliation(), Affiliation::Gray);
        assert_eq!(n.position(), Point::ORIGIN);
        assert!((n.trust().value() - Affiliation::Gray.prior_trust()).abs() < 1e-9);
        assert!(!n.is_human());
        assert!(n.capabilities().is_isolated());
    }

    #[test]
    fn incremental_sensor_and_radio_addition() {
        let n = NodeSpec::builder(NodeId::new(2))
            .sensor(Sensor::new(SensorKind::Acoustic, 100.0, 0.9))
            .sensor(Sensor::new(SensorKind::Seismic, 50.0, 0.8))
            .radio(Radio::new(RadioKind::Wifi))
            .build();
        assert_eq!(n.capabilities().sensors().len(), 2);
        assert!(n.capabilities().can_sense(SensorKind::Seismic));
        assert_eq!(n.capabilities().radios().len(), 1);
    }

    #[test]
    fn explicit_trust_overrides_prior() {
        let n = NodeSpec::builder(NodeId::new(3))
            .affiliation(Affiliation::Red)
            .trust(TrustScore::new(0.7))
            .build();
        assert_eq!(n.trust().value(), 0.7);
    }

    #[test]
    fn with_position_and_trust_are_pure_updates() {
        let n = NodeSpec::builder(NodeId::new(4)).build();
        let moved = n.clone().with_position(Point::new(5.0, 5.0));
        assert_eq!(n.position(), Point::ORIGIN);
        assert_eq!(moved.position(), Point::new(5.0, 5.0));
        let trusted = n.clone().with_trust(TrustScore::FULL);
        assert_eq!(trusted.trust(), TrustScore::FULL);
    }

    #[test]
    fn display_mentions_id_and_affiliation() {
        let n = NodeSpec::builder(NodeId::new(9))
            .affiliation(Affiliation::Blue)
            .build();
        let s = n.to_string();
        assert!(s.contains("n9"));
        assert!(s.contains("blue"));
    }
}
