//! Capability taxonomy: sensors, compute, actuators, and radios.
//!
//! §II of the paper stresses *extreme heterogeneity*: "the variety of things
//! available to an IoBT is immense, ranging from very capable devices and
//! simple disposable ones". The [`CapabilityProfile`] captures what a node
//! can sense, compute, actuate, and how it communicates; the synthesis engine
//! matches these against mission requirements.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Sensing modality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SensorKind {
    /// Microphones, gunshot detection.
    Acoustic,
    /// Ground vibration; works when vision is obscured.
    Seismic,
    /// Cameras.
    Visual,
    /// Thermal imaging.
    Infrared,
    /// Radar returns.
    Radar,
    /// 3-D LiDAR point clouds.
    Lidar,
    /// RF spectrum monitoring (also used for side-channel discovery).
    RfSpectrum,
    /// Chemical/biological agent detection.
    Chemical,
    /// Soldier-wearable physiological monitoring.
    Physiological,
    /// Simple binary occupancy.
    Occupancy,
}

impl SensorKind {
    /// All modalities, in a stable order.
    pub const ALL: [SensorKind; 10] = [
        SensorKind::Acoustic,
        SensorKind::Seismic,
        SensorKind::Visual,
        SensorKind::Infrared,
        SensorKind::Radar,
        SensorKind::Lidar,
        SensorKind::RfSpectrum,
        SensorKind::Chemical,
        SensorKind::Physiological,
        SensorKind::Occupancy,
    ];

    /// Whether the modality keeps working when optical line-of-sight is lost
    /// (smoke, darkness, obscurants). Used by the modality-switching reflex
    /// (§IV-B: "seismic sensing may be used when smoke or other phenomena
    /// render visual tracking unreliable").
    pub const fn works_without_line_of_sight(self) -> bool {
        matches!(
            self,
            SensorKind::Acoustic
                | SensorKind::Seismic
                | SensorKind::Radar
                | SensorKind::RfSpectrum
                | SensorKind::Chemical
        )
    }
}

impl fmt::Display for SensorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SensorKind::Acoustic => "acoustic",
            SensorKind::Seismic => "seismic",
            SensorKind::Visual => "visual",
            SensorKind::Infrared => "infrared",
            SensorKind::Radar => "radar",
            SensorKind::Lidar => "lidar",
            SensorKind::RfSpectrum => "rf-spectrum",
            SensorKind::Chemical => "chemical",
            SensorKind::Physiological => "physiological",
            SensorKind::Occupancy => "occupancy",
        };
        f.write_str(s)
    }
}

/// A sensor instance mounted on a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sensor {
    kind: SensorKind,
    range_m: f64,
    quality: f64,
}

impl Sensor {
    /// Creates a sensor of the given modality.
    ///
    /// `range_m` is the nominal detection radius in meters; `quality` in
    /// `[0, 1]` is the probability of a correct observation at close range.
    /// Values are clamped into their valid domains.
    ///
    /// ```
    /// # use iobt_types::{Sensor, SensorKind};
    /// let s = Sensor::new(SensorKind::Visual, 200.0, 1.3);
    /// assert_eq!(s.quality(), 1.0); // clamped
    /// ```
    pub fn new(kind: SensorKind, range_m: f64, quality: f64) -> Self {
        Sensor {
            kind,
            range_m: range_m.max(0.0),
            quality: quality.clamp(0.0, 1.0),
        }
    }

    /// The sensing modality.
    pub const fn kind(&self) -> SensorKind {
        self.kind
    }

    /// Nominal detection radius in meters.
    pub const fn range_m(&self) -> f64 {
        self.range_m
    }

    /// Probability of a correct observation at close range, in `[0, 1]`.
    pub const fn quality(&self) -> f64 {
        self.quality
    }
}

/// Compute tier of a node, from disposable motes to edge clouds (Fig. 2:
/// "from small on-board compute devices to powerful edge clouds with GPUs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ComputeClass {
    /// Throwaway mote; can forward but barely process.
    Disposable,
    /// Microcontroller-class wearable or sensor node.
    Embedded,
    /// Vehicle- or squad-carried server.
    EdgeServer,
    /// GPU-equipped edge cloud.
    EdgeCloud,
}

impl ComputeClass {
    /// All classes from weakest to strongest.
    pub const ALL: [ComputeClass; 4] = [
        ComputeClass::Disposable,
        ComputeClass::Embedded,
        ComputeClass::EdgeServer,
        ComputeClass::EdgeCloud,
    ];

    /// Sustained throughput in MFLOP/s used by the resource allocator.
    pub const fn mflops(self) -> f64 {
        match self {
            ComputeClass::Disposable => 1.0,
            ComputeClass::Embedded => 50.0,
            ComputeClass::EdgeServer => 5_000.0,
            ComputeClass::EdgeCloud => 500_000.0,
        }
    }

    /// Memory available for in-network analytics, in MiB.
    pub const fn memory_mib(self) -> f64 {
        match self {
            ComputeClass::Disposable => 0.25,
            ComputeClass::Embedded => 16.0,
            ComputeClass::EdgeServer => 8_192.0,
            ComputeClass::EdgeCloud => 262_144.0,
        }
    }
}

impl fmt::Display for ComputeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComputeClass::Disposable => "disposable",
            ComputeClass::Embedded => "embedded",
            ComputeClass::EdgeServer => "edge-server",
            ComputeClass::EdgeCloud => "edge-cloud",
        };
        f.write_str(s)
    }
}

/// Actuation capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ActuatorKind {
    /// Ground or aerial locomotion (robots, drones).
    Locomotion,
    /// Gripping/manipulation.
    Manipulator,
    /// Route marking, beacons, smoke.
    Marker,
    /// Door/valve/barrier control.
    Barrier,
    /// Safety-interlocked demolition charge (§VI: "withhold from activation
    /// where humans are present").
    Demolition,
}

impl ActuatorKind {
    /// All actuator kinds, in a stable order.
    pub const ALL: [ActuatorKind; 5] = [
        ActuatorKind::Locomotion,
        ActuatorKind::Manipulator,
        ActuatorKind::Marker,
        ActuatorKind::Barrier,
        ActuatorKind::Demolition,
    ];

    /// Whether firing this actuator requires an explicit human decision
    /// (§VI keeps weapon-like effects under human authority).
    pub const fn requires_human_authorization(self) -> bool {
        matches!(self, ActuatorKind::Demolition)
    }
}

impl fmt::Display for ActuatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ActuatorKind::Locomotion => "locomotion",
            ActuatorKind::Manipulator => "manipulator",
            ActuatorKind::Marker => "marker",
            ActuatorKind::Barrier => "barrier",
            ActuatorKind::Demolition => "demolition",
        };
        f.write_str(s)
    }
}

/// Radio technology of a network interface (§III-A: "they have several
/// connectivity options (cellular, Wifi, Bluetooth)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RadioKind {
    /// Commercial cellular uplink.
    Cellular,
    /// 802.11-class local networking.
    Wifi,
    /// Short-range personal-area radio.
    Bluetooth,
    /// Long-range military UHF.
    TacticalUhf,
    /// Satellite backhaul.
    Satcom,
}

impl RadioKind {
    /// All radio kinds, in a stable order.
    pub const ALL: [RadioKind; 5] = [
        RadioKind::Cellular,
        RadioKind::Wifi,
        RadioKind::Bluetooth,
        RadioKind::TacticalUhf,
        RadioKind::Satcom,
    ];

    /// Nominal transmit range in meters under open terrain.
    pub const fn nominal_range_m(self) -> f64 {
        match self {
            RadioKind::Cellular => 2_000.0,
            RadioKind::Wifi => 120.0,
            RadioKind::Bluetooth => 25.0,
            RadioKind::TacticalUhf => 5_000.0,
            RadioKind::Satcom => f64::INFINITY,
        }
    }

    /// Nominal link bandwidth in kilobits per second.
    pub const fn bandwidth_kbps(self) -> f64 {
        match self {
            RadioKind::Cellular => 10_000.0,
            RadioKind::Wifi => 54_000.0,
            RadioKind::Bluetooth => 1_000.0,
            RadioKind::TacticalUhf => 256.0,
            RadioKind::Satcom => 512.0,
        }
    }

    /// Transmit power draw in watts, used by the energy model.
    pub const fn tx_power_w(self) -> f64 {
        match self {
            RadioKind::Cellular => 1.5,
            RadioKind::Wifi => 0.8,
            RadioKind::Bluetooth => 0.05,
            RadioKind::TacticalUhf => 5.0,
            RadioKind::Satcom => 12.0,
        }
    }
}

impl fmt::Display for RadioKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RadioKind::Cellular => "cellular",
            RadioKind::Wifi => "wifi",
            RadioKind::Bluetooth => "bluetooth",
            RadioKind::TacticalUhf => "tactical-uhf",
            RadioKind::Satcom => "satcom",
        };
        f.write_str(s)
    }
}

/// A radio interface instance on a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Radio {
    kind: RadioKind,
    range_m: f64,
    bandwidth_kbps: f64,
}

impl Radio {
    /// Creates a radio with the kind's nominal range and bandwidth.
    pub fn new(kind: RadioKind) -> Self {
        Radio {
            kind,
            range_m: kind.nominal_range_m(),
            bandwidth_kbps: kind.bandwidth_kbps(),
        }
    }

    /// Creates a radio with an explicit range (e.g. a detuned or
    /// high-gain variant). Negative values are clamped to zero.
    pub fn with_range(kind: RadioKind, range_m: f64) -> Self {
        Radio {
            range_m: range_m.max(0.0),
            ..Radio::new(kind)
        }
    }

    /// The radio technology.
    pub const fn kind(&self) -> RadioKind {
        self.kind
    }

    /// Effective transmit range in meters.
    pub const fn range_m(&self) -> f64 {
        self.range_m
    }

    /// Link bandwidth in kilobits per second.
    pub const fn bandwidth_kbps(&self) -> f64 {
        self.bandwidth_kbps
    }
}

/// Everything a node can do: its sensors, compute tier, actuators, and
/// radios.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CapabilityProfile {
    sensors: Vec<Sensor>,
    compute: Option<ComputeClass>,
    actuators: Vec<ActuatorKind>,
    radios: Vec<Radio>,
}

impl CapabilityProfile {
    /// Creates an empty profile (no capabilities at all).
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts building a profile.
    ///
    /// ```
    /// # use iobt_types::{CapabilityProfile, ComputeClass, Radio, RadioKind, Sensor, SensorKind};
    /// let p = CapabilityProfile::builder()
    ///     .sensor(Sensor::new(SensorKind::Seismic, 80.0, 0.85))
    ///     .compute(ComputeClass::Embedded)
    ///     .radio(Radio::new(RadioKind::Wifi))
    ///     .build();
    /// assert!(p.can_sense(SensorKind::Seismic));
    /// assert_eq!(p.compute(), Some(ComputeClass::Embedded));
    /// ```
    pub fn builder() -> CapabilityProfileBuilder {
        CapabilityProfileBuilder::default()
    }

    /// Sensors mounted on the node.
    pub fn sensors(&self) -> &[Sensor] {
        &self.sensors
    }

    /// Compute tier, if the node can run analytics at all.
    pub const fn compute(&self) -> Option<ComputeClass> {
        self.compute
    }

    /// Actuators available on the node.
    pub fn actuators(&self) -> &[ActuatorKind] {
        &self.actuators
    }

    /// Radio interfaces on the node.
    pub fn radios(&self) -> &[Radio] {
        &self.radios
    }

    /// Returns `true` when the node has a sensor of modality `kind`.
    pub fn can_sense(&self, kind: SensorKind) -> bool {
        self.sensors.iter().any(|s| s.kind() == kind)
    }

    /// The best (longest-range) sensor of a given modality, if any.
    pub fn best_sensor(&self, kind: SensorKind) -> Option<&Sensor> {
        self.sensors
            .iter()
            .filter(|s| s.kind() == kind)
            .max_by(|a, b| a.range_m().total_cmp(&b.range_m()))
    }

    /// Returns `true` when the node carries actuator `kind`.
    pub fn can_actuate(&self, kind: ActuatorKind) -> bool {
        self.actuators.contains(&kind)
    }

    /// The longest radio range on the node, or `0.0` with no radios.
    pub fn max_radio_range_m(&self) -> f64 {
        self.radios
            .iter()
            .map(Radio::range_m)
            .fold(0.0, f64::max)
    }

    /// The highest bandwidth across interfaces, in kbps, or `0.0`.
    pub fn max_bandwidth_kbps(&self) -> f64 {
        self.radios
            .iter()
            .map(Radio::bandwidth_kbps)
            .fold(0.0, f64::max)
    }

    /// Returns `true` when the node has no way to communicate.
    pub fn is_isolated(&self) -> bool {
        self.radios.is_empty()
    }
}

/// Incremental builder for [`CapabilityProfile`]. See
/// [`CapabilityProfile::builder`].
#[derive(Debug, Clone, Default)]
pub struct CapabilityProfileBuilder {
    profile: CapabilityProfile,
}

impl CapabilityProfileBuilder {
    /// Adds a sensor.
    pub fn sensor(mut self, sensor: Sensor) -> Self {
        self.profile.sensors.push(sensor);
        self
    }

    /// Sets the compute tier.
    pub fn compute(mut self, class: ComputeClass) -> Self {
        self.profile.compute = Some(class);
        self
    }

    /// Adds an actuator.
    pub fn actuator(mut self, kind: ActuatorKind) -> Self {
        self.profile.actuators.push(kind);
        self
    }

    /// Adds a radio interface.
    pub fn radio(mut self, radio: Radio) -> Self {
        self.profile.radios.push(radio);
        self
    }

    /// Finishes the profile.
    pub fn build(self) -> CapabilityProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> CapabilityProfile {
        CapabilityProfile::builder()
            .sensor(Sensor::new(SensorKind::Visual, 200.0, 0.95))
            .sensor(Sensor::new(SensorKind::Visual, 350.0, 0.8))
            .sensor(Sensor::new(SensorKind::Seismic, 80.0, 0.85))
            .compute(ComputeClass::EdgeServer)
            .actuator(ActuatorKind::Locomotion)
            .radio(Radio::new(RadioKind::Wifi))
            .radio(Radio::new(RadioKind::TacticalUhf))
            .build()
    }

    #[test]
    fn sensor_clamps_inputs() {
        let s = Sensor::new(SensorKind::Acoustic, -5.0, 1.5);
        assert_eq!(s.range_m(), 0.0);
        assert_eq!(s.quality(), 1.0);
    }

    #[test]
    fn best_sensor_picks_longest_range() {
        let p = sample_profile();
        assert_eq!(p.best_sensor(SensorKind::Visual).unwrap().range_m(), 350.0);
        assert!(p.best_sensor(SensorKind::Radar).is_none());
    }

    #[test]
    fn radio_aggregates() {
        let p = sample_profile();
        assert_eq!(p.max_radio_range_m(), 5_000.0);
        assert_eq!(p.max_bandwidth_kbps(), 54_000.0);
        assert!(!p.is_isolated());
        assert!(CapabilityProfile::new().is_isolated());
    }

    #[test]
    fn compute_classes_are_monotone() {
        let mut prev = 0.0;
        for c in ComputeClass::ALL {
            assert!(c.mflops() > prev, "{c} should be faster than weaker tiers");
            prev = c.mflops();
        }
    }

    #[test]
    fn non_los_modalities_include_seismic_not_visual() {
        assert!(SensorKind::Seismic.works_without_line_of_sight());
        assert!(!SensorKind::Visual.works_without_line_of_sight());
        assert!(!SensorKind::Lidar.works_without_line_of_sight());
    }

    #[test]
    fn only_demolition_needs_human_authorization() {
        for a in ActuatorKind::ALL {
            assert_eq!(
                a.requires_human_authorization(),
                a == ActuatorKind::Demolition
            );
        }
    }

    #[test]
    fn radio_with_range_clamps_negative() {
        let r = Radio::with_range(RadioKind::Wifi, -10.0);
        assert_eq!(r.range_m(), 0.0);
        assert_eq!(r.kind(), RadioKind::Wifi);
    }

    #[test]
    fn empty_profile_has_nothing() {
        let p = CapabilityProfile::new();
        assert!(!p.can_sense(SensorKind::Visual));
        assert!(!p.can_actuate(ActuatorKind::Marker));
        assert_eq!(p.compute(), None);
        assert_eq!(p.max_radio_range_m(), 0.0);
    }
}
