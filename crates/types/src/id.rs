//! Strongly-typed identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        // lint: allow(docs) — docs are injected per expansion through the macro's $(#[$doc])* metavariable
        pub struct $name(u64);

        impl $name {
            /// Creates an identifier from its raw numeric value.
            ///
            /// ```
            /// # use iobt_types::NodeId;
            /// let id = NodeId::new(42);
            /// assert_eq!(id.raw(), 42);
            /// ```
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric value.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self::new(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.raw()
            }
        }
    };
}

define_id!(
    /// Identifier of a physical or human node participating in an IoBT.
    NodeId,
    "n"
);
define_id!(
    /// Identifier of a mission expressed by a commander.
    MissionId,
    "m"
);
define_id!(
    /// Identifier of a task spawned while executing a mission.
    TaskId,
    "t"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert_eq!(MissionId::new(9).to_string(), "m9");
        assert_eq!(TaskId::new(0).to_string(), "t0");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(7), NodeId::from(7));
        assert_eq!(u64::from(NodeId::new(7)), 7);
    }

    #[test]
    fn serde_roundtrip_is_transparent() {
        let id = NodeId::new(123);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "123");
        let back: NodeId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default(), NodeId::new(0));
    }
}
