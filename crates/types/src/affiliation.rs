//! Blue/red/gray affiliation taxonomy from §II of the paper.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Ownership/control category of an IoBT entity.
///
/// The paper (§II, "Extreme heterogeneity") distinguishes military devices
/// controlled by friendly forces (*blue*), adversary-controlled devices
/// (*red*), and devices owned by neutral entities such as the civilian
/// population (*gray*).
///
/// ```
/// use iobt_types::Affiliation;
///
/// assert!(Affiliation::Blue.is_friendly());
/// assert!(Affiliation::Red.is_adversarial());
/// assert!(!Affiliation::Gray.is_friendly());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Affiliation {
    /// Friendly, certified, and controlled by the mission owner.
    Blue,
    /// Owned or compromised by the adversary.
    Red,
    /// Neutral/civilian; usable but untrusted by default.
    Gray,
}

impl Affiliation {
    /// All affiliations, in a stable order.
    pub const ALL: [Affiliation; 3] = [Affiliation::Blue, Affiliation::Red, Affiliation::Gray];

    /// Returns `true` for blue assets.
    pub const fn is_friendly(self) -> bool {
        matches!(self, Affiliation::Blue)
    }

    /// Returns `true` for red assets.
    pub const fn is_adversarial(self) -> bool {
        matches!(self, Affiliation::Red)
    }

    /// Returns `true` for gray assets.
    pub const fn is_neutral(self) -> bool {
        matches!(self, Affiliation::Gray)
    }

    /// Baseline prior trust associated with the affiliation, used to seed
    /// [`TrustScore`](crate::trust::TrustScore) ledgers before any evidence
    /// is observed.
    pub const fn prior_trust(self) -> f64 {
        match self {
            Affiliation::Blue => 0.9,
            Affiliation::Red => 0.05,
            Affiliation::Gray => 0.5,
        }
    }

    /// A dense index in `0..3`, handy for confusion matrices.
    pub const fn index(self) -> usize {
        match self {
            Affiliation::Blue => 0,
            Affiliation::Red => 1,
            Affiliation::Gray => 2,
        }
    }

    /// Inverse of [`Affiliation::index`]. Returns `None` for indices ≥ 3.
    pub const fn from_index(index: usize) -> Option<Self> {
        match index {
            0 => Some(Affiliation::Blue),
            1 => Some(Affiliation::Red),
            2 => Some(Affiliation::Gray),
            _ => None,
        }
    }
}

impl fmt::Display for Affiliation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Affiliation::Blue => "blue",
            Affiliation::Red => "red",
            Affiliation::Gray => "gray",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_are_disjoint() {
        for a in Affiliation::ALL {
            let hits = [a.is_friendly(), a.is_adversarial(), a.is_neutral()]
                .iter()
                .filter(|&&x| x)
                .count();
            assert_eq!(hits, 1, "{a} must satisfy exactly one predicate");
        }
    }

    #[test]
    fn index_roundtrip() {
        for a in Affiliation::ALL {
            assert_eq!(Affiliation::from_index(a.index()), Some(a));
        }
        assert_eq!(Affiliation::from_index(3), None);
    }

    #[test]
    fn prior_trust_ranks_blue_over_gray_over_red() {
        assert!(Affiliation::Blue.prior_trust() > Affiliation::Gray.prior_trust());
        assert!(Affiliation::Gray.prior_trust() > Affiliation::Red.prior_trust());
    }

    #[test]
    fn display_names() {
        assert_eq!(Affiliation::Blue.to_string(), "blue");
        assert_eq!(Affiliation::Red.to_string(), "red");
        assert_eq!(Affiliation::Gray.to_string(), "gray");
    }
}
