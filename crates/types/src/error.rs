//! Error types for the domain model.

use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors raised by domain-model operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TypesError {
    /// A node id was referenced but never registered.
    UnknownNode(NodeId),
    /// A node id was registered twice.
    DuplicateNode(NodeId),
    /// A numeric parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
}

impl fmt::Display for TypesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypesError::UnknownNode(id) => write!(f, "unknown node {id}"),
            TypesError::DuplicateNode(id) => write!(f, "duplicate node {id}"),
            TypesError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl Error for TypesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_punctuation() {
        let e = TypesError::UnknownNode(NodeId::new(3));
        assert_eq!(e.to_string(), "unknown node n3");
        let e = TypesError::InvalidParameter {
            name: "coverage",
            reason: "must be in [0, 1]".into(),
        };
        assert!(e.to_string().contains("coverage"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<TypesError>();
    }
}
