//! Planar geometry for battlefield layouts.
//!
//! The simulator and the synthesis engine both reason about positions on a
//! flat 2-D plane measured in meters. A [`Point`] is a location, a [`Rect`]
//! is an axis-aligned region (mission areas, coverage cells).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A position on the battlefield plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// East-west coordinate in meters.
    pub x: f64,
    /// North-south coordinate in meters.
    pub y: f64,
}

impl Point {
    /// Origin of the plane.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates in meters.
    ///
    /// ```
    /// # use iobt_types::Point;
    /// let p = Point::new(3.0, 4.0);
    /// assert_eq!(p.distance_to(Point::ORIGIN), 5.0);
    /// ```
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    pub fn distance_to(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance, avoiding the square root when only
    /// comparisons are needed.
    pub fn distance_sq_to(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation: `t = 0` returns `self`, `t = 1` returns `other`.
    /// `t` outside `[0, 1]` extrapolates.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Translates the point by `(dx, dy)` meters.
    pub fn translated(self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Returns `true` when both coordinates are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

/// An axis-aligned rectangle, used for mission areas and coverage cells.
///
/// Construction normalizes the corners, so any two opposite corners may be
/// supplied in either order.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (any order).
    ///
    /// ```
    /// # use iobt_types::{Point, Rect};
    /// let r = Rect::new(Point::new(10.0, 20.0), Point::new(0.0, 0.0));
    /// assert_eq!(r.min(), Point::new(0.0, 0.0));
    /// assert_eq!(r.area(), 200.0);
    /// ```
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Square region of side `side` anchored at the origin.
    pub fn square(side: f64) -> Self {
        Rect::new(Point::ORIGIN, Point::new(side, side))
    }

    /// Lower-left corner.
    pub const fn min(&self) -> Point {
        self.min
    }

    /// Upper-right corner.
    pub const fn max(&self) -> Point {
        self.max
    }

    /// Width in meters.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in meters.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square meters.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric center.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Returns `true` when `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` when the rectangles overlap (boundary contact counts).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Clamps `p` to the closest point inside the rectangle.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Splits the rectangle into a `cols x rows` grid of equal cells, row by
    /// row from the lower-left corner. Used by the coverage model to
    /// discretize mission areas.
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `rows` is zero.
    pub fn grid(&self, cols: usize, rows: usize) -> Vec<Rect> {
        assert!(cols > 0 && rows > 0, "grid dimensions must be nonzero");
        let cw = self.width() / cols as f64;
        let ch = self.height() / rows as f64;
        let mut cells = Vec::with_capacity(cols * rows);
        for r in 0..rows {
            for c in 0..cols {
                let lo = Point::new(self.min.x + c as f64 * cw, self.min.y + r as f64 * ch);
                let hi = Point::new(lo.x + cw, lo.y + ch);
                cells.push(Rect::new(lo, hi));
            }
        }
        cells
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance_to(b), 5.0);
        assert_eq!(a.distance_sq_to(b), 25.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, 10.0));
    }

    #[test]
    fn rect_normalizes_corners() {
        let r = Rect::new(Point::new(5.0, 1.0), Point::new(-5.0, 9.0));
        assert_eq!(r.min(), Point::new(-5.0, 1.0));
        assert_eq!(r.max(), Point::new(5.0, 9.0));
        assert_eq!(r.width(), 10.0);
        assert_eq!(r.height(), 8.0);
    }

    #[test]
    fn contains_includes_boundary() {
        let r = Rect::square(10.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(10.0, 10.0)));
        assert!(!r.contains(Point::new(10.01, 5.0)));
    }

    #[test]
    fn grid_partitions_area() {
        let r = Rect::square(100.0);
        let cells = r.grid(4, 5);
        assert_eq!(cells.len(), 20);
        let total: f64 = cells.iter().map(Rect::area).sum();
        assert!((total - r.area()).abs() < 1e-6);
        // First cell is the lower-left one.
        assert_eq!(cells[0].min(), Point::ORIGIN);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn grid_rejects_zero_dims() {
        Rect::square(1.0).grid(0, 3);
    }

    #[test]
    fn intersects_detects_overlap_and_separation() {
        let a = Rect::square(10.0);
        let b = Rect::new(Point::new(5.0, 5.0), Point::new(15.0, 15.0));
        let c = Rect::new(Point::new(11.0, 11.0), Point::new(12.0, 12.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn clamp_projects_outside_points() {
        let r = Rect::square(10.0);
        assert_eq!(r.clamp(Point::new(-3.0, 20.0)), Point::new(0.0, 10.0));
        assert_eq!(r.clamp(Point::new(4.0, 5.0)), Point::new(4.0, 5.0));
    }

    proptest! {
        #[test]
        fn distance_symmetry(ax in -1e4..1e4f64, ay in -1e4..1e4f64,
                             bx in -1e4..1e4f64, by in -1e4..1e4f64) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert!((a.distance_to(b) - b.distance_to(a)).abs() < 1e-9);
            prop_assert!(a.distance_to(b) >= 0.0);
        }

        #[test]
        fn triangle_inequality(ax in -1e3..1e3f64, ay in -1e3..1e3f64,
                               bx in -1e3..1e3f64, by in -1e3..1e3f64,
                               cx in -1e3..1e3f64, cy in -1e3..1e3f64) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!(a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9);
        }

        #[test]
        fn clamp_result_is_contained(px in -1e4..1e4f64, py in -1e4..1e4f64,
                                     side in 1.0..1e3f64) {
            let r = Rect::square(side);
            prop_assert!(r.contains(r.clamp(Point::new(px, py))));
        }

        #[test]
        fn grid_cells_tile_without_gaps(cols in 1usize..12, rows in 1usize..12,
                                        side in 1.0..1e3f64) {
            let r = Rect::square(side);
            let cells = r.grid(cols, rows);
            prop_assert_eq!(cells.len(), cols * rows);
            let total: f64 = cells.iter().map(Rect::area).sum();
            prop_assert!((total - r.area()).abs() < 1e-6 * r.area().max(1.0));
            for cell in &cells {
                prop_assert!(r.contains(cell.center()));
            }
        }
    }
}
