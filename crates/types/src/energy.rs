//! Energy accounting for disadvantaged assets.
//!
//! §II of the paper: "many networks will be forward-deployed and will consist
//! of disadvantaged assets with limitations on energy, power, storage, and
//! bandwidth". The simulator charges every transmission, reception, sensing
//! action, and compute burst against a node's [`EnergyBudget`].

use std::fmt;

use serde::{Deserialize, Serialize};

/// A finite battery, measured in joules.
///
/// The budget never goes negative; draining past zero leaves the budget
/// empty and reports how much demand was unmet.
///
/// ```
/// # use iobt_types::EnergyBudget;
/// let mut b = EnergyBudget::new(10.0);
/// assert_eq!(b.drain(4.0), 0.0);
/// assert_eq!(b.remaining_j(), 6.0);
/// assert_eq!(b.drain(10.0), 4.0); // 4 J of unmet demand
/// assert!(b.is_depleted());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBudget {
    capacity_j: f64,
    remaining_j: f64,
}

impl EnergyBudget {
    /// Creates a full battery with `capacity_j` joules. Negative capacities
    /// are clamped to zero.
    pub fn new(capacity_j: f64) -> Self {
        let capacity_j = capacity_j.max(0.0);
        EnergyBudget {
            capacity_j,
            remaining_j: capacity_j,
        }
    }

    /// An effectively unlimited supply (mains- or vehicle-powered nodes).
    pub fn unlimited() -> Self {
        EnergyBudget::new(f64::INFINITY)
    }

    /// Rebuilds a budget at an exact state previously read back via
    /// [`EnergyBudget::capacity_j`] / [`EnergyBudget::remaining_j`]
    /// (checkpoint restore). Negative capacity clamps to zero and
    /// `remaining_j` clamps into `[0, capacity_j]`, so a corrupted
    /// snapshot can never produce an invalid budget.
    pub fn from_parts(capacity_j: f64, remaining_j: f64) -> Self {
        let capacity_j = capacity_j.max(0.0);
        EnergyBudget {
            capacity_j,
            remaining_j: remaining_j.clamp(0.0, capacity_j),
        }
    }

    /// Total capacity in joules.
    pub const fn capacity_j(&self) -> f64 {
        self.capacity_j
    }

    /// Energy left in joules.
    pub const fn remaining_j(&self) -> f64 {
        self.remaining_j
    }

    /// Fraction of capacity remaining in `[0, 1]`; `1.0` for unlimited
    /// budgets and `0.0` for zero-capacity budgets.
    pub fn fraction_remaining(&self) -> f64 {
        if self.capacity_j == 0.0 {
            0.0
        } else if self.capacity_j.is_infinite() {
            1.0
        } else {
            self.remaining_j / self.capacity_j
        }
    }

    /// Consumes `joules` of energy, clamping at empty. Returns the unmet
    /// demand (zero when the budget covered the request).
    ///
    /// Negative demands are treated as zero.
    pub fn drain(&mut self, joules: f64) -> f64 {
        let joules = joules.max(0.0);
        if joules <= self.remaining_j {
            self.remaining_j -= joules;
            0.0
        } else {
            let unmet = joules - self.remaining_j;
            self.remaining_j = 0.0;
            unmet
        }
    }

    /// Adds `joules` (harvesting/recharge), clamped to capacity. Negative
    /// amounts are treated as zero.
    pub fn recharge(&mut self, joules: f64) {
        self.remaining_j = (self.remaining_j + joules.max(0.0)).min(self.capacity_j);
    }

    /// Whether the budget covers a demand of `joules`.
    pub fn can_afford(&self, joules: f64) -> bool {
        self.remaining_j >= joules.max(0.0)
    }

    /// Whether the battery is exhausted.
    pub fn is_depleted(&self) -> bool {
        self.remaining_j <= 0.0 && self.capacity_j.is_finite()
    }
}

impl Default for EnergyBudget {
    /// A modest 1 kJ battery, roughly a coin-cell-powered mote.
    fn default() -> Self {
        EnergyBudget::new(1_000.0)
    }
}

impl fmt::Display for EnergyBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.capacity_j.is_infinite() {
            write!(f, "unlimited")
        } else {
            write!(f, "{:.1}/{:.1} J", self.remaining_j, self.capacity_j)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn drain_and_recharge_clamp() {
        let mut b = EnergyBudget::new(100.0);
        assert_eq!(b.drain(-5.0), 0.0);
        assert_eq!(b.remaining_j(), 100.0);
        b.drain(30.0);
        b.recharge(1_000.0);
        assert_eq!(b.remaining_j(), 100.0);
    }

    #[test]
    fn unlimited_never_depletes() {
        let mut b = EnergyBudget::unlimited();
        assert_eq!(b.drain(1e12), 0.0);
        assert!(!b.is_depleted());
        assert_eq!(b.fraction_remaining(), 1.0);
    }

    #[test]
    fn zero_capacity_reports_everything_unmet() {
        let mut b = EnergyBudget::new(0.0);
        assert_eq!(b.drain(5.0), 5.0);
        assert!(b.is_depleted());
        assert_eq!(b.fraction_remaining(), 0.0);
    }

    #[test]
    fn can_afford_boundary() {
        let b = EnergyBudget::new(10.0);
        assert!(b.can_afford(10.0));
        assert!(!b.can_afford(10.1));
        assert!(b.can_afford(-1.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(EnergyBudget::unlimited().to_string(), "unlimited");
        assert_eq!(EnergyBudget::new(5.0).to_string(), "5.0/5.0 J");
    }

    proptest! {
        #[test]
        fn remaining_never_negative_or_above_capacity(
            capacity in 0.0..1e6f64,
            ops in proptest::collection::vec((-1e5..1e5f64, proptest::bool::ANY), 0..50),
        ) {
            let mut b = EnergyBudget::new(capacity);
            for (amount, is_drain) in ops {
                if is_drain { b.drain(amount); } else { b.recharge(amount); }
                prop_assert!(b.remaining_j() >= 0.0);
                prop_assert!(b.remaining_j() <= b.capacity_j() + 1e-9);
            }
        }

        #[test]
        fn drain_conserves_energy(capacity in 1.0..1e6f64, demand in 0.0..2e6f64) {
            let mut b = EnergyBudget::new(capacity);
            let unmet = b.drain(demand);
            prop_assert!((b.remaining_j() + (demand - unmet) - capacity).abs() < 1e-6);
        }
    }
}
