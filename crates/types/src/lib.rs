//! Domain model for the Internet of Battlefield Things (IoBT) platform.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: node identities and [affiliations](Affiliation) (blue/red/gray,
//! per §II of the paper), [capability profiles](CapabilityProfile) covering
//! sensors, compute, actuators and radios, [geometry](geo), [energy
//! budgets](energy::EnergyBudget), [trust scores](trust::TrustScore), and
//! [mission specifications](mission::Mission) expressing commander's intent.
//!
//! # Examples
//!
//! Build a small blue sensing node and a surveillance mission:
//!
//! ```
//! use iobt_types::prelude::*;
//!
//! let node = NodeSpec::builder(NodeId::new(1))
//!     .affiliation(Affiliation::Blue)
//!     .position(Point::new(100.0, 250.0))
//!     .sensor(Sensor::new(SensorKind::Acoustic, 150.0, 0.9))
//!     .radio(Radio::new(RadioKind::TacticalUhf))
//!     .energy(EnergyBudget::new(5_000.0))
//!     .build();
//! assert!(node.capabilities().can_sense(SensorKind::Acoustic));
//!
//! let mission = Mission::builder(MissionId::new(7), MissionKind::Surveillance)
//!     .area(Rect::new(Point::new(0.0, 0.0), Point::new(1_000.0, 1_000.0)))
//!     .require_modality(SensorKind::Acoustic)
//!     .latency_bound_ms(250.0)
//!     .resilience(2)
//!     .build();
//! assert_eq!(mission.kind(), MissionKind::Surveillance);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod energy;
pub mod error;
pub mod geo;
pub mod mission;
pub mod node;
pub mod trust;

mod affiliation;
mod capability;
mod id;

pub use affiliation::Affiliation;
pub use capability::{
    ActuatorKind, CapabilityProfile, CapabilityProfileBuilder, ComputeClass, Radio, RadioKind,
    Sensor, SensorKind,
};
pub use catalog::NodeCatalog;
pub use energy::EnergyBudget;
pub use error::TypesError;
pub use geo::{Point, Rect};
pub use id::{MissionId, NodeId, TaskId};
pub use mission::{CommanderIntent, Mission, MissionBuilder, MissionKind, Priority};
pub use node::{NodeSpec, NodeSpecBuilder};
pub use trust::{TrustLedger, TrustScore};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::{
        ActuatorKind, Affiliation, CapabilityProfile, CommanderIntent, ComputeClass, EnergyBudget,
        Mission, MissionId, MissionKind, NodeCatalog, NodeId, NodeSpec, Point, Priority, Radio,
        RadioKind, Rect, Sensor, SensorKind, TaskId, TrustLedger, TrustScore, TypesError,
    };
}
