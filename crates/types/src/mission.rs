//! Missions and commander's intent.
//!
//! §I of the paper describes *command by intent*: "a commander specifies
//! their intent (such as evacuating non-combatants along safe routes),
//! leaving it largely to the subordinate units to fill-in the details."
//! A [`CommanderIntent`] is that high-level statement; the synthesis engine
//! refines it into a [`Mission`] with quantified requirements
//! (coverage, modalities, latency, bandwidth, resilience).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ActuatorKind, MissionId, Rect, SensorKind};

/// Category of military operation (§I spans "the entire gamut of military
/// operations", §II lists representative tasks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MissionKind {
    /// Non-combatant evacuation from a hostile zone (§I vignette).
    Evacuation,
    /// Wide-area persistent surveillance.
    Surveillance,
    /// Tracking a dispersed group through clutter.
    Tracking,
    /// Disaster relief / humanitarian response.
    DisasterRelief,
    /// Peacekeeping presence and monitoring.
    Peacekeeping,
    /// Monitoring soldier physiological/psychological state.
    ForceHealth,
}

impl MissionKind {
    /// All mission kinds, in a stable order.
    pub const ALL: [MissionKind; 6] = [
        MissionKind::Evacuation,
        MissionKind::Surveillance,
        MissionKind::Tracking,
        MissionKind::DisasterRelief,
        MissionKind::Peacekeeping,
        MissionKind::ForceHealth,
    ];

    /// Default sensing modalities a mission of this kind needs, used when a
    /// commander's intent does not spell them out.
    pub fn default_modalities(self) -> Vec<SensorKind> {
        match self {
            MissionKind::Evacuation => vec![SensorKind::Visual, SensorKind::Acoustic],
            MissionKind::Surveillance => vec![SensorKind::Visual, SensorKind::Radar],
            MissionKind::Tracking => vec![SensorKind::Visual, SensorKind::Seismic],
            MissionKind::DisasterRelief => vec![SensorKind::Infrared, SensorKind::Chemical],
            MissionKind::Peacekeeping => vec![SensorKind::Visual],
            MissionKind::ForceHealth => vec![SensorKind::Physiological],
        }
    }
}

impl fmt::Display for MissionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MissionKind::Evacuation => "evacuation",
            MissionKind::Surveillance => "surveillance",
            MissionKind::Tracking => "tracking",
            MissionKind::DisasterRelief => "disaster-relief",
            MissionKind::Peacekeeping => "peacekeeping",
            MissionKind::ForceHealth => "force-health",
        };
        f.write_str(s)
    }
}

/// Relative importance used when missions compete for assets (§II: "many
/// networks operating simultaneously, possibly competing for resources").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum Priority {
    /// Background tasking.
    Low,
    /// Ordinary operations.
    #[default]
    Normal,
    /// Lives immediately at stake.
    Critical,
}

impl Priority {
    /// Numeric weight for schedulers (higher wins).
    pub const fn weight(self) -> u32 {
        match self {
            Priority::Low => 1,
            Priority::Normal => 4,
            Priority::Critical => 16,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::Critical => "critical",
        };
        f.write_str(s)
    }
}

/// A high-level goal statement, before refinement into requirements.
///
/// ```
/// # use iobt_types::{CommanderIntent, MissionKind, Point, Priority, Rect};
/// let intent = CommanderIntent::new(
///     MissionKind::Tracking,
///     Rect::new(Point::new(0.0, 0.0), Point::new(2_000.0, 2_000.0)),
///     "track insurgent group, report rendezvous points",
/// )
/// .with_priority(Priority::Critical);
/// assert_eq!(intent.priority(), Priority::Critical);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommanderIntent {
    kind: MissionKind,
    area: Rect,
    statement: String,
    priority: Priority,
}

impl CommanderIntent {
    /// Creates an intent over an area with a free-text statement.
    pub fn new(kind: MissionKind, area: Rect, statement: impl Into<String>) -> Self {
        CommanderIntent {
            kind,
            area,
            statement: statement.into(),
            priority: Priority::default(),
        }
    }

    /// Sets the priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// The mission category.
    pub const fn kind(&self) -> MissionKind {
        self.kind
    }

    /// The geographic area of interest.
    pub const fn area(&self) -> Rect {
        self.area
    }

    /// The free-text statement of intent.
    pub fn statement(&self) -> &str {
        &self.statement
    }

    /// The priority.
    pub const fn priority(&self) -> Priority {
        self.priority
    }
}

impl fmt::Display for CommanderIntent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {}", self.priority, self.kind, self.statement)
    }
}

/// A fully-specified mission: intent refined into quantified requirements.
///
/// Requirements follow §III-B: "what sensors and actuators are needed …,
/// what in-network compute elements must be present to achieve the desired
/// latency, and what network capacity and resilience must exist".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mission {
    id: MissionId,
    kind: MissionKind,
    area: Rect,
    priority: Priority,
    required_modalities: Vec<SensorKind>,
    required_actuators: Vec<ActuatorKind>,
    coverage_fraction: f64,
    latency_bound_ms: f64,
    bandwidth_kbps: f64,
    resilience: usize,
    min_trust: f64,
    deadline_s: Option<f64>,
}

impl Mission {
    /// Starts building a mission.
    pub fn builder(id: MissionId, kind: MissionKind) -> MissionBuilder {
        MissionBuilder {
            mission: Mission {
                id,
                kind,
                area: Rect::square(1_000.0),
                priority: Priority::default(),
                required_modalities: Vec::new(),
                required_actuators: Vec::new(),
                coverage_fraction: 0.9,
                latency_bound_ms: 1_000.0,
                bandwidth_kbps: 64.0,
                resilience: 1,
                min_trust: 0.6,
                deadline_s: None,
            },
        }
    }

    /// Mission identifier.
    pub const fn id(&self) -> MissionId {
        self.id
    }

    /// Mission category.
    pub const fn kind(&self) -> MissionKind {
        self.kind
    }

    /// Area of operations.
    pub const fn area(&self) -> Rect {
        self.area
    }

    /// Scheduling priority.
    pub const fn priority(&self) -> Priority {
        self.priority
    }

    /// Sensing modalities that must cover the area. Falls back to
    /// [`MissionKind::default_modalities`] when none were specified.
    pub fn required_modalities(&self) -> Vec<SensorKind> {
        if self.required_modalities.is_empty() {
            self.kind.default_modalities()
        } else {
            self.required_modalities.clone()
        }
    }

    /// Actuators the mission needs at least one of, each.
    pub fn required_actuators(&self) -> &[ActuatorKind] {
        &self.required_actuators
    }

    /// Fraction of the area's coverage cells that must be sensed, in `[0,1]`.
    pub const fn coverage_fraction(&self) -> f64 {
        self.coverage_fraction
    }

    /// End-to-end report latency bound in milliseconds.
    pub const fn latency_bound_ms(&self) -> f64 {
        self.latency_bound_ms
    }

    /// Sustained bandwidth demand in kbps.
    pub const fn bandwidth_kbps(&self) -> f64 {
        self.bandwidth_kbps
    }

    /// `k`-redundancy: the composite must survive any `k - 1` node losses.
    pub const fn resilience(&self) -> usize {
        self.resilience
    }

    /// Minimum trust score for recruited assets, in `[0, 1]`.
    pub const fn min_trust(&self) -> f64 {
        self.min_trust
    }

    /// Completion deadline in seconds since mission start, if any.
    pub const fn deadline_s(&self) -> Option<f64> {
        self.deadline_s
    }
}

impl fmt::Display for Mission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} over {} (cover {:.0}%, ≤{:.0} ms, k={})",
            self.id,
            self.kind,
            self.area,
            self.coverage_fraction * 100.0,
            self.latency_bound_ms,
            self.resilience
        )
    }
}

/// Builder for [`Mission`]. See [`Mission::builder`].
#[derive(Debug, Clone)]
pub struct MissionBuilder {
    mission: Mission,
}

impl MissionBuilder {
    /// Sets the area of operations.
    pub fn area(mut self, area: Rect) -> Self {
        self.mission.area = area;
        self
    }

    /// Sets the priority.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.mission.priority = priority;
        self
    }

    /// Adds a required sensing modality.
    pub fn require_modality(mut self, kind: SensorKind) -> Self {
        if !self.mission.required_modalities.contains(&kind) {
            self.mission.required_modalities.push(kind);
        }
        self
    }

    /// Adds a required actuator.
    pub fn require_actuator(mut self, kind: ActuatorKind) -> Self {
        if !self.mission.required_actuators.contains(&kind) {
            self.mission.required_actuators.push(kind);
        }
        self
    }

    /// Sets the required coverage fraction (clamped to `[0, 1]`).
    pub fn coverage_fraction(mut self, fraction: f64) -> Self {
        self.mission.coverage_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the latency bound in milliseconds (clamped to ≥ 1 ms).
    pub fn latency_bound_ms(mut self, ms: f64) -> Self {
        self.mission.latency_bound_ms = ms.max(1.0);
        self
    }

    /// Sets the bandwidth demand in kbps (clamped to ≥ 0).
    pub fn bandwidth_kbps(mut self, kbps: f64) -> Self {
        self.mission.bandwidth_kbps = kbps.max(0.0);
        self
    }

    /// Sets the `k`-redundancy requirement (at least 1).
    pub fn resilience(mut self, k: usize) -> Self {
        self.mission.resilience = k.max(1);
        self
    }

    /// Sets the minimum trust for recruited assets (clamped to `[0, 1]`).
    pub fn min_trust(mut self, trust: f64) -> Self {
        self.mission.min_trust = trust.clamp(0.0, 1.0);
        self
    }

    /// Sets a completion deadline in seconds.
    pub fn deadline_s(mut self, seconds: f64) -> Self {
        self.mission.deadline_s = Some(seconds.max(0.0));
        self
    }

    /// Finishes the mission.
    pub fn build(self) -> Mission {
        self.mission
    }
}

/// Derives a concrete [`Mission`] from a [`CommanderIntent`] using the
/// kind's default requirement profile — the "reasoning from goals to means"
/// entry point of §III-B. The id is supplied by the caller so missions stay
/// unique across a running system.
pub fn refine_intent(id: MissionId, intent: &CommanderIntent) -> Mission {
    let mut builder = Mission::builder(id, intent.kind())
        .area(intent.area())
        .priority(intent.priority());
    for m in intent.kind().default_modalities() {
        builder = builder.require_modality(m);
    }
    // Stricter requirements for critical missions: tighter latency and
    // double redundancy.
    if intent.priority() == Priority::Critical {
        builder = builder.latency_bound_ms(250.0).resilience(2);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    #[test]
    fn builder_clamps_requirements() {
        let m = Mission::builder(MissionId::new(1), MissionKind::Surveillance)
            .coverage_fraction(1.5)
            .latency_bound_ms(0.0)
            .bandwidth_kbps(-3.0)
            .resilience(0)
            .min_trust(7.0)
            .build();
        assert_eq!(m.coverage_fraction(), 1.0);
        assert_eq!(m.latency_bound_ms(), 1.0);
        assert_eq!(m.bandwidth_kbps(), 0.0);
        assert_eq!(m.resilience(), 1);
        assert_eq!(m.min_trust(), 1.0);
    }

    #[test]
    fn modalities_default_by_kind() {
        let m = Mission::builder(MissionId::new(2), MissionKind::DisasterRelief).build();
        assert_eq!(
            m.required_modalities(),
            vec![SensorKind::Infrared, SensorKind::Chemical]
        );
        let m2 = Mission::builder(MissionId::new(3), MissionKind::DisasterRelief)
            .require_modality(SensorKind::Acoustic)
            .build();
        assert_eq!(m2.required_modalities(), vec![SensorKind::Acoustic]);
    }

    #[test]
    fn require_modality_deduplicates() {
        let m = Mission::builder(MissionId::new(4), MissionKind::Tracking)
            .require_modality(SensorKind::Visual)
            .require_modality(SensorKind::Visual)
            .build();
        assert_eq!(m.required_modalities().len(), 1);
    }

    #[test]
    fn refine_intent_critical_tightens_requirements() {
        let area = Rect::new(Point::new(0.0, 0.0), Point::new(500.0, 500.0));
        let normal = refine_intent(
            MissionId::new(5),
            &CommanderIntent::new(MissionKind::Evacuation, area, "evacuate sector 4"),
        );
        let critical = refine_intent(
            MissionId::new(6),
            &CommanderIntent::new(MissionKind::Evacuation, area, "evacuate sector 4")
                .with_priority(Priority::Critical),
        );
        assert!(critical.latency_bound_ms() < normal.latency_bound_ms());
        assert!(critical.resilience() > normal.resilience());
        assert_eq!(critical.area(), area);
    }

    #[test]
    fn priority_weights_are_ordered() {
        assert!(Priority::Critical.weight() > Priority::Normal.weight());
        assert!(Priority::Normal.weight() > Priority::Low.weight());
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn every_kind_has_default_modalities() {
        for k in MissionKind::ALL {
            assert!(!k.default_modalities().is_empty(), "{k} lacks modalities");
        }
    }

    #[test]
    fn display_formats_are_informative() {
        let m = Mission::builder(MissionId::new(7), MissionKind::Peacekeeping).build();
        let s = m.to_string();
        assert!(s.contains("m7"));
        assert!(s.contains("peacekeeping"));
        let intent = CommanderIntent::new(
            MissionKind::Surveillance,
            Rect::square(10.0),
            "watch the market square",
        );
        assert!(intent.to_string().contains("watch the market square"));
    }
}
