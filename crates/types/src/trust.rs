//! Trust scores and evidence-based trust ledgers.
//!
//! §III-A of the paper lists "reliability, trust and security" among the
//! capabilities that recruitment must characterize. We model trust as a
//! Beta-reputation system: each node accumulates positive and negative
//! evidence, and its [`TrustScore`] is the posterior mean of a Beta
//! distribution seeded by the node's [`Affiliation`] prior.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Affiliation, NodeId};

/// A trust value in `[0, 1]`.
///
/// `0.0` means "certainly adversarial", `1.0` means "fully trusted".
/// Construction clamps out-of-range and non-finite inputs.
///
/// ```
/// # use iobt_types::TrustScore;
/// assert_eq!(TrustScore::new(1.7).value(), 1.0);
/// assert_eq!(TrustScore::new(f64::NAN).value(), 0.0);
/// assert!(TrustScore::new(0.8) > TrustScore::new(0.3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TrustScore(f64);

impl TrustScore {
    /// Complete distrust.
    pub const ZERO: TrustScore = TrustScore(0.0);
    /// Complete trust.
    pub const FULL: TrustScore = TrustScore(1.0);

    /// Creates a score, clamping into `[0, 1]` (NaN maps to `0.0`).
    pub fn new(value: f64) -> Self {
        if value.is_nan() {
            TrustScore(0.0)
        } else {
            TrustScore(value.clamp(0.0, 1.0))
        }
    }

    /// The underlying value in `[0, 1]`.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Whether the score clears a recruitment threshold.
    pub fn meets(self, threshold: f64) -> bool {
        self.0 >= threshold
    }
}

impl Default for TrustScore {
    /// Maximum-entropy default: `0.5`.
    fn default() -> Self {
        TrustScore(0.5)
    }
}

impl Eq for TrustScore {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for TrustScore {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Clamped construction guarantees the value is never NaN.
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for TrustScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl From<f64> for TrustScore {
    fn from(value: f64) -> Self {
        TrustScore::new(value)
    }
}

/// Beta-reputation evidence for one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Evidence {
    /// Pseudo-count of positive interactions (Beta α).
    alpha: f64,
    /// Pseudo-count of negative interactions (Beta β).
    beta: f64,
}

impl Evidence {
    fn from_prior(prior: f64, strength: f64) -> Self {
        Evidence {
            alpha: prior * strength,
            beta: (1.0 - prior) * strength,
        }
    }

    fn score(&self) -> TrustScore {
        TrustScore::new(self.alpha / (self.alpha + self.beta))
    }
}

/// Evidence-accumulating trust store for a population of nodes.
///
/// ```
/// # use iobt_types::{Affiliation, NodeId, TrustLedger};
/// let mut ledger = TrustLedger::new();
/// let n = NodeId::new(1);
/// ledger.enroll(n, Affiliation::Gray);
/// let before = ledger.score(n).unwrap();
/// for _ in 0..10 { ledger.record_positive(n); }
/// assert!(ledger.score(n).unwrap() > before);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrustLedger {
    prior_strength: f64,
    evidence: HashMap<NodeId, Evidence>,
}

impl TrustLedger {
    /// Default weight of the affiliation prior, in pseudo-observations.
    pub const DEFAULT_PRIOR_STRENGTH: f64 = 4.0;

    /// Creates a ledger with the default prior strength.
    pub fn new() -> Self {
        TrustLedger {
            prior_strength: Self::DEFAULT_PRIOR_STRENGTH,
            evidence: HashMap::new(),
        }
    }

    /// Creates a ledger whose affiliation priors weigh as much as
    /// `strength` real observations. Clamped to be ≥ `0.1` so scores stay
    /// well-defined before any evidence arrives.
    pub fn with_prior_strength(strength: f64) -> Self {
        TrustLedger {
            prior_strength: strength.max(0.1),
            evidence: HashMap::new(),
        }
    }

    /// Registers a node, seeding its evidence from the affiliation prior.
    /// Re-enrolling an existing node resets its evidence.
    pub fn enroll(&mut self, node: NodeId, affiliation: Affiliation) {
        self.evidence.insert(
            node,
            Evidence::from_prior(affiliation.prior_trust(), self.prior_strength),
        );
    }

    /// Number of enrolled nodes.
    pub fn len(&self) -> usize {
        self.evidence.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.evidence.is_empty()
    }

    /// Current score of a node, or `None` if it was never enrolled.
    pub fn score(&self, node: NodeId) -> Option<TrustScore> {
        self.evidence.get(&node).map(Evidence::score)
    }

    /// Records a positive interaction (correct report, completed task).
    /// Unknown nodes are ignored; enroll first.
    pub fn record_positive(&mut self, node: NodeId) {
        if let Some(e) = self.evidence.get_mut(&node) {
            e.alpha += 1.0;
        }
    }

    /// Records a negative interaction (bad data, defection, attack).
    /// Unknown nodes are ignored; enroll first.
    pub fn record_negative(&mut self, node: NodeId) {
        if let Some(e) = self.evidence.get_mut(&node) {
            e.beta += 1.0;
        }
    }

    /// Exponentially decays all evidence toward the prior-free state by
    /// factor `lambda` in `(0, 1]`; `1.0` is a no-op. Supports forgetting in
    /// long-lived deployments where behaviour can change (§V-B continuous
    /// learning).
    pub fn decay(&mut self, lambda: f64) {
        let lambda = lambda.clamp(0.0, 1.0);
        for e in self.evidence.values_mut() {
            e.alpha *= lambda;
            e.beta *= lambda;
            // Keep the posterior proper.
            e.alpha = e.alpha.max(1e-3);
            e.beta = e.beta.max(1e-3);
        }
    }

    /// Nodes whose score clears `threshold`, sorted by descending score then
    /// ascending id (deterministic output).
    pub fn trusted_nodes(&self, threshold: f64) -> Vec<(NodeId, TrustScore)> {
        let mut out: Vec<(NodeId, TrustScore)> = self
            .evidence
            .iter()
            .map(|(&id, e)| (id, e.score()))
            .filter(|(_, s)| s.meets(threshold))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Iterates over `(node, score)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, TrustScore)> + '_ {
        self.evidence.iter().map(|(&id, e)| (id, e.score()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scores_start_at_affiliation_prior() {
        let mut ledger = TrustLedger::new();
        for a in Affiliation::ALL {
            let id = NodeId::new(a.index() as u64);
            ledger.enroll(id, a);
            let s = ledger.score(id).unwrap();
            assert!((s.value() - a.prior_trust()).abs() < 1e-9);
        }
    }

    #[test]
    fn positive_evidence_raises_negative_lowers() {
        let mut ledger = TrustLedger::new();
        let n = NodeId::new(1);
        ledger.enroll(n, Affiliation::Gray);
        let base = ledger.score(n).unwrap();
        ledger.record_positive(n);
        assert!(ledger.score(n).unwrap() > base);
        ledger.record_negative(n);
        ledger.record_negative(n);
        assert!(ledger.score(n).unwrap() < base);
    }

    #[test]
    fn unknown_nodes_are_ignored() {
        let mut ledger = TrustLedger::new();
        ledger.record_positive(NodeId::new(99));
        assert_eq!(ledger.score(NodeId::new(99)), None);
        assert!(ledger.is_empty());
    }

    #[test]
    fn evidence_eventually_dominates_prior() {
        let mut ledger = TrustLedger::new();
        let red = NodeId::new(1);
        ledger.enroll(red, Affiliation::Red);
        for _ in 0..200 {
            ledger.record_positive(red);
        }
        // A consistently good red node (e.g. captured asset) becomes trusted.
        assert!(ledger.score(red).unwrap().meets(0.9));
    }

    #[test]
    fn trusted_nodes_sorted_and_filtered() {
        let mut ledger = TrustLedger::new();
        ledger.enroll(NodeId::new(1), Affiliation::Blue);
        ledger.enroll(NodeId::new(2), Affiliation::Red);
        ledger.enroll(NodeId::new(3), Affiliation::Gray);
        let trusted = ledger.trusted_nodes(0.4);
        assert_eq!(trusted.len(), 2);
        assert_eq!(trusted[0].0, NodeId::new(1));
        assert_eq!(trusted[1].0, NodeId::new(3));
    }

    #[test]
    fn decay_moves_toward_half_without_breaking_bounds() {
        let mut ledger = TrustLedger::new();
        let n = NodeId::new(5);
        ledger.enroll(n, Affiliation::Blue);
        for _ in 0..50 {
            ledger.record_positive(n);
        }
        let high = ledger.score(n).unwrap();
        for _ in 0..20 {
            ledger.decay(0.5);
        }
        let decayed = ledger.score(n).unwrap();
        assert!(decayed <= high);
        assert!(decayed.value() > 0.0 && decayed.value() <= 1.0);
    }

    #[test]
    fn trust_score_clamps() {
        assert_eq!(TrustScore::new(-0.5), TrustScore::ZERO);
        assert_eq!(TrustScore::new(2.0), TrustScore::FULL);
        assert_eq!(TrustScore::from(0.25).value(), 0.25);
    }

    proptest! {
        #[test]
        fn scores_always_in_unit_interval(
            seeds in proptest::collection::vec((0u64..50, 0usize..3, proptest::bool::ANY), 1..100)
        ) {
            let mut ledger = TrustLedger::new();
            for (raw, aff_idx, positive) in seeds {
                let id = NodeId::new(raw);
                if ledger.score(id).is_none() {
                    ledger.enroll(id, Affiliation::from_index(aff_idx).unwrap());
                }
                if positive { ledger.record_positive(id); } else { ledger.record_negative(id); }
                let s = ledger.score(id).unwrap().value();
                prop_assert!((0.0..=1.0).contains(&s));
            }
        }
    }
}
