//! Simulator behaviours used by the mission runtime.

use std::cell::RefCell;
use std::rc::Rc;

use iobt_netsim::{Behavior, Context, Message, SimDuration, SimTime};
use iobt_types::NodeId;

/// Message kind tag for periodic sensor reports.
pub const KIND_REPORT: u32 = 1;

/// A delivered sensor report as logged by the command sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveredReport {
    /// Reporting sensor node.
    pub from: NodeId,
    /// Delivery time.
    pub at: SimTime,
}

/// Shared log of reports received at the command post.
pub type ReportLog = Rc<RefCell<Vec<DeliveredReport>>>;

/// Creates an empty shared report log.
pub fn new_report_log() -> ReportLog {
    Rc::new(RefCell::new(Vec::new()))
}

/// Command-post behaviour: records every report it receives.
#[derive(Debug)]
pub struct CommandSink {
    log: ReportLog,
}

impl CommandSink {
    /// Creates a sink writing into the shared log.
    pub fn new(log: ReportLog) -> Self {
        CommandSink { log }
    }
}

impl Behavior for CommandSink {
    fn on_message(&mut self, ctx: &mut Context<'_>, msg: &Message) {
        if msg.kind() == KIND_REPORT {
            self.log.borrow_mut().push(DeliveredReport {
                from: msg.src(),
                at: ctx.now(),
            });
        }
    }
}

/// Sensor behaviour: sends a fixed-size report to the command post every
/// `period`, jittered by up to 10% to avoid global synchronization.
#[derive(Debug)]
pub struct SensorReporter {
    sink: NodeId,
    period: SimDuration,
    payload_bytes: usize,
}

impl SensorReporter {
    /// Creates a reporter targeting `sink`.
    pub fn new(sink: NodeId, period: SimDuration, payload_bytes: usize) -> Self {
        SensorReporter {
            sink,
            period,
            payload_bytes,
        }
    }

    fn schedule_next(&self, ctx: &mut Context<'_>) {
        let jitter_us = (self.period.as_micros() / 10).max(1);
        let delay = SimDuration::from_micros(
            self.period.as_micros() + ctx.gen_below(jitter_us),
        );
        ctx.set_timer(delay, 0);
    }
}

impl Behavior for SensorReporter {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Desynchronize initial reports across the fleet.
        let delay = SimDuration::from_micros(ctx.gen_below(self.period.as_micros().max(1)));
        ctx.set_timer(delay, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        ctx.send(self.sink, KIND_REPORT, vec![0u8; self.payload_bytes]);
        self.schedule_next(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iobt_netsim::Simulator;
    use iobt_types::{Affiliation, EnergyBudget, NodeCatalog, NodeSpec, Point, Radio, RadioKind};

    fn catalog() -> NodeCatalog {
        let mut c = NodeCatalog::new();
        for i in 0..3 {
            c.insert(
                NodeSpec::builder(NodeId::new(i))
                    .affiliation(Affiliation::Blue)
                    .position(Point::new(i as f64 * 40.0, 0.0))
                    .radio(Radio::new(RadioKind::Wifi))
                    .energy(EnergyBudget::new(100_000.0))
                    .build(),
            )
            .unwrap();
        }
        c
    }

    #[test]
    fn reports_flow_to_the_sink() {
        let mut sim = Simulator::builder(catalog()).seed(1).build();
        let log = new_report_log();
        sim.set_behavior(NodeId::new(0), Box::new(CommandSink::new(log.clone())));
        for i in 1..3 {
            sim.set_behavior(
                NodeId::new(i),
                Box::new(SensorReporter::new(
                    NodeId::new(0),
                    SimDuration::from_millis(500),
                    64,
                )),
            );
        }
        sim.run_for(SimDuration::from_secs_f64(5.0));
        let log = log.borrow();
        assert!(log.len() >= 12, "expected ~18 reports, got {}", log.len());
        assert!(log.iter().any(|r| r.from == NodeId::new(1)));
        assert!(log.iter().any(|r| r.from == NodeId::new(2)));
        // Timestamps are monotone.
        assert!(log.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn non_report_messages_are_ignored_by_sink() {
        let mut sim = Simulator::builder(catalog()).seed(2).build();
        let log = new_report_log();
        sim.set_behavior(NodeId::new(0), Box::new(CommandSink::new(log.clone())));
        struct OtherSender;
        impl Behavior for OtherSender {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send(NodeId::new(0), 99, vec![1, 2, 3]);
            }
        }
        sim.set_behavior(NodeId::new(1), Box::new(OtherSender));
        sim.run_for(SimDuration::from_secs_f64(1.0));
        assert!(log.borrow().is_empty());
    }
}
