//! Simulator behaviours used by the mission runtime.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use iobt_ckpt::{Dec, Enc};
use iobt_netsim::{
    Behavior, BehaviorRegistry, BehaviorSnapshot, Bytes, Context, Message, SimDuration, SimTime,
};
use iobt_obs::TraceEvent;
use iobt_types::NodeId;

/// Message kind tag for periodic sensor reports.
pub const KIND_REPORT: u32 = 1;
/// Message kind tag for task assignments (command post → sensor).
pub const KIND_TASK: u32 = 2;
/// Message kind tag for task acknowledgements (sensor → command post).
pub const KIND_TASK_ACK: u32 = 3;

/// Behaviour-registry kind for [`CommandSink`].
pub const BEHAVIOR_COMMAND_SINK: &str = "core.command_sink";
/// Behaviour-registry kind for [`TaskingSink`].
pub const BEHAVIOR_TASKING_SINK: &str = "core.tasking_sink";
/// Behaviour-registry kind for [`SensorReporter`].
pub const BEHAVIOR_SENSOR_REPORTER: &str = "core.sensor_reporter";

/// Builds the behaviour registry for mission checkpoints: factories for
/// every behaviour kind the runtime deploys, each capturing the shared
/// report log / task board handles so reconstructed behaviours write
/// into the *same* shared state the resumed runtime reads.
pub fn mission_behavior_registry(log: &ReportLog, board: &TaskBoard) -> BehaviorRegistry {
    let mut registry = BehaviorRegistry::new();
    let sink_log = log.clone();
    registry.register(BEHAVIOR_COMMAND_SINK, move || {
        Box::new(CommandSink::new(sink_log.clone()))
    });
    let task_log = log.clone();
    let task_board = board.clone();
    registry.register(BEHAVIOR_TASKING_SINK, move || {
        // Blank instance; restore_state overwrites attempts/backoff.
        Box::new(TaskingSink::new(
            task_log.clone(),
            task_board.clone(),
            1,
            SimDuration::from_millis(1),
        ))
    });
    registry.register(BEHAVIOR_SENSOR_REPORTER, move || {
        // Blank instance; restore_state overwrites every field.
        Box::new(SensorReporter::new(
            NodeId::new(0),
            SimDuration::from_millis(1),
            0,
        ))
    });
    registry
}

/// A delivered sensor report as logged by the command sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveredReport {
    /// Reporting sensor node.
    pub from: NodeId,
    /// Delivery time.
    pub at: SimTime,
}

/// Shared log of reports received at the command post.
pub type ReportLog = Rc<RefCell<Vec<DeliveredReport>>>;

/// Creates an empty shared report log.
pub fn new_report_log() -> ReportLog {
    Rc::new(RefCell::new(Vec::new()))
}

/// Command-post behaviour: records every report it receives.
#[derive(Debug)]
pub struct CommandSink {
    log: ReportLog,
}

impl CommandSink {
    /// Creates a sink writing into the shared log.
    pub fn new(log: ReportLog) -> Self {
        CommandSink { log }
    }
}

impl Behavior for CommandSink {
    fn save_state(&self) -> Option<BehaviorSnapshot> {
        // The shared log handle is supplied by the registry factory;
        // the sink itself carries no other state.
        let Self { log: _ } = self;
        Some(BehaviorSnapshot::new(BEHAVIOR_COMMAND_SINK, Vec::new()))
    }

    fn restore_state(&mut self, state: &[u8]) -> bool {
        let Self { log: _ } = self;
        state.is_empty()
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, msg: &Message) {
        // Reports carried by a compromised relay arrive with the
        // integrity flag raised; they are never logged, so their senders
        // look silent and the failure detector / repair reflex treats
        // them as lost (§IV: discard what partially-trusted assets may
        // have corrupted).
        if msg.kind() == KIND_REPORT && !msg.tampered() {
            self.log.borrow_mut().push(DeliveredReport {
                from: msg.src(),
                at: ctx.now(),
            });
        }
    }
}

/// Counters for acknowledged task dissemination.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct TaskingStats {
    /// Task assignments issued by the runtime.
    pub assigned: u64,
    /// Assignments acknowledged by the tasked sensor.
    pub acked: u64,
    /// Retransmissions after an unacknowledged attempt.
    pub retries: u64,
    /// Assignments abandoned after the attempt cap.
    pub abandoned: u64,
    /// Reports or acks rejected because they arrived tampered.
    pub tampered_rejected: u64,
}

#[derive(Debug, Clone, Copy)]
struct PendingTask {
    attempts: u32,
    next_at: SimTime,
}

/// Shared state between the runtime (which assigns tasks) and the
/// [`TaskingSink`] behaviour (which disseminates them inside the sim).
#[derive(Debug, Default)]
pub struct TaskBoardInner {
    pending: BTreeMap<NodeId, PendingTask>,
    stats: TaskingStats,
}

impl TaskBoardInner {
    /// Queues a task assignment for `node`; the sink will start sending
    /// it at its next dissemination tick. Re-assigning a node already
    /// pending is a no-op.
    pub fn assign(&mut self, node: NodeId) {
        if self
            .pending
            .insert(
                node,
                PendingTask {
                    attempts: 0,
                    next_at: SimTime::ZERO,
                },
            )
            .is_none()
        {
            self.stats.assigned += 1;
        }
    }

    /// Assignments still awaiting an ack.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// The full retransmit state — `(node, attempts, next retry time)`
    /// per pending assignment, ascending node id — for checkpoints.
    pub fn pending_entries(&self) -> Vec<(NodeId, u32, SimTime)> {
        self.pending
            .iter()
            .map(|(&n, t)| (n, t.attempts, t.next_at))
            .collect()
    }

    /// Overwrites the board wholesale from checkpointed state.
    pub fn restore(&mut self, pending: &[(NodeId, u32, SimTime)], stats: TaskingStats) {
        self.pending = pending
            .iter()
            .map(|&(n, attempts, next_at)| (n, PendingTask { attempts, next_at }))
            .collect();
        self.stats = stats;
    }

    /// Current counters.
    pub fn stats(&self) -> TaskingStats {
        self.stats
    }
}

/// Shared handle to the task board.
pub type TaskBoard = Rc<RefCell<TaskBoardInner>>;

/// Creates an empty shared task board.
pub fn new_task_board() -> TaskBoard {
    Rc::new(RefCell::new(TaskBoardInner::default()))
}

/// Command-post behaviour with acknowledged task dissemination: logs
/// reports like [`CommandSink`] and, on a fixed tick, (re)transmits
/// pending task assignments with deterministic capped exponential
/// backoff — attempt `k` waits `retry_base × 2^(k-1)` before the next —
/// until acked or the attempt cap is reached.
#[derive(Debug)]
pub struct TaskingSink {
    log: ReportLog,
    board: TaskBoard,
    max_attempts: u32,
    retry_base: SimDuration,
}

impl TaskingSink {
    /// Creates a tasking sink. `max_attempts` is clamped to ≥ 1;
    /// `retry_base` to ≥ 1 ms (the dissemination tick is a quarter of
    /// it, so a zero base would busy-loop the event queue).
    pub fn new(
        log: ReportLog,
        board: TaskBoard,
        max_attempts: u32,
        retry_base: SimDuration,
    ) -> Self {
        TaskingSink {
            log,
            board,
            max_attempts: max_attempts.max(1),
            retry_base: SimDuration::from_micros(retry_base.as_micros().max(1_000)),
        }
    }

    fn tick(&self) -> SimDuration {
        SimDuration::from_micros((self.retry_base.as_micros() / 4).max(250))
    }

    fn backoff(&self, attempt: u32) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(20);
        SimDuration::from_micros(self.retry_base.as_micros().saturating_mul(1 << exp))
    }
}

impl Behavior for TaskingSink {
    fn save_state(&self) -> Option<BehaviorSnapshot> {
        // Shared log/board handles come from the registry factory; the
        // board's pending map is checkpointed separately by the runner.
        let Self { log: _, board: _, max_attempts, retry_base } = self;
        let mut e = Enc::new();
        e.u32(*max_attempts);
        e.u64(retry_base.as_micros());
        Some(BehaviorSnapshot::new(BEHAVIOR_TASKING_SINK, e.into_bytes()))
    }

    fn restore_state(&mut self, state: &[u8]) -> bool {
        // Coverage guard: every field's restore story is decided below
        // (shared handles keep their factory-supplied values).
        let Self { log: _, board: _, max_attempts: _, retry_base: _ } = self;
        let mut d = Dec::new(state);
        let Ok(max_attempts) = d.u32() else {
            return false;
        };
        let Ok(retry_base) = d.u64() else {
            return false;
        };
        if d.finish().is_err() || max_attempts == 0 || retry_base < 1_000 {
            // The constructor clamps attempts ≥ 1 and base ≥ 1 ms; a
            // snapshot violating either is corrupt, not a valid state.
            return false;
        }
        self.max_attempts = max_attempts;
        self.retry_base = SimDuration::from_micros(retry_base);
        true
    }

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.tick(), 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        let now = ctx.now();
        // Decide inside one board borrow, act (send/record) outside it.
        let mut send: Vec<(NodeId, u32)> = Vec::new();
        let mut dropped: Vec<(NodeId, u32)> = Vec::new();
        {
            let mut board = self.board.borrow_mut();
            let due: Vec<NodeId> = board
                .pending
                .iter()
                .filter(|(_, t)| t.next_at <= now)
                .map(|(&n, _)| n)
                .collect();
            for node in due {
                // lint: allow(panic) — `node` comes from the pending map two lines up
                let task = board.pending.get_mut(&node).expect("pending task");
                if task.attempts >= self.max_attempts {
                    let attempts = task.attempts;
                    board.pending.remove(&node);
                    board.stats.abandoned += 1;
                    dropped.push((node, attempts));
                } else {
                    task.attempts += 1;
                    let attempts = task.attempts;
                    task.next_at = now + self.backoff(attempts);
                    if attempts > 1 {
                        board.stats.retries += 1;
                    }
                    send.push((node, attempts));
                }
            }
        }
        for &(node, attempts) in &send {
            if attempts > 1 {
                ctx.recorder().record(TraceEvent::TaskRetry {
                    node: node.raw(),
                    attempt: u64::from(attempts),
                });
            }
            ctx.send(node, KIND_TASK, Bytes::new());
        }
        for &(node, attempts) in &dropped {
            ctx.recorder().record(TraceEvent::TaskAbandoned {
                node: node.raw(),
                attempts: u64::from(attempts),
            });
        }
        ctx.set_timer(self.tick(), 0);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, msg: &Message) {
        if msg.tampered() {
            self.board.borrow_mut().stats.tampered_rejected += 1;
            return;
        }
        match msg.kind() {
            KIND_REPORT => {
                self.log.borrow_mut().push(DeliveredReport {
                    from: msg.src(),
                    at: ctx.now(),
                });
            }
            KIND_TASK_ACK => {
                let mut board = self.board.borrow_mut();
                if board.pending.remove(&msg.src()).is_some() {
                    board.stats.acked += 1;
                }
            }
            _ => {}
        }
    }
}

/// Sensor behaviour: sends a fixed-size report to the command post every
/// `period`, jittered by up to 10% to avoid global synchronization.
///
/// Built with [`SensorReporter::new`] the reporter starts immediately;
/// built with [`SensorReporter::dormant`] it stays silent until it
/// receives a [`KIND_TASK`] message, which it acknowledges with
/// [`KIND_TASK_ACK`] before starting its report stream (acked tasking).
#[derive(Debug)]
pub struct SensorReporter {
    sink: NodeId,
    period: SimDuration,
    payload_bytes: usize,
    // Report payloads are all-zero filler of a fixed size, so one shared
    // refcounted buffer serves every report this node ever sends: each
    // send clones the `Bytes` handle (an O(1) refcount bump) instead of
    // allocating and zeroing a fresh vector per period.
    payload: Bytes,
    dormant: bool,
    reporting: bool,
}

impl SensorReporter {
    /// Creates a reporter targeting `sink` that starts immediately.
    pub fn new(sink: NodeId, period: SimDuration, payload_bytes: usize) -> Self {
        SensorReporter {
            sink,
            period,
            payload_bytes,
            payload: Bytes::from(vec![0u8; payload_bytes]),
            dormant: false,
            reporting: false,
        }
    }

    /// Creates a reporter that stays dormant until tasked.
    pub fn dormant(sink: NodeId, period: SimDuration, payload_bytes: usize) -> Self {
        SensorReporter {
            dormant: true,
            ..SensorReporter::new(sink, period, payload_bytes)
        }
    }

    fn start_reporting(&mut self, ctx: &mut Context<'_>) {
        self.reporting = true;
        // Desynchronize initial reports across the fleet.
        let delay = SimDuration::from_micros(ctx.gen_below(self.period.as_micros().max(1)));
        ctx.set_timer(delay, 0);
    }

    fn schedule_next(&self, ctx: &mut Context<'_>) {
        let jitter_us = (self.period.as_micros() / 10).max(1);
        let delay = SimDuration::from_micros(
            self.period.as_micros() + ctx.gen_below(jitter_us),
        );
        ctx.set_timer(delay, 0);
    }
}

impl Behavior for SensorReporter {
    fn save_state(&self) -> Option<BehaviorSnapshot> {
        // `payload` is all-zero filler reconstructed from `payload_bytes`
        // on restore, so the buffer itself is not persisted.
        let Self { sink, period, payload_bytes, payload: _, dormant, reporting } = self;
        let mut e = Enc::new();
        e.u64(sink.raw());
        e.u64(period.as_micros());
        e.usize(*payload_bytes);
        e.bool(*dormant);
        e.bool(*reporting);
        Some(BehaviorSnapshot::new(
            BEHAVIOR_SENSOR_REPORTER,
            e.into_bytes(),
        ))
    }

    fn restore_state(&mut self, state: &[u8]) -> bool {
        // Coverage guard: every field's restore story is decided below.
        let Self {
            sink: _,
            period: _,
            payload_bytes: _,
            payload: _,
            dormant: _,
            reporting: _,
        } = self;
        let mut d = Dec::new(state);
        let Ok(sink) = d.u64() else { return false };
        let Ok(period) = d.u64() else { return false };
        let Ok(payload_bytes) = d.usize() else {
            return false;
        };
        let Ok(dormant) = d.bool() else { return false };
        let Ok(reporting) = d.bool() else { return false };
        if d.finish().is_err() {
            return false;
        }
        self.sink = NodeId::new(sink);
        self.period = SimDuration::from_micros(period);
        if payload_bytes != self.payload_bytes {
            self.payload = Bytes::from(vec![0u8; payload_bytes]);
        }
        self.payload_bytes = payload_bytes;
        self.dormant = dormant;
        self.reporting = reporting;
        true
    }

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if !self.dormant {
            self.start_reporting(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: u64) {
        if !self.reporting {
            return;
        }
        ctx.send(self.sink, KIND_REPORT, self.payload.clone());
        self.schedule_next(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, msg: &Message) {
        // A tampered task assignment is not trusted: no ack, no
        // activation — the command post's bounded retry covers the gap.
        if msg.kind() != KIND_TASK || msg.tampered() {
            return;
        }
        ctx.send(msg.src(), KIND_TASK_ACK, Bytes::new());
        if self.dormant && !self.reporting {
            self.start_reporting(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iobt_netsim::Simulator;
    use iobt_types::{Affiliation, EnergyBudget, NodeCatalog, NodeSpec, Point, Radio, RadioKind};

    fn catalog() -> NodeCatalog {
        let mut c = NodeCatalog::new();
        for i in 0..3 {
            c.insert(
                NodeSpec::builder(NodeId::new(i))
                    .affiliation(Affiliation::Blue)
                    .position(Point::new(i as f64 * 40.0, 0.0))
                    .radio(Radio::new(RadioKind::Wifi))
                    .energy(EnergyBudget::new(100_000.0))
                    .build(),
            )
            .unwrap();
        }
        c
    }

    #[test]
    fn reports_flow_to_the_sink() {
        let mut sim = Simulator::builder(catalog()).seed(1).build();
        let log = new_report_log();
        sim.set_behavior(NodeId::new(0), Box::new(CommandSink::new(log.clone())));
        for i in 1..3 {
            sim.set_behavior(
                NodeId::new(i),
                Box::new(SensorReporter::new(
                    NodeId::new(0),
                    SimDuration::from_millis(500),
                    64,
                )),
            );
        }
        sim.run_for(SimDuration::from_secs_f64(5.0));
        let log = log.borrow();
        assert!(log.len() >= 12, "expected ~18 reports, got {}", log.len());
        assert!(log.iter().any(|r| r.from == NodeId::new(1)));
        assert!(log.iter().any(|r| r.from == NodeId::new(2)));
        // Timestamps are monotone.
        assert!(log.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn acked_tasking_activates_dormant_reporters() {
        let mut sim = Simulator::builder(catalog()).seed(3).build();
        let log = new_report_log();
        let board = new_task_board();
        board.borrow_mut().assign(NodeId::new(1));
        board.borrow_mut().assign(NodeId::new(2));
        board.borrow_mut().assign(NodeId::new(2)); // duplicate: no-op
        sim.set_behavior(
            NodeId::new(0),
            Box::new(TaskingSink::new(
                log.clone(),
                board.clone(),
                4,
                SimDuration::from_millis(200),
            )),
        );
        for i in 1..3 {
            sim.set_behavior(
                NodeId::new(i),
                Box::new(SensorReporter::dormant(
                    NodeId::new(0),
                    SimDuration::from_millis(500),
                    64,
                )),
            );
        }
        sim.run_for(SimDuration::from_secs_f64(5.0));
        let stats = board.borrow().stats();
        assert_eq!(stats.assigned, 2, "duplicate assign must not double-count");
        assert_eq!(stats.acked, 2, "both reachable sensors must ack");
        assert_eq!(stats.abandoned, 0);
        assert_eq!(board.borrow().outstanding(), 0);
        let log = log.borrow();
        assert!(
            log.iter().any(|r| r.from == NodeId::new(1))
                && log.iter().any(|r| r.from == NodeId::new(2)),
            "tasked sensors must start reporting"
        );
    }

    #[test]
    fn unreachable_assignment_is_abandoned_after_the_attempt_cap() {
        let mut sim = Simulator::builder(catalog()).seed(4).build();
        let log = new_report_log();
        let board = new_task_board();
        // Node 2 is killed before the first dissemination tick: every
        // task attempt is lost and the sink must give up at the cap.
        sim.schedule_node_down(SimTime::ZERO, NodeId::new(2));
        board.borrow_mut().assign(NodeId::new(2));
        sim.set_behavior(
            NodeId::new(0),
            Box::new(TaskingSink::new(
                log.clone(),
                board.clone(),
                3,
                SimDuration::from_millis(100),
            )),
        );
        sim.run_for(SimDuration::from_secs_f64(5.0));
        let stats = board.borrow().stats();
        assert_eq!(stats.assigned, 1);
        assert_eq!(stats.acked, 0);
        assert_eq!(stats.retries, 2, "attempts 2 and 3 are retries");
        assert_eq!(stats.abandoned, 1);
        assert_eq!(board.borrow().outstanding(), 0);
    }

    #[test]
    fn tasking_backoff_is_capped_exponential() {
        let sink = TaskingSink::new(
            new_report_log(),
            new_task_board(),
            4,
            SimDuration::from_millis(100),
        );
        assert_eq!(sink.backoff(1), SimDuration::from_millis(100));
        assert_eq!(sink.backoff(2), SimDuration::from_millis(200));
        assert_eq!(sink.backoff(3), SimDuration::from_millis(400));
        // The exponent is capped so huge attempt counts cannot overflow.
        assert_eq!(sink.backoff(40), sink.backoff(21));
    }

    #[test]
    fn non_report_messages_are_ignored_by_sink() {
        let mut sim = Simulator::builder(catalog()).seed(2).build();
        let log = new_report_log();
        sim.set_behavior(NodeId::new(0), Box::new(CommandSink::new(log.clone())));
        struct OtherSender;
        impl Behavior for OtherSender {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send(NodeId::new(0), 99, vec![1, 2, 3]);
            }
        }
        sim.set_behavior(NodeId::new(1), Box::new(OtherSender));
        sim.run_for(SimDuration::from_secs_f64(1.0));
        assert!(log.borrow().is_empty());
    }
}
