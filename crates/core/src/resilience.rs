//! Failure detection and graceful degradation.
//!
//! §IV expects "robustness to failure … as a normal operating regime":
//! the runtime should notice silent assets *before* a utility window
//! closes, and when the population genuinely cannot meet the mission
//! requirement it should shed load in a controlled order instead of
//! thrashing on repairs it cannot complete.
//!
//! * [`FailureDetector`] — a sim-time heartbeat detector over the report
//!   stream: a watched node that has been silent for longer than
//!   `suspicion_periods × report_period` is suspected. No wall clock
//!   anywhere; suspicion is a pure function of sim-time observations.
//! * [`DegradationLadder`] — a hysteresis ladder of requirement
//!   relaxations (shed redundancy → shed the last modality → shed
//!   coverage fraction), climbed only after `patience` consecutive bad
//!   windows and descended again after `patience` good ones.

use std::collections::BTreeMap;

use iobt_netsim::{SimDuration, SimTime};
use iobt_types::NodeId;

/// Sim-time heartbeat failure detector.
///
/// The runtime `watch`es every node expected to report, feeds every
/// delivered report in via [`FailureDetector::heard`], and asks for
/// [`FailureDetector::suspects`] at detector ticks. A node is suspected
/// when it has been silent for at least the suspicion threshold.
///
/// # Examples
///
/// ```
/// use iobt_core::resilience::FailureDetector;
/// use iobt_netsim::{SimDuration, SimTime};
/// use iobt_types::NodeId;
///
/// let period = SimDuration::from_secs_f64(2.0);
/// let mut det = FailureDetector::new(period, 3.0);
/// det.watch(NodeId::new(1), SimTime::ZERO);
/// assert!(det.suspects(SimTime::from_secs_f64(5.0)).is_empty());
/// let suspects = det.suspects(SimTime::from_secs_f64(6.5));
/// assert_eq!(suspects.len(), 1);
/// assert_eq!(suspects[0].0, NodeId::new(1));
/// ```
#[derive(Debug, Clone)]
pub struct FailureDetector {
    threshold: SimDuration,
    last_seen: BTreeMap<NodeId, SimTime>,
}

impl FailureDetector {
    /// Creates a detector: a node is suspected after
    /// `suspicion_periods × report_period` of silence.
    /// `suspicion_periods` is clamped to ≥ 1 (suspecting a node inside
    /// one report period would flag healthy jittered reporters).
    pub fn new(report_period: SimDuration, suspicion_periods: f64) -> Self {
        FailureDetector {
            threshold: SimDuration::from_secs_f64(
                report_period.as_secs_f64() * suspicion_periods.max(1.0),
            ),
            last_seen: BTreeMap::new(),
        }
    }

    /// The silence threshold after which a watched node is suspected.
    pub fn threshold(&self) -> SimDuration {
        self.threshold
    }

    /// Starts watching `node`, charging it as heard at `now` (a node
    /// gets a full threshold of grace before its first report is due).
    /// Watching an already-watched node keeps its existing deadline.
    pub fn watch(&mut self, node: NodeId, now: SimTime) {
        self.last_seen.entry(node).or_insert(now);
    }

    /// Stops watching `node` (it was deliberately released or replaced).
    pub fn unwatch(&mut self, node: NodeId) {
        self.last_seen.remove(&node);
    }

    /// Records a heartbeat: a report from `node` delivered at `at`.
    /// Unwatched senders are ignored; stale timestamps never move a
    /// deadline backwards.
    pub fn heard(&mut self, node: NodeId, at: SimTime) {
        if let Some(seen) = self.last_seen.get_mut(&node) {
            if at > *seen {
                *seen = at;
            }
        }
    }

    /// Number of nodes currently watched.
    pub fn watched(&self) -> usize {
        self.last_seen.len()
    }

    /// The watch table — every watched node with the time it was last
    /// heard, ascending node id. Exposed for mission checkpoints.
    pub fn entries(&self) -> Vec<(NodeId, SimTime)> {
        self.last_seen.iter().map(|(&n, &t)| (n, t)).collect()
    }

    /// Rebuilds a detector from checkpointed state: the exact silence
    /// threshold and the full watch table.
    pub fn from_checkpoint(threshold: SimDuration, entries: &[(NodeId, SimTime)]) -> Self {
        FailureDetector {
            threshold,
            last_seen: entries.iter().copied().collect(),
        }
    }

    /// Watched nodes silent for at least the threshold as of `now`,
    /// with their silence spans, in ascending node-id order.
    pub fn suspects(&self, now: SimTime) -> Vec<(NodeId, SimDuration)> {
        self.last_seen
            .iter()
            .filter_map(|(&node, &seen)| {
                let silent = now.saturating_since(seen);
                (silent >= self.threshold).then_some((node, silent))
            })
            .collect()
    }
}

/// What the ladder decided after observing one utility window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderStep {
    /// No change.
    Hold,
    /// Moved one level down the ladder (shed more).
    Shed,
    /// Moved one level back up (restored).
    Restore,
}

/// Highest (most degraded) ladder level.
pub const MAX_LADDER_LEVEL: usize = 3;

/// Graceful-degradation ladder with hysteresis.
///
/// Levels, in shedding order — each keeps the mission alive at reduced
/// ambition rather than abandoning coverage outright:
///
/// | level | action      | requirement change                          |
/// |-------|-------------|---------------------------------------------|
/// | 0     | —           | full mission requirement                    |
/// | 1     | `redundancy`| redundancy `k` drops to 1                   |
/// | 2     | `modality`  | the last required modality is shed          |
/// | 3     | `coverage`  | required coverage fraction × 0.6            |
///
/// The ladder sheds a level after `patience` consecutive windows with
/// utility below `shed_threshold`, and restores a level after
/// `patience` consecutive windows at or above `restore_threshold`; the
/// gap between the two thresholds is the hysteresis band that prevents
/// shed/restore thrash.
#[derive(Debug, Clone)]
pub struct DegradationLadder {
    level: usize,
    shed_threshold: f64,
    restore_threshold: f64,
    patience: u32,
    below: u32,
    above: u32,
}

impl DegradationLadder {
    /// Creates a ladder at level 0. `patience` is clamped to ≥ 1 and
    /// `restore_threshold` to ≥ `shed_threshold` (a crossed pair would
    /// shed and restore on the same window).
    pub fn new(shed_threshold: f64, restore_threshold: f64, patience: u32) -> Self {
        DegradationLadder {
            level: 0,
            shed_threshold,
            restore_threshold: restore_threshold.max(shed_threshold),
            patience: patience.max(1),
            below: 0,
            above: 0,
        }
    }

    /// Current level (0 = full requirement, [`MAX_LADDER_LEVEL`] = most
    /// degraded).
    pub fn level(&self) -> usize {
        self.level
    }

    /// The name of the load shed *at* `level` (what changed relative to
    /// `level - 1`); `"none"` for level 0.
    pub fn action(level: usize) -> &'static str {
        match level {
            0 => "none",
            1 => "redundancy",
            2 => "modality",
            _ => "coverage",
        }
    }

    /// The ladder's mutable state — `(level, below-streak, above-streak)`
    /// — for mission checkpoints. Thresholds and patience are rebuilt
    /// from configuration at resume, not checkpointed.
    pub fn counters(&self) -> (usize, u32, u32) {
        (self.level, self.below, self.above)
    }

    /// Overwrites the ladder's mutable state from a checkpoint. `level`
    /// is clamped to [`MAX_LADDER_LEVEL`] so a corrupted value cannot
    /// push the ladder off the end of the shedding table.
    pub fn restore_counters(&mut self, level: usize, below: u32, above: u32) {
        self.level = level.min(MAX_LADDER_LEVEL);
        self.below = below;
        self.above = above;
    }

    /// Observes one window's utility and possibly moves one level.
    pub fn observe(&mut self, utility: f64) -> LadderStep {
        if utility < self.shed_threshold {
            self.above = 0;
            if self.level < MAX_LADDER_LEVEL {
                self.below += 1;
                if self.below >= self.patience {
                    self.below = 0;
                    self.level += 1;
                    return LadderStep::Shed;
                }
            }
        } else if utility >= self.restore_threshold {
            self.below = 0;
            if self.level > 0 {
                self.above += 1;
                if self.above >= self.patience {
                    self.above = 0;
                    self.level -= 1;
                    return LadderStep::Restore;
                }
            }
        } else {
            // Inside the hysteresis band: hold position, reset streaks.
            self.below = 0;
            self.above = 0;
        }
        LadderStep::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn detector_suspects_only_after_threshold_of_silence() {
        let mut det = FailureDetector::new(SimDuration::from_secs_f64(2.0), 3.0);
        det.watch(NodeId::new(1), SimTime::ZERO);
        det.watch(NodeId::new(2), SimTime::ZERO);
        assert_eq!(det.threshold(), SimDuration::from_secs_f64(6.0));
        det.heard(NodeId::new(1), secs(4.0));
        // At t=7: node 2 silent 7s (suspect), node 1 silent 3s (fine).
        let suspects = det.suspects(secs(7.0));
        assert_eq!(suspects.len(), 1);
        assert_eq!(suspects[0].0, NodeId::new(2));
        assert_eq!(suspects[0].1, SimDuration::from_secs_f64(7.0));
    }

    #[test]
    fn detector_ignores_unwatched_and_stale_heartbeats() {
        let mut det = FailureDetector::new(SimDuration::from_secs_f64(1.0), 2.0);
        det.heard(NodeId::new(9), secs(1.0));
        assert_eq!(det.watched(), 0);
        det.watch(NodeId::new(1), secs(5.0));
        det.heard(NodeId::new(1), secs(3.0)); // stale: must not rewind
        assert!(det.suspects(secs(6.0)).is_empty());
        det.unwatch(NodeId::new(1));
        assert!(det.suspects(secs(100.0)).is_empty());
    }

    #[test]
    fn detector_rewatch_keeps_existing_deadline() {
        let mut det = FailureDetector::new(SimDuration::from_secs_f64(1.0), 1.0);
        det.watch(NodeId::new(1), SimTime::ZERO);
        det.watch(NodeId::new(1), secs(10.0)); // no-op
        assert_eq!(det.suspects(secs(2.0)).len(), 1);
    }

    #[test]
    fn suspicion_periods_below_one_clamp_up() {
        let det = FailureDetector::new(SimDuration::from_secs_f64(2.0), 0.25);
        assert_eq!(det.threshold(), SimDuration::from_secs_f64(2.0));
    }

    #[test]
    fn ladder_sheds_after_patience_and_restores_with_hysteresis() {
        let mut ladder = DegradationLadder::new(0.45, 0.85, 2);
        assert_eq!(ladder.observe(0.2), LadderStep::Hold); // streak 1
        assert_eq!(ladder.observe(0.2), LadderStep::Shed); // streak 2
        assert_eq!(ladder.level(), 1);
        // Mid-band utility holds and resets streaks.
        assert_eq!(ladder.observe(0.6), LadderStep::Hold);
        assert_eq!(ladder.observe(0.2), LadderStep::Hold);
        assert_eq!(ladder.observe(0.9), LadderStep::Hold);
        assert_eq!(ladder.observe(0.9), LadderStep::Restore);
        assert_eq!(ladder.level(), 0);
    }

    #[test]
    fn ladder_is_bounded_at_both_ends() {
        let mut ladder = DegradationLadder::new(0.5, 0.8, 1);
        for _ in 0..10 {
            ladder.observe(0.0);
        }
        assert_eq!(ladder.level(), MAX_LADDER_LEVEL);
        for _ in 0..10 {
            ladder.observe(1.0);
        }
        assert_eq!(ladder.level(), 0);
        assert_eq!(ladder.observe(1.0), LadderStep::Hold, "cannot restore past 0");
    }

    #[test]
    fn ladder_action_names_are_stable() {
        assert_eq!(DegradationLadder::action(0), "none");
        assert_eq!(DegradationLadder::action(1), "redundancy");
        assert_eq!(DegradationLadder::action(2), "modality");
        assert_eq!(DegradationLadder::action(3), "coverage");
    }
}
