//! The mission runtime: discovery → recruitment → synthesis → adaptive
//! execution, end to end over the simulator (paper Fig. 1).

use std::collections::BTreeSet;

use iobt_discovery::{
    recruit, AffiliationClassifier, DiscoveryTracker, EmissionModel, NaiveBayes, RecruitPolicy,
    TrackerConfig,
};
use iobt_netsim::{SimDuration, Simulator};
use iobt_synthesis::{assess, failure_probability, repair_with, AssuranceReport, CompositionProblem, CompositionResult, Solver};
use iobt_types::{NodeId, NodeSpec, TrustLedger};

use crate::behaviors::{new_report_log, CommandSink, SensorReporter};
use crate::scenario::{Disruption, Scenario};

/// Execution configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Total mission duration.
    pub duration: SimDuration,
    /// Utility sampling window.
    pub window: SimDuration,
    /// Sensor report period.
    pub report_period: SimDuration,
    /// Whether the runtime repairs the composition when utility drops
    /// (the paper's adaptive reflexes; `false` gives the static baseline).
    pub adaptive: bool,
    /// Utility threshold that triggers a repair.
    pub repair_threshold: f64,
    /// Coverage grid resolution (cells per side).
    pub grid: usize,
    /// Composition solver.
    pub solver: Solver,
    /// Drop recruited assets that cannot reach the command post over the
    /// initial connectivity graph (§III-B network composition: selecting a
    /// sensor that cannot report is wasted coverage).
    pub require_reachability: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            duration: SimDuration::from_secs_f64(120.0),
            window: SimDuration::from_secs_f64(10.0),
            report_period: SimDuration::from_secs_f64(2.0),
            adaptive: true,
            repair_threshold: 0.7,
            grid: 6,
            solver: Solver::Greedy,
            require_reachability: true,
        }
    }
}

/// Utility measured over one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStat {
    /// Window start, seconds.
    pub start_s: f64,
    /// Nodes expected to report (current selection size).
    pub expected: usize,
    /// Distinct selected nodes whose reports arrived.
    pub reporting: usize,
    /// `reporting / expected` (1.0 when nothing was expected).
    pub utility: f64,
}

/// A full end-state fingerprint of a mission run.
///
/// Captures everything observable about where a run ended — event
/// counters, per-node energy, utility, repairs, and the final selection —
/// so reproducibility tests can assert that two runs of the same scenario
/// and seed agree on *all* of it, not just a summary statistic. Built by
/// [`run_mission`] from the simulator's terminal state.
#[derive(Debug, Clone, PartialEq)]
pub struct EndStateDigest {
    /// Messages sent.
    pub sent: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages dropped (all causes).
    pub dropped: u64,
    /// Drops for lack of a route.
    pub dropped_no_route: u64,
    /// Drops lost on the channel.
    pub dropped_channel: u64,
    /// Drops because an endpoint was dead.
    pub dropped_dead: u64,
    /// Drops because an endpoint was asleep.
    pub dropped_asleep: u64,
    /// Total energy drawn across the run, joules.
    pub energy_spent_j: f64,
    /// Remaining energy per node at mission end, ascending node id.
    pub node_energy_j: Vec<(NodeId, f64)>,
    /// Mean utility across windows.
    pub mean_utility: f64,
    /// Repairs performed.
    pub repairs: usize,
    /// Final selection (candidate indices), ascending.
    pub final_selection: Vec<usize>,
}

/// Full mission outcome.
#[derive(Debug, Clone)]
pub struct MissionReport {
    /// Assets admitted by recruitment.
    pub recruited: usize,
    /// Assets rejected as suspected red.
    pub rejected_red: usize,
    /// Recruited assets dropped because they could not reach the command
    /// post (only counted when `require_reachability` is on).
    pub unreachable: usize,
    /// Fraction of admitted assets that are truly red (ground truth).
    pub infiltration_rate: f64,
    /// The initial composition.
    pub composition: CompositionResult,
    /// Assurance prediction for the initial composition: probability of
    /// retaining ≥ 90% of the deployed coverage under trust-derived
    /// independent failures.
    pub assurance: AssuranceReport,
    /// Per-window utility trace.
    pub windows: Vec<WindowStat>,
    /// Repairs performed during execution.
    pub repairs: usize,
    /// Network delivery ratio across the run.
    pub delivery_ratio: f64,
    /// Mean end-to-end report latency in milliseconds.
    pub mean_latency_ms: f64,
    /// End-state fingerprint for reproducibility checks.
    pub digest: EndStateDigest,
}

impl MissionReport {
    /// Mean utility across windows.
    pub fn mean_utility(&self) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        self.windows.iter().map(|w| w.utility).sum::<f64>() / self.windows.len() as f64
    }

    /// Worst window utility.
    pub fn min_utility(&self) -> f64 {
        self.windows
            .iter()
            .map(|w| w.utility)
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }

    /// Mean utility over windows starting at or after `t_s` — used to
    /// measure post-disruption recovery.
    pub fn utility_after(&self, t_s: f64) -> f64 {
        let tail: Vec<f64> = self
            .windows
            .iter()
            .filter(|w| w.start_s >= t_s)
            .map(|w| w.utility)
            .collect();
        if tail.is_empty() {
            0.0
        } else {
            tail.iter().sum::<f64>() / tail.len() as f64
        }
    }
}

/// Runs the full pipeline on a scenario.
pub fn run_mission(scenario: &Scenario, config: &RunConfig) -> MissionReport {
    // ---- Phase 1: discovery (side-channel classification + tracking) ----
    let mut emissions = EmissionModel::new(scenario.seed ^ 0xD15C);
    let train = emissions.labelled_dataset(300);
    // lint: allow(panic) — labelled_dataset(300) emits 100 examples per class, so fit always succeeds
    let classifier = NaiveBayes::fit(&train).expect("balanced training set");
    let mut tracker = DiscoveryTracker::new(TrackerConfig::default());
    let mut ledger = TrustLedger::new();
    for node in scenario.catalog.iter() {
        // Red emitters camouflage as gray 10% of the time.
        let obs = emissions.observe_with_spoofing(node.affiliation(), 0.1);
        let posterior = classifier.posterior(&obs);
        tracker.observe(node.id(), 0.0, node.position(), posterior);
        // Second sighting sharpens most estimates (continuous discovery).
        let obs2 = emissions.observe_with_spoofing(node.affiliation(), 0.1);
        tracker.observe(node.id(), 1.0, node.position(), classifier.posterior(&obs2));
        let est = tracker
            .estimate(node.id())
            // lint: allow(panic) — observe() for this id ran two lines up, so the estimate exists
            .expect("just observed")
            .affiliation();
        ledger.enroll(node.id(), est);
    }

    // ---- Phase 2: recruitment ----
    let pool = recruit(
        &scenario.catalog,
        &tracker,
        &ledger,
        &RecruitPolicy::default(),
        2.0,
        TrackerConfig::default().presence_tau_s,
    );

    // ---- Phase 3: synthesis + assurance ----
    let mut specs: Vec<NodeSpec> = pool.admitted.iter().map(|a| a.spec.clone()).collect();
    let mut unreachable = 0usize;
    if config.require_reachability {
        // Build the initial connectivity graph once and keep only assets
        // with a route to the command post.
        let mut probe_sim = Simulator::builder(scenario.catalog.clone())
            .terrain(scenario.terrain.clone())
            .seed(scenario.seed)
            .build();
        let graph = probe_sim.connectivity();
        let before = specs.len();
        specs.retain(|spec| graph.route(spec.id(), scenario.command_post).is_some());
        unreachable = before - specs.len();
    }
    let problem = CompositionProblem::from_mission(&scenario.mission, &specs, config.grid);
    let composition = config.solver.solve(&problem);
    let failure_probs: Vec<f64> = composition
        .selected
        .iter()
        .map(|&i| failure_probability(problem.candidates[i].trust, 0.05, 0.3))
        .collect();
    // Assurance is quantified against what was actually deployed: success
    // means retaining >= 90% of the composition's achieved coverage under
    // failures. (The mission's own target may be infeasible for the
    // population, which would make the probability degenerately zero.)
    let mut assurance_problem = problem.clone();
    assurance_problem.required_fraction = composition.coverage * 0.9;
    let assurance = assess(
        &assurance_problem,
        &composition.selected,
        &failure_probs,
        2_000,
        scenario.seed ^ 0xA55E,
    );

    // ---- Phase 4: adaptive execution over the simulator ----
    let mut builder = Simulator::builder(scenario.catalog.clone())
        .terrain(scenario.terrain.clone())
        .seed(scenario.seed);
    for j in &scenario.jammers {
        builder = builder.jammer(*j);
    }
    let mut sim = builder.build();
    for d in &scenario.disruptions {
        match *d {
            Disruption::JammerOn { at, index } => sim.schedule_jammer(at, index, true),
            Disruption::NodeLoss { at, node } => sim.schedule_node_down(at, node),
        }
    }
    let log = new_report_log();
    sim.set_behavior(
        scenario.command_post,
        Box::new(CommandSink::new(log.clone())),
    );
    let mut selection = composition.selected.clone();
    let mut active_reporters: BTreeSet<NodeId> = BTreeSet::new();
    let mut current = composition.clone();
    attach_reporters(
        &mut sim,
        &problem,
        &selection,
        &mut active_reporters,
        scenario,
        config,
    );

    let mut windows = Vec::new();
    let mut repairs = 0usize;
    let total_windows =
        (config.duration.as_secs_f64() / config.window.as_secs_f64()).ceil() as usize;
    let mut failed_ever: BTreeSet<NodeId> = BTreeSet::new();
    for w in 0..total_windows {
        let start_s = sim.now().as_secs_f64();
        let mark = log.borrow().len();
        sim.run_for(config.window);
        let delivered: BTreeSet<NodeId> = log.borrow()[mark..].iter().map(|r| r.from).collect();
        let expected = selection.len();
        let reporting = selection
            .iter()
            .filter(|&&i| delivered.contains(&problem.candidates[i].id))
            .count();
        let utility = if expected == 0 {
            1.0
        } else {
            reporting as f64 / expected as f64
        };
        windows.push(WindowStat {
            start_s,
            expected,
            reporting,
            utility,
        });
        // Reflex: if too few selected assets are heard from, treat the
        // silent ones as lost and re-cover their pairs from spares.
        if config.adaptive && utility < config.repair_threshold && w + 1 < total_windows {
            for &i in &selection {
                let id = problem.candidates[i].id;
                if !delivered.contains(&id) {
                    failed_ever.insert(id);
                }
            }
            let repaired = repair_with(&problem, &current, &failed_ever, config.solver);
            if repaired.selected != selection {
                repairs += 1;
                selection = repaired.selected.clone();
                current = CompositionResult {
                    selected: repaired.selected,
                    coverage: repaired.coverage,
                    cost: problem.cost(&selection),
                    satisfied: repaired.satisfied,
                    elapsed_ms: repaired.elapsed_ms,
                };
                attach_reporters(
                    &mut sim,
                    &problem,
                    &selection,
                    &mut active_reporters,
                    scenario,
                    config,
                );
            }
        }
    }
    let mean_utility = if windows.is_empty() {
        0.0
    } else {
        windows.iter().map(|w| w.utility).sum::<f64>() / windows.len() as f64
    };
    let mut final_selection = selection.clone();
    final_selection.sort_unstable();
    let node_energy_j: Vec<(NodeId, f64)> = scenario
        .catalog
        .ids()
        .into_iter()
        .filter_map(|id| sim.energy(id).map(|e| (id, e.remaining_j())))
        .collect();
    let stats = sim.stats();
    let digest = EndStateDigest {
        sent: stats.sent,
        delivered: stats.delivered,
        dropped: stats.dropped,
        dropped_no_route: stats.dropped_no_route,
        dropped_channel: stats.dropped_channel,
        dropped_dead: stats.dropped_dead,
        dropped_asleep: stats.dropped_asleep,
        energy_spent_j: stats.energy_spent_j,
        node_energy_j,
        mean_utility,
        repairs,
        final_selection,
    };
    MissionReport {
        recruited: pool.admitted.len(),
        rejected_red: pool.rejected_red.len(),
        unreachable,
        infiltration_rate: pool.infiltration_rate(),
        composition,
        assurance,
        windows,
        repairs,
        delivery_ratio: stats.delivery_ratio(),
        mean_latency_ms: stats.latency_ms.mean(),
        digest,
    }
}

fn attach_reporters(
    sim: &mut Simulator,
    problem: &CompositionProblem,
    selection: &[usize],
    active: &mut BTreeSet<NodeId>,
    scenario: &Scenario,
    config: &RunConfig,
) {
    for &i in selection {
        let id = problem.candidates[i].id;
        if active.insert(id) {
            sim.set_behavior(
                id,
                Box::new(SensorReporter::new(
                    scenario.command_post,
                    config.report_period,
                    128,
                )),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{persistent_surveillance, urban_evacuation};

    fn quick_config() -> RunConfig {
        RunConfig {
            duration: SimDuration::from_secs_f64(60.0),
            window: SimDuration::from_secs_f64(10.0),
            ..RunConfig::default()
        }
    }

    #[test]
    fn full_pipeline_produces_a_coherent_report() {
        let scenario = persistent_surveillance(120, 5);
        let report = run_mission(&scenario, &quick_config());
        assert!(report.recruited > 0, "someone must be recruited");
        assert!(report.composition.coverage > 0.0);
        assert_eq!(report.windows.len(), 6);
        assert!(report.mean_utility() > 0.0, "reports must flow");
        assert!((0.0..=1.0).contains(&report.infiltration_rate));
        assert!(report.assurance.expected_coverage > 0.0);
    }

    #[test]
    fn adaptive_runtime_repairs_after_attrition() {
        let scenario = persistent_surveillance(150, 7);
        let adaptive = run_mission(&scenario, &quick_config());
        let static_run = run_mission(
            &scenario,
            &RunConfig {
                adaptive: false,
                ..quick_config()
            },
        );
        // The adaptive run may repair; the static one never does.
        assert_eq!(static_run.repairs, 0);
        assert!(
            adaptive.utility_after(50.0) >= static_run.utility_after(50.0) - 0.1,
            "adaptive {} vs static {}",
            adaptive.utility_after(50.0),
            static_run.utility_after(50.0)
        );
    }

    #[test]
    fn jamming_scenario_runs_to_completion() {
        let scenario = urban_evacuation(100, 3);
        let report = run_mission(&scenario, &quick_config());
        assert_eq!(report.windows.len(), 6);
        // The jammer fires at t=60 which is the end of this short run, so
        // utility should be healthy throughout.
        assert!(report.mean_utility() > 0.3, "{}", report.mean_utility());
    }

    #[test]
    fn runs_are_deterministic() {
        let scenario = persistent_surveillance(80, 11);
        let cfg = quick_config();
        let a = run_mission(&scenario, &cfg);
        let b = run_mission(&scenario, &cfg);
        assert_eq!(a.windows, b.windows);
        assert_eq!(a.repairs, b.repairs);
        assert_eq!(a.recruited, b.recruited);
    }
}
