//! The mission runtime: discovery → recruitment → synthesis → adaptive
//! execution, end to end over the simulator (paper Fig. 1).
//!
//! Execution is exposed at two granularities: [`run_mission`] runs a
//! scenario start to finish, and [`MissionRunner`] steps it one utility
//! window at a time so callers can checkpoint between windows (see
//! `iobt-ckpt` and [`MissionRunner::save`]).

use std::collections::BTreeSet;
use std::fmt;
use std::time::Instant;

use iobt_discovery::{
    recruit, AffiliationClassifier, DiscoveryTracker, EmissionModel, NaiveBayes, RecruitPolicy,
    TrackerConfig,
};
use iobt_netsim::{SimDuration, Simulator};
use iobt_obs::{Recorder, TraceEvent};
use iobt_synthesis::{assess, failure_probability, repair_with, AssuranceReport, CompositionProblem, CompositionResult, Solver};
use iobt_types::{Mission, NodeId, NodeSpec, TrustLedger};

use crate::behaviors::{
    new_report_log, new_task_board, CommandSink, ReportLog, SensorReporter, TaskBoard,
    TaskingSink, TaskingStats,
};
use crate::resilience::{DegradationLadder, FailureDetector, LadderStep};
use crate::scenario::{Disruption, Scenario};

/// Execution configuration.
///
/// Construct with [`RunConfig::builder`]; the struct is `#[non_exhaustive]`
/// so it can grow fields without breaking downstream crates.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RunConfig {
    /// Total mission duration.
    pub duration: SimDuration,
    /// Utility sampling window.
    pub window: SimDuration,
    /// Sensor report period.
    pub report_period: SimDuration,
    /// Whether the runtime repairs the composition when utility drops
    /// (the paper's adaptive reflexes; `false` gives the static baseline).
    pub adaptive: bool,
    /// Utility threshold that triggers a repair.
    pub repair_threshold: f64,
    /// Coverage grid resolution (cells per side).
    pub grid: usize,
    /// Composition solver.
    pub solver: Solver,
    /// Drop recruited assets that cannot reach the command post over the
    /// initial connectivity graph (§III-B network composition: selecting a
    /// sensor that cannot report is wasted coverage).
    pub require_reachability: bool,
    /// Run the sim-time heartbeat failure detector between windows and
    /// repair as soon as nodes are suspected, instead of waiting for the
    /// window to close (requires `adaptive`). Off by default.
    pub early_repair: bool,
    /// Detector ticks per utility window when `early_repair` is on.
    pub detector_ticks: u32,
    /// A watched node is suspected after this many report periods of
    /// silence.
    pub suspicion_periods: f64,
    /// Shed mission requirements down the graceful-degradation ladder
    /// when utility stays critically low, and restore them when it
    /// recovers (requires `adaptive`). Off by default.
    pub degradation_ladder: bool,
    /// Utility below this for `ladder_patience` consecutive windows
    /// sheds one ladder level.
    pub shed_threshold: f64,
    /// Utility at or above this for `ladder_patience` consecutive
    /// windows restores one ladder level.
    pub restore_threshold: f64,
    /// Consecutive windows required before the ladder moves.
    pub ladder_patience: u32,
    /// Disseminate task assignments as acknowledged messages with
    /// bounded deterministic retries, instead of instantaneous
    /// out-of-band activation. Off by default.
    pub acked_tasking: bool,
    /// Maximum task transmission attempts per assignment.
    pub task_attempts: u32,
    /// Base retry delay for task dissemination; attempt `k` backs off
    /// `task_retry_base × 2^(k-1)`.
    pub task_retry_base: SimDuration,
    /// Observability recorder threaded through the whole pipeline
    /// (simulator, solver, repair reflex). Disabled by default.
    pub recorder: Recorder,
    /// Run the network simulator on its legacy reference path
    /// (one-event-at-a-time loop, per-query routing, full graph rebuild
    /// on every invalidation) instead of the batched/incremental fast
    /// path. Both paths are bit-identical by contract; this flag exists
    /// so equivalence tests can hold the oracle and the optimized run
    /// side by side in one process. Off by default.
    pub reference_mode: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            duration: SimDuration::from_secs_f64(120.0),
            window: SimDuration::from_secs_f64(10.0),
            report_period: SimDuration::from_secs_f64(2.0),
            adaptive: true,
            repair_threshold: 0.7,
            grid: 6,
            solver: Solver::Greedy,
            require_reachability: true,
            early_repair: false,
            detector_ticks: 4,
            suspicion_periods: 3.0,
            degradation_ladder: false,
            shed_threshold: 0.45,
            restore_threshold: 0.85,
            ladder_patience: 2,
            acked_tasking: false,
            task_attempts: 4,
            task_retry_base: SimDuration::from_millis(250),
            recorder: Recorder::disabled(),
            reference_mode: false,
        }
    }
}

impl RunConfig {
    /// Starts a builder from the default configuration.
    pub fn builder() -> RunConfigBuilder {
        RunConfigBuilder {
            config: RunConfig::default(),
        }
    }
}

/// Why a [`RunConfigBuilder`] refused to produce a [`RunConfig`].
///
/// Each variant names a configuration that would silently produce a
/// degenerate run (zero windows, a window that never closes, a
/// threshold no utility can ever cross).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum RunConfigError {
    /// The utility window is zero: the window loop would never advance.
    ZeroWindow,
    /// The window is longer than the whole mission: not even one full
    /// window would close.
    WindowExceedsDuration {
        /// Configured window.
        window: SimDuration,
        /// Configured mission duration.
        duration: SimDuration,
    },
    /// A utility threshold lies outside `[0, 1]`, where utility lives.
    ThresholdOutOfRange {
        /// Which threshold field was rejected.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for RunConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunConfigError::ZeroWindow => {
                write!(f, "utility window must be positive")
            }
            RunConfigError::WindowExceedsDuration { window, duration } => write!(
                f,
                "window ({:.3} s) exceeds mission duration ({:.3} s)",
                window.as_secs_f64(),
                duration.as_secs_f64()
            ),
            RunConfigError::ThresholdOutOfRange { field, value } => {
                write!(f, "{field} = {value} is outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for RunConfigError {}

/// Builder for [`RunConfig`] (the supported construction path now that the
/// struct is `#[non_exhaustive]`).
///
/// [`RunConfigBuilder::build`] validates the configuration and returns a
/// typed [`RunConfigError`] for settings that would produce a degenerate
/// run.
///
/// ```
/// use iobt_core::runtime::RunConfig;
/// use iobt_netsim::SimDuration;
///
/// let cfg = RunConfig::builder()
///     .duration(SimDuration::from_secs_f64(60.0))
///     .adaptive(false)
///     .build()
///     .expect("valid configuration");
/// assert!(!cfg.adaptive);
///
/// let err = RunConfig::builder().window(SimDuration::ZERO).build();
/// assert!(err.is_err());
/// ```
#[derive(Debug, Clone)]
pub struct RunConfigBuilder {
    config: RunConfig,
}

impl RunConfigBuilder {
    /// Sets the total mission duration.
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.config.duration = duration;
        self
    }

    /// Sets the utility sampling window.
    pub fn window(mut self, window: SimDuration) -> Self {
        self.config.window = window;
        self
    }

    /// Sets the sensor report period.
    pub fn report_period(mut self, period: SimDuration) -> Self {
        self.config.report_period = period;
        self
    }

    /// Enables or disables the repair reflex.
    pub fn adaptive(mut self, adaptive: bool) -> Self {
        self.config.adaptive = adaptive;
        self
    }

    /// Sets the utility threshold that triggers a repair.
    pub fn repair_threshold(mut self, threshold: f64) -> Self {
        self.config.repair_threshold = threshold;
        self
    }

    /// Sets the coverage grid resolution (cells per side).
    pub fn grid(mut self, grid: usize) -> Self {
        self.config.grid = grid;
        self
    }

    /// Sets the composition solver.
    pub fn solver(mut self, solver: Solver) -> Self {
        self.config.solver = solver;
        self
    }

    /// Enables or disables the reachability filter on recruited assets.
    pub fn require_reachability(mut self, require: bool) -> Self {
        self.config.require_reachability = require;
        self
    }

    /// Enables or disables between-window failure detection and early
    /// repair (active only when `adaptive` is also on).
    pub fn early_repair(mut self, enable: bool) -> Self {
        self.config.early_repair = enable;
        self
    }

    /// Sets the number of detector ticks per utility window.
    pub fn detector_ticks(mut self, ticks: u32) -> Self {
        self.config.detector_ticks = ticks;
        self
    }

    /// Sets the suspicion threshold in report periods.
    pub fn suspicion_periods(mut self, periods: f64) -> Self {
        self.config.suspicion_periods = periods;
        self
    }

    /// Enables or disables the graceful-degradation ladder (active only
    /// when `adaptive` is also on).
    pub fn degradation_ladder(mut self, enable: bool) -> Self {
        self.config.degradation_ladder = enable;
        self
    }

    /// Sets the ladder's shed threshold.
    pub fn shed_threshold(mut self, threshold: f64) -> Self {
        self.config.shed_threshold = threshold;
        self
    }

    /// Sets the ladder's restore threshold.
    pub fn restore_threshold(mut self, threshold: f64) -> Self {
        self.config.restore_threshold = threshold;
        self
    }

    /// Sets how many consecutive windows the ladder waits before moving.
    pub fn ladder_patience(mut self, patience: u32) -> Self {
        self.config.ladder_patience = patience;
        self
    }

    /// Enables or disables acknowledged task dissemination.
    pub fn acked_tasking(mut self, enable: bool) -> Self {
        self.config.acked_tasking = enable;
        self
    }

    /// Sets the task transmission attempt cap.
    pub fn task_attempts(mut self, attempts: u32) -> Self {
        self.config.task_attempts = attempts;
        self
    }

    /// Sets the base retry delay for task dissemination.
    pub fn task_retry_base(mut self, base: SimDuration) -> Self {
        self.config.task_retry_base = base;
        self
    }

    /// Attaches an observability recorder.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.config.recorder = recorder;
        self
    }

    /// Runs the simulator on its legacy reference path (the oracle for
    /// batched/incremental equivalence tests).
    pub fn reference_mode(mut self, enable: bool) -> Self {
        self.config.reference_mode = enable;
        self
    }

    /// Validates and finishes the builder.
    ///
    /// # Errors
    ///
    /// * [`RunConfigError::ZeroWindow`] — the utility window is zero;
    /// * [`RunConfigError::WindowExceedsDuration`] — the window is
    ///   longer than the mission;
    /// * [`RunConfigError::ThresholdOutOfRange`] — `repair_threshold`,
    ///   `shed_threshold` or `restore_threshold` lies outside `[0, 1]`
    ///   (including NaN).
    pub fn build(self) -> Result<RunConfig, RunConfigError> {
        let c = &self.config;
        if c.window.as_micros() == 0 {
            return Err(RunConfigError::ZeroWindow);
        }
        if c.window > c.duration {
            return Err(RunConfigError::WindowExceedsDuration {
                window: c.window,
                duration: c.duration,
            });
        }
        for (field, value) in [
            ("repair_threshold", c.repair_threshold),
            ("shed_threshold", c.shed_threshold),
            ("restore_threshold", c.restore_threshold),
        ] {
            if !(0.0..=1.0).contains(&value) {
                return Err(RunConfigError::ThresholdOutOfRange { field, value });
            }
        }
        Ok(self.config)
    }
}

/// The `Send` half of a [`RunConfig`]: every execution parameter except
/// the [`Recorder`] handle.
///
/// A `Recorder` is deliberately *not* `Send` (it is an `Rc` over shared
/// sinks — see `iobt-obs`), which makes a whole `RunConfig` thread-bound.
/// Schedulers like `iobt-fleet` that move mission work between worker
/// threads split the config with [`RunConfig::into_portable`], ship this
/// carrier across, and rebuild a full config on the destination thread
/// with [`PortableRunConfig::into_config`], attaching a recorder that
/// lives on that thread.
///
/// The split/rebuild round trip is exact: rebuilding with the original
/// recorder yields a config equivalent to the one that was split.
#[derive(Debug, Clone, PartialEq)]
pub struct PortableRunConfig {
    pub(crate) duration: SimDuration,
    pub(crate) window: SimDuration,
    pub(crate) report_period: SimDuration,
    pub(crate) adaptive: bool,
    pub(crate) repair_threshold: f64,
    pub(crate) grid: usize,
    pub(crate) solver: Solver,
    pub(crate) require_reachability: bool,
    pub(crate) early_repair: bool,
    pub(crate) detector_ticks: u32,
    pub(crate) suspicion_periods: f64,
    pub(crate) degradation_ladder: bool,
    pub(crate) shed_threshold: f64,
    pub(crate) restore_threshold: f64,
    pub(crate) ladder_patience: u32,
    pub(crate) acked_tasking: bool,
    pub(crate) task_attempts: u32,
    pub(crate) task_retry_base: SimDuration,
    pub(crate) reference_mode: bool,
}

// The whole point of the carrier: it must stay `Send` even as `RunConfig`
// grows fields. A thread-bound field mistakenly carried over would surface
// here as a compile error rather than in downstream crates.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<PortableRunConfig>();
};

impl RunConfig {
    /// Splits this config into its thread-portable half and the recorder
    /// handle (the only field that cannot cross threads).
    pub fn into_portable(self) -> (PortableRunConfig, Recorder) {
        // Exhaustive destructure on purpose: a field added to `RunConfig`
        // must be consciously routed here (portable) or declared
        // thread-bound, never silently dropped.
        let RunConfig {
            duration,
            window,
            report_period,
            adaptive,
            repair_threshold,
            grid,
            solver,
            require_reachability,
            early_repair,
            detector_ticks,
            suspicion_periods,
            degradation_ladder,
            shed_threshold,
            restore_threshold,
            ladder_patience,
            acked_tasking,
            task_attempts,
            task_retry_base,
            recorder,
            reference_mode,
        } = self;
        (
            PortableRunConfig {
                duration,
                window,
                report_period,
                adaptive,
                repair_threshold,
                grid,
                solver,
                require_reachability,
                early_repair,
                detector_ticks,
                suspicion_periods,
                degradation_ladder,
                shed_threshold,
                restore_threshold,
                ladder_patience,
                acked_tasking,
                task_attempts,
                task_retry_base,
                reference_mode,
            },
            recorder,
        )
    }
}

impl PortableRunConfig {
    /// Rebuilds a full [`RunConfig`] on the current thread, attaching
    /// `recorder` (pass [`Recorder::disabled`] to run silent).
    pub fn into_config(self, recorder: Recorder) -> RunConfig {
        let PortableRunConfig {
            duration,
            window,
            report_period,
            adaptive,
            repair_threshold,
            grid,
            solver,
            require_reachability,
            early_repair,
            detector_ticks,
            suspicion_periods,
            degradation_ladder,
            shed_threshold,
            restore_threshold,
            ladder_patience,
            acked_tasking,
            task_attempts,
            task_retry_base,
            reference_mode,
        } = self;
        RunConfig {
            duration,
            window,
            report_period,
            adaptive,
            repair_threshold,
            grid,
            solver,
            require_reachability,
            early_repair,
            detector_ticks,
            suspicion_periods,
            degradation_ladder,
            shed_threshold,
            restore_threshold,
            ladder_patience,
            acked_tasking,
            task_attempts,
            task_retry_base,
            recorder,
            reference_mode,
        }
    }
}

/// Utility measured over one window.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct WindowStat {
    /// Window start, seconds.
    pub start_s: f64,
    /// Nodes expected to report (current selection size).
    pub expected: usize,
    /// Distinct selected nodes whose reports arrived.
    pub reporting: usize,
    /// `reporting / expected` (1.0 when nothing was expected).
    pub utility: f64,
}

/// What one [`MissionRunner::step_window`] call did.
///
/// Replaces the old bare `Option<WindowStat>` progress signal so callers —
/// schedulers in particular — branch on meaning rather than on `Option`
/// combinators. `#[non_exhaustive]` so further outcomes (e.g. a yield
/// point finer than a window) can be added without breaking matches that
/// already handle the two fundamental cases.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum StepOutcome {
    /// One utility window executed and closed.
    WindowClosed {
        /// Zero-based index of the window that just closed.
        window: usize,
        /// The utility measured over it.
        stats: WindowStat,
    },
    /// Every window had already executed; nothing ran. The runner is at a
    /// window boundary and [`MissionRunner::finish`] will produce the
    /// report.
    Finished,
}

impl StepOutcome {
    /// The closed window's stats, or `None` if the mission was already
    /// finished. The bridge for callers that only care about the
    /// measurement (and for tests that `expect` a window to run).
    pub fn window_stat(self) -> Option<WindowStat> {
        match self {
            StepOutcome::WindowClosed { stats, .. } => Some(stats),
            StepOutcome::Finished => None,
        }
    }

    /// `true` when the mission had no window left to run.
    pub fn is_finished(self) -> bool {
        matches!(self, StepOutcome::Finished)
    }
}

/// A full end-state fingerprint of a mission run.
///
/// Captures everything observable about where a run ended — event
/// counters, per-node energy, utility, repairs, and the final selection —
/// so reproducibility tests can assert that two runs of the same scenario
/// and seed agree on *all* of it, not just a summary statistic. Built by
/// [`run_mission`] from the simulator's terminal state.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct EndStateDigest {
    /// Messages sent.
    pub sent: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages dropped (all causes).
    pub dropped: u64,
    /// Drops for lack of a route.
    pub dropped_no_route: u64,
    /// Drops lost on the channel.
    pub dropped_channel: u64,
    /// Drops because an endpoint was dead.
    pub dropped_dead: u64,
    /// Drops because an endpoint was asleep.
    pub dropped_asleep: u64,
    /// MAC retransmissions across all hops.
    pub retransmits: u64,
    /// Messages tampered by compromised relays.
    pub tampered: u64,
    /// Total energy drawn across the run, joules.
    pub energy_spent_j: f64,
    /// Remaining energy per node at mission end, ascending node id.
    pub node_energy_j: Vec<(NodeId, f64)>,
    /// Mean utility across windows.
    pub mean_utility: f64,
    /// Repairs performed.
    pub repairs: usize,
    /// Final selection (candidate indices), ascending.
    pub final_selection: Vec<usize>,
    /// Resilience counters (suspicions, early repairs, ladder moves,
    /// tasking retries) — part of the digest so same-seed runs must
    /// agree on the whole reaction history, not just the outcome.
    pub resilience: ResilienceReport,
}

/// Counters from the failure-detection / graceful-degradation /
/// acked-tasking reaction layer, for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ResilienceReport {
    /// Nodes the heartbeat detector suspected (and handed to repair).
    pub suspected: u64,
    /// Repairs applied from a detector tick rather than a window close.
    pub early_repairs: u64,
    /// Ladder levels shed.
    pub sheds: u64,
    /// Ladder levels restored.
    pub restores: u64,
    /// Ladder level at mission end (0 = full requirement).
    pub final_ladder_level: u64,
    /// Acked task dissemination counters (all zero unless
    /// `acked_tasking` is on).
    pub tasking: TaskingStats,
}

/// Wall-clock timings measured while running a mission.
///
/// Deliberately separated from [`EndStateDigest`] (and every other report
/// field): wall-clock duration varies run to run on the same seed, so it
/// must never participate in determinism checks. Reporting only. For the
/// same reason it is *not* checkpointed — a resumed run reports only the
/// wall-clock it spent itself.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[non_exhaustive]
pub struct WallClockReport {
    /// Wall-clock time spent in the initial composition solve, ms.
    pub solve_ms: f64,
    /// Cumulative wall-clock time spent in repair solves, ms.
    pub repair_ms: f64,
}

/// Full mission outcome.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct MissionReport {
    /// Assets admitted by recruitment.
    pub recruited: usize,
    /// Assets rejected as suspected red.
    pub rejected_red: usize,
    /// Recruited assets dropped because they could not reach the command
    /// post (only counted when `require_reachability` is on).
    pub unreachable: usize,
    /// Fraction of admitted assets that are truly red (ground truth).
    pub infiltration_rate: f64,
    /// The initial composition.
    pub composition: CompositionResult,
    /// Assurance prediction for the initial composition: probability of
    /// retaining ≥ 90% of the deployed coverage under trust-derived
    /// independent failures.
    pub assurance: AssuranceReport,
    /// Per-window utility trace.
    pub windows: Vec<WindowStat>,
    /// Repairs performed during execution.
    pub repairs: usize,
    /// Network delivery ratio across the run.
    pub delivery_ratio: f64,
    /// Mean end-to-end report latency in milliseconds.
    pub mean_latency_ms: f64,
    /// End-state fingerprint for reproducibility checks.
    pub digest: EndStateDigest,
    /// Wall-clock timings (solve/repair). Excluded from [`EndStateDigest`]
    /// and from all determinism comparisons.
    pub wall_clock: WallClockReport,
}

impl MissionReport {
    /// Mean utility across windows.
    pub fn mean_utility(&self) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        self.windows.iter().map(|w| w.utility).sum::<f64>() / self.windows.len() as f64
    }

    /// Worst window utility.
    pub fn min_utility(&self) -> f64 {
        self.windows
            .iter()
            .map(|w| w.utility)
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }

    /// Mean utility over windows starting at or after `t_s` — used to
    /// measure post-disruption recovery.
    pub fn utility_after(&self, t_s: f64) -> f64 {
        let tail: Vec<f64> = self
            .windows
            .iter()
            .filter(|w| w.start_s >= t_s)
            .map(|w| w.utility)
            .collect();
        if tail.is_empty() {
            0.0
        } else {
            tail.iter().sum::<f64>() / tail.len() as f64
        }
    }
}

/// Products of the pre-simulation pipeline — discovery, recruitment,
/// synthesis, assurance (phases 1–3 of the paper's Fig. 1 flow).
///
/// Everything here is a pure function of `(scenario, config)`, which is
/// what makes checkpoint resume cheap: instead of serialising the
/// composition problem and assurance report, resume recomputes them
/// (with a disabled recorder, so no trace events are duplicated).
pub(crate) struct Prologue {
    pub(crate) recruited: usize,
    pub(crate) rejected_red: usize,
    pub(crate) unreachable: usize,
    pub(crate) infiltration_rate: f64,
    pub(crate) composition: CompositionResult,
    pub(crate) assurance: AssuranceReport,
    pub(crate) specs: Vec<NodeSpec>,
    pub(crate) problem: CompositionProblem,
    pub(crate) solve_ms: f64,
}

/// Runs phases 1–3. `recorder` is the recorder that observes the
/// recruitment and solve events: the live recorder on a fresh run, a
/// disabled one at checkpoint resume (the restored recorder already
/// counted those events the first time).
pub(crate) fn prologue(scenario: &Scenario, config: &RunConfig, recorder: &Recorder) -> Prologue {
    // ---- Phase 1: discovery (side-channel classification + tracking) ----
    let mut emissions = EmissionModel::new(scenario.seed ^ 0xD15C);
    let train = emissions.labelled_dataset(300);
    // lint: allow(panic) — labelled_dataset(300) emits 100 examples per class, so fit always succeeds
    let classifier = NaiveBayes::fit(&train).expect("balanced training set");
    let mut tracker = DiscoveryTracker::new(TrackerConfig::default());
    let mut ledger = TrustLedger::new();
    for node in scenario.catalog.iter() {
        // Red emitters camouflage as gray 10% of the time.
        let obs = emissions.observe_with_spoofing(node.affiliation(), 0.1);
        let posterior = classifier.posterior(&obs);
        tracker.observe(node.id(), 0.0, node.position(), posterior);
        // Second sighting sharpens most estimates (continuous discovery).
        let obs2 = emissions.observe_with_spoofing(node.affiliation(), 0.1);
        tracker.observe(node.id(), 1.0, node.position(), classifier.posterior(&obs2));
        let est = tracker
            .estimate(node.id())
            // lint: allow(panic) — observe() for this id ran two lines up, so the estimate exists
            .expect("just observed")
            .affiliation();
        ledger.enroll(node.id(), est);
    }

    // ---- Phase 2: recruitment ----
    let pool = recruit(
        &scenario.catalog,
        &tracker,
        &ledger,
        &RecruitPolicy::default(),
        2.0,
        TrackerConfig::default().presence_tau_s,
    );
    recorder.record_at(
        0,
        TraceEvent::Recruitment {
            candidates: scenario.catalog.len() as u64,
            recruited: pool.admitted.len() as u64,
        },
    );

    // ---- Phase 3: synthesis + assurance ----
    let mut specs: Vec<NodeSpec> = pool.admitted.iter().map(|a| a.spec.clone()).collect();
    let mut unreachable = 0usize;
    if config.require_reachability {
        // Build the initial connectivity graph once and keep only assets
        // with a route to the command post.
        let mut probe_sim = Simulator::builder(scenario.catalog.clone())
            .terrain(scenario.terrain.clone())
            .seed(scenario.seed)
            .reference_mode(config.reference_mode)
            .build();
        let graph = probe_sim.connectivity();
        let before = specs.len();
        specs.retain(|spec| graph.route(spec.id(), scenario.command_post).is_some());
        unreachable = before - specs.len();
    }
    let problem = CompositionProblem::from_mission(&scenario.mission, &specs, config.grid);
    let solve_start = Instant::now(); // lint: allow(wall-clock) — reporting only; lands in WallClockReport, never in a decision or digest
    let composition = config.solver.solve_observed(&problem, recorder);
    let solve_ms = solve_start.elapsed().as_secs_f64() * 1_000.0;
    let failure_probs: Vec<f64> = composition
        .selected
        .iter()
        .map(|&i| failure_probability(problem.candidates[i].trust, 0.05, 0.3))
        .collect();
    // Assurance is quantified against what was actually deployed: success
    // means retaining >= 90% of the composition's achieved coverage under
    // failures. (The mission's own target may be infeasible for the
    // population, which would make the probability degenerately zero.)
    let mut assurance_problem = problem.clone();
    assurance_problem.required_fraction = composition.coverage * 0.9;
    let assurance = assess(
        &assurance_problem,
        &composition.selected,
        &failure_probs,
        2_000,
        scenario.seed ^ 0xA55E,
    );
    Prologue {
        recruited: pool.admitted.len(),
        rejected_red: pool.rejected_red.len(),
        unreachable,
        infiltration_rate: pool.infiltration_rate(),
        composition,
        assurance,
        specs,
        problem,
        solve_ms,
    }
}

/// Builds the phase-4 simulator over the scenario. `schedule_faults` is
/// `false` at checkpoint resume: the restored event queue already holds
/// every scheduled disruption and fault event, and scheduling them again
/// would both duplicate the queue entries and re-emit their
/// `FaultScheduled` trace records.
pub(crate) fn build_sim(
    scenario: &Scenario,
    config: &RunConfig,
    schedule_faults: bool,
) -> Simulator {
    let mut builder = Simulator::builder(scenario.catalog.clone())
        .terrain(scenario.terrain.clone())
        .seed(scenario.seed)
        .reference_mode(config.reference_mode)
        .recorder(config.recorder.clone());
    for j in &scenario.jammers {
        builder = builder.jammer(*j);
    }
    let mut sim = builder.build();
    if schedule_faults {
        for d in &scenario.disruptions {
            match *d {
                Disruption::JammerOn { at, index } => sim.schedule_jammer(at, index, true),
                Disruption::NodeLoss { at, node } => sim.schedule_node_down(at, node),
            }
        }
        scenario.fault_plan.schedule(&mut sim);
    }
    sim
}

/// Step-at-a-time mission execution with crash-safe checkpointing.
///
/// [`MissionRunner::new`] runs the pre-simulation pipeline (discovery,
/// recruitment, synthesis, assurance) and stands up the simulator;
/// [`MissionRunner::step_window`] then executes one utility window at a
/// time, which is exactly the granularity checkpoints are taken at:
/// call [`MissionRunner::save`] between steps, persist the payload with
/// `iobt_ckpt::CheckpointStore`, and after a crash rebuild the runner
/// with [`MissionRunner::resume`]. A resumed run continues the same
/// event, RNG and trace sequence as the uninterrupted run — same-seed
/// digests and metrics fingerprints match bit for bit.
///
/// [`run_mission`] is the convenience wrapper that steps a fresh runner
/// to completion.
pub struct MissionRunner {
    pub(crate) scenario: Scenario,
    pub(crate) config: RunConfig,
    // Phase 1–3 products (recomputed, never checkpointed).
    pub(crate) recruited: usize,
    pub(crate) rejected_red: usize,
    pub(crate) unreachable: usize,
    pub(crate) infiltration_rate: f64,
    pub(crate) composition: CompositionResult,
    pub(crate) assurance: AssuranceReport,
    pub(crate) specs: Vec<NodeSpec>,
    pub(crate) base_problem: CompositionProblem,
    pub(crate) problem: CompositionProblem,
    // Phase 4 (execution) state — everything below is checkpointed.
    pub(crate) sim: Simulator,
    pub(crate) log: ReportLog,
    pub(crate) board: TaskBoard,
    pub(crate) selection: Vec<usize>,
    pub(crate) current: CompositionResult,
    pub(crate) active_reporters: BTreeSet<NodeId>,
    pub(crate) windows: Vec<WindowStat>,
    pub(crate) repairs: usize,
    pub(crate) total_windows: usize,
    pub(crate) next_window: usize,
    pub(crate) failed_ever: BTreeSet<NodeId>,
    pub(crate) detector: FailureDetector,
    pub(crate) ladder: DegradationLadder,
    pub(crate) resilience: ResilienceReport,
    pub(crate) log_cursor: usize,
    // Wall-clock accounting (reporting only; never checkpointed).
    pub(crate) solve_ms: f64,
    pub(crate) repair_ms: f64,
}

impl fmt::Debug for MissionRunner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MissionRunner")
            .field("seed", &self.scenario.seed)
            .field("next_window", &self.next_window)
            .field("total_windows", &self.total_windows)
            .field("repairs", &self.repairs)
            .finish()
    }
}

impl MissionRunner {
    /// Runs phases 1–3 and stands up the execution simulator, ready to
    /// step window 0.
    pub fn new(scenario: &Scenario, config: &RunConfig) -> Self {
        let p = prologue(scenario, config, &config.recorder);
        let mut sim = build_sim(scenario, config, true);
        let log = new_report_log();
        let board = new_task_board();
        if config.acked_tasking {
            sim.set_behavior(
                scenario.command_post,
                Box::new(TaskingSink::new(
                    log.clone(),
                    board.clone(),
                    config.task_attempts,
                    config.task_retry_base,
                )),
            );
        } else {
            sim.set_behavior(
                scenario.command_post,
                Box::new(CommandSink::new(log.clone())),
            );
        }
        let selection = p.composition.selected.clone();
        let mut active_reporters: BTreeSet<NodeId> = BTreeSet::new();
        let current = p.composition.clone();
        attach_reporters(
            &mut sim,
            &p.problem,
            &selection,
            &mut active_reporters,
            scenario,
            config,
            &board,
        );
        let total_windows =
            (config.duration.as_secs_f64() / config.window.as_secs_f64()).ceil() as usize;
        let mut detector = FailureDetector::new(config.report_period, config.suspicion_periods);
        if config.adaptive && config.early_repair {
            for &i in &selection {
                detector.watch(p.problem.candidates[i].id, sim.now());
            }
        }
        let ladder = DegradationLadder::new(
            config.shed_threshold,
            config.restore_threshold,
            config.ladder_patience,
        );
        MissionRunner {
            scenario: scenario.clone(),
            config: config.clone(),
            recruited: p.recruited,
            rejected_red: p.rejected_red,
            unreachable: p.unreachable,
            infiltration_rate: p.infiltration_rate,
            composition: p.composition,
            assurance: p.assurance,
            specs: p.specs,
            base_problem: p.problem.clone(),
            problem: p.problem,
            sim,
            log,
            board,
            selection,
            current,
            active_reporters,
            windows: Vec::new(),
            repairs: 0,
            total_windows,
            next_window: 0,
            failed_ever: BTreeSet::new(),
            detector,
            ladder,
            resilience: ResilienceReport::default(),
            log_cursor: 0,
            solve_ms: p.solve_ms,
            repair_ms: 0.0,
        }
    }

    /// The index of the next window to execute (also: how many windows
    /// have completed).
    pub fn window_index(&self) -> usize {
        self.next_window
    }

    /// Total number of utility windows in the mission.
    pub fn total_windows(&self) -> usize {
        self.total_windows
    }

    /// Whether every window has executed.
    pub fn is_finished(&self) -> bool {
        self.next_window >= self.total_windows
    }

    /// Executes one utility window — simulation slices, heartbeat
    /// detection, the degradation ladder, and the repair reflex — and
    /// reports what happened as a [`StepOutcome`]:
    /// [`StepOutcome::WindowClosed`] with the window's index and stats, or
    /// [`StepOutcome::Finished`] when every window had already run.
    pub fn step_window(&mut self) -> StepOutcome {
        if self.is_finished() {
            return StepOutcome::Finished;
        }
        let w = self.next_window;
        let recorder = self.config.recorder.clone();
        let use_detector = self.config.adaptive && self.config.early_repair;
        let use_ladder = self.config.adaptive && self.config.degradation_ladder;
        let start_s = self.sim.now().as_secs_f64();
        let mark = self.log.borrow().len();
        let ticks = if use_detector {
            self.config.detector_ticks.max(1)
        } else {
            1
        };
        let tick_us = self.config.window.as_micros() / u64::from(ticks);
        for t in 0..ticks {
            // The last tick absorbs the division remainder so every
            // window spans exactly `config.window`.
            let slice = if t + 1 == ticks {
                SimDuration::from_micros(self.config.window.as_micros() - u64::from(t) * tick_us)
            } else {
                SimDuration::from_micros(tick_us)
            };
            self.sim.run_for(slice);
            if !use_detector || w + 1 >= self.total_windows {
                continue;
            }
            // Feed delivered reports to the detector as heartbeats.
            {
                let logref = self.log.borrow();
                for r in &logref[self.log_cursor..] {
                    self.detector.heard(r.from, r.at);
                }
                self.log_cursor = logref.len();
            }
            let now = self.sim.now();
            let new_suspects: Vec<(NodeId, SimDuration)> = self
                .detector
                .suspects(now)
                .into_iter()
                .filter(|(n, _)| !self.failed_ever.contains(n))
                .collect();
            if new_suspects.is_empty() {
                continue;
            }
            for &(node, silent) in &new_suspects {
                recorder.record(TraceEvent::Suspected {
                    node: node.raw(),
                    silent_us: silent.as_micros(),
                });
                self.failed_ever.insert(node);
                self.detector.unwatch(node);
            }
            self.resilience.suspected += new_suspects.len() as u64;
            recorder.record(TraceEvent::EarlyRepair {
                window: w as u64,
                suspects: new_suspects.len() as u64,
            });
            let repair_start = Instant::now(); // lint: allow(wall-clock) — reporting only; lands in WallClockReport, never in a decision or digest
            let repaired = repair_with(
                &self.problem,
                &self.current,
                &self.failed_ever,
                self.config.solver,
            );
            self.repair_ms += repair_start.elapsed().as_secs_f64() * 1_000.0;
            if repaired.selected != self.selection {
                self.repairs += 1;
                self.resilience.early_repairs += 1;
                self.selection = repaired.selected.clone();
                self.current = CompositionResult {
                    selected: repaired.selected,
                    coverage: repaired.coverage,
                    cost: self.problem.cost(&self.selection),
                    satisfied: repaired.satisfied,
                };
                attach_reporters(
                    &mut self.sim,
                    &self.problem,
                    &self.selection,
                    &mut self.active_reporters,
                    &self.scenario,
                    &self.config,
                    &self.board,
                );
                for &i in &self.selection {
                    self.detector.watch(self.problem.candidates[i].id, now);
                }
            }
        }
        let delivered: BTreeSet<NodeId> =
            self.log.borrow()[mark..].iter().map(|r| r.from).collect();
        let expected = self.selection.len();
        let reporting = self
            .selection
            .iter()
            .filter(|&&i| delivered.contains(&self.problem.candidates[i].id))
            .count();
        let utility = if expected == 0 {
            1.0
        } else {
            reporting as f64 / expected as f64
        };
        let stat = WindowStat {
            start_s,
            expected,
            reporting,
            utility,
        };
        self.windows.push(stat);
        recorder.record(TraceEvent::WindowClosed {
            window: w as u64,
            delivered: reporting as u64,
            utility,
        });
        // Graceful degradation: when utility stays critically low the
        // population cannot meet the requirement — shed it one rung at a
        // time (redundancy → last modality → coverage fraction) so the
        // reflex below repairs toward an achievable target instead of
        // thrashing; restore rungs when utility recovers.
        if use_ladder && w + 1 < self.total_windows {
            match self.ladder.observe(utility) {
                LadderStep::Shed => {
                    self.resilience.sheds += 1;
                    let level = self.ladder.level();
                    self.problem = degraded_problem(
                        &self.base_problem,
                        &self.scenario.mission,
                        &self.specs,
                        self.config.grid,
                        level,
                    );
                    recorder.record(TraceEvent::Shed {
                        level: level as u64,
                        action: DegradationLadder::action(level),
                    });
                }
                LadderStep::Restore => {
                    self.resilience.restores += 1;
                    let level = self.ladder.level();
                    self.problem = degraded_problem(
                        &self.base_problem,
                        &self.scenario.mission,
                        &self.specs,
                        self.config.grid,
                        level,
                    );
                    recorder.record(TraceEvent::Restore {
                        level: level as u64,
                        action: DegradationLadder::action(level + 1),
                    });
                }
                LadderStep::Hold => {}
            }
        }
        // Reflex: if too few selected assets are heard from, treat the
        // silent ones as lost and re-cover their pairs from spares.
        if self.config.adaptive
            && utility < self.config.repair_threshold
            && w + 1 < self.total_windows
        {
            recorder.record(TraceEvent::RepairTriggered {
                window: w as u64,
                utility,
                threshold: self.config.repair_threshold,
            });
            for &i in &self.selection {
                let id = self.problem.candidates[i].id;
                if !delivered.contains(&id) {
                    self.failed_ever.insert(id);
                }
            }
            let repair_start = Instant::now(); // lint: allow(wall-clock) — reporting only; lands in WallClockReport, never in a decision or digest
            let repaired = repair_with(
                &self.problem,
                &self.current,
                &self.failed_ever,
                self.config.solver,
            );
            self.repair_ms += repair_start.elapsed().as_secs_f64() * 1_000.0;
            if repaired.selected != self.selection {
                self.repairs += 1;
                let added = repaired
                    .selected
                    .iter()
                    .filter(|i| !self.selection.contains(i))
                    .count();
                recorder.record(TraceEvent::RepairApplied {
                    window: w as u64,
                    added: added as u64,
                    satisfied: repaired.satisfied,
                });
                self.selection = repaired.selected.clone();
                self.current = CompositionResult {
                    selected: repaired.selected,
                    coverage: repaired.coverage,
                    cost: self.problem.cost(&self.selection),
                    satisfied: repaired.satisfied,
                };
                attach_reporters(
                    &mut self.sim,
                    &self.problem,
                    &self.selection,
                    &mut self.active_reporters,
                    &self.scenario,
                    &self.config,
                    &self.board,
                );
                if use_detector {
                    let now = self.sim.now();
                    for &i in &self.selection {
                        self.detector.watch(self.problem.candidates[i].id, now);
                    }
                }
            }
        }
        self.next_window += 1;
        StepOutcome::WindowClosed { window: w, stats: stat }
    }

    /// Shared handle to the runner's task board. External tasking
    /// front-ends (e.g. the edge bridge's command ingress) queue
    /// assignments here; they enter the mission through the same acked
    /// [`TaskingSink`] dissemination path as runtime-originated tasks,
    /// so an externally injected task is retried, acked, and counted
    /// exactly like a native one.
    pub fn task_board(&self) -> TaskBoard {
        self.board.clone()
    }

    /// Builds the final [`MissionReport`] from the runner's state
    /// (normally called after stepping every window).
    pub fn finish(self) -> MissionReport {
        let mean_utility = if self.windows.is_empty() {
            0.0
        } else {
            self.windows.iter().map(|w| w.utility).sum::<f64>() / self.windows.len() as f64
        };
        let mut final_selection = self.selection.clone();
        final_selection.sort_unstable();
        let node_energy_j: Vec<(NodeId, f64)> = self
            .scenario
            .catalog
            .ids()
            .into_iter()
            .filter_map(|id| self.sim.energy(id).map(|e| (id, e.remaining_j())))
            .collect();
        let mut resilience = self.resilience;
        resilience.final_ladder_level = self.ladder.level() as u64;
        resilience.tasking = self.board.borrow().stats();
        let stats = self.sim.stats();
        let digest = EndStateDigest {
            sent: stats.sent,
            delivered: stats.delivered,
            dropped: stats.dropped,
            dropped_no_route: stats.dropped_no_route,
            dropped_channel: stats.dropped_channel,
            dropped_dead: stats.dropped_dead,
            dropped_asleep: stats.dropped_asleep,
            retransmits: stats.retransmits,
            tampered: stats.tampered,
            energy_spent_j: stats.energy_spent_j,
            node_energy_j,
            mean_utility,
            repairs: self.repairs,
            final_selection,
            resilience,
        };
        self.config.recorder.flush();
        MissionReport {
            recruited: self.recruited,
            rejected_red: self.rejected_red,
            unreachable: self.unreachable,
            infiltration_rate: self.infiltration_rate,
            composition: self.composition,
            assurance: self.assurance,
            windows: self.windows,
            repairs: self.repairs,
            delivery_ratio: stats.delivery_ratio(),
            mean_latency_ms: stats.latency_ms.mean(),
            digest,
            wall_clock: WallClockReport {
                solve_ms: self.solve_ms,
                repair_ms: self.repair_ms,
            },
        }
    }
}

/// Runs the full pipeline on a scenario: a fresh [`MissionRunner`]
/// stepped to completion.
pub fn run_mission(scenario: &Scenario, config: &RunConfig) -> MissionReport {
    let mut runner = MissionRunner::new(scenario, config);
    while let StepOutcome::WindowClosed { .. } = runner.step_window() {}
    runner.finish()
}

fn attach_reporters(
    sim: &mut Simulator,
    problem: &CompositionProblem,
    selection: &[usize],
    active: &mut BTreeSet<NodeId>,
    scenario: &Scenario,
    config: &RunConfig,
    board: &TaskBoard,
) {
    for &i in selection {
        let id = problem.candidates[i].id;
        if active.insert(id) {
            if config.acked_tasking {
                // Dormant until the command post's task message arrives
                // (and is acked); the board drives bounded retries.
                board.borrow_mut().assign(id);
                sim.set_behavior(
                    id,
                    Box::new(SensorReporter::dormant(
                        scenario.command_post,
                        config.report_period,
                        128,
                    )),
                );
            } else {
                sim.set_behavior(
                    id,
                    Box::new(SensorReporter::new(
                        scenario.command_post,
                        config.report_period,
                        128,
                    )),
                );
            }
        }
    }
}

/// Rebuilds the composition problem with the requirement relaxations of
/// ladder `level` applied to the pristine `base`:
///
/// * level ≥ 1 — redundancy drops to 1;
/// * level ≥ 2 — the mission's last required modality is shed (skipped
///   when only one modality is required — a sole modality is the
///   mission, not load);
/// * level ≥ 3 — required coverage fraction × 0.6.
///
/// Candidate order is trust-filtered from the same `specs` in the same
/// order, so selection indices remain valid across rebuilds.
pub(crate) fn degraded_problem(
    base: &CompositionProblem,
    mission: &Mission,
    specs: &[NodeSpec],
    grid: usize,
    level: usize,
) -> CompositionProblem {
    let modalities = mission.required_modalities();
    let mut problem = if level >= 2 && modalities.len() > 1 {
        let mut builder = Mission::builder(mission.id(), mission.kind())
            .area(mission.area())
            .coverage_fraction(mission.coverage_fraction())
            .resilience(mission.resilience())
            .min_trust(mission.min_trust())
            .priority(mission.priority());
        for &m in &modalities[..modalities.len() - 1] {
            builder = builder.require_modality(m);
        }
        CompositionProblem::from_mission(&builder.build(), specs, grid)
    } else {
        base.clone()
    };
    if level >= 1 {
        problem.redundancy = 1;
    }
    if level >= 3 {
        problem.required_fraction = base.required_fraction * 0.6;
    }
    problem
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{persistent_surveillance, urban_evacuation};

    fn quick_config() -> RunConfig {
        RunConfig {
            duration: SimDuration::from_secs_f64(60.0),
            window: SimDuration::from_secs_f64(10.0),
            ..RunConfig::default()
        }
    }

    #[test]
    fn full_pipeline_produces_a_coherent_report() {
        let scenario = persistent_surveillance(120, 5);
        let report = run_mission(&scenario, &quick_config());
        assert!(report.recruited > 0, "someone must be recruited");
        assert!(report.composition.coverage > 0.0);
        assert_eq!(report.windows.len(), 6);
        assert!(report.mean_utility() > 0.0, "reports must flow");
        assert!((0.0..=1.0).contains(&report.infiltration_rate));
        assert!(report.assurance.expected_coverage > 0.0);
    }

    #[test]
    fn adaptive_runtime_repairs_after_attrition() {
        let scenario = persistent_surveillance(150, 7);
        let adaptive = run_mission(&scenario, &quick_config());
        let static_run = run_mission(
            &scenario,
            &RunConfig {
                adaptive: false,
                ..quick_config()
            },
        );
        // The adaptive run may repair; the static one never does.
        assert_eq!(static_run.repairs, 0);
        assert!(
            adaptive.utility_after(50.0) >= static_run.utility_after(50.0) - 0.1,
            "adaptive {} vs static {}",
            adaptive.utility_after(50.0),
            static_run.utility_after(50.0)
        );
    }

    #[test]
    fn jamming_scenario_runs_to_completion() {
        let scenario = urban_evacuation(100, 3);
        let report = run_mission(&scenario, &quick_config());
        assert_eq!(report.windows.len(), 6);
        // The jammer fires at t=60 which is the end of this short run, so
        // utility should be healthy throughout.
        assert!(report.mean_utility() > 0.3, "{}", report.mean_utility());
    }

    #[test]
    fn builder_matches_struct_defaults() {
        let built = RunConfig::builder()
            .duration(SimDuration::from_secs_f64(60.0))
            .window(SimDuration::from_secs_f64(10.0))
            .build()
            .unwrap();
        let literal = quick_config();
        assert_eq!(built.duration, literal.duration);
        assert_eq!(built.window, literal.window);
        assert_eq!(built.adaptive, literal.adaptive);
        assert_eq!(built.repair_threshold, literal.repair_threshold);
        assert_eq!(built.grid, literal.grid);
        assert_eq!(built.solver, literal.solver);
        assert_eq!(built.require_reachability, literal.require_reachability);
    }

    #[test]
    fn builder_rejects_degenerate_configs() {
        assert!(matches!(
            RunConfig::builder().window(SimDuration::ZERO).build(),
            Err(RunConfigError::ZeroWindow)
        ));
        assert!(matches!(
            RunConfig::builder()
                .duration(SimDuration::from_secs_f64(5.0))
                .window(SimDuration::from_secs_f64(10.0))
                .build(),
            Err(RunConfigError::WindowExceedsDuration { .. })
        ));
        assert!(matches!(
            RunConfig::builder().repair_threshold(1.5).build(),
            Err(RunConfigError::ThresholdOutOfRange {
                field: "repair_threshold",
                ..
            })
        ));
        assert!(matches!(
            RunConfig::builder().shed_threshold(-0.1).build(),
            Err(RunConfigError::ThresholdOutOfRange {
                field: "shed_threshold",
                ..
            })
        ));
        assert!(matches!(
            RunConfig::builder().restore_threshold(f64::NAN).build(),
            Err(RunConfigError::ThresholdOutOfRange {
                field: "restore_threshold",
                ..
            })
        ));
        // Errors render a human-readable explanation.
        let shown = RunConfig::builder()
            .repair_threshold(2.0)
            .build()
            .unwrap_err()
            .to_string();
        assert!(shown.contains("repair_threshold"), "{shown}");
    }

    #[test]
    fn recorder_traces_the_pipeline() {
        use iobt_obs::Subsystem;

        let scenario = persistent_surveillance(120, 5);
        let (recorder, ring) = iobt_obs::Recorder::memory(100_000);
        let cfg = RunConfig::builder()
            .duration(SimDuration::from_secs_f64(60.0))
            .window(SimDuration::from_secs_f64(10.0))
            .recorder(recorder.clone())
            .build()
            .unwrap();
        let report = run_mission(&scenario, &cfg);
        let records = ring.records();
        assert!(!records.is_empty());
        // One recruitment, one solve, one window-closed per window.
        let kind_count = |k: &str| records.iter().filter(|r| r.event.kind() == k).count();
        assert_eq!(kind_count("recruitment"), 1);
        assert_eq!(kind_count("solve"), 1);
        assert_eq!(kind_count("window_closed"), report.windows.len());
        // Netsim traffic flows through the same recorder with sim-time stamps.
        assert!(records
            .iter()
            .any(|r| r.event.subsystem() == Subsystem::Netsim));
        for pair in records.windows(2) {
            assert!(pair[0].t_us <= pair[1].t_us, "sim-time goes backwards");
        }
        let digest = recorder.metrics_digest();
        assert_eq!(digest.counter("core.windows"), Some(6));
        assert_eq!(
            digest.counter("netsim.msg_delivered"),
            Some(report.digest.delivered)
        );
        // Wall clock is measured but lives outside the digest.
        assert!(report.wall_clock.solve_ms >= 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let scenario = persistent_surveillance(80, 11);
        let cfg = quick_config();
        let a = run_mission(&scenario, &cfg);
        let b = run_mission(&scenario, &cfg);
        assert_eq!(a.windows, b.windows);
        assert_eq!(a.repairs, b.repairs);
        assert_eq!(a.recruited, b.recruited);
    }

    #[test]
    fn stepped_runner_matches_run_mission() {
        let scenario = persistent_surveillance(80, 11);
        let cfg = quick_config();
        let whole = run_mission(&scenario, &cfg);
        let mut runner = MissionRunner::new(&scenario, &cfg);
        assert_eq!(runner.total_windows(), 6);
        let mut stepped = Vec::new();
        while let StepOutcome::WindowClosed { window, stats } = runner.step_window() {
            assert_eq!(window, stepped.len(), "window indices arrive in order");
            stepped.push(stats);
        }
        assert!(runner.step_window().is_finished(), "stays Finished");
        assert!(runner.is_finished());
        assert_eq!(runner.window_index(), 6);
        let report = runner.finish();
        assert_eq!(stepped, whole.windows);
        assert_eq!(report.digest, whole.digest);
    }

    #[test]
    fn acked_tasking_delivers_assignments_before_reports_flow() {
        let scenario = persistent_surveillance(120, 5);
        let cfg = RunConfig::builder()
            .duration(SimDuration::from_secs_f64(60.0))
            .window(SimDuration::from_secs_f64(10.0))
            .acked_tasking(true)
            .build()
            .unwrap();
        let report = run_mission(&scenario, &cfg);
        let tasking = report.digest.resilience.tasking;
        assert!(tasking.assigned > 0, "someone must be tasked");
        assert!(tasking.acked > 0, "reachable sensors must ack");
        assert!(tasking.acked <= tasking.assigned);
        assert!(
            report.mean_utility() > 0.0,
            "tasked sensors must still report"
        );
    }

    #[test]
    fn early_repair_suspects_silenced_nodes_between_windows() {
        use iobt_faults::FaultPlan;
        use iobt_netsim::SimTime;
        use iobt_types::{Point, Rect};

        let mut scenario = persistent_surveillance(150, 7);
        // A permanent blackout over one quadrant silences every selected
        // sensor inside it mid-window; the detector must notice without
        // waiting for the window to close.
        scenario.fault_plan = FaultPlan::new().blackout(
            SimTime::from_secs_f64(15.0),
            Rect::new(Point::new(0.0, 0.0), Point::new(1_500.0, 1_500.0)),
            None,
        );
        let cfg = RunConfig::builder()
            .duration(SimDuration::from_secs_f64(60.0))
            .window(SimDuration::from_secs_f64(10.0))
            .early_repair(true)
            .build()
            .unwrap();
        let report = run_mission(&scenario, &cfg);
        let res = report.digest.resilience;
        assert!(res.suspected > 0, "blackout victims must be suspected");
        assert!(
            res.early_repairs > 0,
            "suspicion must trigger at least one early repair"
        );
        // Same seed, same config: the whole reaction history replays.
        let again = run_mission(&scenario, &cfg);
        assert_eq!(report.digest, again.digest);
    }

    #[test]
    fn degradation_ladder_sheds_when_coverage_collapses() {
        use iobt_faults::FaultPlan;
        use iobt_netsim::SimTime;

        let mut scenario = persistent_surveillance(120, 5);
        // A permanent blackout over the whole theater: nothing can
        // report, utility pins to zero, and the ladder must shed rather
        // than thrash on repairs it cannot complete.
        scenario.fault_plan = FaultPlan::new().blackout(
            SimTime::from_secs_f64(12.0),
            scenario.mission.area(),
            None,
        );
        let cfg = RunConfig::builder()
            .duration(SimDuration::from_secs_f64(60.0))
            .window(SimDuration::from_secs_f64(10.0))
            .degradation_ladder(true)
            .build()
            .unwrap();
        let report = run_mission(&scenario, &cfg);
        let res = report.digest.resilience;
        assert!(res.sheds >= 1, "ladder must shed under total blackout");
        assert!(res.final_ladder_level >= 1);
        assert_eq!(res.restores, 0, "nothing recovers: no restores");
    }

    #[test]
    fn reaction_features_are_inert_by_default() {
        let scenario = persistent_surveillance(120, 5);
        let report = run_mission(&scenario, &quick_config());
        let res = report.digest.resilience;
        assert_eq!(res, ResilienceReport::default());
        assert_eq!(report.digest.tampered, 0);
    }

    #[test]
    fn builder_covers_resilience_fields() {
        let built = RunConfig::builder()
            .early_repair(true)
            .detector_ticks(8)
            .suspicion_periods(2.5)
            .degradation_ladder(true)
            .shed_threshold(0.4)
            .restore_threshold(0.9)
            .ladder_patience(3)
            .acked_tasking(true)
            .task_attempts(6)
            .task_retry_base(SimDuration::from_millis(500))
            .build()
            .unwrap();
        assert!(built.early_repair);
        assert_eq!(built.detector_ticks, 8);
        assert!((built.suspicion_periods - 2.5).abs() < 1e-12);
        assert!(built.degradation_ladder);
        assert!((built.shed_threshold - 0.4).abs() < 1e-12);
        assert!((built.restore_threshold - 0.9).abs() < 1e-12);
        assert_eq!(built.ladder_patience, 3);
        assert!(built.acked_tasking);
        assert_eq!(built.task_attempts, 6);
        assert_eq!(built.task_retry_base, SimDuration::from_millis(500));
    }
}
