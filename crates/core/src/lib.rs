//! The IoBT runtime facade (paper Fig. 1): discovery → recruitment →
//! assured synthesis → adaptive execution, end to end over the battlefield
//! simulator, with the learning services available alongside.
//!
//! * [`scenario`] — builders for the operations the paper motivates
//!   (urban evacuation, persistent surveillance, disaster relief).
//! * [`runtime`] — [`run_mission`]: the full pipeline with per-window
//!   utility tracing, disruption injection, and the repair reflex —
//!   plus [`MissionRunner`], the window-stepping form of the same
//!   pipeline.
//! * [`checkpoint`] — crash-safe checkpointing: [`MissionRunner::save`]
//!   and [`MissionRunner::resume`] over the `iobt-ckpt` file format,
//!   with byte-identical post-resume behaviour.
//! * [`tasking`] — arbitration of one asset pool across multiple
//!   concurrent missions by priority (§II's competing networks).
//! * [`humans`] — human-asset characterization: truth-discovery output
//!   becomes trust-ledger evidence (§III-A human assets).
//! * [`diagnostics`] — tomography run against the simulated network:
//!   localizing dead nodes from monitor observations only (§V-A).
//! * [`behaviors`] — the simulator behaviours (sensor reporters, command
//!   sink) the runtime deploys.
//!
//! The individual subsystems are re-exported for direct access:
//! [`discovery`], [`synthesis`], [`adapt`], [`truth`], [`tomography`],
//! [`learning`], [`netsim`], [`types`].
//!
//! # Examples
//!
//! ```no_run
//! use iobt_core::prelude::*;
//!
//! let scenario = persistent_surveillance(200, 42);
//! let report = run_mission(&scenario, &RunConfig::default());
//! println!(
//!     "recruited {} assets, mean utility {:.2}, {} repairs",
//!     report.recruited,
//!     report.mean_utility(),
//!     report.repairs
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behaviors;
pub mod checkpoint;
pub mod diagnostics;
pub mod humans;
pub mod resilience;
pub mod runtime;
pub mod tasking;
pub mod scenario;

pub use behaviors::{
    mission_behavior_registry, new_report_log, new_task_board, CommandSink, DeliveredReport,
    ReportLog, SensorReporter, TaskBoard, TaskingSink, TaskingStats,
};
pub use checkpoint::{
    decode_end_state_digest, decode_portable_config, encode_end_state_digest,
    encode_portable_config,
};
pub use diagnostics::{diagnose_failures, DiagnosisReport, NetworkModel};
pub use humans::{calibrate_human_trust, CalibrationSummary};
pub use resilience::{DegradationLadder, FailureDetector, LadderStep, MAX_LADDER_LEVEL};
pub use runtime::{
    run_mission, EndStateDigest, MissionReport, MissionRunner, PortableRunConfig,
    ResilienceReport, RunConfig, RunConfigBuilder, RunConfigError, StepOutcome, WallClockReport,
    WindowStat,
};
pub use tasking::{allocate_missions, MissionAllocation, TaskingPlan};
pub use scenario::{
    disaster_relief, persistent_surveillance, urban_evacuation, Disruption, Scenario,
    COMMAND_POST_ID,
};

pub use iobt_adapt as adapt;
pub use iobt_ckpt as ckpt;
pub use iobt_discovery as discovery;
pub use iobt_faults as faults;
pub use iobt_obs as obs;
pub use iobt_learning as learning;
pub use iobt_netsim as netsim;
pub use iobt_synthesis as synthesis;
pub use iobt_tomography as tomography;
pub use iobt_truth as truth;
pub use iobt_types as types;

/// Convenience re-exports for examples and integration tests.
pub mod prelude {
    pub use crate::resilience::{DegradationLadder, FailureDetector, LadderStep};
    pub use crate::runtime::{
        run_mission, EndStateDigest, MissionReport, MissionRunner, ResilienceReport, RunConfig,
        RunConfigBuilder, RunConfigError, WallClockReport, WindowStat,
    };
    pub use iobt_ckpt::{CheckpointStore, CkptError, LatestGood};
    pub use iobt_faults::{generate_campaign, CampaignConfig, FaultKind, FaultPlan};
    pub use iobt_obs::{
        MetricsDigest, Recorder, SamplingConfig, SharedBytes, Subsystem, TraceEvent, TraceRecord,
    };
    pub use crate::scenario::{
        disaster_relief, persistent_surveillance, urban_evacuation, Disruption, Scenario,
    };
    pub use crate::tasking::{allocate_missions, MissionAllocation, TaskingPlan};
    pub use crate::humans::{calibrate_human_trust, CalibrationSummary};
    pub use crate::diagnostics::{diagnose_failures, DiagnosisReport, NetworkModel};
}
