//! Diagnostics bridge: running network tomography against the *simulated*
//! battlefield network.
//!
//! `iobt-tomography` works on abstract topologies; this module derives
//! that topology from a live [`ConnectivityGraph`] snapshot, so the §V-A
//! diagnostics ("health … inferred without direct component observation")
//! run against the same network the mission executes on. Node failures in
//! the simulator become link failures in the tomography model (a dead
//! node's links all vanish), and [`diagnose_failures`] checks how well
//! boolean tomography localizes them from border monitors only.

use std::collections::BTreeMap;

use iobt_netsim::ConnectivityGraph;
use iobt_tomography::{localize_failures, Topology};
use iobt_types::NodeId;

/// A topology extracted from a connectivity snapshot, with the mappings
/// needed to translate results back to node/link identities.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    /// The abstract topology (tomography-side).
    pub topology: Topology,
    /// Dense index → node id.
    pub nodes: Vec<NodeId>,
    /// Edge index → (node id, node id).
    pub links: Vec<(NodeId, NodeId)>,
}

impl NetworkModel {
    /// Builds the model from a connectivity snapshot over the given node
    /// set (ascending-id dense indexing; only links among `nodes` are
    /// kept). Returns `None` when fewer than 2 nodes or no links exist.
    pub fn from_connectivity(graph: &ConnectivityGraph, nodes: &[NodeId]) -> Option<Self> {
        let mut sorted: Vec<NodeId> = nodes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() < 2 {
            return None;
        }
        let index: BTreeMap<NodeId, usize> =
            sorted.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut edges = Vec::new();
        let mut links = Vec::new();
        for (&a, &ai) in &index {
            for (b, _) in graph.neighbors(a) {
                let Some(&bi) = index.get(&b) else { continue };
                if ai < bi {
                    edges.push((ai, bi));
                    links.push((a, b));
                }
            }
        }
        if edges.is_empty() {
            return None;
        }
        // Deterministic edge order: sort both lists together.
        let mut paired: Vec<((usize, usize), (NodeId, NodeId))> =
            edges.into_iter().zip(links).collect();
        paired.sort();
        let (edges, links): (Vec<_>, Vec<_>) = paired.into_iter().unzip();
        Some(NetworkModel {
            topology: Topology::new(sorted.len(), edges),
            nodes: sorted,
            links,
        })
    }

    /// Edge indices incident to a node (a dead node fails all of them).
    pub fn links_of(&self, node: NodeId) -> Vec<usize> {
        self.links
            .iter()
            .enumerate()
            .filter(|(_, (a, b))| *a == node || *b == node)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Outcome of a diagnostics pass.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnosisReport {
    /// Nodes implicated by the localized link failures, ascending.
    pub suspected_nodes: Vec<NodeId>,
    /// Link-level precision against the injected ground truth.
    pub link_precision: f64,
    /// Link-level recall against the injected ground truth.
    pub link_recall: f64,
}

/// Localizes the links of `dead_nodes` from monitor observations only.
///
/// `monitors` are the (healthy) vantage nodes; the ground truth is used
/// solely for scoring.
pub fn diagnose_failures(
    model: &NetworkModel,
    monitors: &[NodeId],
    dead_nodes: &[NodeId],
) -> Option<DiagnosisReport> {
    let index: BTreeMap<NodeId, usize> = model
        .nodes
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i))
        .collect();
    let monitor_idx: Vec<usize> = monitors
        .iter()
        .filter_map(|m| index.get(m).copied())
        .collect();
    if monitor_idx.len() < 2 {
        return None;
    }
    let mut failed_links: Vec<usize> = dead_nodes
        .iter()
        .flat_map(|&n| model.links_of(n))
        .collect();
    failed_links.sort_unstable();
    failed_links.dedup();
    let loc = localize_failures(&model.topology, &monitor_idx, &failed_links);
    let mut suspected_nodes: Vec<NodeId> = loc
        .inferred_failed
        .iter()
        .flat_map(|&e| {
            let (a, b) = model.links[e];
            [a, b]
        })
        .collect();
    suspected_nodes.sort_unstable();
    suspected_nodes.dedup();
    Some(DiagnosisReport {
        link_precision: loc.precision(&failed_links),
        link_recall: loc.recall(&failed_links),
        suspected_nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use iobt_netsim::{SimDuration, SimTime, Simulator};
    use iobt_types::{Affiliation, EnergyBudget, NodeCatalog, NodeSpec, Point, Radio, RadioKind};

    /// A 4x4 grid of wifi nodes, 80 m spacing: a well-connected mesh.
    fn mesh() -> NodeCatalog {
        let mut catalog = NodeCatalog::new();
        for i in 0..16u64 {
            catalog
                .insert(
                    NodeSpec::builder(NodeId::new(i))
                        .affiliation(Affiliation::Blue)
                        .position(Point::new((i % 4) as f64 * 80.0, (i / 4) as f64 * 80.0))
                        .radio(Radio::new(RadioKind::Wifi))
                        .energy(EnergyBudget::unlimited())
                        .build(),
                )
                .unwrap();
        }
        catalog
    }

    #[test]
    fn model_extraction_matches_the_simulated_mesh() {
        let mut sim = Simulator::builder(mesh()).seed(1).build();
        let graph = sim.connectivity();
        let nodes: Vec<NodeId> = (0..16).map(NodeId::new).collect();
        let model = NetworkModel::from_connectivity(&graph, &nodes).unwrap();
        assert_eq!(model.nodes.len(), 16);
        assert!(model.topology.is_connected());
        assert_eq!(model.topology.edge_count(), model.links.len());
        // Every extracted link exists in the snapshot.
        for &(a, b) in &model.links {
            assert!(graph.link(a, b).is_some());
        }
    }

    #[test]
    fn dead_node_is_localized_from_monitors() {
        let mut sim = Simulator::builder(mesh()).seed(2).build();
        let model = {
            let graph = sim.connectivity();
            let nodes: Vec<NodeId> = (0..16).map(NodeId::new).collect();
            NetworkModel::from_connectivity(&graph, &nodes).unwrap()
        };
        // Kill an interior node in the simulator.
        let victim = NodeId::new(5);
        sim.schedule_node_down(SimTime::from_millis(1), victim);
        sim.run_for(SimDuration::from_millis(10));
        assert!(!sim.is_alive(victim));
        // Diagnose from all *other* nodes as monitors.
        let monitors: Vec<NodeId> = (0..16)
            .map(NodeId::new)
            .filter(|&n| n != victim)
            .collect();
        let report = diagnose_failures(&model, &monitors, &[victim]).unwrap();
        // Boolean tomography returns a *minimal* explanation, so recall
        // over all eight incident links is inherently partial; what must
        // hold is that nothing healthy is accused (precision) and the
        // victim is implicated.
        assert!(
            report.link_precision > 0.99,
            "no false accusations: {}",
            report.link_precision
        );
        assert!(report.link_recall > 0.0, "something localized");
        assert!(
            report.suspected_nodes.contains(&victim),
            "victim implicated: {:?}",
            report.suspected_nodes
        );
    }

    #[test]
    fn border_monitors_still_implicate_the_victim() {
        let mut sim = Simulator::builder(mesh()).seed(3).build();
        let graph = sim.connectivity();
        let nodes: Vec<NodeId> = (0..16).map(NodeId::new).collect();
        let model = NetworkModel::from_connectivity(&graph, &nodes).unwrap();
        let victim = NodeId::new(5);
        // Monitors: the four corners only.
        let monitors = vec![NodeId::new(0), NodeId::new(3), NodeId::new(12), NodeId::new(15)];
        let report = diagnose_failures(&model, &monitors, &[victim]).unwrap();
        // With sparse monitors recall is partial but the victim should
        // appear among the suspects (its links carry corner-to-corner
        // shortest paths).
        assert!(
            report.suspected_nodes.contains(&victim) || report.link_recall == 0.0,
            "sparse monitoring: {:?}",
            report
        );
    }

    #[test]
    fn degenerate_inputs_return_none() {
        let mut sim = Simulator::builder(mesh()).seed(4).build();
        let graph = sim.connectivity();
        assert!(NetworkModel::from_connectivity(&graph, &[NodeId::new(0)]).is_none());
        let nodes: Vec<NodeId> = (0..16).map(NodeId::new).collect();
        let model = NetworkModel::from_connectivity(&graph, &nodes).unwrap();
        assert!(diagnose_failures(&model, &[NodeId::new(0)], &[]).is_none());
    }
}
