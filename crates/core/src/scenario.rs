//! Scenario builders: the operations the paper's introduction motivates.
//!
//! Each builder produces a [`Scenario`] — population, terrain, mission,
//! command post, and planned disruptions — for one of the operation types
//! from §I/§II: non-combatant evacuation, wide-area persistent
//! surveillance, and disaster relief.

use iobt_faults::FaultPlan;
use iobt_netsim::{Jammer, SimTime, Terrain};
use iobt_types::catalog::PopulationBuilder;
use iobt_types::{
    Affiliation, CommanderIntent, ComputeClass, EnergyBudget, Mission, MissionId, MissionKind,
    NodeCatalog, NodeId, NodeSpec, Point, Priority, Radio, RadioKind, Rect, Sensor, SensorKind,
    TrustScore,
};

/// A planned mid-mission disruption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Disruption {
    /// Jammer `index` (into [`Scenario::jammers`]) switches on.
    JammerOn {
        /// When the jammer activates.
        at: SimTime,
        /// Index into the scenario's jammer list.
        index: usize,
    },
    /// A node is destroyed.
    NodeLoss {
        /// When the node dies.
        at: SimTime,
        /// The node that dies.
        node: NodeId,
    },
}

/// A complete runnable scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// All nodes (population + command post + mission assets).
    pub catalog: NodeCatalog,
    /// Terrain the scenario plays out on.
    pub terrain: Terrain,
    /// The mission refined from commander's intent.
    pub mission: Mission,
    /// The original intent statement.
    pub intent: CommanderIntent,
    /// Jammers present (initially inactive).
    pub jammers: Vec<Jammer>,
    /// Planned disruptions, time-ordered.
    pub disruptions: Vec<Disruption>,
    /// Structured fault schedule (crashes, blackouts, partitions,
    /// degradations, compromises), scheduled alongside `disruptions`.
    pub fault_plan: FaultPlan,
    /// The command-post node reports flow to.
    pub command_post: NodeId,
    /// Seed everything downstream should derive randomness from.
    pub seed: u64,
}

/// Command-post id, chosen far above population ids.
pub const COMMAND_POST_ID: u64 = 1_000_000;

fn command_post(position: Point) -> NodeSpec {
    NodeSpec::builder(NodeId::new(COMMAND_POST_ID))
        .affiliation(Affiliation::Blue)
        .position(position)
        .capabilities(
            iobt_types::CapabilityProfile::builder()
                .compute(ComputeClass::EdgeCloud)
                .radio(Radio::new(RadioKind::TacticalUhf))
                .radio(Radio::new(RadioKind::Wifi))
                .radio(Radio::new(RadioKind::Cellular))
                .build(),
        )
        .energy(EnergyBudget::unlimited())
        .trust(TrustScore::FULL)
        .build()
}

/// Ensures every blue node can reach the tactical mesh: blue assets in the
/// population that lack a UHF radio get relay coverage through wifi; the
/// population builder already gives blue nodes UHF.
fn base_population(area: Rect, count: usize, seed: u64) -> NodeCatalog {
    PopulationBuilder::new(area)
        .count(count)
        .blue_fraction(0.35)
        .red_fraction(0.1)
        .human_fraction(0.2)
        .build(seed)
}

/// Non-combatant evacuation in a dense urban core (§I's motivating
/// vignette): critical priority, tight latency, an RF jammer near the
/// evacuation corridor, and battle damage to part of the sensor fleet.
pub fn urban_evacuation(node_count: usize, seed: u64) -> Scenario {
    let area = Rect::square(2_000.0);
    let terrain = Terrain::random_urban(area, 20, 20, seed);
    let mut catalog = base_population(area, node_count, seed);
    let post = command_post(Point::new(1_000.0, 1_000.0));
    let command_post_id = post.id();
    catalog.upsert(post);
    let intent = CommanderIntent::new(
        MissionKind::Evacuation,
        area,
        "evacuate non-combatants along safe routes through the eastern corridor",
    )
    .with_priority(Priority::Critical);
    let mission = iobt_types::mission::refine_intent(MissionId::new(1), &intent);
    let jammers = vec![Jammer {
        position: Point::new(1_400.0, 1_000.0),
        power_w: 30.0,
        active: false,
    }];
    let disruptions = vec![Disruption::JammerOn {
        at: SimTime::from_secs_f64(60.0),
        index: 0,
    }];
    Scenario {
        catalog,
        terrain,
        mission,
        intent,
        jammers,
        disruptions,
        fault_plan: FaultPlan::new(),
        command_post: command_post_id,
        seed,
    }
}

/// Wide-area persistent surveillance over mixed terrain (§II's first task
/// example): normal priority, long horizon, gradual attrition of sensing
/// assets.
pub fn persistent_surveillance(node_count: usize, seed: u64) -> Scenario {
    let area = Rect::square(3_000.0);
    let terrain = Terrain::random_urban(area, 15, 15, seed.wrapping_add(1));
    let mut catalog = base_population(area, node_count, seed);
    let post = command_post(Point::new(1_500.0, 1_500.0));
    let command_post_id = post.id();
    catalog.upsert(post);
    let intent = CommanderIntent::new(
        MissionKind::Surveillance,
        area,
        "maintain persistent surveillance of the sector; report all vehicle movement",
    );
    let mission = iobt_types::mission::refine_intent(MissionId::new(2), &intent);
    // Attrition: a deterministic sample of blue sensors dies mid-mission.
    let victims: Vec<NodeId> = catalog
        .with_affiliation(Affiliation::Blue)
        .iter()
        .filter(|n| n.capabilities().can_sense(SensorKind::Visual))
        .take(3)
        .map(|n| n.id())
        .collect();
    let disruptions = victims
        .into_iter()
        .enumerate()
        .map(|(i, node)| Disruption::NodeLoss {
            at: SimTime::from_secs_f64(45.0 + 15.0 * i as f64),
            node,
        })
        .collect();
    Scenario {
        catalog,
        terrain,
        mission,
        intent,
        jammers: Vec::new(),
        disruptions,
        fault_plan: FaultPlan::new(),
        command_post: command_post_id,
        seed,
    }
}

/// Post-disaster relief (§I's Puerto Rico example): open terrain, chemical
/// and infrared sensing for survivor detection, infrastructure loss at
/// start, no deliberate adversary but degraded everything.
pub fn disaster_relief(node_count: usize, seed: u64) -> Scenario {
    let area = Rect::square(4_000.0);
    let terrain = Terrain::uniform(area, iobt_netsim::Clutter::Suburban);
    let mut catalog = PopulationBuilder::new(area)
        .count(node_count)
        .blue_fraction(0.25)
        .red_fraction(0.0)
        .human_fraction(0.35)
        .build(seed);
    // Augment: relief flights dropped infrared/chemical sensor pods.
    let base = catalog.len() as u64;
    for i in 0..(node_count / 10).max(4) {
        let pod = NodeSpec::builder(NodeId::new(base + i as u64))
            .affiliation(Affiliation::Blue)
            .position(Point::new(
                (i as f64 * 997.0) % 4_000.0,
                (i as f64 * 1_409.0) % 4_000.0,
            ))
            .sensor(Sensor::new(SensorKind::Infrared, 400.0, 0.85))
            .sensor(Sensor::new(SensorKind::Chemical, 300.0, 0.8))
            .radio(Radio::new(RadioKind::TacticalUhf))
            .energy(EnergyBudget::new(50_000.0))
            .build();
        catalog.upsert(pod);
    }
    let post = command_post(Point::new(2_000.0, 2_000.0));
    let command_post_id = post.id();
    catalog.upsert(post);
    let intent = CommanderIntent::new(
        MissionKind::DisasterRelief,
        area,
        "locate survivors and hazardous leaks; prioritize densely populated blocks",
    )
    .with_priority(Priority::Critical);
    let mission = iobt_types::mission::refine_intent(MissionId::new(3), &intent);
    Scenario {
        catalog,
        terrain,
        mission,
        intent,
        jammers: Vec::new(),
        disruptions: Vec::new(),
        fault_plan: FaultPlan::new(),
        command_post: command_post_id,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evacuation_scenario_is_well_formed() {
        let s = urban_evacuation(200, 1);
        assert_eq!(s.catalog.len(), 201, "population plus command post");
        assert!(s.catalog.get(s.command_post).is_some());
        assert_eq!(s.mission.kind(), MissionKind::Evacuation);
        assert_eq!(s.mission.resilience(), 2, "critical intent doubles k");
        assert_eq!(s.jammers.len(), 1);
        assert!(!s.jammers[0].active, "jammer starts off");
        assert_eq!(s.disruptions.len(), 1);
    }

    #[test]
    fn surveillance_schedules_attrition() {
        let s = persistent_surveillance(300, 2);
        assert!(!s.disruptions.is_empty());
        for d in &s.disruptions {
            match d {
                Disruption::NodeLoss { node, .. } => {
                    assert!(s.catalog.get(*node).is_some());
                }
                other => panic!("unexpected disruption {other:?}"),
            }
        }
    }

    #[test]
    fn disaster_relief_has_ir_chem_pods_and_no_red() {
        let s = disaster_relief(150, 3);
        let [_, red, _] = s.catalog.affiliation_counts();
        assert_eq!(red, 0);
        assert!(!s.catalog.with_sensor(SensorKind::Infrared).is_empty());
        assert!(!s.catalog.with_sensor(SensorKind::Chemical).is_empty());
        assert_eq!(
            s.mission.required_modalities(),
            vec![SensorKind::Infrared, SensorKind::Chemical]
        );
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = urban_evacuation(100, 9);
        let b = urban_evacuation(100, 9);
        assert_eq!(a.catalog, b.catalog);
        assert_eq!(a.mission, b.mission);
    }

    #[test]
    fn command_post_is_blue_trusted_and_connected() {
        for s in [
            urban_evacuation(50, 1),
            persistent_surveillance(50, 1),
            disaster_relief(50, 1),
        ] {
            let post = s.catalog.get(s.command_post).unwrap();
            assert_eq!(post.affiliation(), Affiliation::Blue);
            assert_eq!(post.trust(), TrustScore::FULL);
            assert!(!post.capabilities().is_isolated());
        }
    }
}
