//! Multi-mission asset allocation.
//!
//! §II: "there will likely be many networks operating simultaneously,
//! possibly competing for resources. … Tasks are not expected to start or
//! end simultaneously, and new tasks may emerge as others are being
//! executed." This module arbitrates one shared asset pool across several
//! concurrent missions: missions are served in descending
//! [`Priority`](iobt_types::Priority) order (ties by id), each composing
//! from the assets the higher-priority missions left behind.

use std::collections::BTreeSet;

use iobt_synthesis::{CompositionProblem, CompositionResult, Solver};
use iobt_types::{Mission, NodeId, NodeSpec};

/// Allocation outcome for one mission.
#[derive(Debug, Clone)]
pub struct MissionAllocation {
    /// The mission served.
    pub mission: Mission,
    /// Node ids granted to this mission.
    pub granted: Vec<NodeId>,
    /// The composition result over the remaining pool.
    pub composition: CompositionResult,
    /// Coverage this mission would have achieved with the *full* pool —
    /// the contention cost is `standalone_coverage - composition.coverage`.
    pub standalone_coverage: f64,
}

/// Result of arbitrating the pool.
#[derive(Debug, Clone)]
pub struct TaskingPlan {
    /// Per-mission allocations, in the order they were served.
    pub allocations: Vec<MissionAllocation>,
    /// Assets left unassigned.
    pub spare: usize,
}

impl TaskingPlan {
    /// Total coverage shortfall caused by contention, summed over
    /// missions.
    pub fn contention_cost(&self) -> f64 {
        self.allocations
            .iter()
            .map(|a| (a.standalone_coverage - a.composition.coverage).max(0.0))
            .sum()
    }
}

/// Serves `missions` from a shared pool of `specs`, highest priority
/// first (ties broken by ascending mission id, so the plan is
/// deterministic). Each asset is granted to at most one mission.
pub fn allocate_missions(
    specs: &[NodeSpec],
    missions: &[Mission],
    grid: usize,
    solver: Solver,
) -> TaskingPlan {
    let mut order: Vec<&Mission> = missions.iter().collect();
    order.sort_by(|a, b| {
        b.priority()
            .cmp(&a.priority())
            .then(a.id().raw().cmp(&b.id().raw()))
    });
    let mut taken: BTreeSet<NodeId> = BTreeSet::new();
    let mut allocations = Vec::with_capacity(order.len());
    for mission in order {
        // Standalone upper bound over the full pool.
        let standalone_problem = CompositionProblem::from_mission(mission, specs, grid);
        let standalone = solver.solve(&standalone_problem);
        // Actual allocation over what is left.
        let remaining: Vec<NodeSpec> = specs
            .iter()
            .filter(|s| !taken.contains(&s.id()))
            .cloned()
            .collect();
        let problem = CompositionProblem::from_mission(mission, &remaining, grid);
        let composition = solver.solve(&problem);
        let granted: Vec<NodeId> = composition
            .selected
            .iter()
            .map(|&i| problem.candidates[i].id)
            .collect();
        taken.extend(granted.iter().copied());
        allocations.push(MissionAllocation {
            mission: mission.clone(),
            granted,
            composition,
            standalone_coverage: standalone.coverage,
        });
    }
    TaskingPlan {
        spare: specs.len().saturating_sub(taken.len()),
        allocations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iobt_types::{
        Affiliation, EnergyBudget, MissionId, MissionKind, Point, Priority, Rect, Sensor,
        SensorKind,
    };

    fn sensor_node(id: u64, x: f64, y: f64, range: f64) -> NodeSpec {
        NodeSpec::builder(NodeId::new(id))
            .affiliation(Affiliation::Blue)
            .position(Point::new(x, y))
            .sensor(Sensor::new(SensorKind::Visual, range, 0.9))
            .energy(EnergyBudget::unlimited())
            .build()
    }

    fn mission(id: u64, priority: Priority) -> Mission {
        Mission::builder(MissionId::new(id), MissionKind::Surveillance)
            .area(Rect::square(200.0))
            .require_modality(SensorKind::Visual)
            .coverage_fraction(1.0)
            .priority(priority)
            .build()
    }

    #[test]
    fn critical_mission_wins_the_contested_asset() {
        // One dominating central node, one weaker spare.
        let specs = vec![
            sensor_node(1, 100.0, 100.0, 250.0),
            sensor_node(2, 100.0, 100.0, 160.0),
        ];
        let plan = allocate_missions(
            &specs,
            &[
                mission(10, Priority::Low),
                mission(11, Priority::Critical),
            ],
            3,
            Solver::Greedy,
        );
        // Critical is served first despite being listed second.
        assert_eq!(plan.allocations[0].mission.id().raw(), 11);
        assert!(plan.allocations[0].granted.contains(&NodeId::new(1)));
        // Low-priority mission gets the leftover.
        assert!(!plan.allocations[1].granted.contains(&NodeId::new(1)));
        // Nothing is double-assigned.
        let all: Vec<NodeId> = plan
            .allocations
            .iter()
            .flat_map(|a| a.granted.clone())
            .collect();
        let unique: BTreeSet<NodeId> = all.iter().copied().collect();
        assert_eq!(all.len(), unique.len());
    }

    #[test]
    fn contention_cost_is_zero_with_plentiful_assets() {
        let specs: Vec<NodeSpec> = (0..8)
            .map(|i| sensor_node(i, 100.0, 100.0, 250.0))
            .collect();
        let plan = allocate_missions(
            &specs,
            &[mission(1, Priority::Normal), mission(2, Priority::Normal)],
            3,
            Solver::Greedy,
        );
        assert!(plan.contention_cost() < 1e-9);
        assert!(plan.allocations.iter().all(|a| a.composition.satisfied));
        assert!(plan.spare > 0);
    }

    #[test]
    fn starved_low_priority_mission_reports_the_shortfall() {
        let specs = vec![sensor_node(1, 100.0, 100.0, 250.0)];
        let plan = allocate_missions(
            &specs,
            &[mission(1, Priority::Critical), mission(2, Priority::Low)],
            3,
            Solver::Greedy,
        );
        let low = &plan.allocations[1];
        assert!(!low.composition.satisfied);
        assert!(low.standalone_coverage > low.composition.coverage);
        assert!(plan.contention_cost() > 0.9);
    }

    #[test]
    fn equal_priority_ties_break_by_mission_id() {
        let specs = vec![sensor_node(1, 100.0, 100.0, 250.0)];
        let plan = allocate_missions(
            &specs,
            &[mission(5, Priority::Normal), mission(3, Priority::Normal)],
            3,
            Solver::Greedy,
        );
        assert_eq!(plan.allocations[0].mission.id().raw(), 3);
    }

    #[test]
    fn empty_inputs_are_safe() {
        let plan = allocate_missions(&[], &[mission(1, Priority::Normal)], 3, Solver::Greedy);
        assert_eq!(plan.allocations.len(), 1);
        assert!(plan.allocations[0].granted.is_empty());
        assert_eq!(plan.spare, 0);
        let plan = allocate_missions(&[sensor_node(1, 0.0, 0.0, 10.0)], &[], 3, Solver::Greedy);
        assert!(plan.allocations.is_empty());
        assert_eq!(plan.spare, 1);
    }
}
