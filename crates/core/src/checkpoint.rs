//! Mission-level checkpoint payloads: [`MissionRunner::save`] and
//! [`MissionRunner::resume`].
//!
//! A mission checkpoint is taken at a utility-window boundary and
//! captures *only* the execution-phase state that cannot be recomputed:
//!
//! * a **guard** section — scenario seed, catalog size, command post,
//!   and every [`RunConfig`](crate::runtime::RunConfig) field that
//!   shapes execution. Resume verifies the guard against the scenario
//!   and config it was handed and refuses with
//!   [`CkptError::Mismatch`] on any disagreement, because resuming
//!   under a different configuration would silently diverge;
//! * the **window loop** state — next window, repairs, per-window
//!   utility stats, the current selection and composition result, the
//!   set of ever-failed nodes, failure-detector heartbeat table, and
//!   degradation-ladder counters;
//! * the **delivered-report log** and acked-tasking board;
//! * the **recorder clock** — sim-time, trace sequence, per-subsystem
//!   sampling phase, and the full metrics registry (the trace *sink* is
//!   deliberately not captured: a resumed run opens a fresh sink and
//!   appends only post-resume records, so the resumed file equals the
//!   tail of the uninterrupted one);
//! * the **simulator snapshot** from
//!   [`Simulator::save_state`](iobt_netsim::Simulator::save_state) —
//!   clock, RNG stream, event queue, per-node state, fault state, and
//!   behaviour state — as one length-prefixed blob.
//!
//! Everything recomputable from `(scenario, config)` — discovery,
//! recruitment, the composition problem, assurance — is *not* stored;
//! resume re-runs those phases with a disabled recorder so no trace
//! events are double-counted. Wall-clock timings are never stored.

use iobt_ckpt::{CkptError, Dec, DecodeError, Enc};
use iobt_netsim::{SimDuration, SimTime};
use iobt_obs::{HistogramSnapshot, MetricsDigest, Recorder, RecorderCheckpoint, Subsystem};
use iobt_synthesis::{CompositionResult, Solver};
use iobt_types::NodeId;

use crate::behaviors::{
    mission_behavior_registry, new_report_log, new_task_board, DeliveredReport, TaskingStats,
};
use crate::resilience::{DegradationLadder, FailureDetector};
use crate::runtime::{
    build_sim, degraded_problem, prologue, EndStateDigest, MissionRunner, PortableRunConfig,
    ResilienceReport, RunConfig, WindowStat,
};
use crate::scenario::Scenario;

use std::collections::BTreeSet;

fn mismatch(what: &str, expected: impl std::fmt::Display, found: impl std::fmt::Display) -> CkptError {
    CkptError::Mismatch(format!(
        "checkpoint was taken under a different {what}: checkpoint has {found}, resume has {expected}"
    ))
}

/// Encodes the scenario/config guard. Order is part of the format.
fn encode_guard(e: &mut Enc, scenario: &Scenario, config: &RunConfig) {
    // Exhaustive destructures (R6): a new `Scenario` or `RunConfig`
    // field fails this lint until its guard story is decided. The
    // scenario guard is deliberately shallow — seed, catalog size, and
    // command post identify a scenario cheaply; the heavyweight fields
    // (`terrain`/`mission`/…) are covered transitively by the seed under
    // the deterministic generator. `recorder` is a sink handle, and
    // `reference_mode` selects between equivalence-tested execution
    // paths, so neither shapes the checkpointed state.
    let Scenario {
        catalog,
        terrain: _,
        mission: _,
        intent: _,
        jammers: _,
        disruptions: _,
        fault_plan: _,
        command_post,
        seed,
    } = scenario;
    let RunConfig {
        duration,
        window,
        report_period,
        adaptive,
        repair_threshold,
        grid,
        solver,
        require_reachability,
        early_repair,
        detector_ticks,
        suspicion_periods,
        degradation_ladder,
        shed_threshold,
        restore_threshold,
        ladder_patience,
        acked_tasking,
        task_attempts,
        task_retry_base,
        recorder: _,
        reference_mode: _,
    } = config;
    e.u64(*seed);
    e.usize(catalog.len());
    e.u64(command_post.raw());
    e.u64(duration.as_micros());
    e.u64(window.as_micros());
    e.u64(report_period.as_micros());
    e.bool(*adaptive);
    e.f64(*repair_threshold);
    e.usize(*grid);
    e.str(&format!("{solver:?}"));
    e.bool(*require_reachability);
    e.bool(*early_repair);
    e.u32(*detector_ticks);
    e.f64(*suspicion_periods);
    e.bool(*degradation_ladder);
    e.f64(*shed_threshold);
    e.f64(*restore_threshold);
    e.u32(*ladder_patience);
    e.bool(*acked_tasking);
    e.u32(*task_attempts);
    e.u64(task_retry_base.as_micros());
}

/// Decodes and verifies the guard section against the caller's
/// scenario and config.
fn check_guard(d: &mut Dec<'_>, scenario: &Scenario, config: &RunConfig) -> Result<(), CkptError> {
    let seed = d.u64()?;
    if seed != scenario.seed {
        return Err(mismatch("seed", scenario.seed, seed));
    }
    let catalog_len = d.usize()?;
    if catalog_len != scenario.catalog.len() {
        return Err(mismatch("catalog size", scenario.catalog.len(), catalog_len));
    }
    let command_post = d.u64()?;
    if command_post != scenario.command_post.raw() {
        return Err(mismatch(
            "command post",
            scenario.command_post.raw(),
            command_post,
        ));
    }
    let duration = d.u64()?;
    if duration != config.duration.as_micros() {
        return Err(mismatch("duration", config.duration.as_micros(), duration));
    }
    let window = d.u64()?;
    if window != config.window.as_micros() {
        return Err(mismatch("window", config.window.as_micros(), window));
    }
    let report_period = d.u64()?;
    if report_period != config.report_period.as_micros() {
        return Err(mismatch(
            "report period",
            config.report_period.as_micros(),
            report_period,
        ));
    }
    let adaptive = d.bool()?;
    if adaptive != config.adaptive {
        return Err(mismatch("adaptive flag", config.adaptive, adaptive));
    }
    let repair_threshold = d.f64()?;
    if repair_threshold.to_bits() != config.repair_threshold.to_bits() {
        return Err(mismatch(
            "repair threshold",
            config.repair_threshold,
            repair_threshold,
        ));
    }
    let grid = d.usize()?;
    if grid != config.grid {
        return Err(mismatch("grid", config.grid, grid));
    }
    let solver = d.str()?;
    let expected_solver = format!("{:?}", config.solver);
    if solver != expected_solver {
        return Err(mismatch("solver", expected_solver, solver));
    }
    let require_reachability = d.bool()?;
    if require_reachability != config.require_reachability {
        return Err(mismatch(
            "reachability flag",
            config.require_reachability,
            require_reachability,
        ));
    }
    let early_repair = d.bool()?;
    if early_repair != config.early_repair {
        return Err(mismatch("early-repair flag", config.early_repair, early_repair));
    }
    let detector_ticks = d.u32()?;
    if detector_ticks != config.detector_ticks {
        return Err(mismatch(
            "detector ticks",
            config.detector_ticks,
            detector_ticks,
        ));
    }
    let suspicion_periods = d.f64()?;
    if suspicion_periods.to_bits() != config.suspicion_periods.to_bits() {
        return Err(mismatch(
            "suspicion periods",
            config.suspicion_periods,
            suspicion_periods,
        ));
    }
    let degradation_ladder = d.bool()?;
    if degradation_ladder != config.degradation_ladder {
        return Err(mismatch(
            "ladder flag",
            config.degradation_ladder,
            degradation_ladder,
        ));
    }
    let shed_threshold = d.f64()?;
    if shed_threshold.to_bits() != config.shed_threshold.to_bits() {
        return Err(mismatch("shed threshold", config.shed_threshold, shed_threshold));
    }
    let restore_threshold = d.f64()?;
    if restore_threshold.to_bits() != config.restore_threshold.to_bits() {
        return Err(mismatch(
            "restore threshold",
            config.restore_threshold,
            restore_threshold,
        ));
    }
    let ladder_patience = d.u32()?;
    if ladder_patience != config.ladder_patience {
        return Err(mismatch(
            "ladder patience",
            config.ladder_patience,
            ladder_patience,
        ));
    }
    let acked_tasking = d.bool()?;
    if acked_tasking != config.acked_tasking {
        return Err(mismatch("acked-tasking flag", config.acked_tasking, acked_tasking));
    }
    let task_attempts = d.u32()?;
    if task_attempts != config.task_attempts {
        return Err(mismatch("task attempts", config.task_attempts, task_attempts));
    }
    let task_retry_base = d.u64()?;
    if task_retry_base != config.task_retry_base.as_micros() {
        return Err(mismatch(
            "task retry base",
            config.task_retry_base.as_micros(),
            task_retry_base,
        ));
    }
    Ok(())
}

fn enc_digest(e: &mut Enc, digest: &MetricsDigest) {
    // Exhaustive destructures (R6): a new digest or histogram field
    // fails this lint until it is encoded (and decoded, in order).
    let MetricsDigest { counters, gauges, histograms } = digest;
    e.usize(counters.len());
    for (name, value) in counters {
        e.str(name);
        e.u64(*value);
    }
    e.usize(gauges.len());
    for (name, value) in gauges {
        e.str(name);
        e.f64(*value);
    }
    e.usize(histograms.len());
    for (name, snap) in histograms {
        let HistogramSnapshot { bounds, counts, total, sum } = snap;
        e.str(name);
        e.usize(bounds.len());
        for b in bounds {
            e.f64(*b);
        }
        e.usize(counts.len());
        for c in counts {
            e.u64(*c);
        }
        e.u64(*total);
        e.f64(*sum);
    }
}

fn dec_digest(d: &mut Dec<'_>) -> Result<MetricsDigest, DecodeError> {
    let n = d.usize()?;
    let mut counters = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = d.str()?;
        let value = d.u64()?;
        counters.push((name, value));
    }
    let n = d.usize()?;
    let mut gauges = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = d.str()?;
        let value = d.f64()?;
        gauges.push((name, value));
    }
    let n = d.usize()?;
    let mut histograms = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = d.str()?;
        let nb = d.usize()?;
        let mut bounds = Vec::with_capacity(nb.min(1024));
        for _ in 0..nb {
            bounds.push(d.f64()?);
        }
        let nc = d.usize()?;
        let mut counts = Vec::with_capacity(nc.min(1024));
        for _ in 0..nc {
            counts.push(d.u64()?);
        }
        let total = d.u64()?;
        let sum = d.f64()?;
        histograms.push((
            name,
            HistogramSnapshot {
                bounds,
                counts,
                total,
                sum,
            },
        ));
    }
    Ok(MetricsDigest {
        counters,
        gauges,
        histograms,
    })
}

fn enc_solver(e: &mut Enc, solver: &Solver) {
    match solver {
        Solver::Greedy => e.u8(0),
        Solver::Anneal { iterations, seed } => {
            e.u8(1);
            e.usize(*iterations);
            e.u64(*seed);
        }
        Solver::Random { seed } => {
            e.u8(2);
            e.u64(*seed);
        }
        Solver::Exhaustive => e.u8(3),
        Solver::Portfolio { iterations, seed } => {
            e.u8(4);
            e.usize(*iterations);
            e.u64(*seed);
        }
    }
}

fn dec_solver(d: &mut Dec<'_>) -> Result<Solver, DecodeError> {
    match d.u8()? {
        0 => Ok(Solver::Greedy),
        1 => Ok(Solver::Anneal {
            iterations: d.usize()?,
            seed: d.u64()?,
        }),
        2 => Ok(Solver::Random { seed: d.u64()? }),
        3 => Ok(Solver::Exhaustive),
        4 => Ok(Solver::Portfolio {
            iterations: d.usize()?,
            seed: d.u64()?,
        }),
        tag => Err(DecodeError::UnknownTag {
            what: "solver",
            tag,
        }),
    }
}

/// Encodes a [`PortableRunConfig`] into `e` with the fixed-order layout
/// [`decode_portable_config`] reads back. Used by schedulers (the fleet
/// manifest) that must persist a mission's execution parameters across a
/// process death and re-admit it bit-identically.
pub fn encode_portable_config(e: &mut Enc, config: &PortableRunConfig) {
    // Exhaustive destructure (R6): a field added to the portable carrier
    // fails this lint until its manifest story is written.
    let PortableRunConfig {
        duration,
        window,
        report_period,
        adaptive,
        repair_threshold,
        grid,
        solver,
        require_reachability,
        early_repair,
        detector_ticks,
        suspicion_periods,
        degradation_ladder,
        shed_threshold,
        restore_threshold,
        ladder_patience,
        acked_tasking,
        task_attempts,
        task_retry_base,
        reference_mode,
    } = config;
    e.u64(duration.as_micros());
    e.u64(window.as_micros());
    e.u64(report_period.as_micros());
    e.bool(*adaptive);
    e.f64(*repair_threshold);
    e.usize(*grid);
    enc_solver(e, solver);
    e.bool(*require_reachability);
    e.bool(*early_repair);
    e.u32(*detector_ticks);
    e.f64(*suspicion_periods);
    e.bool(*degradation_ladder);
    e.f64(*shed_threshold);
    e.f64(*restore_threshold);
    e.u32(*ladder_patience);
    e.bool(*acked_tasking);
    e.u32(*task_attempts);
    e.u64(task_retry_base.as_micros());
    e.bool(*reference_mode);
}

/// Decodes a [`PortableRunConfig`] written by [`encode_portable_config`].
pub fn decode_portable_config(d: &mut Dec<'_>) -> Result<PortableRunConfig, DecodeError> {
    let duration = SimDuration::from_micros(d.u64()?);
    let window = SimDuration::from_micros(d.u64()?);
    let report_period = SimDuration::from_micros(d.u64()?);
    let adaptive = d.bool()?;
    let repair_threshold = d.f64()?;
    let grid = d.usize()?;
    let solver = dec_solver(d)?;
    let require_reachability = d.bool()?;
    let early_repair = d.bool()?;
    let detector_ticks = d.u32()?;
    let suspicion_periods = d.f64()?;
    let degradation_ladder = d.bool()?;
    let shed_threshold = d.f64()?;
    let restore_threshold = d.f64()?;
    let ladder_patience = d.u32()?;
    let acked_tasking = d.bool()?;
    let task_attempts = d.u32()?;
    let task_retry_base = SimDuration::from_micros(d.u64()?);
    let reference_mode = d.bool()?;
    Ok(PortableRunConfig {
        duration,
        window,
        report_period,
        adaptive,
        repair_threshold,
        grid,
        solver,
        require_reachability,
        early_repair,
        detector_ticks,
        suspicion_periods,
        degradation_ladder,
        shed_threshold,
        restore_threshold,
        ladder_patience,
        acked_tasking,
        task_attempts,
        task_retry_base,
        reference_mode,
    })
}

/// Encodes an [`EndStateDigest`] (with its nested [`ResilienceReport`]
/// and [`TaskingStats`]) into `e`, bit-exactly: every `f64` travels as
/// its IEEE-754 pattern, so a digest restored by
/// [`decode_end_state_digest`] compares equal to the one saved. Used by
/// the fleet manifest to keep completed missions' results across a
/// scheduler crash.
pub fn encode_end_state_digest(e: &mut Enc, digest: &EndStateDigest) {
    // Exhaustive destructures (R6): a new digest field fails this lint
    // until it is encoded (and decoded, in order).
    let EndStateDigest {
        sent,
        delivered,
        dropped,
        dropped_no_route,
        dropped_channel,
        dropped_dead,
        dropped_asleep,
        retransmits,
        tampered,
        energy_spent_j,
        node_energy_j,
        mean_utility,
        repairs,
        final_selection,
        resilience,
    } = digest;
    let ResilienceReport {
        suspected,
        early_repairs,
        sheds,
        restores,
        final_ladder_level,
        tasking,
    } = resilience;
    let TaskingStats {
        assigned,
        acked,
        retries,
        abandoned,
        tampered_rejected,
    } = tasking;
    e.u64(*sent);
    e.u64(*delivered);
    e.u64(*dropped);
    e.u64(*dropped_no_route);
    e.u64(*dropped_channel);
    e.u64(*dropped_dead);
    e.u64(*dropped_asleep);
    e.u64(*retransmits);
    e.u64(*tampered);
    e.f64(*energy_spent_j);
    e.usize(node_energy_j.len());
    for (node, energy) in node_energy_j {
        e.u64(node.raw());
        e.f64(*energy);
    }
    e.f64(*mean_utility);
    e.usize(*repairs);
    e.usize(final_selection.len());
    for &i in final_selection {
        e.usize(i);
    }
    e.u64(*suspected);
    e.u64(*early_repairs);
    e.u64(*sheds);
    e.u64(*restores);
    e.u64(*final_ladder_level);
    e.u64(*assigned);
    e.u64(*acked);
    e.u64(*retries);
    e.u64(*abandoned);
    e.u64(*tampered_rejected);
}

/// Decodes an [`EndStateDigest`] written by [`encode_end_state_digest`].
pub fn decode_end_state_digest(d: &mut Dec<'_>) -> Result<EndStateDigest, DecodeError> {
    let sent = d.u64()?;
    let delivered = d.u64()?;
    let dropped = d.u64()?;
    let dropped_no_route = d.u64()?;
    let dropped_channel = d.u64()?;
    let dropped_dead = d.u64()?;
    let dropped_asleep = d.u64()?;
    let retransmits = d.u64()?;
    let tampered = d.u64()?;
    let energy_spent_j = d.f64()?;
    let n = d.usize()?;
    let mut node_energy_j = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let node = NodeId::new(d.u64()?);
        let energy = d.f64()?;
        node_energy_j.push((node, energy));
    }
    let mean_utility = d.f64()?;
    let repairs = d.usize()?;
    let n = d.usize()?;
    let mut final_selection = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        final_selection.push(d.usize()?);
    }
    let suspected = d.u64()?;
    let early_repairs = d.u64()?;
    let sheds = d.u64()?;
    let restores = d.u64()?;
    let final_ladder_level = d.u64()?;
    let assigned = d.u64()?;
    let acked = d.u64()?;
    let retries = d.u64()?;
    let abandoned = d.u64()?;
    let tampered_rejected = d.u64()?;
    Ok(EndStateDigest {
        sent,
        delivered,
        dropped,
        dropped_no_route,
        dropped_channel,
        dropped_dead,
        dropped_asleep,
        retransmits,
        tampered,
        energy_spent_j,
        node_energy_j,
        mean_utility,
        repairs,
        final_selection,
        resilience: ResilienceReport {
            suspected,
            early_repairs,
            sheds,
            restores,
            final_ladder_level,
            tasking: TaskingStats {
                assigned,
                acked,
                retries,
                abandoned,
                tampered_rejected,
            },
        },
    })
}

impl MissionRunner {
    /// Serialises the runner's complete execution state as a checkpoint
    /// payload (wrap it in an envelope with
    /// [`iobt_ckpt::CheckpointStore::save`] or
    /// [`iobt_ckpt::write_checkpoint_atomic`]).
    ///
    /// Call between [`step_window`](MissionRunner::step_window) calls —
    /// window boundaries are the only states the format captures.
    ///
    /// # Errors
    ///
    /// Fails when an attached simulator behaviour is not
    /// checkpointable (see
    /// [`Behavior::save_state`](iobt_netsim::Behavior::save_state)).
    pub fn save(&self) -> Result<Vec<u8>, CkptError> {
        // Exhaustive-destructure convention (R6): adding a field to
        // `MissionRunner` fails this lint until its checkpoint story is
        // written. Phase 1–3 products (`recruited` … `problem`) are
        // recomputed at resume; `solve_ms`/`repair_ms` are wall-clock
        // reporting; `total_windows` is derived from the config.
        let Self {
            scenario: _,
            config: _,
            recruited: _,
            rejected_red: _,
            unreachable: _,
            infiltration_rate: _,
            composition: _,
            assurance: _,
            specs: _,
            base_problem: _,
            problem: _,
            sim: _,
            log: _,
            board: _,
            selection: _,
            current: _,
            active_reporters: _,
            windows: _,
            repairs: _,
            total_windows: _,
            next_window: _,
            failed_ever: _,
            detector: _,
            ladder: _,
            resilience: _,
            log_cursor: _,
            solve_ms: _,
            repair_ms: _,
        } = self;
        let mut e = Enc::new();
        encode_guard(&mut e, &self.scenario, &self.config);

        // Window-loop progress and resilience counters.
        e.usize(self.next_window);
        e.usize(self.repairs);
        e.usize(self.log_cursor);
        e.u64(self.resilience.suspected);
        e.u64(self.resilience.early_repairs);
        e.u64(self.resilience.sheds);
        e.u64(self.resilience.restores);

        // Selection, reporter set, failure history.
        e.usize(self.selection.len());
        for &i in &self.selection {
            e.usize(i);
        }
        e.usize(self.active_reporters.len());
        for id in &self.active_reporters {
            e.u64(id.raw());
        }
        e.usize(self.failed_ever.len());
        for id in &self.failed_ever {
            e.u64(id.raw());
        }

        // Current composition result.
        e.usize(self.current.selected.len());
        for &i in &self.current.selected {
            e.usize(i);
        }
        e.f64(self.current.coverage);
        e.f64(self.current.cost);
        e.bool(self.current.satisfied);

        // Completed windows.
        e.usize(self.windows.len());
        for w in &self.windows {
            e.f64(w.start_s);
            e.usize(w.expected);
            e.usize(w.reporting);
            e.f64(w.utility);
        }

        // Failure detector heartbeat table.
        e.u64(self.detector.threshold().as_micros());
        let entries = self.detector.entries();
        e.usize(entries.len());
        for (node, at) in entries {
            e.u64(node.raw());
            e.u64(at.as_micros());
        }

        // Degradation ladder counters.
        let (level, below, above) = self.ladder.counters();
        e.usize(level);
        e.u32(below);
        e.u32(above);

        // Delivered-report log.
        {
            let log = self.log.borrow();
            e.usize(log.len());
            for r in log.iter() {
                e.u64(r.from.raw());
                e.u64(r.at.as_micros());
            }
        }

        // Acked-tasking board.
        {
            let board = self.board.borrow();
            let pending = board.pending_entries();
            e.usize(pending.len());
            for (node, attempts, next_at) in pending {
                e.u64(node.raw());
                e.u32(attempts);
                e.u64(next_at.as_micros());
            }
            let TaskingStats { assigned, acked, retries, abandoned, tampered_rejected } =
                board.stats();
            e.u64(assigned);
            e.u64(acked);
            e.u64(retries);
            e.u64(abandoned);
            e.u64(tampered_rejected);
        }

        // Recorder clock + metrics (absent when the recorder is
        // disabled; the trace sink is never captured).
        match self.config.recorder.checkpoint() {
            Some(RecorderCheckpoint { t_us, seq, emitted, metrics }) => {
                e.bool(true);
                e.u64(t_us);
                e.u64(seq);
                for v in emitted {
                    e.u64(v);
                }
                enc_digest(&mut e, &metrics);
            }
            None => e.bool(false),
        }

        // Full simulator snapshot as one length-prefixed blob.
        let blob = self.sim.save_state()?;
        e.bytes(&blob);
        Ok(e.into_bytes())
    }

    /// Rebuilds a runner from a checkpoint payload so that stepping it
    /// produces exactly the windows, traces, and end state the
    /// uninterrupted run would have produced.
    ///
    /// `scenario` and `config` must be the ones the checkpointed run
    /// was started with; the payload's guard section is verified
    /// against them. Recomputable pipeline phases (discovery,
    /// recruitment, synthesis, assurance) are re-run with a disabled
    /// recorder; everything else is restored from the payload.
    ///
    /// # Errors
    ///
    /// * [`CkptError::Decode`] — the payload is malformed (truncated,
    ///   bad tags, trailing bytes);
    /// * [`CkptError::Mismatch`] — the payload decoded but belongs to a
    ///   different scenario, config, or build (unknown behaviour kind,
    ///   node-count disagreement, inconsistent recorder state).
    pub fn resume(
        scenario: &Scenario,
        config: &RunConfig,
        payload: &[u8],
    ) -> Result<Self, CkptError> {
        let mut d = Dec::new(payload);
        check_guard(&mut d, scenario, config)?;

        let next_window = d.usize()?;
        let repairs = d.usize()?;
        let log_cursor = d.usize()?;
        let resilience = ResilienceReport {
            suspected: d.u64()?,
            early_repairs: d.u64()?,
            sheds: d.u64()?,
            restores: d.u64()?,
            ..ResilienceReport::default()
        };

        let n = d.usize()?;
        let mut selection = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            selection.push(d.usize()?);
        }
        let n = d.usize()?;
        let mut active_reporters = BTreeSet::new();
        for _ in 0..n {
            active_reporters.insert(NodeId::new(d.u64()?));
        }
        let n = d.usize()?;
        let mut failed_ever = BTreeSet::new();
        for _ in 0..n {
            failed_ever.insert(NodeId::new(d.u64()?));
        }

        let n = d.usize()?;
        let mut current_selected = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            current_selected.push(d.usize()?);
        }
        let current = CompositionResult {
            selected: current_selected,
            coverage: d.f64()?,
            cost: d.f64()?,
            satisfied: d.bool()?,
        };

        let n = d.usize()?;
        let mut windows = Vec::with_capacity(n.min(65_536));
        for _ in 0..n {
            windows.push(WindowStat {
                start_s: d.f64()?,
                expected: d.usize()?,
                reporting: d.usize()?,
                utility: d.f64()?,
            });
        }

        let detector_threshold = SimDuration::from_micros(d.u64()?);
        let n = d.usize()?;
        let mut detector_entries = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let node = NodeId::new(d.u64()?);
            let at = SimTime::from_micros(d.u64()?);
            detector_entries.push((node, at));
        }

        let ladder_level = d.usize()?;
        let ladder_below = d.u32()?;
        let ladder_above = d.u32()?;

        let n = d.usize()?;
        let mut log_entries = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            log_entries.push(DeliveredReport {
                from: NodeId::new(d.u64()?),
                at: SimTime::from_micros(d.u64()?),
            });
        }
        if log_cursor > log_entries.len() {
            return Err(CkptError::Mismatch(format!(
                "log cursor {log_cursor} exceeds delivered-report log of {}",
                log_entries.len()
            )));
        }

        let n = d.usize()?;
        let mut pending = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let node = NodeId::new(d.u64()?);
            let attempts = d.u32()?;
            let next_at = SimTime::from_micros(d.u64()?);
            pending.push((node, attempts, next_at));
        }
        let stats = TaskingStats {
            assigned: d.u64()?,
            acked: d.u64()?,
            retries: d.u64()?,
            abandoned: d.u64()?,
            tampered_rejected: d.u64()?,
        };

        let recorder_ck = if d.bool()? {
            let t_us = d.u64()?;
            let seq = d.u64()?;
            let mut emitted = [0u64; Subsystem::COUNT];
            for slot in &mut emitted {
                *slot = d.u64()?;
            }
            let metrics = dec_digest(&mut d)?;
            Some(RecorderCheckpoint {
                t_us,
                seq,
                emitted,
                metrics,
            })
        } else {
            None
        };

        let blob = d.bytes()?.to_vec();
        d.finish()?;

        // All bytes verified — now rebuild the pure pipeline products
        // (disabled recorder: those trace events were already emitted by
        // the run that wrote this checkpoint).
        let p = prologue(scenario, config, &Recorder::disabled());
        let base_problem = p.problem.clone();
        let problem = if ladder_level == 0 {
            base_problem.clone()
        } else {
            degraded_problem(
                &base_problem,
                &scenario.mission,
                &p.specs,
                config.grid,
                ladder_level,
            )
        };

        // Stand up a fresh simulator with no faults scheduled (the
        // restored event queue already contains them) and restore the
        // snapshot over it. Behaviours are rebuilt through the registry
        // and share the restored log/board handles.
        let mut sim = build_sim(scenario, config, false);
        let log = new_report_log();
        let board = new_task_board();
        *log.borrow_mut() = log_entries;
        board.borrow_mut().restore(&pending, stats);
        let registry = mission_behavior_registry(&log, &board);
        sim.restore_state(&blob, &registry)?;

        // Restore the recorder clock so post-resume traces continue the
        // original sequence numbering and sampling phase.
        if let Some(ck) = recorder_ck {
            if config.recorder.is_enabled() && !config.recorder.restore_checkpoint(&ck) {
                return Err(CkptError::Mismatch(
                    "recorder metrics in checkpoint are internally inconsistent".to_string(),
                ));
            }
        }

        let detector = FailureDetector::from_checkpoint(detector_threshold, &detector_entries);
        let mut ladder = DegradationLadder::new(
            config.shed_threshold,
            config.restore_threshold,
            config.ladder_patience,
        );
        ladder.restore_counters(ladder_level, ladder_below, ladder_above);

        let total_windows =
            (config.duration.as_secs_f64() / config.window.as_secs_f64()).ceil() as usize;

        Ok(MissionRunner {
            scenario: scenario.clone(),
            config: config.clone(),
            recruited: p.recruited,
            rejected_red: p.rejected_red,
            unreachable: p.unreachable,
            infiltration_rate: p.infiltration_rate,
            composition: p.composition,
            assurance: p.assurance,
            specs: p.specs,
            base_problem,
            problem,
            sim,
            log,
            board,
            selection,
            current,
            active_reporters,
            windows,
            repairs,
            total_windows,
            next_window,
            failed_ever,
            detector,
            ladder,
            resilience,
            log_cursor,
            solve_ms: p.solve_ms,
            repair_ms: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::StepOutcome;
    use crate::scenario::persistent_surveillance;
    use iobt_netsim::SimDuration;

    fn cfg() -> RunConfig {
        RunConfig::builder()
            .duration(SimDuration::from_secs_f64(40.0))
            .window(SimDuration::from_secs_f64(10.0))
            .build()
            .expect("valid")
    }

    #[test]
    fn save_resume_roundtrip_reproduces_the_uninterrupted_digest() {
        let scenario = persistent_surveillance(80, 11);
        let config = cfg();
        let baseline = crate::runtime::run_mission(&scenario, &config);

        let mut runner = MissionRunner::new(&scenario, &config);
        runner.step_window().window_stat().expect("window 0");
        runner.step_window().window_stat().expect("window 1");
        let payload = runner.save().expect("checkpointable");
        drop(runner); // the "crashed" process

        let mut resumed = MissionRunner::resume(&scenario, &config, &payload).expect("resume");
        assert_eq!(resumed.window_index(), 2);
        while let StepOutcome::WindowClosed { .. } = resumed.step_window() {}
        let report = resumed.finish();
        assert_eq!(report.digest, baseline.digest);
        assert_eq!(report.windows, baseline.windows);
    }

    #[test]
    fn resume_rejects_wrong_seed_and_config() {
        let scenario = persistent_surveillance(80, 11);
        let config = cfg();
        let mut runner = MissionRunner::new(&scenario, &config);
        runner.step_window().window_stat().expect("window 0");
        let payload = runner.save().expect("checkpointable");

        let mut other_seed = scenario.clone();
        other_seed.seed ^= 1;
        assert!(matches!(
            MissionRunner::resume(&other_seed, &config, &payload),
            Err(CkptError::Mismatch(_))
        ));

        let other_cfg = RunConfig::builder()
            .duration(SimDuration::from_secs_f64(40.0))
            .window(SimDuration::from_secs_f64(10.0))
            .repair_threshold(0.5)
            .build()
            .expect("valid");
        assert!(matches!(
            MissionRunner::resume(&scenario, &other_cfg, &payload),
            Err(CkptError::Mismatch(_))
        ));
    }

    #[test]
    fn truncated_payloads_error_instead_of_panicking() {
        let scenario = persistent_surveillance(80, 11);
        let config = cfg();
        let mut runner = MissionRunner::new(&scenario, &config);
        runner.step_window().window_stat().expect("window 0");
        let payload = runner.save().expect("checkpointable");
        // Every prefix must decode to an error, never panic. Stride keeps
        // the test fast on multi-hundred-KB payloads.
        for len in (0..payload.len()).step_by(97) {
            assert!(
                MissionRunner::resume(&scenario, &config, &payload[..len]).is_err(),
                "prefix of {len} bytes must be rejected"
            );
        }
        // Trailing garbage is rejected too.
        let mut padded = payload;
        padded.push(0);
        assert!(MissionRunner::resume(&scenario, &config, &padded).is_err());
    }
}
