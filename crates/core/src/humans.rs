//! Human-asset characterization: bootstrapping trust from report history.
//!
//! §III-A ("Human assets"): social sensing offers "estimation-theoretic
//! and system identification-based approaches to characterize human
//! sources … to offer a foundation for identifying and characterizing
//! human components that work in various capacities within an IoBT."
//!
//! This module closes the loop between the [truth-discovery
//! service](iobt_truth) and the [trust ledger](iobt_types::TrustLedger):
//! humans file claims, the EM fact-finder estimates each source's
//! accuracy *without ground truth*, and that estimate becomes trust
//! evidence gating future recruitment.

use iobt_truth::{Report, TruthEstimate};
use iobt_types::{NodeId, TrustLedger};

/// Outcome of one trust-calibration pass.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationSummary {
    /// Sources whose evidence was updated (mapped node ids).
    pub updated: Vec<NodeId>,
    /// Sources skipped because they filed no reports.
    pub silent: Vec<NodeId>,
}

/// Folds an EM [`TruthEstimate`] into the trust ledger.
///
/// `source_ids[i]` is the node behind source index `i`. Each source's
/// estimated accuracy `a` over its `n` filed reports becomes
/// `round(a·n)` positive and `n − round(a·n)` negative evidence — so
/// prolific accurate witnesses gain trust fast, prolific liars lose it
/// fast, and silent sources are left untouched.
///
/// Sources must already be enrolled in the ledger; unknown ids are
/// counted as silent.
pub fn calibrate_human_trust(
    ledger: &mut TrustLedger,
    estimate: &TruthEstimate,
    reports: &[Report],
    source_ids: &[NodeId],
) -> CalibrationSummary {
    let mut report_counts = vec![0usize; source_ids.len()];
    for r in reports {
        if r.source < report_counts.len() {
            report_counts[r.source] += 1;
        }
    }
    let mut updated = Vec::new();
    let mut silent = Vec::new();
    for (i, &id) in source_ids.iter().enumerate() {
        let n = report_counts[i];
        if n == 0 || ledger.score(id).is_none() {
            silent.push(id);
            continue;
        }
        let accuracy = estimate
            .source_accuracy
            .get(i)
            .copied()
            .unwrap_or(0.5)
            .clamp(0.0, 1.0);
        let positives = (accuracy * n as f64).round() as usize;
        for _ in 0..positives {
            ledger.record_positive(id);
        }
        for _ in 0..n.saturating_sub(positives) {
            ledger.record_negative(id);
        }
        updated.push(id);
    }
    CalibrationSummary { updated, silent }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iobt_truth::{discover, EmConfig, ScenarioBuilder};
    use iobt_types::Affiliation;

    #[test]
    fn accurate_witnesses_gain_trust_liars_lose_it() {
        let s = ScenarioBuilder::new(30, 150)
            .observe_prob(0.5)
            .adversarial_fraction(0.3)
            .build(5);
        let estimate = discover(&s.reports, s.num_sources, s.num_claims, EmConfig::default());
        let source_ids: Vec<NodeId> = (0..30).map(|i| NodeId::new(i as u64)).collect();
        let mut ledger = TrustLedger::new();
        for &id in &source_ids {
            ledger.enroll(id, Affiliation::Gray);
        }
        let before: Vec<f64> = source_ids
            .iter()
            .map(|&id| ledger.score(id).unwrap().value())
            .collect();
        let summary =
            calibrate_human_trust(&mut ledger, &estimate, &s.reports, &source_ids);
        assert!(!summary.updated.is_empty());
        // Adversaries (ground truth) should have lost trust; honest
        // high-reliability sources should have gained.
        let mut adv_deltas = Vec::new();
        let mut honest_deltas = Vec::new();
        for (i, &id) in source_ids.iter().enumerate() {
            let delta = ledger.score(id).unwrap().value() - before[i];
            if s.adversarial[i] {
                adv_deltas.push(delta);
            } else if s.reliability[i] > 0.8 {
                honest_deltas.push(delta);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(mean(&adv_deltas) < -0.1, "liars lose trust: {}", mean(&adv_deltas));
        assert!(
            mean(&honest_deltas) > 0.1,
            "good witnesses gain trust: {}",
            mean(&honest_deltas)
        );
    }

    #[test]
    fn silent_and_unenrolled_sources_are_skipped() {
        let s = ScenarioBuilder::new(3, 20).observe_prob(0.0).build(1);
        let estimate = discover(&s.reports, 3, 20, EmConfig::default());
        let ids = vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)];
        let mut ledger = TrustLedger::new();
        ledger.enroll(NodeId::new(1), Affiliation::Gray);
        let before = ledger.score(NodeId::new(1)).unwrap();
        let summary = calibrate_human_trust(&mut ledger, &estimate, &s.reports, &ids);
        assert!(summary.updated.is_empty(), "no reports, no updates");
        assert_eq!(summary.silent.len(), 3);
        assert_eq!(ledger.score(NodeId::new(1)).unwrap(), before);
    }

    #[test]
    fn calibration_gates_future_recruitment() {
        // A liar that started at the neutral gray prior should fall below
        // the default recruitment trust floor after calibration. (Kept
        // below 50% adversarial mass — at 50/50 the truth-discovery
        // problem loses identifiability and EM may lock onto the inverted
        // labeling.)
        let s = ScenarioBuilder::new(20, 200)
            .observe_prob(0.8)
            .adversarial_fraction(0.3)
            .build(9);
        let estimate = discover(&s.reports, s.num_sources, s.num_claims, EmConfig::default());
        let ids: Vec<NodeId> = (0..20).map(|i| NodeId::new(i as u64)).collect();
        let mut ledger = TrustLedger::new();
        for &id in &ids {
            ledger.enroll(id, Affiliation::Gray);
        }
        calibrate_human_trust(&mut ledger, &estimate, &s.reports, &ids);
        for (i, &id) in ids.iter().enumerate() {
            let score = ledger.score(id).unwrap().value();
            if s.adversarial[i] {
                assert!(score < 0.4, "source {i} should be distrusted: {score}");
            }
        }
    }
}
