//! Side-channel emission features and their generative model.
//!
//! §III of the paper calls for "algorithms for discovery of gray/red nodes
//! using side channel emanations". Real RF fingerprinting extracts features
//! from captured traffic; since no battlefield captures exist, we use a
//! class-conditional generative model whose features mimic what a spectrum
//! monitor would measure. The class overlap is tuned so classification is
//! informative but imperfect — reproducing the precision/recall trade-off
//! the paper's discovery challenge is about.

use iobt_types::Affiliation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Number of features in an [`EmissionFeatures`] vector.
pub const FEATURE_DIM: usize = 6;

/// Features extracted from observing a node's RF emissions over a window.
///
/// All features are continuous; see [`EmissionFeatures::as_array`] for the
/// canonical ordering used by classifiers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmissionFeatures {
    /// Fraction of the window the node was transmitting, in `[0, 1]`.
    pub duty_cycle: f64,
    /// Mean interval between transmissions, seconds.
    pub mean_interval_s: f64,
    /// Coefficient of variation of intervals (regularity; military
    /// scheduled waveforms are low, human-driven traffic is high).
    pub interval_cv: f64,
    /// Mean burst length, milliseconds.
    pub burst_ms: f64,
    /// Frequency-hop rate, hops per second (military anti-jam waveforms hop).
    pub hop_rate_hz: f64,
    /// Mean received power, dBm (proxy for transmit power class).
    pub power_dbm: f64,
}

impl EmissionFeatures {
    /// The features as a fixed-size array in canonical order.
    pub fn as_array(&self) -> [f64; FEATURE_DIM] {
        [
            self.duty_cycle,
            self.mean_interval_s,
            self.interval_cv,
            self.burst_ms,
            self.hop_rate_hz,
            self.power_dbm,
        ]
    }

    /// Builds features from the canonical array order.
    pub fn from_array(a: [f64; FEATURE_DIM]) -> Self {
        EmissionFeatures {
            duty_cycle: a[0],
            mean_interval_s: a[1],
            interval_cv: a[2],
            burst_ms: a[3],
            hop_rate_hz: a[4],
            power_dbm: a[5],
        }
    }
}

/// Class-conditional means for each affiliation, in canonical feature order.
///
/// Blue: scheduled, frequency-hopping, moderate power tactical waveforms.
/// Red: covert — low duty cycle, irregular, short weak bursts, some hopping.
/// Gray: commercial — chatty, no hopping, strong consumer radios.
fn class_mean(class: Affiliation) -> [f64; FEATURE_DIM] {
    match class {
        Affiliation::Blue => [0.30, 2.0, 0.25, 12.0, 150.0, -55.0],
        Affiliation::Red => [0.05, 9.0, 0.9, 4.0, 60.0, -75.0],
        Affiliation::Gray => [0.45, 1.0, 1.2, 30.0, 2.0, -50.0],
    }
}

/// Class-conditional standard deviations (same for every class, scaled per
/// feature). The `noise` multiplier widens them to model poor collection
/// geometry.
fn class_sigma(noise: f64) -> [f64; FEATURE_DIM] {
    let base = [0.10, 2.0, 0.35, 8.0, 40.0, 10.0];
    let mut out = [0.0; FEATURE_DIM];
    for (o, b) in out.iter_mut().zip(base) {
        *o = b * noise;
    }
    out
}

/// Generative model of emission observations.
///
/// `observation_window_s` controls estimation quality: features are averages
/// over the window, so their sampling noise shrinks as `1/sqrt(window)`
/// (longer surveillance of a node pins down its fingerprint). `noise`
/// scales all spreads; `1.0` is the calibrated default.
#[derive(Debug, Clone)]
pub struct EmissionModel {
    rng: StdRng,
    observation_window_s: f64,
    noise: f64,
}

impl EmissionModel {
    /// Reference window length at which `noise` applies unscaled.
    pub const REFERENCE_WINDOW_S: f64 = 60.0;

    /// Creates a model with the given seed, a 60 s window and unit noise.
    pub fn new(seed: u64) -> Self {
        EmissionModel {
            rng: StdRng::seed_from_u64(seed),
            observation_window_s: Self::REFERENCE_WINDOW_S,
            noise: 1.0,
        }
    }

    /// Sets the observation window (clamped to ≥ 1 s).
    pub fn with_window_s(mut self, window_s: f64) -> Self {
        self.observation_window_s = window_s.max(1.0);
        self
    }

    /// Sets the noise multiplier (clamped to ≥ 0.01).
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise.max(0.01);
        self
    }

    /// Effective per-feature sigma after window averaging.
    fn effective_sigma(&self) -> [f64; FEATURE_DIM] {
        let shrink = (Self::REFERENCE_WINDOW_S / self.observation_window_s).sqrt();
        let mut s = class_sigma(self.noise);
        for v in &mut s {
            *v *= shrink;
        }
        s
    }

    /// Samples one observation of a node of the given class.
    pub fn observe(&mut self, class: Affiliation) -> EmissionFeatures {
        let mean = class_mean(class);
        let sigma = self.effective_sigma();
        let mut values = [0.0; FEATURE_DIM];
        for i in 0..FEATURE_DIM {
            // lint: allow(panic) — mean is a fixed table and sigma is clamped positive, so the params are valid
            let normal = Normal::new(mean[i], sigma[i].max(1e-9)).expect("finite params");
            values[i] = normal.sample(&mut self.rng);
        }
        // Physical clamps.
        values[0] = values[0].clamp(0.0, 1.0); // duty cycle
        values[1] = values[1].max(0.01); // interval
        values[2] = values[2].max(0.0); // CV
        values[3] = values[3].max(0.1); // burst
        values[4] = values[4].max(0.0); // hop rate
        EmissionFeatures::from_array(values)
    }

    /// Samples a labelled dataset of `per_class` observations per
    /// affiliation, interleaved deterministically.
    pub fn labelled_dataset(
        &mut self,
        per_class: usize,
    ) -> Vec<(EmissionFeatures, Affiliation)> {
        let mut data = Vec::with_capacity(per_class * 3);
        for i in 0..per_class {
            for class in Affiliation::ALL {
                let _ = i;
                data.push((self.observe(class), class));
            }
        }
        data
    }

    /// Samples an observation with a mislabeling adversary: with
    /// probability `spoof_prob`, a red node imitates the gray feature
    /// profile (traffic-shape camouflage).
    pub fn observe_with_spoofing(
        &mut self,
        class: Affiliation,
        spoof_prob: f64,
    ) -> EmissionFeatures {
        if class == Affiliation::Red && self.rng.gen::<f64>() < spoof_prob {
            self.observe(Affiliation::Gray)
        } else {
            self.observe(class)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_roundtrip() {
        let f = EmissionFeatures {
            duty_cycle: 0.2,
            mean_interval_s: 3.0,
            interval_cv: 0.5,
            burst_ms: 10.0,
            hop_rate_hz: 100.0,
            power_dbm: -60.0,
        };
        assert_eq!(EmissionFeatures::from_array(f.as_array()), f);
    }

    #[test]
    fn observations_are_physically_valid() {
        let mut m = EmissionModel::new(1).with_noise(3.0);
        for class in Affiliation::ALL {
            for _ in 0..200 {
                let f = m.observe(class);
                assert!((0.0..=1.0).contains(&f.duty_cycle));
                assert!(f.mean_interval_s > 0.0);
                assert!(f.interval_cv >= 0.0);
                assert!(f.burst_ms > 0.0);
                assert!(f.hop_rate_hz >= 0.0);
            }
        }
    }

    #[test]
    fn classes_are_separated_on_average() {
        let mut m = EmissionModel::new(2);
        let avg_hop = |m: &mut EmissionModel, c| {
            (0..200).map(|_| m.observe(c).hop_rate_hz).sum::<f64>() / 200.0
        };
        let blue = avg_hop(&mut m, Affiliation::Blue);
        let gray = avg_hop(&mut m, Affiliation::Gray);
        assert!(blue > gray + 50.0, "blue hops, gray does not: {blue} vs {gray}");
    }

    #[test]
    fn longer_windows_reduce_variance() {
        let sample_var = |window: f64| {
            let mut m = EmissionModel::new(3).with_window_s(window);
            let xs: Vec<f64> = (0..300).map(|_| m.observe(Affiliation::Blue).power_dbm).collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64
        };
        let short = sample_var(10.0);
        let long = sample_var(600.0);
        assert!(long < short, "window averaging must shrink variance: {long} vs {short}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = EmissionModel::new(9);
        let mut b = EmissionModel::new(9);
        for class in Affiliation::ALL {
            assert_eq!(a.observe(class), b.observe(class));
        }
    }

    #[test]
    fn labelled_dataset_is_balanced() {
        let mut m = EmissionModel::new(4);
        let data = m.labelled_dataset(50);
        assert_eq!(data.len(), 150);
        for class in Affiliation::ALL {
            assert_eq!(data.iter().filter(|(_, c)| *c == class).count(), 50);
        }
    }

    #[test]
    fn spoofing_shifts_red_toward_gray() {
        let mut m = EmissionModel::new(5);
        let honest: f64 = (0..300)
            .map(|_| m.observe_with_spoofing(Affiliation::Red, 0.0).duty_cycle)
            .sum::<f64>()
            / 300.0;
        let spoofed: f64 = (0..300)
            .map(|_| m.observe_with_spoofing(Affiliation::Red, 1.0).duty_cycle)
            .sum::<f64>()
            / 300.0;
        assert!(spoofed > honest + 0.2, "fully spoofed red looks gray");
    }
}
