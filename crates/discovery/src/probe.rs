//! Active probing of intermittently-connected cyberphysical assets.
//!
//! §III-A: mobile wireless assets "may be intermittently connected, so may
//! not consistently respond to probes or emit traffic". The [`Prober`]
//! issues probe rounds against nodes with duty-cycled availability and
//! builds per-node [`ProbeProfile`]s (availability, latency fingerprint)
//! that feed capability characterization.

use std::collections::BTreeMap;

use iobt_types::{ComputeClass, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ground-truth responsiveness of one probed node (the simulator side).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeTarget {
    /// Node identity.
    pub id: NodeId,
    /// Probability the node is awake for any given probe, in `[0, 1]`.
    pub availability: f64,
    /// True compute class (drives response latency).
    pub compute: ComputeClass,
}

impl ProbeTarget {
    /// Creates a target, clamping availability into `[0, 1]`.
    pub fn new(id: NodeId, availability: f64, compute: ComputeClass) -> Self {
        ProbeTarget {
            id,
            availability: availability.clamp(0.0, 1.0),
            compute,
        }
    }
}

/// One probe outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeRecord {
    /// Node probed.
    pub id: NodeId,
    /// Whether a response arrived.
    pub responded: bool,
    /// Response latency in milliseconds (meaningful only when `responded`).
    pub latency_ms: f64,
}

/// Accumulated observations about one node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProbeProfile {
    probes: u64,
    responses: u64,
    latency_sum_ms: f64,
    latency_sq_sum_ms: f64,
}

impl ProbeProfile {
    /// Number of probes issued.
    pub const fn probes(&self) -> u64 {
        self.probes
    }

    /// Estimated availability (response fraction), or `0.0` when unprobed.
    pub fn availability(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.responses as f64 / self.probes as f64
        }
    }

    /// Mean response latency in ms, or `None` without any response.
    pub fn mean_latency_ms(&self) -> Option<f64> {
        if self.responses == 0 {
            None
        } else {
            Some(self.latency_sum_ms / self.responses as f64)
        }
    }

    /// Infers the compute class from the latency fingerprint: faster
    /// machines answer probes quicker. Returns `None` without responses.
    pub fn inferred_compute(&self) -> Option<ComputeClass> {
        let latency = self.mean_latency_ms()?;
        Some(match latency {
            l if l < 2.0 => ComputeClass::EdgeCloud,
            l if l < 8.0 => ComputeClass::EdgeServer,
            l if l < 40.0 => ComputeClass::Embedded,
            _ => ComputeClass::Disposable,
        })
    }

    fn record(&mut self, r: ProbeRecord) {
        self.probes += 1;
        if r.responded {
            self.responses += 1;
            self.latency_sum_ms += r.latency_ms;
            self.latency_sq_sum_ms += r.latency_ms * r.latency_ms;
        }
    }
}

/// Issues probe rounds and accumulates [`ProbeProfile`]s.
#[derive(Debug)]
pub struct Prober {
    rng: StdRng,
    profiles: BTreeMap<NodeId, ProbeProfile>,
}

/// Nominal probe-response latency by compute class, in ms.
fn base_latency_ms(compute: ComputeClass) -> f64 {
    match compute {
        ComputeClass::EdgeCloud => 1.0,
        ComputeClass::EdgeServer => 5.0,
        ComputeClass::Embedded => 20.0,
        ComputeClass::Disposable => 80.0,
    }
}

impl Prober {
    /// Creates a prober with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Prober {
            rng: StdRng::seed_from_u64(seed),
            profiles: BTreeMap::new(),
        }
    }

    /// Probes every target once, returning this round's records and
    /// folding them into the profiles.
    pub fn probe_round(&mut self, targets: &[ProbeTarget]) -> Vec<ProbeRecord> {
        let mut records = Vec::with_capacity(targets.len());
        for t in targets {
            let responded = self.rng.gen::<f64>() < t.availability;
            let latency_ms = if responded {
                let base = base_latency_ms(t.compute);
                // Multiplicative jitter in [0.7, 1.6).
                base * self.rng.gen_range(0.7..1.6)
            } else {
                0.0
            };
            let record = ProbeRecord {
                id: t.id,
                responded,
                latency_ms,
            };
            self.profiles.entry(t.id).or_default().record(record);
            records.push(record);
        }
        records
    }

    /// Runs `rounds` probe rounds.
    pub fn probe_rounds(&mut self, targets: &[ProbeTarget], rounds: usize) {
        for _ in 0..rounds {
            self.probe_round(targets);
        }
    }

    /// Profile of one node, if it has ever been probed.
    pub fn profile(&self, id: NodeId) -> Option<&ProbeProfile> {
        self.profiles.get(&id)
    }

    /// Nodes whose estimated availability clears `threshold`, ascending id.
    pub fn available_nodes(&self, threshold: f64) -> Vec<NodeId> {
        self.profiles
            .iter()
            .filter(|(_, p)| p.availability() >= threshold)
            .map(|(&id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets() -> Vec<ProbeTarget> {
        vec![
            ProbeTarget::new(NodeId::new(1), 0.95, ComputeClass::EdgeCloud),
            ProbeTarget::new(NodeId::new(2), 0.5, ComputeClass::Embedded),
            ProbeTarget::new(NodeId::new(3), 0.05, ComputeClass::Disposable),
        ]
    }

    #[test]
    fn availability_estimates_converge() {
        let mut p = Prober::new(1);
        p.probe_rounds(&targets(), 400);
        let est1 = p.profile(NodeId::new(1)).unwrap().availability();
        let est2 = p.profile(NodeId::new(2)).unwrap().availability();
        let est3 = p.profile(NodeId::new(3)).unwrap().availability();
        assert!((est1 - 0.95).abs() < 0.06, "{est1}");
        assert!((est2 - 0.5).abs() < 0.08, "{est2}");
        assert!((est3 - 0.05).abs() < 0.05, "{est3}");
    }

    #[test]
    fn compute_class_is_inferred_from_latency() {
        let mut p = Prober::new(2);
        p.probe_rounds(&targets(), 200);
        assert_eq!(
            p.profile(NodeId::new(1)).unwrap().inferred_compute(),
            Some(ComputeClass::EdgeCloud)
        );
        assert_eq!(
            p.profile(NodeId::new(2)).unwrap().inferred_compute(),
            Some(ComputeClass::Embedded)
        );
    }

    #[test]
    fn unresponsive_nodes_have_no_latency_estimate() {
        let t = [ProbeTarget::new(NodeId::new(9), 0.0, ComputeClass::Embedded)];
        let mut p = Prober::new(3);
        p.probe_rounds(&t, 50);
        let profile = p.profile(NodeId::new(9)).unwrap();
        assert_eq!(profile.availability(), 0.0);
        assert_eq!(profile.mean_latency_ms(), None);
        assert_eq!(profile.inferred_compute(), None);
    }

    #[test]
    fn available_nodes_filters_by_threshold() {
        let mut p = Prober::new(4);
        p.probe_rounds(&targets(), 300);
        let available = p.available_nodes(0.4);
        assert!(available.contains(&NodeId::new(1)));
        assert!(available.contains(&NodeId::new(2)));
        assert!(!available.contains(&NodeId::new(3)));
    }

    #[test]
    fn probing_is_deterministic_per_seed() {
        let mut a = Prober::new(7);
        let mut b = Prober::new(7);
        let ra = a.probe_round(&targets());
        let rb = b.probe_round(&targets());
        assert_eq!(ra, rb);
    }

    #[test]
    fn clamped_availability() {
        let t = ProbeTarget::new(NodeId::new(1), 1.7, ComputeClass::Embedded);
        assert_eq!(t.availability, 1.0);
    }
}
