//! From-scratch affiliation classifiers over emission features.
//!
//! Two standard models are implemented directly (no ML dependency):
//! a Gaussian [`NaiveBayes`] and a softmax [`LogisticClassifier`] trained
//! with mini-batch SGD. Both consume [`EmissionFeatures`] and predict an
//! [`Affiliation`] with class probabilities, which downstream recruitment
//! uses to gate trust.

// Index loops mirror the math notation (sums over classes c and features
// j on fixed-size arrays); iterator chains obscure them here.
#![allow(clippy::needless_range_loop)]

use iobt_types::Affiliation;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::features::{EmissionFeatures, FEATURE_DIM};
use crate::metrics::ConfusionMatrix;

/// A classifier from emission features to affiliation posteriors.
pub trait AffiliationClassifier {
    /// Posterior probability of each class as `[blue, red, gray]`,
    /// summing to 1.
    fn posterior(&self, features: &EmissionFeatures) -> [f64; 3];

    /// The maximum-a-posteriori class.
    fn classify(&self, features: &EmissionFeatures) -> Affiliation {
        let p = self.posterior(features);
        let mut best = 0;
        for i in 1..3 {
            if p[i] > p[best] {
                best = i;
            }
        }
        // lint: allow(panic) — best is the argmax over exactly three classes, always a valid index
        Affiliation::from_index(best).expect("index in 0..3")
    }
}

/// Evaluates any classifier on a labelled test set.
pub fn evaluate<C: AffiliationClassifier + ?Sized>(
    classifier: &C,
    test: &[(EmissionFeatures, Affiliation)],
) -> ConfusionMatrix {
    let mut m = ConfusionMatrix::new();
    for (f, truth) in test {
        m.record(*truth, classifier.classify(f));
    }
    m
}

/// Gaussian Naive Bayes: per-class, per-feature normal likelihoods with
/// maximum-likelihood parameters.
///
/// ```
/// # use iobt_discovery::features::EmissionModel;
/// # use iobt_discovery::classifier::{AffiliationClassifier, NaiveBayes, evaluate};
/// let mut model = EmissionModel::new(1);
/// let train = model.labelled_dataset(200);
/// let test = model.labelled_dataset(100);
/// let nb = NaiveBayes::fit(&train).unwrap();
/// let confusion = evaluate(&nb, &test);
/// assert!(confusion.accuracy() > 0.7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayes {
    /// Class log-priors.
    log_prior: [f64; 3],
    /// Per class, per feature mean.
    mean: [[f64; FEATURE_DIM]; 3],
    /// Per class, per feature variance (floored for stability).
    var: [[f64; FEATURE_DIM]; 3],
}

impl NaiveBayes {
    /// Fits maximum-likelihood parameters. Returns `None` when any class
    /// has no training samples.
    pub fn fit(train: &[(EmissionFeatures, Affiliation)]) -> Option<Self> {
        let mut counts = [0usize; 3];
        let mut mean = [[0.0; FEATURE_DIM]; 3];
        for (f, c) in train {
            let ci = c.index();
            counts[ci] += 1;
            for (j, v) in f.as_array().into_iter().enumerate() {
                mean[ci][j] += v;
            }
        }
        if counts.contains(&0) {
            return None;
        }
        for c in 0..3 {
            for j in 0..FEATURE_DIM {
                mean[c][j] /= counts[c] as f64;
            }
        }
        let mut var = [[0.0; FEATURE_DIM]; 3];
        for (f, c) in train {
            let ci = c.index();
            for (j, v) in f.as_array().into_iter().enumerate() {
                let d = v - mean[ci][j];
                var[ci][j] += d * d;
            }
        }
        let total = train.len() as f64;
        let mut log_prior = [0.0; 3];
        for c in 0..3 {
            for j in 0..FEATURE_DIM {
                var[c][j] = (var[c][j] / counts[c] as f64).max(1e-6);
            }
            log_prior[c] = (counts[c] as f64 / total).ln();
        }
        Some(NaiveBayes {
            log_prior,
            mean,
            var,
        })
    }
}

impl AffiliationClassifier for NaiveBayes {
    fn posterior(&self, features: &EmissionFeatures) -> [f64; 3] {
        let x = features.as_array();
        let mut log_post = [0.0; 3];
        for c in 0..3 {
            let mut lp = self.log_prior[c];
            for j in 0..FEATURE_DIM {
                let d = x[j] - self.mean[c][j];
                lp += -0.5 * (2.0 * std::f64::consts::PI * self.var[c][j]).ln()
                    - 0.5 * d * d / self.var[c][j];
            }
            log_post[c] = lp;
        }
        softmax_from_logs(log_post)
    }
}

/// Multinomial logistic regression trained by mini-batch SGD on
/// standardized features.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticClassifier {
    /// Per class: weights + bias (last element).
    weights: [[f64; FEATURE_DIM + 1]; 3],
    /// Standardization: feature means.
    feat_mean: [f64; FEATURE_DIM],
    /// Standardization: feature standard deviations.
    feat_std: [f64; FEATURE_DIM],
}

/// Training hyperparameters for [`LogisticClassifier`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticConfig {
    /// Learning rate.
    pub learning_rate: f64,
    /// Number of full passes over the training data.
    pub epochs: usize,
    /// L2 regularization strength.
    pub l2: f64,
    /// RNG seed for shuffling.
    pub seed: u64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig {
            learning_rate: 0.1,
            epochs: 40,
            l2: 1e-4,
            seed: 0,
        }
    }
}

impl LogisticClassifier {
    /// Trains on the labelled set. Returns `None` when the training set is
    /// empty or any class is missing.
    pub fn fit(train: &[(EmissionFeatures, Affiliation)], config: LogisticConfig) -> Option<Self> {
        if train.is_empty() {
            return None;
        }
        let mut class_seen = [false; 3];
        for (_, c) in train {
            class_seen[c.index()] = true;
        }
        if class_seen.iter().any(|s| !s) {
            return None;
        }
        // Standardize features.
        let n = train.len() as f64;
        let mut feat_mean = [0.0; FEATURE_DIM];
        for (f, _) in train {
            for (j, v) in f.as_array().into_iter().enumerate() {
                feat_mean[j] += v / n;
            }
        }
        let mut feat_std = [0.0; FEATURE_DIM];
        for (f, _) in train {
            for (j, v) in f.as_array().into_iter().enumerate() {
                feat_std[j] += (v - feat_mean[j]).powi(2) / n;
            }
        }
        for s in &mut feat_std {
            *s = s.sqrt().max(1e-9);
        }
        let standardize = |f: &EmissionFeatures| {
            let mut x = f.as_array();
            for j in 0..FEATURE_DIM {
                x[j] = (x[j] - feat_mean[j]) / feat_std[j];
            }
            x
        };

        let mut weights = [[0.0; FEATURE_DIM + 1]; 3];
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let (f, truth) = &train[i];
                let x = standardize(f);
                let mut logits = [0.0; 3];
                for c in 0..3 {
                    logits[c] = weights[c][FEATURE_DIM]
                        + x.iter()
                            .zip(&weights[c][..FEATURE_DIM])
                            .map(|(xi, wi)| xi * wi)
                            .sum::<f64>();
                }
                let p = softmax_from_logs(logits);
                for c in 0..3 {
                    let err = p[c] - if c == truth.index() { 1.0 } else { 0.0 };
                    for j in 0..FEATURE_DIM {
                        weights[c][j] -= config.learning_rate
                            * (err * x[j] + config.l2 * weights[c][j]);
                    }
                    weights[c][FEATURE_DIM] -= config.learning_rate * err;
                }
            }
        }
        Some(LogisticClassifier {
            weights,
            feat_mean,
            feat_std,
        })
    }
}

impl AffiliationClassifier for LogisticClassifier {
    fn posterior(&self, features: &EmissionFeatures) -> [f64; 3] {
        let mut x = features.as_array();
        for j in 0..FEATURE_DIM {
            x[j] = (x[j] - self.feat_mean[j]) / self.feat_std[j];
        }
        let mut logits = [0.0; 3];
        for c in 0..3 {
            logits[c] = self.weights[c][FEATURE_DIM]
                + x.iter()
                    .zip(&self.weights[c][..FEATURE_DIM])
                    .map(|(xi, wi)| xi * wi)
                    .sum::<f64>();
        }
        softmax_from_logs(logits)
    }
}

fn softmax_from_logs(log_values: [f64; 3]) -> [f64; 3] {
    let max = log_values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut exp = [0.0; 3];
    let mut sum = 0.0;
    for c in 0..3 {
        exp[c] = (log_values[c] - max).exp();
        sum += exp[c];
    }
    for e in &mut exp {
        *e /= sum;
    }
    exp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::EmissionModel;

    type Labelled = Vec<(EmissionFeatures, Affiliation)>;

    fn split_data(seed: u64, per_class: usize) -> (Labelled, Labelled) {
        let mut model = EmissionModel::new(seed);
        let train = model.labelled_dataset(per_class);
        let test = model.labelled_dataset(per_class / 2);
        (train, test)
    }

    #[test]
    fn naive_bayes_beats_chance_comfortably() {
        let (train, test) = split_data(1, 300);
        let nb = NaiveBayes::fit(&train).unwrap();
        let m = evaluate(&nb, &test);
        assert!(m.accuracy() > 0.8, "NB accuracy {:.3}", m.accuracy());
    }

    #[test]
    fn logistic_beats_chance_comfortably() {
        let (train, test) = split_data(2, 300);
        let lr = LogisticClassifier::fit(&train, LogisticConfig::default()).unwrap();
        let m = evaluate(&lr, &test);
        assert!(m.accuracy() > 0.8, "LR accuracy {:.3}", m.accuracy());
    }

    #[test]
    fn posteriors_sum_to_one() {
        let (train, _) = split_data(3, 100);
        let nb = NaiveBayes::fit(&train).unwrap();
        let lr = LogisticClassifier::fit(&train, LogisticConfig::default()).unwrap();
        let mut model = EmissionModel::new(7);
        for class in Affiliation::ALL {
            let f = model.observe(class);
            for p in [nb.posterior(&f), lr.posterior(&f)] {
                assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
        }
    }

    #[test]
    fn fit_rejects_missing_classes() {
        let mut model = EmissionModel::new(4);
        let only_blue: Vec<_> = (0..20)
            .map(|_| (model.observe(Affiliation::Blue), Affiliation::Blue))
            .collect();
        assert!(NaiveBayes::fit(&only_blue).is_none());
        assert!(LogisticClassifier::fit(&only_blue, LogisticConfig::default()).is_none());
        assert!(LogisticClassifier::fit(&[], LogisticConfig::default()).is_none());
    }

    #[test]
    fn noisier_observations_hurt_accuracy() {
        let accuracy_at = |noise: f64| {
            let mut model = EmissionModel::new(5).with_noise(noise);
            let train = model.labelled_dataset(200);
            let test = model.labelled_dataset(100);
            let nb = NaiveBayes::fit(&train).unwrap();
            evaluate(&nb, &test).accuracy()
        };
        let clean = accuracy_at(0.5);
        let noisy = accuracy_at(6.0);
        assert!(clean > noisy, "clean {clean:.3} vs noisy {noisy:.3}");
    }

    #[test]
    fn spoofing_red_reduces_red_recall() {
        let mut model = EmissionModel::new(6);
        let train = model.labelled_dataset(300);
        let nb = NaiveBayes::fit(&train).unwrap();
        let recall_at = |spoof: f64, model: &mut EmissionModel| {
            let mut m = ConfusionMatrix::new();
            for _ in 0..300 {
                let f = model.observe_with_spoofing(Affiliation::Red, spoof);
                m.record(Affiliation::Red, nb.classify(&f));
            }
            m.recall(Affiliation::Red)
        };
        let honest = recall_at(0.0, &mut model);
        let spoofed = recall_at(0.8, &mut model);
        assert!(honest > spoofed + 0.2, "honest {honest:.3} vs spoofed {spoofed:.3}");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (train, _) = split_data(8, 100);
        let a = LogisticClassifier::fit(&train, LogisticConfig::default()).unwrap();
        let b = LogisticClassifier::fit(&train, LogisticConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}
