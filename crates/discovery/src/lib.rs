//! Asset discovery and recruitment for the IoBT (paper §III-A).
//!
//! The pipeline: a spectrum monitor observes [side-channel emission
//! features](features) of unknown nodes; from-scratch
//! [classifiers](classifier) estimate blue/red/gray affiliation; [active
//! probing](probe) characterizes availability and compute class of
//! intermittently-connected assets; the [tracker] fuses repeated
//! observations into per-asset estimates under mobility; and
//! [recruitment](mod@recruit) joins all evidence with the trust ledger to admit
//! assets into the pool that the synthesis engine composes from.
//!
//! # Examples
//!
//! ```
//! use iobt_discovery::prelude::*;
//! use iobt_types::Affiliation;
//!
//! // Train a side-channel classifier on synthetic emission captures.
//! let mut emissions = EmissionModel::new(42);
//! let train = emissions.labelled_dataset(200);
//! let nb = NaiveBayes::fit(&train).expect("all classes present");
//!
//! // Classify a fresh observation of a red emitter.
//! let obs = emissions.observe(Affiliation::Red);
//! let posterior = nb.posterior(&obs);
//! assert!((posterior.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classifier;
pub mod features;
pub mod metrics;
pub mod probe;
pub mod recruit;
pub mod tracker;

pub use classifier::{
    evaluate, AffiliationClassifier, LogisticClassifier, LogisticConfig, NaiveBayes,
};
pub use features::{EmissionFeatures, EmissionModel, FEATURE_DIM};
pub use metrics::ConfusionMatrix;
pub use probe::{ProbeProfile, ProbeRecord, ProbeTarget, Prober};
pub use recruit::{recruit, recruit_with_probes, RecruitPolicy, RecruitedAsset, RecruitmentPool};
pub use tracker::{AssetEstimate, DiscoveryTracker, TrackerConfig};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::{
        evaluate, recruit, recruit_with_probes, AffiliationClassifier, AssetEstimate, ConfusionMatrix,
        DiscoveryTracker, EmissionFeatures, EmissionModel, LogisticClassifier, LogisticConfig,
        NaiveBayes, ProbeTarget, Prober, RecruitPolicy, RecruitmentPool, TrackerConfig,
    };
}
