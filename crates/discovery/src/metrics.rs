//! Classification metrics: confusion matrices, precision/recall/F1.

use std::fmt;

use iobt_types::Affiliation;

/// A 3×3 confusion matrix over affiliations (rows = truth, cols = predicted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    counts: [[u64; 3]; 3],
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one (truth, prediction) pair.
    pub fn record(&mut self, truth: Affiliation, predicted: Affiliation) {
        self.counts[truth.index()][predicted.index()] += 1;
    }

    /// Count of samples with the given truth and prediction.
    pub fn count(&self, truth: Affiliation, predicted: Affiliation) -> u64 {
        self.counts[truth.index()][predicted.index()]
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy, or `0.0` when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..3).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Precision for one class: `TP / (TP + FP)`, or `0.0` with no
    /// positive predictions.
    pub fn precision(&self, class: Affiliation) -> f64 {
        let c = class.index();
        let tp = self.counts[c][c];
        let predicted: u64 = (0..3).map(|r| self.counts[r][c]).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall for one class: `TP / (TP + FN)`, or `0.0` with no true
    /// samples of the class.
    pub fn recall(&self, class: Affiliation) -> f64 {
        let c = class.index();
        let tp = self.counts[c][c];
        let actual: u64 = self.counts[c].iter().sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// F1 score for one class (harmonic mean of precision and recall).
    pub fn f1(&self, class: Affiliation) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean F1 across the three classes.
    pub fn macro_f1(&self) -> f64 {
        Affiliation::ALL.iter().map(|&c| self.f1(c)).sum::<f64>() / 3.0
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        for r in 0..3 {
            for c in 0..3 {
                self.counts[r][c] += other.counts[r][c];
            }
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "truth\\pred   blue    red   gray")?;
        for truth in Affiliation::ALL {
            write!(f, "{:<10}", truth.to_string())?;
            for pred in Affiliation::ALL {
                write!(f, " {:>6}", self.count(truth, pred))?;
            }
            writeln!(f)?;
        }
        write!(f, "accuracy={:.3} macroF1={:.3}", self.accuracy(), self.macro_f1())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag_matrix() -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new();
        for class in Affiliation::ALL {
            for _ in 0..10 {
                m.record(class, class);
            }
        }
        m
    }

    #[test]
    fn perfect_classifier_has_unit_metrics() {
        let m = diag_matrix();
        assert_eq!(m.accuracy(), 1.0);
        for class in Affiliation::ALL {
            assert_eq!(m.precision(class), 1.0);
            assert_eq!(m.recall(class), 1.0);
            assert_eq!(m.f1(class), 1.0);
        }
        assert_eq!(m.macro_f1(), 1.0);
    }

    #[test]
    fn empty_matrix_is_zeroed() {
        let m = ConfusionMatrix::new();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(Affiliation::Red), 0.0);
        assert_eq!(m.recall(Affiliation::Red), 0.0);
        assert_eq!(m.f1(Affiliation::Red), 0.0);
    }

    #[test]
    fn precision_and_recall_differ_under_asymmetric_errors() {
        let mut m = ConfusionMatrix::new();
        // 8 red classified red, 2 red classified gray,
        // 5 gray classified red (false alarms), 5 gray correct.
        for _ in 0..8 {
            m.record(Affiliation::Red, Affiliation::Red);
        }
        for _ in 0..2 {
            m.record(Affiliation::Red, Affiliation::Gray);
        }
        for _ in 0..5 {
            m.record(Affiliation::Gray, Affiliation::Red);
        }
        for _ in 0..5 {
            m.record(Affiliation::Gray, Affiliation::Gray);
        }
        assert!((m.recall(Affiliation::Red) - 0.8).abs() < 1e-12);
        assert!((m.precision(Affiliation::Red) - 8.0 / 13.0).abs() < 1e-12);
        assert!(m.f1(Affiliation::Red) > 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = diag_matrix();
        let b = diag_matrix();
        a.merge(&b);
        assert_eq!(a.total(), 60);
        assert_eq!(a.count(Affiliation::Blue, Affiliation::Blue), 20);
    }

    #[test]
    fn display_contains_class_names() {
        let s = diag_matrix().to_string();
        assert!(s.contains("blue"));
        assert!(s.contains("accuracy"));
    }
}
