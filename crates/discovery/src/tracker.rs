//! Continuous discovery: fusing repeated observations of moving assets.
//!
//! §III-A: assets "may move frequently, so their discovery needs to be
//! continuous". The [`DiscoveryTracker`] maintains one [`AssetEstimate`]
//! per node: a presence belief that decays between sightings, an
//! exponentially-weighted position estimate, and an affiliation posterior
//! fused across observations by accumulating classifier log-odds (naive
//! Bayes fusion — each observation is treated as independent evidence).

// Index loops over the fixed 3-class arrays mirror the math notation.
#![allow(clippy::needless_range_loop)]

use std::collections::BTreeMap;

use iobt_types::{Affiliation, NodeId, Point};

/// Fused state of one discovered asset.
#[derive(Debug, Clone, PartialEq)]
pub struct AssetEstimate {
    id: NodeId,
    observations: u64,
    last_seen_s: f64,
    position: Point,
    log_posterior: [f64; 3],
}

impl AssetEstimate {
    /// Node identity.
    pub const fn id(&self) -> NodeId {
        self.id
    }

    /// Number of fused observations.
    pub const fn observations(&self) -> u64 {
        self.observations
    }

    /// Time of the latest sighting, in seconds.
    pub const fn last_seen_s(&self) -> f64 {
        self.last_seen_s
    }

    /// Smoothed position estimate.
    pub const fn position(&self) -> Point {
        self.position
    }

    /// Fused affiliation posterior as `[blue, red, gray]`, summing to 1.
    pub fn posterior(&self) -> [f64; 3] {
        let max = self
            .log_posterior
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let mut exp = [0.0; 3];
        let mut sum = 0.0;
        for i in 0..3 {
            exp[i] = (self.log_posterior[i] - max).exp();
            sum += exp[i];
        }
        for e in &mut exp {
            *e /= sum;
        }
        exp
    }

    /// Most likely affiliation.
    pub fn affiliation(&self) -> Affiliation {
        let p = self.posterior();
        let mut best = 0;
        for i in 1..3 {
            if p[i] > p[best] {
                best = i;
            }
        }
        // lint: allow(panic) — best is the argmax over exactly three classes, always a valid index
        Affiliation::from_index(best).expect("index in 0..3")
    }

    /// Confidence: the posterior mass of the winning class, in `[1/3, 1]`.
    pub fn confidence(&self) -> f64 {
        self.posterior()
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Presence belief at time `now_s`: decays as `exp(-(now - last)/tau)`.
    pub fn presence(&self, now_s: f64, tau_s: f64) -> f64 {
        let dt = (now_s - self.last_seen_s).max(0.0);
        (-dt / tau_s.max(1e-9)).exp()
    }
}

/// Tracker configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackerConfig {
    /// Presence decay constant in seconds: an asset unseen for `tau_s`
    /// drops to presence ≈ 0.37.
    pub presence_tau_s: f64,
    /// Position EMA weight for new observations, in `(0, 1]`.
    pub position_alpha: f64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig {
            presence_tau_s: 120.0,
            position_alpha: 0.5,
        }
    }
}

/// Fuses observations into per-asset estimates.
///
/// ```
/// # use iobt_discovery::tracker::{DiscoveryTracker, TrackerConfig};
/// # use iobt_types::{NodeId, Point};
/// let mut tracker = DiscoveryTracker::new(TrackerConfig::default());
/// // Two sightings: the second posterior is strongly red.
/// tracker.observe(NodeId::new(1), 10.0, Point::new(5.0, 5.0), [0.2, 0.6, 0.2]);
/// tracker.observe(NodeId::new(1), 20.0, Point::new(6.0, 5.0), [0.1, 0.8, 0.1]);
/// let est = tracker.estimate(NodeId::new(1)).unwrap();
/// assert_eq!(est.affiliation(), iobt_types::Affiliation::Red);
/// assert!(est.presence(21.0, 120.0) > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct DiscoveryTracker {
    config: TrackerConfig,
    assets: BTreeMap<NodeId, AssetEstimate>,
}

impl DiscoveryTracker {
    /// Creates an empty tracker.
    pub fn new(config: TrackerConfig) -> Self {
        DiscoveryTracker {
            config,
            assets: BTreeMap::new(),
        }
    }

    /// Number of tracked assets.
    pub fn len(&self) -> usize {
        self.assets.len()
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.assets.is_empty()
    }

    /// Fuses one observation: a sighting of `id` at `now_s` and `position`
    /// with a classifier posterior for this single observation.
    ///
    /// Out-of-order observations (older than the last sighting) still
    /// contribute evidence but do not move `last_seen` backwards.
    pub fn observe(&mut self, id: NodeId, now_s: f64, position: Point, posterior: [f64; 3]) {
        let entry = self.assets.entry(id).or_insert_with(|| AssetEstimate {
            id,
            observations: 0,
            last_seen_s: now_s,
            position,
            log_posterior: [0.0; 3],
        });
        entry.observations += 1;
        if now_s >= entry.last_seen_s {
            entry.last_seen_s = now_s;
            let a = self.config.position_alpha;
            entry.position = Point::new(
                entry.position.x * (1.0 - a) + position.x * a,
                entry.position.y * (1.0 - a) + position.y * a,
            );
        }
        for i in 0..3 {
            entry.log_posterior[i] += posterior[i].max(1e-12).ln();
        }
    }

    /// Current estimate for a node, if ever observed.
    pub fn estimate(&self, id: NodeId) -> Option<&AssetEstimate> {
        self.assets.get(&id)
    }

    /// All assets with presence ≥ `min_presence` at `now_s`, ascending id.
    pub fn present_assets(&self, now_s: f64, min_presence: f64) -> Vec<&AssetEstimate> {
        self.assets
            .values()
            .filter(|a| a.presence(now_s, self.config.presence_tau_s) >= min_presence)
            .collect()
    }

    /// Assets whose red-posterior exceeds `threshold` — the suspected
    /// adversarial set handed to security monitoring.
    pub fn suspected_red(&self, threshold: f64) -> Vec<NodeId> {
        self.assets
            .values()
            .filter(|a| a.posterior()[Affiliation::Red.index()] >= threshold)
            .map(|a| a.id)
            .collect()
    }

    /// Drops assets unseen since before `cutoff_s` (garbage collection for
    /// long-running deployments under churn).
    pub fn evict_stale(&mut self, cutoff_s: f64) -> usize {
        let before = self.assets.len();
        self.assets.retain(|_, a| a.last_seen_s >= cutoff_s);
        before - self.assets.len()
    }

    /// Iterates over all estimates, ascending id.
    pub fn iter(&self) -> impl Iterator<Item = &AssetEstimate> {
        self.assets.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> DiscoveryTracker {
        DiscoveryTracker::new(TrackerConfig::default())
    }

    #[test]
    fn fusion_sharpens_posterior() {
        let mut t = tracker();
        let weak_red = [0.25, 0.5, 0.25];
        t.observe(NodeId::new(1), 0.0, Point::ORIGIN, weak_red);
        let p1 = t.estimate(NodeId::new(1)).unwrap().posterior()[1];
        for i in 1..5 {
            t.observe(NodeId::new(1), i as f64, Point::ORIGIN, weak_red);
        }
        let p5 = t.estimate(NodeId::new(1)).unwrap().posterior()[1];
        assert!(p5 > p1, "repeated weak evidence compounds: {p1:.3} -> {p5:.3}");
        assert!(p5 > 0.9);
    }

    #[test]
    fn conflicting_evidence_cancels() {
        let mut t = tracker();
        t.observe(NodeId::new(1), 0.0, Point::ORIGIN, [0.6, 0.2, 0.2]);
        t.observe(NodeId::new(1), 1.0, Point::ORIGIN, [0.2, 0.6, 0.2]);
        let p = t.estimate(NodeId::new(1)).unwrap().posterior();
        assert!((p[0] - p[1]).abs() < 1e-9, "blue and red evidence balance");
    }

    #[test]
    fn presence_decays_between_sightings() {
        let mut t = tracker();
        t.observe(NodeId::new(1), 100.0, Point::ORIGIN, [1.0 / 3.0; 3]);
        let e = t.estimate(NodeId::new(1)).unwrap();
        assert!(e.presence(100.0, 120.0) > 0.999);
        assert!((e.presence(220.0, 120.0) - (-1.0f64).exp()).abs() < 1e-9);
        assert!(e.presence(1_000.0, 120.0) < 0.001);
    }

    #[test]
    fn position_smoothing_follows_movement() {
        let mut t = tracker();
        t.observe(NodeId::new(1), 0.0, Point::new(0.0, 0.0), [1.0 / 3.0; 3]);
        t.observe(NodeId::new(1), 1.0, Point::new(10.0, 0.0), [1.0 / 3.0; 3]);
        let p = t.estimate(NodeId::new(1)).unwrap().position();
        assert!((p.x - 5.0).abs() < 1e-9, "EMA with alpha 0.5: {p}");
    }

    #[test]
    fn out_of_order_observations_do_not_rewind_last_seen() {
        let mut t = tracker();
        t.observe(NodeId::new(1), 50.0, Point::ORIGIN, [0.2, 0.6, 0.2]);
        t.observe(NodeId::new(1), 10.0, Point::new(100.0, 0.0), [0.2, 0.6, 0.2]);
        let e = t.estimate(NodeId::new(1)).unwrap();
        assert_eq!(e.last_seen_s(), 50.0);
        assert_eq!(e.position(), Point::ORIGIN, "stale position ignored");
        assert_eq!(e.observations(), 2, "evidence still fused");
    }

    #[test]
    fn suspected_red_lists_high_posterior_nodes() {
        let mut t = tracker();
        t.observe(NodeId::new(1), 0.0, Point::ORIGIN, [0.05, 0.9, 0.05]);
        t.observe(NodeId::new(2), 0.0, Point::ORIGIN, [0.9, 0.05, 0.05]);
        assert_eq!(t.suspected_red(0.5), vec![NodeId::new(1)]);
    }

    #[test]
    fn evict_stale_removes_old_tracks() {
        let mut t = tracker();
        t.observe(NodeId::new(1), 10.0, Point::ORIGIN, [1.0 / 3.0; 3]);
        t.observe(NodeId::new(2), 500.0, Point::ORIGIN, [1.0 / 3.0; 3]);
        let evicted = t.evict_stale(100.0);
        assert_eq!(evicted, 1);
        assert!(t.estimate(NodeId::new(1)).is_none());
        assert!(t.estimate(NodeId::new(2)).is_some());
    }

    #[test]
    fn present_assets_filters_and_orders() {
        let mut t = tracker();
        t.observe(NodeId::new(3), 100.0, Point::ORIGIN, [1.0 / 3.0; 3]);
        t.observe(NodeId::new(1), 100.0, Point::ORIGIN, [1.0 / 3.0; 3]);
        t.observe(NodeId::new(2), 0.0, Point::ORIGIN, [1.0 / 3.0; 3]);
        let present = t.present_assets(101.0, 0.5);
        let ids: Vec<NodeId> = present.iter().map(|a| a.id()).collect();
        assert_eq!(ids, vec![NodeId::new(1), NodeId::new(3)]);
    }
}
