//! Recruitment: turning discovery output into an eligible asset pool.
//!
//! Recruitment joins three evidence streams — the [tracker's affiliation
//! estimates](crate::tracker), [probe availability](crate::probe), and the
//! [trust ledger](iobt_types::TrustLedger) — and admits assets into a
//! [`RecruitmentPool`] that the synthesis engine composes from. Suspected
//! red assets are excluded and reported separately (§III-A, resilience to
//! adversarial behaviour).

use iobt_types::{Affiliation, NodeCatalog, NodeId, NodeSpec, TrustLedger};

use crate::probe::Prober;
use crate::tracker::DiscoveryTracker;

/// Recruitment policy thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecruitPolicy {
    /// Minimum trust-ledger score.
    pub min_trust: f64,
    /// Minimum presence belief at recruitment time.
    pub min_presence: f64,
    /// Red-posterior above which an asset is rejected outright.
    pub max_red_posterior: f64,
    /// Whether gray (civilian) assets may be recruited at all.
    pub allow_gray: bool,
    /// Minimum probe-measured availability (duty-cycled assets that
    /// rarely answer are poor mission components). Only enforced when
    /// probe data is supplied to [`recruit_with_probes`].
    pub min_availability: f64,
}

impl Default for RecruitPolicy {
    fn default() -> Self {
        RecruitPolicy {
            min_trust: 0.4,
            min_presence: 0.3,
            max_red_posterior: 0.5,
            allow_gray: true,
            min_availability: 0.2,
        }
    }
}

/// An asset admitted to the pool, with the evidence that admitted it.
#[derive(Debug, Clone, PartialEq)]
pub struct RecruitedAsset {
    /// The asset's full spec (as registered in the catalog).
    pub spec: NodeSpec,
    /// Estimated affiliation from discovery (may be wrong!).
    pub estimated_affiliation: Affiliation,
    /// Presence belief at recruitment time.
    pub presence: f64,
    /// Trust score at recruitment time.
    pub trust: f64,
}

/// Result of a recruitment pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecruitmentPool {
    /// Admitted assets, ascending id.
    pub admitted: Vec<RecruitedAsset>,
    /// Assets rejected as suspected red.
    pub rejected_red: Vec<NodeId>,
    /// Assets rejected for low trust, low presence, or policy.
    pub rejected_other: Vec<NodeId>,
}

impl RecruitmentPool {
    /// Number of admitted red infiltrators (requires ground truth; used by
    /// experiments to score recruitment quality).
    pub fn infiltration_count(&self) -> usize {
        self.admitted
            .iter()
            .filter(|a| a.spec.affiliation() == Affiliation::Red)
            .count()
    }

    /// Fraction of admitted assets that are truly adversarial.
    pub fn infiltration_rate(&self) -> f64 {
        if self.admitted.is_empty() {
            0.0
        } else {
            self.infiltration_count() as f64 / self.admitted.len() as f64
        }
    }

    /// Ids of admitted assets, ascending.
    pub fn admitted_ids(&self) -> Vec<NodeId> {
        self.admitted.iter().map(|a| a.spec.id()).collect()
    }
}

/// Runs a recruitment pass at time `now_s`.
///
/// Only nodes present in both the catalog and the tracker are considered:
/// recruitment cannot admit what discovery has not seen.
pub fn recruit(
    catalog: &NodeCatalog,
    tracker: &DiscoveryTracker,
    ledger: &TrustLedger,
    policy: &RecruitPolicy,
    now_s: f64,
    presence_tau_s: f64,
) -> RecruitmentPool {
    recruit_with_probes(catalog, tracker, ledger, policy, now_s, presence_tau_s, None)
}

/// [`recruit`] with probe-measured availability gating: assets whose
/// response fraction (from active probing, §III-A) falls below
/// `policy.min_availability` are rejected. Unprobed assets pass — probing
/// is evidence *against*, absence of probes is not evidence.
#[allow(clippy::too_many_arguments)]
pub fn recruit_with_probes(
    catalog: &NodeCatalog,
    tracker: &DiscoveryTracker,
    ledger: &TrustLedger,
    policy: &RecruitPolicy,
    now_s: f64,
    presence_tau_s: f64,
    prober: Option<&Prober>,
) -> RecruitmentPool {
    let mut pool = RecruitmentPool::default();
    for est in tracker.iter() {
        let Some(spec) = catalog.get(est.id()) else {
            continue;
        };
        let posterior = est.posterior();
        if posterior[Affiliation::Red.index()] >= policy.max_red_posterior {
            pool.rejected_red.push(est.id());
            continue;
        }
        let presence = est.presence(now_s, presence_tau_s);
        let trust = ledger
            .score(est.id())
            .map(|s| s.value())
            .unwrap_or_else(|| est.affiliation().prior_trust());
        let estimated = est.affiliation();
        let policy_ok = policy.allow_gray || estimated != Affiliation::Gray;
        let available_ok = prober
            .and_then(|p| p.profile(est.id()))
            .map(|profile| profile.availability() >= policy.min_availability)
            .unwrap_or(true);
        if presence < policy.min_presence
            || trust < policy.min_trust
            || !policy_ok
            || !available_ok
        {
            pool.rejected_other.push(est.id());
            continue;
        }
        pool.admitted.push(RecruitedAsset {
            spec: spec.clone(),
            estimated_affiliation: estimated,
            presence,
            trust,
        });
    }
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::{DiscoveryTracker, TrackerConfig};
    use iobt_types::{NodeSpec, Point};

    fn setup() -> (NodeCatalog, DiscoveryTracker, TrustLedger) {
        let mut catalog = NodeCatalog::new();
        let mut ledger = TrustLedger::new();
        for (id, aff) in [
            (1, Affiliation::Blue),
            (2, Affiliation::Red),
            (3, Affiliation::Gray),
        ] {
            catalog
                .insert(
                    NodeSpec::builder(NodeId::new(id))
                        .affiliation(aff)
                        .position(Point::ORIGIN)
                        .build(),
                )
                .unwrap();
            ledger.enroll(NodeId::new(id), aff);
        }
        let mut tracker = DiscoveryTracker::new(TrackerConfig::default());
        tracker.observe(NodeId::new(1), 100.0, Point::ORIGIN, [0.9, 0.05, 0.05]);
        tracker.observe(NodeId::new(2), 100.0, Point::ORIGIN, [0.05, 0.9, 0.05]);
        tracker.observe(NodeId::new(3), 100.0, Point::ORIGIN, [0.1, 0.1, 0.8]);
        (catalog, tracker, ledger)
    }

    #[test]
    fn recruits_blue_and_gray_rejects_red() {
        let (catalog, tracker, ledger) = setup();
        let pool = recruit(
            &catalog,
            &tracker,
            &ledger,
            &RecruitPolicy::default(),
            101.0,
            120.0,
        );
        assert_eq!(pool.admitted_ids(), vec![NodeId::new(1), NodeId::new(3)]);
        assert_eq!(pool.rejected_red, vec![NodeId::new(2)]);
        assert_eq!(pool.infiltration_count(), 0);
    }

    #[test]
    fn disallowing_gray_shrinks_pool() {
        let (catalog, tracker, ledger) = setup();
        let policy = RecruitPolicy {
            allow_gray: false,
            ..RecruitPolicy::default()
        };
        let pool = recruit(&catalog, &tracker, &ledger, &policy, 101.0, 120.0);
        assert_eq!(pool.admitted_ids(), vec![NodeId::new(1)]);
        assert!(pool.rejected_other.contains(&NodeId::new(3)));
    }

    #[test]
    fn stale_assets_fail_presence_gate() {
        let (catalog, tracker, ledger) = setup();
        // 10 minutes after last sighting with tau = 120 s: presence ~ 0.007.
        let pool = recruit(
            &catalog,
            &tracker,
            &ledger,
            &RecruitPolicy::default(),
            700.0,
            120.0,
        );
        assert!(pool.admitted.is_empty());
        assert_eq!(pool.rejected_other.len(), 2, "blue and gray too stale");
    }

    #[test]
    fn misclassified_red_infiltrates_and_is_counted() {
        let mut catalog = NodeCatalog::new();
        catalog
            .insert(
                NodeSpec::builder(NodeId::new(7))
                    .affiliation(Affiliation::Red)
                    .build(),
            )
            .unwrap();
        let mut ledger = TrustLedger::new();
        ledger.enroll(NodeId::new(7), Affiliation::Gray); // fooled enrollment
        let mut tracker = DiscoveryTracker::new(TrackerConfig::default());
        // Spoofed emissions made it look gray.
        tracker.observe(NodeId::new(7), 10.0, Point::ORIGIN, [0.1, 0.1, 0.8]);
        let pool = recruit(
            &catalog,
            &tracker,
            &ledger,
            &RecruitPolicy::default(),
            11.0,
            120.0,
        );
        assert_eq!(pool.infiltration_count(), 1);
        assert!((pool.infiltration_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probe_availability_gates_duty_cycled_assets() {
        use crate::probe::{ProbeTarget, Prober};
        use iobt_types::ComputeClass;
        let (catalog, tracker, ledger) = setup();
        let mut prober = Prober::new(1);
        // Node 1 answers almost always; node 3 almost never.
        prober.probe_rounds(
            &[
                ProbeTarget::new(NodeId::new(1), 0.95, ComputeClass::Embedded),
                ProbeTarget::new(NodeId::new(3), 0.02, ComputeClass::Embedded),
            ],
            200,
        );
        let pool = super::recruit_with_probes(
            &catalog,
            &tracker,
            &ledger,
            &RecruitPolicy::default(),
            101.0,
            120.0,
            Some(&prober),
        );
        assert!(pool.admitted_ids().contains(&NodeId::new(1)));
        assert!(
            !pool.admitted_ids().contains(&NodeId::new(3)),
            "a 2%-available asset is useless: {:?}",
            pool.admitted_ids()
        );
        assert!(pool.rejected_other.contains(&NodeId::new(3)));
    }

    #[test]
    fn unknown_catalog_nodes_are_skipped() {
        let catalog = NodeCatalog::new();
        let mut tracker = DiscoveryTracker::new(TrackerConfig::default());
        tracker.observe(NodeId::new(1), 0.0, Point::ORIGIN, [0.9, 0.05, 0.05]);
        let ledger = TrustLedger::new();
        let pool = recruit(
            &catalog,
            &tracker,
            &ledger,
            &RecruitPolicy::default(),
            1.0,
            120.0,
        );
        assert!(pool.admitted.is_empty());
        assert!(pool.rejected_red.is_empty());
    }
}
