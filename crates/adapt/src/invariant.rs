//! Self-stabilizing invariant monitors.
//!
//! §IV-A: "self-stabilizing algorithms adapt to maintain an invariant by
//! triggering corrective action, when the invariant is violated, to cause
//! the system to satisfy the invariant again." A [`Stabilizer`] owns a set
//! of [`InvariantMonitor`]s over some system state `S`; each round it
//! checks every invariant and applies the corrective action of violated
//! ones, until a fixed point (all hold) or a round budget is exhausted.

use std::fmt;

/// One invariant with its corrective action.
pub struct InvariantMonitor<S> {
    name: String,
    check: Box<dyn Fn(&S) -> bool>,
    correct: Box<dyn Fn(&mut S)>,
}

impl<S> InvariantMonitor<S> {
    /// Creates a monitor: `check` returns `true` when the invariant holds,
    /// `correct` mutates the state toward satisfaction.
    pub fn new(
        name: impl Into<String>,
        check: impl Fn(&S) -> bool + 'static,
        correct: impl Fn(&mut S) + 'static,
    ) -> Self {
        InvariantMonitor {
            name: name.into(),
            check: Box::new(check),
            correct: Box::new(correct),
        }
    }

    /// The monitor's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the invariant currently holds.
    pub fn holds(&self, state: &S) -> bool {
        (self.check)(state)
    }
}

impl<S> fmt::Debug for InvariantMonitor<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InvariantMonitor")
            .field("name", &self.name)
            .finish()
    }
}

/// Result of a stabilization run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StabilizationReport {
    /// Rounds executed (a round checks every monitor once).
    pub rounds: usize,
    /// Total corrective actions applied.
    pub corrections: usize,
    /// Whether all invariants held at the end.
    pub stable: bool,
    /// Names of invariants still violated at the end (empty when stable).
    pub violated: Vec<String>,
}

/// Runs monitors to a fixed point.
#[derive(Debug, Default)]
pub struct Stabilizer<S> {
    monitors: Vec<InvariantMonitor<S>>,
}

impl<S> Stabilizer<S> {
    /// Creates an empty stabilizer.
    pub fn new() -> Self {
        Stabilizer {
            monitors: Vec::new(),
        }
    }

    /// Adds a monitor; returns `self` for chaining.
    pub fn monitor(mut self, monitor: InvariantMonitor<S>) -> Self {
        self.monitors.push(monitor);
        self
    }

    /// Number of registered monitors.
    pub fn len(&self) -> usize {
        self.monitors.len()
    }

    /// Whether no monitors are registered.
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }

    /// Checks all invariants without correcting.
    pub fn all_hold(&self, state: &S) -> bool {
        self.monitors.iter().all(|m| m.holds(state))
    }

    /// Runs check-and-correct rounds until every invariant holds or
    /// `max_rounds` is exhausted (guarding against conflicting monitors
    /// that oscillate — the §IV-A "unexpected consequences" of interacting
    /// adaptive components).
    pub fn stabilize(&self, state: &mut S, max_rounds: usize) -> StabilizationReport {
        let mut corrections = 0;
        for round in 1..=max_rounds {
            let mut any_violation = false;
            for m in &self.monitors {
                if !m.holds(state) {
                    any_violation = true;
                    (m.correct)(state);
                    corrections += 1;
                }
            }
            if !any_violation {
                return StabilizationReport {
                    rounds: round,
                    corrections,
                    stable: true,
                    violated: Vec::new(),
                };
            }
        }
        let violated: Vec<String> = self
            .monitors
            .iter()
            .filter(|m| !m.holds(state))
            .map(|m| m.name().to_string())
            .collect();
        StabilizationReport {
            rounds: max_rounds,
            corrections,
            stable: violated.is_empty(),
            violated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct State {
        replicas: i32,
        leader: Option<u32>,
        queue_depth: i32,
    }

    fn real_stabilizer() -> Stabilizer<State> {
        Stabilizer::new()
            .monitor(InvariantMonitor::new(
                "replicas >= 3",
                |s: &State| s.replicas >= 3,
                |s: &mut State| s.replicas += 1,
            ))
            .monitor(InvariantMonitor::new(
                "has leader",
                |s: &State| s.leader.is_some(),
                |s: &mut State| s.leader = Some(1),
            ))
            .monitor(InvariantMonitor::new(
                "queue bounded",
                |s: &State| s.queue_depth <= 10,
                |s: &mut State| s.queue_depth -= 5,
            ))
    }

    #[test]
    fn converges_from_violating_state() {
        let s = real_stabilizer();
        let mut state = State {
            replicas: 0,
            leader: None,
            queue_depth: 23,
        };
        assert!(!s.all_hold(&state));
        let report = s.stabilize(&mut state, 20);
        assert!(report.stable);
        assert!(s.all_hold(&state));
        assert_eq!(state.replicas, 3);
        assert_eq!(state.leader, Some(1));
        assert!(state.queue_depth <= 10);
        // replicas: 3 corrections; leader: 1; queue: 3 → ≥ 7 total.
        assert!(report.corrections >= 7);
    }

    #[test]
    fn already_stable_state_is_one_round() {
        let s = real_stabilizer();
        let mut state = State {
            replicas: 5,
            leader: Some(2),
            queue_depth: 1,
        };
        let report = s.stabilize(&mut state, 20);
        assert!(report.stable);
        assert_eq!(report.rounds, 1);
        assert_eq!(report.corrections, 0);
    }

    #[test]
    fn oscillating_monitors_hit_the_round_budget() {
        // Two conflicting invariants that can never both hold — the
        // pathological interaction §IV-A warns about.
        let s: Stabilizer<i32> = Stabilizer::new()
            .monitor(InvariantMonitor::new("x >= 5", |x: &i32| *x >= 5, |x| *x += 3))
            .monitor(InvariantMonitor::new("x <= 2", |x: &i32| *x <= 2, |x| *x -= 3));
        let mut state = 0;
        let report = s.stabilize(&mut state, 50);
        assert!(!report.stable);
        assert_eq!(report.rounds, 50);
        assert!(!report.violated.is_empty());
    }

    #[test]
    fn empty_stabilizer_is_trivially_stable() {
        let s: Stabilizer<i32> = Stabilizer::new();
        assert!(s.is_empty());
        let mut state = 42;
        let report = s.stabilize(&mut state, 5);
        assert!(report.stable);
        assert_eq!(report.corrections, 0);
    }
}
