//! Modality-switching reflex.
//!
//! §IV-B: "seismic sensing may be used when smoke or other phenomena
//! render visual tracking unreliable, or when connection is lost with the
//! camera due to a wireless jamming attack." The [`ModalitySwitcher`]
//! tracks a smoothed health signal per available sensing modality and
//! selects the best healthy one, with hysteresis so the selection does not
//! flap on noisy health estimates.

use iobt_types::SensorKind;
use std::collections::BTreeMap;

/// Configuration of the switching reflex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchPolicy {
    /// EMA weight of new health observations, in `(0, 1]`.
    pub smoothing: f64,
    /// A challenger modality must beat the incumbent's health by this
    /// margin to take over (hysteresis).
    pub switch_margin: f64,
    /// Health below which a modality is considered unusable.
    pub min_health: f64,
}

impl Default for SwitchPolicy {
    fn default() -> Self {
        SwitchPolicy {
            smoothing: 0.3,
            switch_margin: 0.15,
            min_health: 0.2,
        }
    }
}

/// Tracks modality health and picks the active one.
#[derive(Debug, Clone, PartialEq)]
pub struct ModalitySwitcher {
    policy: SwitchPolicy,
    health: BTreeMap<SensorKind, f64>,
    active: Option<SensorKind>,
    switches: usize,
}

impl ModalitySwitcher {
    /// Creates a switcher over the available modalities, all starting at
    /// full health; the first listed modality starts active.
    pub fn new(available: &[SensorKind], policy: SwitchPolicy) -> Self {
        let health: BTreeMap<SensorKind, f64> =
            available.iter().map(|&k| (k, 1.0)).collect();
        ModalitySwitcher {
            policy,
            active: available.first().copied(),
            health,
            switches: 0,
        }
    }

    /// The currently active modality, if any is usable.
    pub const fn active(&self) -> Option<SensorKind> {
        self.active
    }

    /// Number of switches performed so far.
    pub const fn switches(&self) -> usize {
        self.switches
    }

    /// Smoothed health of a modality, or `None` if not available.
    pub fn health(&self, kind: SensorKind) -> Option<f64> {
        self.health.get(&kind).copied()
    }

    /// Feeds one health observation (e.g. tracking confidence, link
    /// quality) for a modality and re-evaluates the selection. Returns the
    /// active modality after the update.
    ///
    /// Observations for unknown modalities are ignored.
    pub fn observe(&mut self, kind: SensorKind, health: f64) -> Option<SensorKind> {
        let health = health.clamp(0.0, 1.0);
        if let Some(h) = self.health.get_mut(&kind) {
            *h = *h * (1.0 - self.policy.smoothing) + health * self.policy.smoothing;
        } else {
            return self.active;
        }
        self.reselect();
        self.active
    }

    /// Marks a modality as immediately dead (sensor destroyed, link
    /// jammed) and re-evaluates.
    pub fn mark_failed(&mut self, kind: SensorKind) -> Option<SensorKind> {
        if let Some(h) = self.health.get_mut(&kind) {
            *h = 0.0;
        }
        self.reselect();
        self.active
    }

    fn reselect(&mut self) {
        let incumbent_health = self
            .active
            .and_then(|k| self.health.get(&k).copied())
            .unwrap_or(0.0);
        // Find the healthiest modality (deterministic tie-break by the
        // BTreeMap ordering).
        let best = self
            .health
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(&k, &h)| (k, h));
        let Some((best_kind, best_health)) = best else {
            self.active = None;
            return;
        };
        let incumbent_usable = incumbent_health >= self.policy.min_health;
        if !incumbent_usable {
            // Incumbent is dead: switch immediately if anything usable.
            if best_health >= self.policy.min_health {
                if self.active != Some(best_kind) {
                    self.active = Some(best_kind);
                    self.switches += 1;
                }
            } else {
                if self.active.is_some() {
                    self.switches += 1;
                }
                self.active = None;
            }
        } else if best_health > incumbent_health + self.policy.switch_margin
            && self.active != Some(best_kind)
        {
            // Challenger clearly better: switch with hysteresis margin.
            self.active = Some(best_kind);
            self.switches += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn switcher() -> ModalitySwitcher {
        ModalitySwitcher::new(
            &[SensorKind::Visual, SensorKind::Seismic, SensorKind::Acoustic],
            SwitchPolicy::default(),
        )
    }

    #[test]
    fn starts_on_first_modality() {
        let s = switcher();
        assert_eq!(s.active(), Some(SensorKind::Visual));
        assert_eq!(s.health(SensorKind::Seismic), Some(1.0));
        assert_eq!(s.health(SensorKind::Radar), None);
    }

    #[test]
    fn smoke_degrades_visual_and_switches_to_seismic() {
        let mut s = switcher();
        // Smoke rolls in: visual health collapses over several updates.
        for _ in 0..10 {
            s.observe(SensorKind::Visual, 0.0);
        }
        let active = s.active().unwrap();
        assert_ne!(active, SensorKind::Visual, "must abandon blinded camera");
        assert!(s.switches() >= 1);
    }

    #[test]
    fn jamming_failure_switches_immediately() {
        let mut s = switcher();
        let active = s.mark_failed(SensorKind::Visual);
        assert_ne!(active, Some(SensorKind::Visual));
        assert_eq!(s.switches(), 1);
    }

    #[test]
    fn hysteresis_prevents_flapping() {
        let mut s = switcher();
        // Two modalities oscillating within the margin: no switches.
        for i in 0..50 {
            let wobble = if i % 2 == 0 { 0.95 } else { 0.9 };
            s.observe(SensorKind::Visual, wobble);
            s.observe(SensorKind::Seismic, 1.0 - (wobble - 0.9));
        }
        assert_eq!(s.active(), Some(SensorKind::Visual));
        assert_eq!(s.switches(), 0, "within-margin noise must not flap");
    }

    #[test]
    fn recovery_can_win_back_with_clear_margin() {
        let mut s = switcher();
        for _ in 0..10 {
            s.observe(SensorKind::Visual, 0.0);
        }
        assert_ne!(s.active(), Some(SensorKind::Visual));
        // Smoke clears; seismic degrades badly.
        for _ in 0..20 {
            s.observe(SensorKind::Visual, 1.0);
            s.observe(SensorKind::Seismic, 0.3);
            s.observe(SensorKind::Acoustic, 0.3);
        }
        assert_eq!(s.active(), Some(SensorKind::Visual));
    }

    #[test]
    fn all_dead_means_no_active_modality() {
        let mut s = switcher();
        s.mark_failed(SensorKind::Visual);
        s.mark_failed(SensorKind::Seismic);
        s.mark_failed(SensorKind::Acoustic);
        assert_eq!(s.active(), None);
    }

    #[test]
    fn unknown_modality_observations_are_ignored() {
        let mut s = switcher();
        let active = s.observe(SensorKind::Radar, 0.0);
        assert_eq!(active, Some(SensorKind::Visual));
        assert_eq!(s.health(SensorKind::Radar), None);
    }

    #[test]
    fn empty_switcher_has_no_active() {
        let s = ModalitySwitcher::new(&[], SwitchPolicy::default());
        assert_eq!(s.active(), None);
    }
}
