//! A PI admission controller — the "adaptive control" face of self-aware
//! adaptation (§IV-A's third multi-disciplinary example).
//!
//! The plant is a work queue: jobs arrive at an uncontrolled rate, the
//! controller sets the admission/service allocation to keep queue
//! occupancy at a setpoint. The integral term removes steady-state error;
//! anti-windup clamps the integrator when actuation saturates.

/// PI controller with output clamping and integrator anti-windup.
#[derive(Debug, Clone, PartialEq)]
pub struct PiController {
    kp: f64,
    ki: f64,
    setpoint: f64,
    integral: f64,
    output_min: f64,
    output_max: f64,
}

impl PiController {
    /// Creates a controller tracking `setpoint` with gains `kp`, `ki`,
    /// and actuation limits `[output_min, output_max]`.
    ///
    /// # Panics
    ///
    /// Panics when `output_min > output_max`.
    pub fn new(kp: f64, ki: f64, setpoint: f64, output_min: f64, output_max: f64) -> Self {
        assert!(output_min <= output_max, "invalid actuation limits");
        PiController {
            kp,
            ki,
            setpoint,
            integral: 0.0,
            output_min,
            output_max,
        }
    }

    /// The current setpoint.
    pub const fn setpoint(&self) -> f64 {
        self.setpoint
    }

    /// Retargets the controller (e.g. commander tightens the latency
    /// budget) without resetting the integrator.
    pub fn set_setpoint(&mut self, setpoint: f64) {
        self.setpoint = setpoint;
    }

    /// One control step: reads the measured value, returns the clamped
    /// actuation. `dt` is the step length in seconds.
    pub fn step(&mut self, measurement: f64, dt: f64) -> f64 {
        let dt = dt.max(0.0);
        let error = self.setpoint - measurement;
        let unclamped = self.kp * error + self.ki * (self.integral + error * dt);
        let output = unclamped.clamp(self.output_min, self.output_max);
        // Anti-windup: only integrate when not pushing further into
        // saturation.
        let saturated_high = unclamped > self.output_max && error > 0.0;
        let saturated_low = unclamped < self.output_min && error < 0.0;
        if !saturated_high && !saturated_low {
            self.integral += error * dt;
        }
        output
    }
}

/// A first-order queue plant: occupancy integrates `arrivals - service`,
/// floored at zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuePlant {
    occupancy: f64,
}

impl QueuePlant {
    /// Creates an empty queue.
    pub fn new() -> Self {
        QueuePlant { occupancy: 0.0 }
    }

    /// Current queue occupancy (jobs).
    pub const fn occupancy(&self) -> f64 {
        self.occupancy
    }

    /// Advances the queue by `dt` seconds with the given arrival and
    /// service rates (jobs/s).
    pub fn step(&mut self, arrival_rate: f64, service_rate: f64, dt: f64) {
        self.occupancy = (self.occupancy + (arrival_rate - service_rate) * dt).max(0.0);
    }
}

impl Default for QueuePlant {
    fn default() -> Self {
        QueuePlant::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Closed loop: the controller sets the *service* rate to keep the
    /// queue at the setpoint.
    fn run_loop(
        controller: &mut PiController,
        plant: &mut QueuePlant,
        arrival: impl Fn(usize) -> f64,
        steps: usize,
    ) -> Vec<f64> {
        let mut trace = Vec::with_capacity(steps);
        for t in 0..steps {
            // Negative-feedback sign: occupancy above the setpoint needs
            // MORE service, so feed the controller the negated error
            // measurement by swapping the roles: track -occupancy against
            // -setpoint. Equivalent and keeps the PI form standard.
            let service = controller.step(-plant.occupancy(), 0.1);
            plant.step(arrival(t), service, 0.1);
            trace.push(plant.occupancy());
        }
        trace
    }

    fn controller() -> PiController {
        // Track -occupancy at -20 → occupancy at 20.
        PiController::new(2.0, 1.0, -20.0, 0.0, 200.0)
    }

    #[test]
    fn converges_to_setpoint_under_constant_load() {
        let mut c = controller();
        let mut plant = QueuePlant::new();
        let trace = run_loop(&mut c, &mut plant, |_| 50.0, 2_000);
        let tail = &trace[trace.len() - 100..];
        let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            (mean - 20.0).abs() < 2.0,
            "steady state near setpoint: {mean}"
        );
    }

    #[test]
    fn tracks_a_load_step() {
        let mut c = controller();
        let mut plant = QueuePlant::new();
        // Load doubles halfway through.
        let trace = run_loop(
            &mut c,
            &mut plant,
            |t| if t < 1_500 { 40.0 } else { 80.0 },
            3_000,
        );
        let tail: f64 =
            trace[2_900..].iter().sum::<f64>() / 100.0;
        assert!(
            (tail - 20.0).abs() < 3.0,
            "recovers the setpoint after the step: {tail}"
        );
    }

    #[test]
    fn actuation_respects_limits() {
        let mut c = PiController::new(10.0, 5.0, -5.0, 0.0, 30.0);
        let mut plant = QueuePlant::new();
        for t in 0..500 {
            let service = c.step(-plant.occupancy(), 0.1);
            assert!((0.0..=30.0).contains(&service), "clamped output");
            plant.step(100.0, service, 0.1); // overload: arrivals > max service
            let _ = t;
        }
        // Overloaded queue grows — but output stayed clamped the whole time.
        assert!(plant.occupancy() > 100.0);
    }

    #[test]
    fn anti_windup_recovers_quickly_after_overload() {
        let mut c = controller();
        let mut plant = QueuePlant::new();
        // Phase 1: impossible load (saturates actuation, would wind up).
        run_loop(&mut c, &mut plant, |_| 500.0, 300);
        // Phase 2: load returns to normal; queue must drain and settle.
        let trace = run_loop(&mut c, &mut plant, |_| 40.0, 3_000);
        let tail: f64 = trace[trace.len() - 100..].iter().sum::<f64>() / 100.0;
        assert!(
            (tail - 20.0).abs() < 3.0,
            "recovers after saturation: {tail}"
        );
    }

    #[test]
    fn queue_never_negative() {
        let mut plant = QueuePlant::new();
        plant.step(0.0, 100.0, 1.0);
        assert_eq!(plant.occupancy(), 0.0);
    }

    #[test]
    fn setpoint_can_be_retargeted() {
        let mut c = controller();
        c.set_setpoint(-10.0);
        assert_eq!(c.setpoint(), -10.0);
    }

    #[test]
    #[should_panic(expected = "invalid actuation limits")]
    fn rejects_inverted_limits() {
        PiController::new(1.0, 1.0, 0.0, 10.0, 0.0);
    }
}
