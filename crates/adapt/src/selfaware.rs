//! A unifying abstraction for self-aware adaptation.
//!
//! §IV-A observes that self-stabilization, error-correcting decoding, and
//! adaptive control "all implicitly share the notion of *self* that
//! encapsulates state, models, actions, and goals, and that adapts its
//! actions and models as needed, such that its goals are met" — and asks
//! whether "this simple principle \[can\] serve as the cornerstone of a new
//! unifying theory of self-aware adaptation".
//!
//! [`SelfAware`] is that principle as a trait: a goal predicate over the
//! observable state plus an adaptation step. [`AdaptationLoop`] runs any
//! such component against a stream of observations and instruments the
//! quantities the paper says a theory must expose ("quantifiable
//! assessment metrics for self-aware and self-adaptive systems"):
//! time-in-goal fraction, violations detected, adaptations performed, and
//! worst violation streak.

/// A self-aware component: it knows its goal and can act toward it.
pub trait SelfAware {
    /// An observation of the environment delivered each step.
    type Observation;

    /// Updates the internal model with a fresh observation.
    fn observe(&mut self, observation: Self::Observation);

    /// Whether the goal currently holds, given the internal model.
    fn goal_met(&self) -> bool;

    /// Takes one corrective action toward the goal. Called only when the
    /// goal is violated. Returns `false` when the component has no action
    /// left to try (the loop records a dead end instead of spinning).
    fn adapt(&mut self) -> bool;
}

/// Instrumented metrics of one adaptation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdaptationMetrics {
    /// Observations processed.
    pub steps: usize,
    /// Steps at which the goal held (before any correction that step).
    pub steps_in_goal: usize,
    /// Corrective actions taken.
    pub adaptations: usize,
    /// Steps where adaptation was needed but the component had no action.
    pub dead_ends: usize,
    /// Longest consecutive run of violated steps.
    pub worst_violation_streak: usize,
}

impl AdaptationMetrics {
    /// Fraction of steps in goal, in `[0, 1]` (1.0 for an empty run).
    pub fn goal_fraction(&self) -> f64 {
        if self.steps == 0 {
            1.0
        } else {
            self.steps_in_goal as f64 / self.steps as f64
        }
    }
}

/// Drives a [`SelfAware`] component over an observation stream: each step
/// delivers one observation, then adapts (up to `max_actions_per_step`
/// corrective actions) until the goal holds again or actions run out.
///
/// ```
/// # use iobt_adapt::selfaware::{AdaptationLoop, LoadBandService};
/// let mut service = LoadBandService::new(10.0, (0.4, 0.8), (1.0, 1_000.0));
/// let metrics = AdaptationLoop::default()
///     .run(&mut service, std::iter::repeat(60.0).take(20));
/// assert!(service.capacity() > 10.0, "scaled up under load");
/// assert!(metrics.goal_fraction() > 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptationLoop {
    /// Correction budget per step (≥ 1).
    pub max_actions_per_step: usize,
}

impl Default for AdaptationLoop {
    fn default() -> Self {
        AdaptationLoop {
            max_actions_per_step: 4,
        }
    }
}

impl AdaptationLoop {
    /// Runs the component over the observations, returning the metrics.
    pub fn run<C: SelfAware>(
        &self,
        component: &mut C,
        observations: impl IntoIterator<Item = C::Observation>,
    ) -> AdaptationMetrics {
        let mut m = AdaptationMetrics::default();
        let mut streak = 0usize;
        for obs in observations {
            component.observe(obs);
            m.steps += 1;
            if component.goal_met() {
                m.steps_in_goal += 1;
                streak = 0;
                continue;
            }
            streak += 1;
            m.worst_violation_streak = m.worst_violation_streak.max(streak);
            let mut budget = self.max_actions_per_step.max(1);
            while !component.goal_met() && budget > 0 {
                if !component.adapt() {
                    m.dead_ends += 1;
                    break;
                }
                m.adaptations += 1;
                budget -= 1;
            }
        }
        m
    }
}

/// The adaptive-control exemplar from §IV-A wrapped as a [`SelfAware`]
/// component: a service whose *goal* is keeping measured load within a
/// band, whose *model* is an EMA of the load, and whose *action* is
/// scaling capacity up/down.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadBandService {
    /// Smoothed load estimate (the internal model).
    load_estimate: f64,
    /// Current capacity (the actuated resource).
    capacity: f64,
    /// Goal band on utilization `load / capacity`.
    band: (f64, f64),
    /// Capacity limits.
    limits: (f64, f64),
}

impl LoadBandService {
    /// Creates a service with `capacity` and a target utilization band.
    ///
    /// # Panics
    ///
    /// Panics when the band or limits are inverted or non-positive.
    pub fn new(capacity: f64, band: (f64, f64), limits: (f64, f64)) -> Self {
        assert!(0.0 < band.0 && band.0 < band.1, "invalid band");
        assert!(0.0 < limits.0 && limits.0 <= limits.1, "invalid limits");
        LoadBandService {
            load_estimate: 0.0,
            capacity: capacity.clamp(limits.0, limits.1),
            band,
            limits,
        }
    }

    /// Current capacity.
    pub const fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Current utilization estimate.
    pub fn utilization(&self) -> f64 {
        self.load_estimate / self.capacity
    }
}

impl SelfAware for LoadBandService {
    type Observation = f64; // instantaneous load

    fn observe(&mut self, load: f64) {
        self.load_estimate = 0.5 * self.load_estimate + 0.5 * load.max(0.0);
    }

    fn goal_met(&self) -> bool {
        // Idle systems are in goal even below the band floor.
        let u = self.utilization();
        self.load_estimate < 1e-9 || (u >= self.band.0 && u <= self.band.1)
    }

    fn adapt(&mut self) -> bool {
        let u = self.utilization();
        let (lo, hi) = self.band;
        // Aim at the band midpoint, not the edge, so a still-ramping load
        // estimate does not re-violate on the very next observation.
        let mid = (lo + hi) / 2.0;
        let target = if u > hi || u < lo {
            self.load_estimate / mid
        } else {
            return true;
        };
        let new_capacity = target.clamp(self.limits.0, self.limits.1);
        if (new_capacity - self.capacity).abs() < 1e-12 {
            return false; // pinned at a limit: no action left
        }
        self.capacity = new_capacity;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_scales_up_under_a_load_step() {
        let mut svc = LoadBandService::new(10.0, (0.4, 0.8), (1.0, 1_000.0));
        let metrics = AdaptationLoop::default().run(
            &mut svc,
            std::iter::repeat_n(50.0, 30),
        );
        assert!(svc.capacity() > 10.0, "must scale up: {}", svc.capacity());
        let u = svc.utilization();
        assert!((0.4..=0.8).contains(&u), "utilization in band: {u}");
        assert!(metrics.adaptations > 0);
        assert_eq!(metrics.dead_ends, 0);
        assert!(metrics.goal_fraction() > 0.5, "{:?}", metrics);
    }

    #[test]
    fn service_scales_down_when_load_fades() {
        let mut svc = LoadBandService::new(500.0, (0.4, 0.8), (1.0, 1_000.0));
        AdaptationLoop::default().run(&mut svc, std::iter::repeat_n(20.0, 30));
        assert!(svc.capacity() < 100.0, "must shed capacity: {}", svc.capacity());
    }

    #[test]
    fn capacity_limits_cause_dead_ends_not_spins() {
        // Load far beyond the maximum capacity: goal unreachable.
        let mut svc = LoadBandService::new(10.0, (0.4, 0.8), (1.0, 20.0));
        let metrics = AdaptationLoop::default().run(
            &mut svc,
            std::iter::repeat_n(1_000.0, 10),
        );
        assert!(metrics.dead_ends > 0, "{metrics:?}");
        assert_eq!(svc.capacity(), 20.0, "pinned at the limit");
        assert!(metrics.goal_fraction() < 0.5);
        assert!(metrics.worst_violation_streak >= 5);
    }

    #[test]
    fn idle_service_stays_in_goal() {
        let mut svc = LoadBandService::new(10.0, (0.4, 0.8), (1.0, 100.0));
        let metrics =
            AdaptationLoop::default().run(&mut svc, std::iter::repeat_n(0.0, 10));
        assert_eq!(metrics.steps_in_goal, 10);
        assert_eq!(metrics.adaptations, 0);
        assert_eq!(metrics.goal_fraction(), 1.0);
    }

    #[test]
    fn empty_run_reports_unit_goal_fraction() {
        let mut svc = LoadBandService::new(10.0, (0.4, 0.8), (1.0, 100.0));
        let metrics = AdaptationLoop::default().run(&mut svc, std::iter::empty());
        assert_eq!(metrics.steps, 0);
        assert_eq!(metrics.goal_fraction(), 1.0);
    }

    /// A second SelfAware implementation proving the abstraction is not
    /// shaped around one example: error-correction-style parity repair
    /// (§IV-A's coding example) — the goal is even parity of a register,
    /// the action flips the lowest set bit.
    struct ParityKeeper {
        register: u32,
    }

    impl SelfAware for ParityKeeper {
        type Observation = u32; // bits XORed in by the environment

        fn observe(&mut self, noise: u32) {
            self.register ^= noise;
        }

        fn goal_met(&self) -> bool {
            self.register.count_ones().is_multiple_of(2)
        }

        fn adapt(&mut self) -> bool {
            if self.register == 0 {
                return false;
            }
            self.register &= self.register - 1; // clear lowest set bit
            true
        }
    }

    #[test]
    fn parity_keeper_conforms_to_the_same_loop() {
        let mut keeper = ParityKeeper { register: 0 };
        let noise = [0b1u32, 0b110, 0b1, 0b0, 0b10000];
        let metrics = AdaptationLoop::default().run(&mut keeper, noise);
        assert!(keeper.goal_met());
        assert_eq!(metrics.steps, 5);
        assert!(metrics.adaptations >= 2);
    }
}
