//! Actuation safety: human authority and occupancy interlocks.
//!
//! §VI: "One prime example of a human decision in a military context is
//! the decision to fire a weapon. … smarter ammunition used in disaster
//! response might be authorized to impact only a specific category of
//! things … Demolition charges may use (or communicate with) sensors and
//! computational elements to withhold from activation where humans are
//! present, thereby reducing unintended loss of life."
//!
//! The [`ActuationController`] enforces exactly that: actuators flagged
//! [`requires_human_authorization`](iobt_types::ActuatorKind::requires_human_authorization)
//! fire only with a live human authorization token, and *any* actuation is
//! withheld while the zone's occupancy belief — fed by occupancy sensors
//! and decaying over time — exceeds a threshold. Every decision is
//! appended to an audit log (liability, §VI's legal concern).

use std::collections::BTreeMap;

use iobt_obs::{Recorder, TraceEvent};
use iobt_types::{ActuatorKind, NodeId};

/// Stable numeric code for an actuator kind in trace events: its index in
/// [`ActuatorKind::ALL`].
fn actuator_code(kind: ActuatorKind) -> u64 {
    ActuatorKind::ALL
        .iter()
        .position(|&k| k == kind)
        .unwrap_or(ActuatorKind::ALL.len()) as u64
}

/// A time-limited human authorization for one actuator kind in one zone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HumanAuthorization {
    /// The human (or command post) granting authority.
    pub authorizer: NodeId,
    /// Actuator kind authorized.
    pub actuator: ActuatorKind,
    /// Zone the authorization covers.
    pub zone: u32,
    /// Expiry time, seconds.
    pub expires_at_s: f64,
}

/// Outcome of an actuation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActuationDecision {
    /// Cleared to fire.
    Approved,
    /// Withheld: the zone's occupancy belief is above threshold.
    WithheldOccupied,
    /// Denied: the actuator needs a human authorization that is missing
    /// or expired.
    DeniedNoAuthorization,
    /// Denied: the mission is running degraded (sensing shed by the
    /// graceful-degradation ladder), so an actuator that is normally
    /// autonomous was requested without a human authorization.
    DeniedDegraded,
}

/// One audit-log entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditEntry {
    /// Request time, seconds.
    pub at_s: f64,
    /// Requesting node.
    pub requester: NodeId,
    /// Actuator kind requested.
    pub actuator: ActuatorKind,
    /// Zone requested.
    pub zone: u32,
    /// The decision taken.
    pub decision: ActuationDecision,
}

/// Enforces the §VI safety rules for a set of zones.
///
/// ```
/// # use iobt_adapt::safety::{ActuationController, ActuationDecision};
/// # use iobt_types::{ActuatorKind, NodeId};
/// let mut gate = ActuationController::new(0.3, 60.0);
/// // Route markers need no human in the loop; demolition does.
/// assert_eq!(
///     gate.request(NodeId::new(1), ActuatorKind::Marker, 0, 0.0),
///     ActuationDecision::Approved
/// );
/// assert_eq!(
///     gate.request(NodeId::new(1), ActuatorKind::Demolition, 0, 0.0),
///     ActuationDecision::DeniedNoAuthorization
/// );
/// ```
#[derive(Debug, Clone)]
pub struct ActuationController {
    occupancy_threshold: f64,
    occupancy_tau_s: f64,
    /// Per-zone `(last_detection_s, belief_at_detection)`.
    occupancy: BTreeMap<u32, (f64, f64)>,
    authorizations: Vec<HumanAuthorization>,
    audit: Vec<AuditEntry>,
    recorder: Recorder,
    degraded: bool,
}

impl ActuationController {
    /// Creates a controller: actuation is withheld while a zone's
    /// occupancy belief exceeds `occupancy_threshold`; beliefs decay with
    /// time constant `occupancy_tau_s`.
    pub fn new(occupancy_threshold: f64, occupancy_tau_s: f64) -> Self {
        ActuationController {
            occupancy_threshold: occupancy_threshold.clamp(0.0, 1.0),
            occupancy_tau_s: occupancy_tau_s.max(1e-9),
            occupancy: BTreeMap::new(),
            authorizations: Vec::new(),
            audit: Vec::new(),
            recorder: Recorder::disabled(),
            degraded: false,
        }
    }

    /// Marks the mission as degraded (or recovered). While degraded the
    /// controller assumes its occupancy picture is partial — sensing has
    /// been shed — so it tightens both interlocks: the occupancy
    /// threshold is halved, and *every* actuator needs a live human
    /// authorization, not just the kinds flagged for it (§VI: when the
    /// machine knows less, the human decides more).
    pub fn set_degraded(&mut self, degraded: bool) {
        self.degraded = degraded;
    }

    /// Whether the controller is in degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Attaches a [`Recorder`]; every decision from [`request`](Self::request)
    /// is then emitted as an [`TraceEvent::Actuation`] trace event stamped
    /// with the request time.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Feeds an occupancy detection for `zone` with confidence in
    /// `[0, 1]` at time `now_s`. Beliefs merge by maximum (one confident
    /// detection is enough to withhold).
    pub fn report_occupancy(&mut self, zone: u32, confidence: f64, now_s: f64) {
        let confidence = confidence.clamp(0.0, 1.0);
        let current = self.occupancy_belief(zone, now_s);
        self.occupancy
            .insert(zone, (now_s, current.max(confidence)));
    }

    /// Current occupancy belief for a zone (decayed).
    pub fn occupancy_belief(&self, zone: u32, now_s: f64) -> f64 {
        match self.occupancy.get(&zone) {
            Some(&(t, b)) => b * (-(now_s - t).max(0.0) / self.occupancy_tau_s).exp(),
            None => 0.0,
        }
    }

    /// Registers a human authorization.
    pub fn grant(&mut self, authorization: HumanAuthorization) {
        self.authorizations.push(authorization);
    }

    /// Handles an actuation request; logs and returns the decision.
    pub fn request(
        &mut self,
        requester: NodeId,
        actuator: ActuatorKind,
        zone: u32,
        now_s: f64,
    ) -> ActuationDecision {
        let threshold = if self.degraded {
            self.occupancy_threshold * 0.5
        } else {
            self.occupancy_threshold
        };
        let authorized = self.authorizations.iter().any(|a| {
            a.actuator == actuator && a.zone == zone && a.expires_at_s >= now_s
        });
        let decision = if self.occupancy_belief(zone, now_s) > threshold {
            // The occupancy interlock overrides even authorized fires.
            ActuationDecision::WithheldOccupied
        } else if actuator.requires_human_authorization() && !authorized {
            ActuationDecision::DeniedNoAuthorization
        } else if self.degraded && !authorized {
            ActuationDecision::DeniedDegraded
        } else {
            ActuationDecision::Approved
        };
        self.audit.push(AuditEntry {
            at_s: now_s,
            requester,
            actuator,
            zone,
            decision,
        });
        self.recorder.record_at(
            (now_s.max(0.0) * 1e6) as u64,
            TraceEvent::Actuation {
                requester: requester.raw(),
                actuator: actuator_code(actuator),
                decision: match decision {
                    ActuationDecision::Approved => "approved",
                    ActuationDecision::WithheldOccupied => "withheld_occupied",
                    ActuationDecision::DeniedNoAuthorization => "denied_no_authorization",
                    ActuationDecision::DeniedDegraded => "denied_degraded",
                },
            },
        );
        decision
    }

    /// The full audit log, in request order.
    pub fn audit_log(&self) -> &[AuditEntry] {
        &self.audit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> ActuationController {
        ActuationController::new(0.3, 60.0)
    }

    #[test]
    fn markers_fire_without_authorization() {
        let mut c = controller();
        let d = c.request(NodeId::new(1), ActuatorKind::Marker, 0, 10.0);
        assert_eq!(d, ActuationDecision::Approved);
    }

    #[test]
    fn demolition_requires_live_human_authorization() {
        let mut c = controller();
        let d = c.request(NodeId::new(1), ActuatorKind::Demolition, 0, 10.0);
        assert_eq!(d, ActuationDecision::DeniedNoAuthorization);
        c.grant(HumanAuthorization {
            authorizer: NodeId::new(99),
            actuator: ActuatorKind::Demolition,
            zone: 0,
            expires_at_s: 100.0,
        });
        let d = c.request(NodeId::new(1), ActuatorKind::Demolition, 0, 50.0);
        assert_eq!(d, ActuationDecision::Approved);
        // Expired token is no token.
        let d = c.request(NodeId::new(1), ActuatorKind::Demolition, 0, 200.0);
        assert_eq!(d, ActuationDecision::DeniedNoAuthorization);
    }

    #[test]
    fn decisions_are_traced_with_request_time() {
        let (recorder, ring) = Recorder::memory(8);
        let mut c = controller().with_recorder(recorder.clone());
        c.request(NodeId::new(4), ActuatorKind::Marker, 0, 2.5);
        c.request(NodeId::new(4), ActuatorKind::Demolition, 0, 3.0);
        let records = ring.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].t_us, 2_500_000);
        assert_eq!(
            records[0].event,
            TraceEvent::Actuation {
                requester: 4,
                actuator: actuator_code(ActuatorKind::Marker),
                decision: "approved",
            }
        );
        assert_eq!(
            records[1].event,
            TraceEvent::Actuation {
                requester: 4,
                actuator: actuator_code(ActuatorKind::Demolition),
                decision: "denied_no_authorization",
            }
        );
        let digest = recorder.metrics_digest();
        assert_eq!(digest.counter("adapt.actuations"), Some(2));
        assert_eq!(digest.counter("adapt.actuation.approved"), Some(1));
    }

    #[test]
    fn authorization_is_zone_scoped() {
        let mut c = controller();
        c.grant(HumanAuthorization {
            authorizer: NodeId::new(99),
            actuator: ActuatorKind::Demolition,
            zone: 7,
            expires_at_s: 100.0,
        });
        let other_zone = c.request(NodeId::new(1), ActuatorKind::Demolition, 8, 10.0);
        assert_eq!(other_zone, ActuationDecision::DeniedNoAuthorization);
    }

    #[test]
    fn occupancy_withholds_even_authorized_fires() {
        let mut c = controller();
        c.grant(HumanAuthorization {
            authorizer: NodeId::new(99),
            actuator: ActuatorKind::Demolition,
            zone: 0,
            expires_at_s: 1_000.0,
        });
        c.report_occupancy(0, 0.9, 10.0);
        let d = c.request(NodeId::new(1), ActuatorKind::Demolition, 0, 11.0);
        assert_eq!(d, ActuationDecision::WithheldOccupied);
        // Belief decays: after ~3 time constants the zone clears.
        let d = c.request(NodeId::new(1), ActuatorKind::Demolition, 0, 11.0 + 200.0);
        assert_eq!(d, ActuationDecision::Approved);
    }

    #[test]
    fn occupancy_belief_merges_by_max_and_decays() {
        let mut c = controller();
        c.report_occupancy(3, 0.5, 0.0);
        c.report_occupancy(3, 0.2, 1.0); // weaker detection must not lower belief
        assert!(c.occupancy_belief(3, 1.0) > 0.45);
        assert!(c.occupancy_belief(3, 500.0) < 0.01);
        assert_eq!(c.occupancy_belief(99, 0.0), 0.0);
    }

    #[test]
    fn degraded_mode_requires_authorization_for_everything() {
        let mut c = controller();
        assert!(!c.is_degraded());
        c.set_degraded(true);
        assert!(c.is_degraded());
        // Markers are normally autonomous; degraded they need a human.
        let d = c.request(NodeId::new(1), ActuatorKind::Marker, 0, 10.0);
        assert_eq!(d, ActuationDecision::DeniedDegraded);
        c.grant(HumanAuthorization {
            authorizer: NodeId::new(99),
            actuator: ActuatorKind::Marker,
            zone: 0,
            expires_at_s: 100.0,
        });
        let d = c.request(NodeId::new(1), ActuatorKind::Marker, 0, 20.0);
        assert_eq!(d, ActuationDecision::Approved);
        // Flagged kinds keep their sharper denial reason.
        let d = c.request(NodeId::new(1), ActuatorKind::Demolition, 0, 20.0);
        assert_eq!(d, ActuationDecision::DeniedNoAuthorization);
        // Recovery restores autonomous operation.
        c.set_degraded(false);
        let d = c.request(NodeId::new(1), ActuatorKind::Marker, 5, 30.0);
        assert_eq!(d, ActuationDecision::Approved);
    }

    #[test]
    fn degraded_mode_halves_the_occupancy_threshold() {
        let mut c = controller(); // threshold 0.3
        c.report_occupancy(0, 0.2, 10.0);
        // 0.2 clears the normal 0.3 threshold…
        assert_eq!(
            c.request(NodeId::new(1), ActuatorKind::Marker, 0, 10.0),
            ActuationDecision::Approved
        );
        // …but not the degraded 0.15 one, regardless of authorization.
        c.set_degraded(true);
        c.grant(HumanAuthorization {
            authorizer: NodeId::new(99),
            actuator: ActuatorKind::Marker,
            zone: 0,
            expires_at_s: 100.0,
        });
        assert_eq!(
            c.request(NodeId::new(1), ActuatorKind::Marker, 0, 10.0),
            ActuationDecision::WithheldOccupied
        );
    }

    #[test]
    fn degraded_denials_are_traced() {
        let (recorder, ring) = Recorder::memory(8);
        let mut c = controller().with_recorder(recorder);
        c.set_degraded(true);
        c.request(NodeId::new(4), ActuatorKind::Marker, 0, 1.0);
        let records = ring.records();
        assert_eq!(records.len(), 1);
        assert_eq!(
            records[0].event,
            TraceEvent::Actuation {
                requester: 4,
                actuator: actuator_code(ActuatorKind::Marker),
                decision: "denied_degraded",
            }
        );
    }

    #[test]
    fn every_request_is_audited() {
        let mut c = controller();
        c.request(NodeId::new(1), ActuatorKind::Marker, 0, 1.0);
        c.request(NodeId::new(2), ActuatorKind::Demolition, 0, 2.0);
        let log = c.audit_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].decision, ActuationDecision::Approved);
        assert_eq!(log[1].decision, ActuationDecision::DeniedNoAuthorization);
        assert_eq!(log[1].requester, NodeId::new(2));
    }
}
