//! Adaptive reflexes for IoBTs (paper §IV, Fig. 3).
//!
//! The four adaptation mechanisms the paper sketches, implemented
//! concretely:
//!
//! * [`invariant`] — self-stabilizing invariant monitors with corrective
//!   actions, run to a fixed point (and detecting non-convergent monitor
//!   interactions).
//! * [`game`] — command-by-intent as a potential game: agent objective
//!   functions whose selfish best-response dynamics provably converge to
//!   an equilibrium staffing the commander's objectives.
//! * [`modality`] — the sensing-modality switching reflex with hysteresis
//!   (visual → seismic when smoke or jamming blinds the cameras).
//! * [`alloc`] — adaptive edge-resource allocation that tracks hotspots
//!   and caps DoS regions.
//! * [`control`] — a PI admission controller with anti-windup, the
//!   adaptive-control face of self-aware adaptation.
//! * [`selfaware`] — the unifying goal/model/action abstraction (§IV-A's
//!   "unifying theory of self-aware adaptation") with instrumented
//!   assessment metrics.
//! * [`safety`] — §VI's actuation interlocks: human authorization for
//!   weapon-like effects and occupancy-based withholding, with an audit
//!   log.
//! * [`estimation`] — resilient state estimation: median-fusion tracking
//!   that bounds minority sensor contamination (§III's secure
//!   state-estimation bullet).
//!
//! # Examples
//!
//! ```
//! use iobt_adapt::prelude::*;
//!
//! // Commander's intent decomposed into three weighted objectives;
//! // twelve autonomous agents self-organize without coordination.
//! let game = IntentGame::new(vec![6.0, 3.0, 1.0]);
//! let eq = game.best_response(12, 42);
//! assert!(eq.converged);
//! assert!(game.is_nash(&eq.assignment));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod control;
pub mod estimation;
pub mod game;
pub mod invariant;
pub mod modality;
pub mod safety;
pub mod selfaware;

pub use alloc::{
    hotspot_trace, mm1_latency_ms, simulate, simulate_observed, water_fill, AllocationPolicy,
    AllocationRun, SATURATION_PENALTY_MS,
};
pub use iobt_obs::Recorder;
pub use control::{PiController, QueuePlant};
pub use estimation::{track, AlphaBetaFilter, FusionRule, TrackingRun};
pub use game::{Equilibrium, IntentGame};
pub use invariant::{InvariantMonitor, StabilizationReport, Stabilizer};
pub use modality::{ModalitySwitcher, SwitchPolicy};
pub use safety::{ActuationController, ActuationDecision, AuditEntry, HumanAuthorization};
pub use selfaware::{AdaptationLoop, AdaptationMetrics, LoadBandService, SelfAware};

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::{
        hotspot_trace, simulate, simulate_observed, AllocationPolicy, AllocationRun, Equilibrium,
        IntentGame, InvariantMonitor, ModalitySwitcher, PiController, QueuePlant, Recorder,
        StabilizationReport, Stabilizer, SwitchPolicy,
    };
    pub use crate::estimation::{track, AlphaBetaFilter, FusionRule, TrackingRun};
    pub use crate::safety::{
        ActuationController, ActuationDecision, AuditEntry, HumanAuthorization,
    };
    pub use crate::selfaware::{AdaptationLoop, AdaptationMetrics, LoadBandService, SelfAware};
}
