//! Game-theoretic intent decomposition: command by intent as a potential
//! game.
//!
//! §IV-A, "Operationalizing agent interactions": "by suitably choosing
//! agent objective functions, one may be able to guarantee that the
//! interactions between the multiple agents in the battlefield will
//! converge to an equilibrium in which the desired objectives are met.
//! The necessary distributed coordination and control between agents do
//! not need to be explicitly designed, but rather naturally result from
//! each agent seeking to optimize its given objective function."
//!
//! We implement the classic construction: mission objectives become tasks
//! with weights, each agent independently picks the task maximizing its
//! *own* utility `w_t / n_t` (the task's weight split among the agents on
//! it), and best-response dynamics provably converge because this is a
//! congestion (potential) game with potential
//! `Φ = Σ_t Σ_{i=1..n_t} w_t / i`, which strictly increases on every
//! improving move.

// `t` is a task identifier compared against the agent's current task, not
// a bare index; the range loop reads naturally here.
#![allow(clippy::needless_range_loop)]

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A task-allocation potential game.
#[derive(Debug, Clone, PartialEq)]
pub struct IntentGame {
    weights: Vec<f64>,
}

/// Outcome of running best-response dynamics.
#[derive(Debug, Clone, PartialEq)]
pub struct Equilibrium {
    /// Final task choice per agent.
    pub assignment: Vec<usize>,
    /// Best-response sweeps until no agent moved.
    pub sweeps: usize,
    /// Total improving moves taken.
    pub moves: usize,
    /// Whether a Nash equilibrium was certified (no agent can improve).
    pub converged: bool,
    /// The potential value at the end.
    pub potential: f64,
}

impl Equilibrium {
    /// Number of agents on each task.
    pub fn task_loads(&self, num_tasks: usize) -> Vec<usize> {
        let mut loads = vec![0usize; num_tasks];
        for &t in &self.assignment {
            loads[t] += 1;
        }
        loads
    }
}

impl IntentGame {
    /// Creates a game from positive task weights (the commander's
    /// decomposed objectives; weight = importance).
    ///
    /// # Panics
    ///
    /// Panics when `weights` is empty or any weight is non-positive.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "need at least one task");
        assert!(
            weights.iter().all(|&w| w > 0.0 && w.is_finite()),
            "weights must be positive and finite"
        );
        IntentGame { weights }
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.weights.len()
    }

    /// An agent's utility for being one of `n_t` agents on task `t`.
    pub fn utility(&self, task: usize, n_t: usize) -> f64 {
        self.weights[task] / n_t.max(1) as f64
    }

    /// Rosenthal potential of an assignment.
    pub fn potential(&self, assignment: &[usize]) -> f64 {
        let mut loads = vec![0usize; self.weights.len()];
        for &t in assignment {
            loads[t] += 1;
        }
        loads
            .iter()
            .enumerate()
            .map(|(t, &n)| (1..=n).map(|i| self.weights[t] / i as f64).sum::<f64>())
            .sum()
    }

    /// Runs asynchronous best-response dynamics from a random initial
    /// assignment of `agents` agents (deterministic in `seed`). Agents are
    /// polled in shuffled order each sweep; each moves to its best task
    /// given everyone else's current choice.
    ///
    /// Always converges: every improving move strictly increases the
    /// Rosenthal potential, which takes finitely many values.
    pub fn best_response(&self, agents: usize, seed: u64) -> Equilibrium {
        let tasks = self.weights.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut assignment: Vec<usize> =
            (0..agents).map(|i| i % tasks).collect();
        assignment.shuffle(&mut rng);
        let mut loads = vec![0usize; tasks];
        for &t in &assignment {
            loads[t] += 1;
        }
        let mut order: Vec<usize> = (0..agents).collect();
        let mut moves = 0usize;
        let mut sweeps = 0usize;
        // An upper bound on sweeps: each sweep without a move terminates;
        // potential strictly increases otherwise, and the number of
        // distinct potentials is finite. Guard anyway.
        let max_sweeps = 10 * agents.max(1) * tasks.max(1) + 10;
        let mut converged = false;
        while sweeps < max_sweeps {
            sweeps += 1;
            order.shuffle(&mut rng);
            let mut any_moved = false;
            for &agent in &order {
                let current = assignment[agent];
                // Utility if staying: weight / current load. Utility if
                // moving to t: weight_t / (load_t + 1).
                let mut best_task = current;
                let mut best_utility = self.utility(current, loads[current]);
                for t in 0..tasks {
                    if t == current {
                        continue;
                    }
                    let u = self.utility(t, loads[t] + 1);
                    if u > best_utility + 1e-12 {
                        best_utility = u;
                        best_task = t;
                    }
                }
                if best_task != current {
                    loads[current] -= 1;
                    loads[best_task] += 1;
                    assignment[agent] = best_task;
                    moves += 1;
                    any_moved = true;
                }
            }
            if !any_moved {
                converged = true;
                break;
            }
        }
        let potential = self.potential(&assignment);
        Equilibrium {
            assignment,
            sweeps,
            moves,
            converged,
            potential,
        }
    }

    /// Whether an assignment is a pure Nash equilibrium.
    pub fn is_nash(&self, assignment: &[usize]) -> bool {
        let tasks = self.weights.len();
        let mut loads = vec![0usize; tasks];
        for &t in assignment {
            loads[t] += 1;
        }
        for &current in assignment {
            let here = self.utility(current, loads[current]);
            for t in 0..tasks {
                if t != current && self.utility(t, loads[t] + 1) > here + 1e-12 {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn best_response_reaches_nash() {
        let g = IntentGame::new(vec![10.0, 6.0, 3.0, 1.0]);
        let eq = g.best_response(12, 1);
        assert!(eq.converged);
        assert!(g.is_nash(&eq.assignment));
    }

    #[test]
    fn loads_are_proportional_to_weights() {
        // With many agents, equilibrium loads approximate the weight ratio
        // (equal marginal utility across tasks).
        let g = IntentGame::new(vec![8.0, 4.0, 2.0]);
        let eq = g.best_response(140, 2);
        let loads = eq.task_loads(3);
        assert_eq!(loads.iter().sum::<usize>(), 140);
        let r0 = loads[0] as f64 / loads[1] as f64;
        let r1 = loads[1] as f64 / loads[2] as f64;
        assert!((r0 - 2.0).abs() < 0.3, "load ratio ~ weight ratio: {loads:?}");
        assert!((r1 - 2.0).abs() < 0.3, "{loads:?}");
    }

    #[test]
    fn every_task_gets_an_agent_when_enough_agents() {
        // Staffing every objective at equilibrium needs enough agents that
        // the most-staffed task's marginal utility drops below the least
        // weighty task's solo utility: with weights 5:2:1 and 16 agents,
        // n ∝ w gives loads ≈ (10, 4, 2).
        let g = IntentGame::new(vec![5.0, 2.0, 1.0]);
        let eq = g.best_response(16, 3);
        let loads = eq.task_loads(3);
        assert!(
            loads.iter().all(|&l| l > 0),
            "commander's objectives all staffed: {loads:?}"
        );
    }

    #[test]
    fn moves_strictly_increase_potential() {
        let g = IntentGame::new(vec![7.0, 3.0]);
        // Start everyone on task 1 (bad) and watch the potential climb.
        let all_on_one: Vec<usize> = vec![1; 6];
        let eq = g.best_response(6, 4);
        assert!(eq.potential >= g.potential(&all_on_one) - 1e-9);
    }

    #[test]
    fn single_task_is_immediately_nash() {
        let g = IntentGame::new(vec![1.0]);
        let eq = g.best_response(5, 0);
        assert!(eq.converged);
        assert_eq!(eq.moves, 0);
        assert_eq!(eq.task_loads(1), vec![5]);
    }

    #[test]
    fn zero_agents_is_trivially_converged() {
        let g = IntentGame::new(vec![1.0, 2.0]);
        let eq = g.best_response(0, 0);
        assert!(eq.converged);
        assert!(eq.assignment.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_weights() {
        IntentGame::new(vec![1.0, 0.0]);
    }

    proptest! {
        #[test]
        fn always_converges_to_nash(
            weights in proptest::collection::vec(0.1..10.0f64, 1..6),
            agents in 0usize..30,
            seed in 0u64..10,
        ) {
            let g = IntentGame::new(weights);
            let eq = g.best_response(agents, seed);
            prop_assert!(eq.converged, "potential games always converge");
            prop_assert!(g.is_nash(&eq.assignment));
        }
    }
}
