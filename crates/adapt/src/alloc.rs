//! Adaptive edge-resource allocation under load spikes and DoS.
//!
//! §IV-B: resource allocation must "(i) dynamically reallocate
//! heterogeneous resources … (ii) scale resource allocations to match
//! workloads that exhibit high spatial and temporal variability, and (iii)
//! prevent any subset of IoBT devices (including attackers) from
//! saturating cloud processing and communication resources."
//!
//! Model: a pool of edge capacity (requests/s) is divided among regions
//! each epoch. Region latency follows the M/M/1 law `1 / (μ − λ)` when
//! `λ < μ` and a saturation penalty otherwise. Three policies:
//!
//! * [`Static`](AllocationPolicy::Static) — equal split, fixed forever.
//! * [`Proportional`](AllocationPolicy::Proportional) — share ∝ observed
//!   demand. Tracks hotspots, but a DoS flood inflates its own demand and
//!   *steals* the pool, starving every victim — the failure mode clause
//!   (iii) warns about.
//! * [`MaxMin`](AllocationPolicy::MaxMin) — water-filling with headroom:
//!   small demands are fully served (plus headroom), the surplus is split
//!   evenly among heavy claimants. An attacker can saturate only itself.

use iobt_obs::{Recorder, TraceEvent};

/// Allocation policies compared in experiment `t5_resource_adaptation`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AllocationPolicy {
    /// Equal share per region, fixed for the whole run.
    Static,
    /// Per-epoch share proportional to observed demand (no protection).
    Proportional,
    /// Per-epoch max-min fair (water-filling) allocation of
    /// `demand × (1 + headroom)` claims.
    MaxMin {
        /// Fractional headroom above demand granted to fully-served
        /// regions, keeping them strictly unsaturated (≥ 0).
        headroom: f64,
    },
}

impl std::fmt::Display for AllocationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocationPolicy::Static => write!(f, "static"),
            AllocationPolicy::Proportional => write!(f, "proportional"),
            AllocationPolicy::MaxMin { headroom } => write!(f, "max-min(+{headroom})"),
        }
    }
}

/// Latency penalty (ms) charged when a region is saturated (`λ ≥ μ`).
pub const SATURATION_PENALTY_MS: f64 = 10_000.0;

/// M/M/1 latency in milliseconds for demand `lambda` against capacity
/// `mu`, both in requests/s.
pub fn mm1_latency_ms(lambda: f64, mu: f64) -> f64 {
    if lambda <= 0.0 {
        return 0.0;
    }
    if mu <= lambda {
        SATURATION_PENALTY_MS
    } else {
        1_000.0 / (mu - lambda)
    }
}

/// Water-filling: allocates `capacity` against `claims`, fully serving
/// small claims and splitting the remainder evenly among large ones.
/// Returns one allocation per claim; total equals `capacity` when
/// `Σ claims ≥ capacity`, otherwise claims are fully met and the surplus
/// is split evenly.
pub fn water_fill(capacity: f64, claims: &[f64]) -> Vec<f64> {
    let n = claims.len();
    if n == 0 {
        return Vec::new();
    }
    let total: f64 = claims.iter().map(|c| c.max(0.0)).sum();
    if total <= capacity {
        let surplus = (capacity - total) / n as f64;
        return claims.iter().map(|c| c.max(0.0) + surplus).collect();
    }
    // Sort claim indices ascending and fill until the water level binds.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| claims[a].total_cmp(&claims[b]));
    let mut alloc = vec![0.0; n];
    let mut remaining = capacity;
    for (rank, &i) in order.iter().enumerate() {
        let level = remaining / (n - rank) as f64;
        let claim = claims[i].max(0.0);
        if claim <= level {
            alloc[i] = claim;
            remaining -= claim;
        } else {
            // Water level reached: everyone from here up gets `level`.
            for &j in &order[rank..] {
                alloc[j] = level;
            }
            return alloc;
        }
    }
    alloc
}

/// Per-epoch allocation of the capacity pool.
fn allocate(policy: AllocationPolicy, total_capacity: f64, demands: &[f64]) -> Vec<f64> {
    let n = demands.len();
    if n == 0 {
        return Vec::new();
    }
    let fair = total_capacity / n as f64;
    match policy {
        AllocationPolicy::Static => vec![fair; n],
        AllocationPolicy::Proportional => {
            let total: f64 = demands.iter().map(|d| d.max(0.0)).sum();
            if total <= 1e-12 {
                return vec![fair; n];
            }
            demands
                .iter()
                .map(|&d| total_capacity * d.max(0.0) / total)
                .collect()
        }
        AllocationPolicy::MaxMin { headroom } => {
            let h = 1.0 + headroom.max(0.0);
            let claims: Vec<f64> = demands.iter().map(|&d| d.max(0.0) * h).collect();
            water_fill(total_capacity, &claims)
        }
    }
}

/// Result of simulating a workload trace under a policy.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationRun {
    /// Latency of every (epoch, region) sample, ms.
    pub latencies_ms: Vec<f64>,
    /// Fraction of samples that hit saturation.
    pub saturation_fraction: f64,
}

impl AllocationRun {
    /// The `q`-quantile latency (exact, nearest-rank), or `0.0` when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(f64::total_cmp);
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * sorted.len() as f64).ceil() as usize)
            .min(sorted.len())
            .saturating_sub(1);
        sorted[idx]
    }

    /// Mean latency, or `0.0` when empty.
    pub fn mean_ms(&self) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len() as f64
    }
}

/// Simulates a demand trace: `demands[epoch][region]` in requests/s
/// against a capacity pool, under the given policy. The reactive policies
/// observe each epoch's demand *before* allocating it — modelling a
/// controller reacting on the measurement timescale.
///
/// # Panics
///
/// Panics when epochs have inconsistent region counts.
pub fn simulate(
    policy: AllocationPolicy,
    total_capacity: f64,
    demands: &[Vec<f64>],
) -> AllocationRun {
    simulate_observed(policy, total_capacity, demands, &Recorder::disabled())
}

/// [`simulate`] with tracing: emits one
/// [`Allocation`](TraceEvent::Allocation) event per epoch (stamped at one
/// sim-second per epoch) carrying the number of regions allocated and how
/// many of them hit the saturation penalty.
///
/// # Panics
///
/// Panics when epochs have inconsistent region counts.
pub fn simulate_observed(
    policy: AllocationPolicy,
    total_capacity: f64,
    demands: &[Vec<f64>],
    recorder: &Recorder,
) -> AllocationRun {
    let regions = demands.first().map(Vec::len).unwrap_or(0);
    assert!(
        demands.iter().all(|d| d.len() == regions),
        "every epoch must cover every region"
    );
    let mut latencies = Vec::with_capacity(demands.len() * regions);
    let mut saturated = 0usize;
    for (e, epoch) in demands.iter().enumerate() {
        let shares = allocate(policy, total_capacity, epoch);
        let mut epoch_saturated = 0usize;
        for (&lambda, &mu) in epoch.iter().zip(&shares) {
            let l = mm1_latency_ms(lambda, mu);
            if l >= SATURATION_PENALTY_MS {
                epoch_saturated += 1;
            }
            latencies.push(l);
        }
        saturated += epoch_saturated;
        recorder.record_at(
            e as u64 * 1_000_000,
            TraceEvent::Allocation {
                epoch: e as u64,
                regions: regions as u64,
                saturated: epoch_saturated as u64,
            },
        );
    }
    let total = latencies.len().max(1);
    AllocationRun {
        latencies_ms: latencies,
        saturation_fraction: saturated as f64 / total as f64,
    }
}

/// Builds a demand trace with a moving hotspot and an optional DoS region:
/// baseline demand everywhere, a hotspot whose location advances every
/// epoch, and (from `dos_from_epoch` on) one region adding `dos_demand`.
pub fn hotspot_trace(
    regions: usize,
    epochs: usize,
    baseline: f64,
    hotspot: f64,
    dos_region: Option<usize>,
    dos_from_epoch: usize,
    dos_demand: f64,
) -> Vec<Vec<f64>> {
    (0..epochs)
        .map(|e| {
            (0..regions)
                .map(|r| {
                    let mut d = baseline;
                    if regions > 0 && r == e % regions {
                        d += hotspot;
                    }
                    if Some(r) == dos_region && e >= dos_from_epoch {
                        d += dos_demand;
                    }
                    d
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_behaviour() {
        assert_eq!(mm1_latency_ms(0.0, 10.0), 0.0);
        assert!((mm1_latency_ms(5.0, 10.0) - 200.0).abs() < 1e-9);
        assert_eq!(mm1_latency_ms(10.0, 10.0), SATURATION_PENALTY_MS);
        assert_eq!(mm1_latency_ms(20.0, 10.0), SATURATION_PENALTY_MS);
    }

    #[test]
    fn water_fill_small_claims_fully_served() {
        let alloc = water_fill(100.0, &[10.0, 10.0, 200.0]);
        assert!((alloc[0] - 10.0).abs() < 1e-9);
        assert!((alloc[1] - 10.0).abs() < 1e-9);
        assert!((alloc[2] - 80.0).abs() < 1e-9);
        assert!((alloc.iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn water_fill_heavy_claims_share_evenly() {
        let alloc = water_fill(100.0, &[200.0, 300.0]);
        assert!((alloc[0] - 50.0).abs() < 1e-9);
        assert!((alloc[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn water_fill_surplus_split() {
        let alloc = water_fill(100.0, &[10.0, 20.0]);
        assert!((alloc[0] - 45.0).abs() < 1e-9);
        assert!((alloc[1] - 55.0).abs() < 1e-9);
    }

    #[test]
    fn reactive_policies_track_the_hotspot_better_than_static() {
        let trace = hotspot_trace(5, 50, 10.0, 60.0, None, 0, 0.0);
        let capacity = 150.0;
        let static_run = simulate(AllocationPolicy::Static, capacity, &trace);
        let prop = simulate(AllocationPolicy::Proportional, capacity, &trace);
        let maxmin = simulate(AllocationPolicy::MaxMin { headroom: 0.2 }, capacity, &trace);
        // Static saturates the hotspot region (70 > 30 share).
        assert!(static_run.saturation_fraction > 0.0);
        assert_eq!(prop.saturation_fraction, 0.0);
        assert_eq!(maxmin.saturation_fraction, 0.0);
        assert!(prop.quantile_ms(0.99) < static_run.quantile_ms(0.99));
        assert!(maxmin.quantile_ms(0.99) < static_run.quantile_ms(0.99));
    }

    #[test]
    fn max_min_contains_dos_where_proportional_collapses() {
        // Region 0 floods with ~10x pool demand from epoch 10.
        let trace = hotspot_trace(5, 40, 10.0, 0.0, Some(0), 10, 1_000.0);
        let capacity = 120.0;
        let prop = simulate(AllocationPolicy::Proportional, capacity, &trace);
        let maxmin = simulate(AllocationPolicy::MaxMin { headroom: 0.2 }, capacity, &trace);
        // Proportional: during the flood, victims' share collapses below
        // their demand -> most samples saturate. MaxMin: only the attacker
        // region saturates (1 of 5 regions, 30 of 40 epochs).
        assert!(
            prop.saturation_fraction > 0.5,
            "proportional lets the flood steal: {}",
            prop.saturation_fraction
        );
        assert!(
            maxmin.saturation_fraction < 0.2,
            "max-min contains the flood: {}",
            maxmin.saturation_fraction
        );
    }

    #[test]
    fn uniform_demand_makes_policies_equivalent() {
        let trace = vec![vec![10.0; 4]; 10];
        let s = simulate(AllocationPolicy::Static, 100.0, &trace);
        let p = simulate(AllocationPolicy::Proportional, 100.0, &trace);
        let m = simulate(AllocationPolicy::MaxMin { headroom: 0.0 }, 100.0, &trace);
        assert!((s.mean_ms() - p.mean_ms()).abs() < 1e-9);
        assert!((s.mean_ms() - m.mean_ms()).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_safe() {
        let run = simulate(AllocationPolicy::Static, 100.0, &[]);
        assert_eq!(run.mean_ms(), 0.0);
        assert_eq!(run.quantile_ms(0.99), 0.0);
        assert!(water_fill(10.0, &[]).is_empty());
    }

    #[test]
    fn zero_demand_epoch_keeps_fair_shares() {
        let trace = vec![vec![0.0; 3]];
        for policy in [
            AllocationPolicy::Proportional,
            AllocationPolicy::MaxMin { headroom: 0.2 },
        ] {
            let run = simulate(policy, 90.0, &trace);
            assert_eq!(run.latencies_ms, vec![0.0; 3]);
        }
    }

    #[test]
    fn observed_run_emits_one_event_per_epoch() {
        let trace = hotspot_trace(3, 5, 10.0, 200.0, None, 0, 0.0);
        let (recorder, ring) = Recorder::memory(16);
        let run = simulate_observed(AllocationPolicy::Static, 90.0, &trace, &recorder);
        let records = ring.records();
        assert_eq!(records.len(), 5);
        for (e, rec) in records.iter().enumerate() {
            assert_eq!(rec.t_us, e as u64 * 1_000_000);
            match rec.event {
                TraceEvent::Allocation {
                    epoch,
                    regions,
                    saturated,
                } => {
                    assert_eq!(epoch, e as u64);
                    assert_eq!(regions, 3);
                    // Static 30/region share saturates the 210-demand hotspot.
                    assert_eq!(saturated, 1);
                }
                ref other => panic!("unexpected event {other:?}"),
            }
        }
        assert!(run.saturation_fraction > 0.0);
        assert_eq!(
            recorder.metrics_digest().counter("adapt.alloc_epochs"),
            Some(5)
        );
        // The untraced entry point matches the traced run exactly.
        assert_eq!(simulate(AllocationPolicy::Static, 90.0, &trace), run);
    }

    #[test]
    fn display_names() {
        assert_eq!(AllocationPolicy::Static.to_string(), "static");
        assert_eq!(AllocationPolicy::Proportional.to_string(), "proportional");
        assert!(AllocationPolicy::MaxMin { headroom: 0.2 }
            .to_string()
            .contains("max-min"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Water-filling never exceeds capacity, never hands out
            /// negative shares, and is max-min fair: small claims are
            /// fully served before any larger claim gets more.
            #[test]
            fn water_fill_invariants(
                capacity in 1.0..1e4f64,
                claims in proptest::collection::vec(0.0..1e4f64, 1..12),
            ) {
                let alloc = water_fill(capacity, &claims);
                prop_assert_eq!(alloc.len(), claims.len());
                let total: f64 = alloc.iter().sum();
                prop_assert!(alloc.iter().all(|&a| a >= -1e-9));
                let claimed: f64 = claims.iter().sum();
                if claimed >= capacity {
                    prop_assert!((total - capacity).abs() < 1e-6 * capacity.max(1.0));
                    // No region gets more than its claim when rationing.
                    for (a, c) in alloc.iter().zip(&claims) {
                        prop_assert!(*a <= c + 1e-9);
                    }
                } else {
                    prop_assert!(total >= claimed - 1e-6);
                }
                // Max-min fairness: if i gets less than its claim, then no
                // j gets strictly more than i's allocation.
                for (i, (&ai, &ci)) in alloc.iter().zip(&claims).enumerate() {
                    if ai + 1e-9 < ci {
                        for (j, &aj) in alloc.iter().enumerate() {
                            if i != j {
                                prop_assert!(aj <= ai + 1e-6,
                                    "unfair: {j} got {aj} while {i} starved at {ai}");
                            }
                        }
                    }
                }
            }
        }
    }
}
