//! Resilient state estimation under sensor contamination.
//!
//! §III asks for "algorithms and theory for exploitation of physical
//! dynamics of sensor observations to enable secure and resilient
//! state-estimation and control in the face of data contamination". We
//! implement the standard construction: N redundant sensors observe a
//! moving scalar state (e.g. a tracked vehicle's along-route position); a
//! fraction are compromised and inject coordinated bias. A *median-fusion*
//! front end feeds an [alpha–beta filter](AlphaBetaFilter) that exploits
//! the physical dynamics (bounded velocity); mean fusion is the fragile
//! baseline. With fewer than half the sensors compromised, median fusion
//! bounds the injected error — the classic breakdown-point argument.

/// A constant-gain alpha–beta tracker for a scalar state with velocity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaBetaFilter {
    alpha: f64,
    beta: f64,
    position: f64,
    velocity: f64,
    initialized: bool,
}

impl AlphaBetaFilter {
    /// Creates a filter with smoothing gains `alpha` (position) and
    /// `beta` (velocity), both clamped to `[0, 1]`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        AlphaBetaFilter {
            alpha: alpha.clamp(0.0, 1.0),
            beta: beta.clamp(0.0, 1.0),
            position: 0.0,
            velocity: 0.0,
            initialized: false,
        }
    }

    /// Current position estimate.
    pub const fn position(&self) -> f64 {
        self.position
    }

    /// Current velocity estimate (units per step).
    pub const fn velocity(&self) -> f64 {
        self.velocity
    }

    /// Advances one time step with a fused measurement; returns the new
    /// position estimate. `dt` is the step length.
    pub fn update(&mut self, measurement: f64, dt: f64) -> f64 {
        if !self.initialized {
            self.position = measurement;
            self.velocity = 0.0;
            self.initialized = true;
            return self.position;
        }
        let dt = dt.max(1e-9);
        let predicted = self.position + self.velocity * dt;
        let residual = measurement - predicted;
        self.position = predicted + self.alpha * residual;
        self.velocity += self.beta * residual / dt;
        self.position
    }
}

/// How redundant sensor readings are fused into one measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionRule {
    /// Arithmetic mean — fragile: one biased sensor shifts the estimate.
    Mean,
    /// Median — tolerates any minority of arbitrarily corrupted sensors.
    Median,
}

impl FusionRule {
    /// Fuses one time step's readings. Returns `None` for an empty slice.
    pub fn fuse(&self, readings: &[f64]) -> Option<f64> {
        if readings.is_empty() {
            return None;
        }
        match self {
            FusionRule::Mean => Some(readings.iter().sum::<f64>() / readings.len() as f64),
            FusionRule::Median => {
                let mut sorted = readings.to_vec();
                sorted.sort_by(f64::total_cmp);
                Some(sorted[(sorted.len() - 1) / 2])
            }
        }
    }
}

/// Result of a tracking run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackingRun {
    /// Position estimate per step.
    pub estimates: Vec<f64>,
    /// RMS tracking error against ground truth.
    pub rmse: f64,
    /// Worst absolute error.
    pub max_error: f64,
}

/// Tracks a ground-truth trajectory through contaminated sensors.
///
/// Per step, each of `num_sensors` observes truth plus bounded noise
/// (deterministic per sensor/step); the first `num_compromised` add a
/// coordinated `bias`. Readings are fused by `rule` and smoothed by an
/// alpha-beta filter.
///
/// ```
/// # use iobt_adapt::estimation::{track, FusionRule};
/// let truth: Vec<f64> = (0..100).map(|t| t as f64 * 2.0).collect();
/// let median = track(&truth, 9, 3, 50.0, FusionRule::Median);
/// let mean = track(&truth, 9, 3, 50.0, FusionRule::Mean);
/// assert!(median.rmse < mean.rmse / 3.0, "median fusion bounds the attack");
/// ```
pub fn track(
    truth: &[f64],
    num_sensors: usize,
    num_compromised: usize,
    bias: f64,
    rule: FusionRule,
) -> TrackingRun {
    let num_compromised = num_compromised.min(num_sensors);
    let mut filter = AlphaBetaFilter::new(0.5, 0.3);
    let mut estimates = Vec::with_capacity(truth.len());
    let mut sq_sum = 0.0;
    let mut max_error: f64 = 0.0;
    for (t, &x) in truth.iter().enumerate() {
        let readings: Vec<f64> = (0..num_sensors)
            .map(|s| {
                // Deterministic bounded noise in [-1, 1): a cheap hash of
                // (t, s) — adequate for sensor jitter and fully
                // reproducible.
                let h = (t as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(s as u64)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                let noise = ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
                let injected = if s < num_compromised { bias } else { 0.0 };
                x + noise + injected
            })
            .collect();
        // lint: allow(panic) — readings has num_sensors ≥ 1 entries, so fuse never sees an empty slice
        let fused = rule.fuse(&readings).expect("sensors exist");
        let est = filter.update(fused, 1.0);
        sq_sum += (est - x) * (est - x);
        max_error = max_error.max((est - x).abs());
        estimates.push(est);
    }
    let n = truth.len().max(1);
    TrackingRun {
        estimates,
        rmse: (sq_sum / n as f64).sqrt(),
        max_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, v: f64) -> Vec<f64> {
        (0..n).map(|t| t as f64 * v).collect()
    }

    #[test]
    fn filter_tracks_constant_velocity() {
        let truth = ramp(200, 3.0);
        let run = track(&truth, 5, 0, 0.0, FusionRule::Mean);
        assert!(run.rmse < 1.0, "clean tracking: rmse {}", run.rmse);
        // Velocity estimate converges to the true 3 units/step.
        let mut f = AlphaBetaFilter::new(0.5, 0.3);
        for &x in &truth {
            f.update(x, 1.0);
        }
        assert!((f.velocity() - 3.0).abs() < 0.1, "{}", f.velocity());
    }

    #[test]
    fn median_fusion_bounds_minority_contamination() {
        let truth = ramp(150, 2.0);
        let mean_run = track(&truth, 9, 4, 100.0, FusionRule::Mean);
        let median_run = track(&truth, 9, 4, 100.0, FusionRule::Median);
        // Mean fusion absorbs 4/9 of the 100-unit bias (~44 units).
        assert!(mean_run.rmse > 30.0, "mean is hijacked: {}", mean_run.rmse);
        assert!(
            median_run.rmse < 2.0,
            "median survives a 4/9 minority: {}",
            median_run.rmse
        );
    }

    #[test]
    fn median_breaks_at_majority_compromise() {
        let truth = ramp(150, 2.0);
        let run = track(&truth, 9, 5, 100.0, FusionRule::Median);
        assert!(
            run.rmse > 50.0,
            "a compromised majority defeats any fusion: {}",
            run.rmse
        );
    }

    #[test]
    fn fusion_edge_cases() {
        assert_eq!(FusionRule::Mean.fuse(&[]), None);
        assert_eq!(FusionRule::Median.fuse(&[7.0]), Some(7.0));
        assert_eq!(FusionRule::Median.fuse(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(FusionRule::Mean.fuse(&[1.0, 3.0]), Some(2.0));
    }

    #[test]
    fn zero_sensors_is_rejected_gracefully() {
        // track() clamps num_compromised and requires sensors > 0 via the
        // fuse expect; with zero sensors the function would panic, so the
        // public contract is ≥ 1 sensor. Assert the clamp path instead.
        let truth = ramp(10, 1.0);
        let run = track(&truth, 3, 99, 10.0, FusionRule::Median);
        assert_eq!(run.estimates.len(), 10);
    }

    #[test]
    fn tracking_is_deterministic() {
        let truth = ramp(50, 1.5);
        let a = track(&truth, 7, 2, 20.0, FusionRule::Median);
        let b = track(&truth, 7, 2, 20.0, FusionRule::Median);
        assert_eq!(a, b);
    }
}
