//! # iobt-faults — deterministic fault injection for the IoBT stack
//!
//! The paper's core promise is *adaptive, resilient execution* under
//! battle damage, jamming, and partial compromise (§IV), and the IoBT
//! literature treats disruption as the default operating condition: Kott
//! et al. (arXiv:1712.08980) argue battlefield things must assume loss,
//! deception, and intermittent connectivity, and Farooq & Zhu
//! (arXiv:1703.01224) study exactly the correlated-failure and partition
//! regimes that point failures cannot express.
//!
//! This crate provides the attack side of that story as data:
//!
//! * [`FaultPlan`] — a declarative, sim-time-stamped list of fault
//!   events (crash, crash-with-recovery, region blackout, network
//!   partition, link degradation, compromised relays) that
//!   [`FaultPlan::schedule`]s onto a [`Simulator`] through its injection
//!   hooks. Plans compose with churn and jammer schedules and with each
//!   other ([`FaultPlan::merge`]).
//! * [`generate_campaign`] — a seeded random campaign generator: one
//!   `u64` seed reproduces the whole campaign, which is what makes the
//!   chaos harness's same-seed digest assertions possible.
//! * [`failpoint`] — the deterministic FNV-1a failpoint trigger shared
//!   by `iobt-fleet`'s `FailingStore` and `iobt-bridge`'s
//!   `FaultyTransport`: per-operation fault decisions as a pure
//!   function of `(seed, domain, key, op)`.
//!
//! Everything here is pure data until `schedule` is called; no wall
//! clock, no ambient entropy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
pub mod failpoint;
mod plan;

pub use campaign::{generate_campaign, CampaignConfig};
pub use plan::{FaultEvent, FaultKind, FaultPlan};

#[allow(unused_imports)]
use iobt_netsim::Simulator;
