//! The fault-plan DSL: declarative, sim-time-stamped fault events that
//! schedule themselves onto a [`Simulator`] through its injection hooks.

use iobt_netsim::sim::{CompromiseSpec, LinkDegradation, PartitionSpec};
use iobt_netsim::{SimDuration, SimTime, Simulator};
use iobt_obs::TraceEvent;
use iobt_types::{NodeId, Rect};

/// One kind of injected fault. Each variant maps onto a simulator
/// injection hook when the owning [`FaultPlan`] is scheduled.
#[derive(Debug, Clone)]
pub enum FaultKind {
    /// A node crashes; with `recover_after` set it reboots that much
    /// later (fail-recover), otherwise it stays down (fail-stop).
    Crash {
        /// The node to take down.
        node: NodeId,
        /// Time from the crash until reboot, if the node recovers.
        recover_after: Option<SimDuration>,
    },
    /// Every alive node inside `rect` at the fire instant goes down
    /// together (area-effect strike, EMP, localized infrastructure
    /// loss). With `lift_after` set, the killed survivors are revived
    /// that much later; nodes that depleted meanwhile stay down.
    RegionBlackout {
        /// The affected area; membership is resolved at fire time so
        /// mobile nodes are caught wherever they actually are.
        rect: Rect,
        /// Time from the outage until the blackout lifts, if it does.
        lift_after: Option<SimDuration>,
    },
    /// Links between the two groups of `spec` vanish for `duration`
    /// (fiber cut, relay sabotage, RF occlusion). Nodes stay alive.
    Partition {
        /// Which links are cut.
        spec: PartitionSpec,
        /// How long the cut holds.
        duration: SimDuration,
    },
    /// Channel-wide extra path loss and latency multiplier for
    /// `duration` (weather, obscurants, wide-band interference).
    Degrade {
        /// The degradation to apply.
        spec: LinkDegradation,
        /// How long the degradation holds.
        duration: SimDuration,
    },
    /// The relays in `spec` act maliciously for `duration`: traffic
    /// routed through them is delayed and optionally tampered.
    Compromise {
        /// Which relays are compromised and what they do.
        spec: CompromiseSpec,
        /// How long the compromise holds.
        duration: SimDuration,
    },
}

impl FaultKind {
    /// Stable kind label, used in trace events and metrics keys.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Crash {
                recover_after: Some(_),
                ..
            } => "crash_recover",
            FaultKind::Crash { .. } => "crash",
            FaultKind::RegionBlackout { .. } => "region_blackout",
            FaultKind::Partition { .. } => "partition",
            FaultKind::Degrade { .. } => "degrade",
            FaultKind::Compromise { .. } => "compromise",
        }
    }

    /// The instant this fault's effects are fully over, relative to its
    /// start at `at`: recovery/lift/expiry time, or `at` itself for
    /// permanent faults (whose *onset* is the lasting state).
    fn clear_time(&self, at: SimTime) -> SimTime {
        match self {
            FaultKind::Crash { recover_after, .. } => at + recover_after.unwrap_or(SimDuration::ZERO),
            FaultKind::RegionBlackout { lift_after, .. } => {
                at + lift_after.unwrap_or(SimDuration::ZERO)
            }
            FaultKind::Partition { duration, .. }
            | FaultKind::Degrade { duration, .. }
            | FaultKind::Compromise { duration, .. } => at + *duration,
        }
    }
}

/// One scheduled fault: a [`FaultKind`] and the sim instant it fires.
#[derive(Debug, Clone)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A declarative fault schedule, reproducible and composable.
///
/// A plan is pure data until [`FaultPlan::schedule`] maps it onto a
/// [`Simulator`]; the same plan scheduled onto the same seeded simulator
/// yields a bit-identical run. Plans compose with churn and jammer
/// schedules (they use disjoint hooks) and with each other via
/// [`FaultPlan::merge`].
///
/// # Examples
///
/// ```
/// use iobt_faults::FaultPlan;
/// use iobt_netsim::{SimDuration, SimTime};
/// use iobt_types::NodeId;
///
/// let plan = FaultPlan::new()
///     .crash(SimTime::from_millis(100), NodeId::new(3))
///     .crash_recover(
///         SimTime::from_millis(200),
///         NodeId::new(4),
///         SimDuration::from_millis(50),
///     );
/// assert_eq!(plan.len(), 2);
/// assert_eq!(plan.horizon(), SimTime::from_millis(250));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds an arbitrary fault event.
    pub fn push(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Adds a fail-stop crash of `node` at `at`.
    pub fn crash(self, at: SimTime, node: NodeId) -> Self {
        self.push(
            at,
            FaultKind::Crash {
                node,
                recover_after: None,
            },
        )
    }

    /// Adds a fail-recover crash of `node` at `at`, rebooting
    /// `recover_after` later.
    pub fn crash_recover(self, at: SimTime, node: NodeId, recover_after: SimDuration) -> Self {
        self.push(
            at,
            FaultKind::Crash {
                node,
                recover_after: Some(recover_after),
            },
        )
    }

    /// Adds a region blackout over `rect` at `at`; with `lift_after`
    /// set the blackout lifts that much later.
    pub fn blackout(self, at: SimTime, rect: Rect, lift_after: Option<SimDuration>) -> Self {
        self.push(at, FaultKind::RegionBlackout { rect, lift_after })
    }

    /// Adds a network partition holding for `duration` from `at`.
    pub fn partition(self, at: SimTime, spec: PartitionSpec, duration: SimDuration) -> Self {
        self.push(at, FaultKind::Partition { spec, duration })
    }

    /// Adds a link degradation holding for `duration` from `at`.
    pub fn degrade(self, at: SimTime, spec: LinkDegradation, duration: SimDuration) -> Self {
        self.push(at, FaultKind::Degrade { spec, duration })
    }

    /// Adds a relay compromise holding for `duration` from `at`.
    pub fn compromise(self, at: SimTime, spec: CompromiseSpec, duration: SimDuration) -> Self {
        self.push(at, FaultKind::Compromise { spec, duration })
    }

    /// Appends every event of `other`, preserving both plans' orders.
    pub fn merge(mut self, other: FaultPlan) -> Self {
        self.events.extend(other.events);
        self
    }

    /// Number of fault events in the plan.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The latest instant at which any fault in the plan is still
    /// changing state: the last onset, recovery, lift, or expiry.
    /// [`SimTime::ZERO`] for an empty plan.
    pub fn horizon(&self) -> SimTime {
        self.events
            .iter()
            .map(|ev| ev.kind.clear_time(ev.at).max(ev.at))
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// The latest instant at which every *transient* fault (one with a
    /// recovery, lift, or expiry) has cleared. Permanent faults
    /// (fail-stop crashes, unlifted blackouts) are excluded: their
    /// damage is the new steady state, not a disturbance that passes.
    /// [`SimTime::ZERO`] when the plan has no transient faults.
    pub fn transient_clear_time(&self) -> SimTime {
        self.events
            .iter()
            .filter(|ev| {
                !matches!(
                    ev.kind,
                    FaultKind::Crash {
                        recover_after: None,
                        ..
                    } | FaultKind::RegionBlackout {
                        lift_after: None,
                        ..
                    }
                )
            })
            .map(|ev| ev.kind.clear_time(ev.at))
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Maps every event onto `sim`'s injection hooks and records one
    /// `fault_scheduled` trace event per fault (at the current recorder
    /// time, normally before the run starts).
    ///
    /// Call exactly once per simulator, *before* it runs. In particular,
    /// do **not** call this on a simulator restored from a checkpoint
    /// (`Simulator::restore_state`): the restored event queue already
    /// contains every pending fault event, so scheduling again would
    /// duplicate both the faults and their `fault_scheduled` trace
    /// records and break deterministic resume. The mission runtime's
    /// `MissionRunner::resume` handles this for you.
    pub fn schedule(&self, sim: &mut Simulator) {
        for ev in &self.events {
            let name = ev.kind.name();
            match &ev.kind {
                FaultKind::Crash {
                    node,
                    recover_after,
                } => {
                    sim.schedule_node_down(ev.at, *node);
                    if let Some(d) = recover_after {
                        sim.schedule_node_up(ev.at + *d, *node);
                    }
                }
                FaultKind::RegionBlackout { rect, lift_after } => {
                    let index = sim.add_region_blackout(*rect);
                    sim.schedule_region_outage(ev.at, index);
                    if let Some(d) = lift_after {
                        sim.schedule_region_restore(ev.at + *d, index);
                    }
                }
                FaultKind::Partition { spec, duration } => {
                    let index = sim.add_partition(spec.clone());
                    sim.schedule_partition(ev.at, index, true);
                    sim.schedule_partition(ev.at + *duration, index, false);
                }
                FaultKind::Degrade { spec, duration } => {
                    let index = sim.add_degradation(*spec);
                    sim.schedule_degradation(ev.at, index, true);
                    sim.schedule_degradation(ev.at + *duration, index, false);
                }
                FaultKind::Compromise { spec, duration } => {
                    let index = sim.add_compromise(spec.clone());
                    sim.schedule_compromise(ev.at, index, true);
                    sim.schedule_compromise(ev.at + *duration, index, false);
                }
            }
            sim.recorder().record(TraceEvent::FaultScheduled {
                fault: name,
                at_us: ev.at.as_micros(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iobt_types::{Affiliation, EnergyBudget, NodeCatalog, NodeSpec, Point, Radio, RadioKind};

    fn chain_catalog(n: u64, gap_m: f64) -> NodeCatalog {
        let mut catalog = NodeCatalog::new();
        for i in 0..n {
            catalog
                .insert(
                    NodeSpec::builder(NodeId::new(i))
                        .affiliation(Affiliation::Blue)
                        .position(Point::new(i as f64 * gap_m, 0.0))
                        .radio(Radio::new(RadioKind::Wifi))
                        .energy(EnergyBudget::new(10_000.0))
                        .build(),
                )
                .unwrap();
        }
        catalog
    }

    fn sample_plan() -> FaultPlan {
        FaultPlan::new()
            .crash(SimTime::from_millis(100), NodeId::new(2))
            .crash_recover(
                SimTime::from_millis(150),
                NodeId::new(1),
                SimDuration::from_millis(200),
            )
            .blackout(
                SimTime::from_millis(50),
                Rect::square(40.0),
                Some(SimDuration::from_millis(120)),
            )
            .partition(
                SimTime::from_millis(80),
                PartitionSpec::new([NodeId::new(0)], [NodeId::new(2)]),
                SimDuration::from_millis(60),
            )
            .degrade(
                SimTime::from_millis(30),
                LinkDegradation::new(6.0, 1.5),
                SimDuration::from_millis(500),
            )
            .compromise(
                SimTime::from_millis(10),
                CompromiseSpec::new([NodeId::new(1)], SimDuration::from_millis(5), true),
                SimDuration::from_millis(20),
            )
    }

    #[test]
    fn horizon_covers_last_state_change() {
        // Latest state change: degrade 30ms + 500ms = 530ms.
        assert_eq!(sample_plan().horizon(), SimTime::from_millis(530));
        assert_eq!(FaultPlan::new().horizon(), SimTime::ZERO);
        // A lone fail-stop crash's horizon is its onset.
        let p = FaultPlan::new().crash(SimTime::from_millis(42), NodeId::new(0));
        assert_eq!(p.horizon(), SimTime::from_millis(42));
    }

    #[test]
    fn transient_clear_time_excludes_permanent_faults() {
        // The fail-stop crash at 100ms is permanent; the latest
        // transient clear is still the degrade at 530ms.
        assert_eq!(sample_plan().transient_clear_time(), SimTime::from_millis(530));
        let permanent_only = FaultPlan::new()
            .crash(SimTime::from_millis(100), NodeId::new(0))
            .blackout(SimTime::from_millis(200), Rect::square(10.0), None);
        assert_eq!(permanent_only.transient_clear_time(), SimTime::ZERO);
    }

    #[test]
    fn kind_names_are_stable() {
        let names: Vec<&str> = sample_plan().events().iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            names,
            [
                "crash",
                "crash_recover",
                "region_blackout",
                "partition",
                "degrade",
                "compromise"
            ]
        );
    }

    #[test]
    fn merge_preserves_both_plans() {
        let a = FaultPlan::new().crash(SimTime::from_millis(1), NodeId::new(0));
        let b = FaultPlan::new().crash(SimTime::from_millis(2), NodeId::new(1));
        let merged = a.merge(b);
        assert_eq!(merged.len(), 2);
        assert!(!merged.is_empty());
    }

    #[test]
    fn schedule_drives_every_hook_without_panics() {
        let plan = sample_plan();
        let mut sim = Simulator::builder(chain_catalog(3, 100.0)).seed(5).build();
        plan.schedule(&mut sim);
        sim.run_for(SimDuration::from_millis(800));
        // Node 2 crashed for good; node 1 crashed and recovered; node 0
        // was killed by the blackout at 50ms and revived when it lifted.
        assert!(!sim.is_alive(NodeId::new(2)));
        assert!(sim.is_alive(NodeId::new(1)));
        assert!(sim.is_alive(NodeId::new(0)));
    }

    #[test]
    fn same_plan_same_seed_is_bit_identical() {
        let run = |seed: u64| {
            let plan = sample_plan();
            let mut sim = Simulator::builder(chain_catalog(3, 100.0)).seed(seed).build();
            plan.schedule(&mut sim);
            sim.run_for(SimDuration::from_millis(800));
            sim.stats().to_string()
        };
        assert_eq!(run(9), run(9));
    }
}
