//! Deterministic failpoint triggering shared by every chaos harness in
//! the workspace.
//!
//! A *failpoint* decides whether one particular operation fails, as a
//! pure function of `(seed, domain, key, op)` — never of wall clock,
//! thread id, or global operation order. `domain` separates independent
//! fault classes (write errors vs. torn files, disconnects vs. stalls),
//! `key` pins the schedule to one logical stream (a fleet ticket, a
//! bridge connection), and `op` is that stream's own sequential
//! operation counter. Because every input is stream-local, the same
//! seed reproduces the same faults at the same operations regardless of
//! worker count or scheduling — the property all of the workspace's
//! same-seed digest-equality chaos tests stand on.
//!
//! Two consumers share this module so the idiom cannot drift:
//! `iobt-fleet`'s `FailingStore` (checkpoint-IO faults, PR 9) and
//! `iobt-bridge`'s `FaultyTransport` (edge-transport faults). Their
//! profile structs are thin per-domain rate tables over [`fires`].

/// FNV-1a over the four schedule words. Deterministic and
/// domain-separated; not cryptographic, which is fine for a failure
/// schedule.
pub fn failpoint_hash(seed: u64, domain: u64, key: u64, op: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for word in [seed, domain, key, op] {
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// True when the failpoint for `(seed, domain, key, op)` lands on a
/// `1-in-one_in` slot. `one_in == 0` disables the domain entirely;
/// `one_in == 1` fires on every operation.
pub fn fires(seed: u64, domain: u64, one_in: u64, key: u64, op: u64) -> bool {
    one_in != 0 && failpoint_hash(seed, domain, key, op).is_multiple_of(one_in)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_sensitive_to_every_word() {
        let base = failpoint_hash(1, 2, 3, 4);
        assert_eq!(base, failpoint_hash(1, 2, 3, 4));
        assert_ne!(base, failpoint_hash(9, 2, 3, 4), "seed separates");
        assert_ne!(base, failpoint_hash(1, 9, 3, 4), "domain separates");
        assert_ne!(base, failpoint_hash(1, 2, 9, 4), "key separates");
        assert_ne!(base, failpoint_hash(1, 2, 3, 9), "op separates");
    }

    #[test]
    fn rate_zero_disables_and_rate_one_always_fires() {
        assert!((0..64).all(|op| !fires(7, 1, 0, 5, op)));
        assert!((0..64).all(|op| fires(7, 1, 1, 5, op)));
    }

    #[test]
    fn fractional_rates_fire_sometimes_but_not_always() {
        let hits: Vec<bool> = (0..64).map(|op| fires(7, 1, 3, 5, op)).collect();
        assert!(hits.iter().any(|&f| f), "1-in-3 fires somewhere in 64 ops");
        assert!(!hits.iter().all(|&f| f), "1-in-3 does not fire everywhere");
    }
}
